# Developer entry points for the SecureCloud reproduction.
#
# Every target runs from the repository root; PYTHONPATH=src makes the
# repro package importable without an editable install.

PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: test test-cov bench bench-smoke bench-gate chaos-smoke \
        service-smoke experiments

test:
	$(PYTHON) -m pytest -x -q

# Full benchmark suite via pytest-benchmark; regenerates every table
# under benchmarks/out/ (both .txt and .json artifacts).
bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

# Fast CI smoke: every experiment runs once end-to-end; experiments
# that support a reduced workload (e.g. a9) use it.  Fails loudly if
# any benchmark path regresses.
bench-smoke:
	$(PYTHON) -m repro.cli smoke

# Performance gate: run A1, A9, A10, E6, E7, and E8 in smoke mode and
# fail if any gated metric (visits/match, virtual_ms/match,
# virtual_ms/MB, virtual_ms/pub, detect_ms_med, recover_ms_med,
# ms_per_join, silent_loss) regressed more than 10% against the
# checked-in benchmarks/out/gate_*.json baselines, printing one
# aggregated summary table with a single exit code.  The A9 rows pin
# the chunked-parallel sealing cost model (serial XOF vs. chunked at
# 64/256 KiB chunks x 1/2/4/8 workers); the E7 rows pin node-failover
# detection/recovery latency and zero silent loss; the E8 rows pin the
# attested-join cost model (cold vs. cached vs. batched vs. ticket)
# and provisioned mass-recovery latency; the E9 rows pin the streaming
# plane's shed accounting, commit-lag tail, recovery latency, and zero
# silent loss under overload and churn; the E10 rows pin the front
# door's completed-request p99, the victim tenant's latency ratio
# under a noisy tenant's chaos, and zero silent request loss.
# Regenerate with:
#   $(PYTHON) -m repro.cli gate --update
bench-gate:
	$(PYTHON) -m repro.cli gate

# Coverage gate: tier-1 suite under line coverage with enforced floors
# (src/repro/telemetry/ >= 90%, src/repro/crypto/ >= 90%,
# src/repro/scbr/provisioning.py >= 90%, src/repro/streams/ >= 90%,
# src/repro/service/ >= 90%, repo-wide ratchet at the measured
# baseline); uses the coverage package when installed, else a built-in
# settrace collector.  See tools/test_cov.py.
test-cov:
	$(PYTHON) tools/test_cov.py -x -q

# Smoke run plus the chaos determinism gate: the E5 fault-injection
# scenarios, the E6 sharded-plane failover scenarios, the E7
# node-fault scenarios, the E8 attested-join scenarios (batched
# enrollment included), the E9 streaming-churn scenarios
# (backpressure, shedding, crash replay, autoscaling), and the E10
# front-door scenarios (gateway crash replay, sealed audit chains)
# must produce identical results (fault log, delivery set, sealed
# audit digests, and telemetry snapshot) across two same-seed runs,
# and the same payload sealed twice through the chunked process pool
# (plus once serially) must yield byte-identical ciphertext.
chaos-smoke:
	$(PYTHON) -m repro.cli smoke --chaos

# Fast front-door check: the service-layer conformance harness alone
# (sealed audit properties, admission/quota/billing books,
# cross-tenant isolation vs the operator oracle, gateway crash
# replay with exactly-once audit).
service-smoke:
	$(PYTHON) -m pytest -x -q tests/service

# Regenerate every paper table/figure through the CLI runner.
experiments:
	$(PYTHON) -m repro.cli run all
