"""E7 -- node failover: machine faults under the node-bound plane.

Three scenarios exercise the cluster layer built on top of E6's shard
machinery -- correlated failure detection, mass recovery, and live
migration -- on a plane whose shard enclaves are bound to simulated
nodes, each judged against the single-index oracle
(``tests.scbr.oracle``):

- **node failover**: a fault schedule kills 1 of 4 nodes mid-run -- a
  *correlated* loss of both shards it hosts.  The node detector must
  infer "machine down" from the correlated phi-accrual suspicions and
  the health loop must mass-recover every lost shard onto surviving
  nodes (attested re-join + sealed snapshot restore + log replay)
  before the publication stream resumes;
- **EPC-pressure migration**: one node has a deliberately tiny EPC; as
  the subscription database grows past its watermark the plane
  live-migrates the overloaded shard to a roomier node --
  ``extract_subtrees`` evacuating the whole forest as one sealed
  batch into a freshly attested replacement -- while publications keep
  flowing *mid-migration* with zero dropped matches;
- **node chaos churn**: a :class:`~repro.chaos.ChaosNodePlane` crashes
  whole machines and injects network partitions at seeded rates while
  a repair sweep returns dead machines to the pool; the default
  ``on_partial="retry"`` mode plus the node-aware health loop must
  deliver every publication with full coverage.

``silent_loss`` counts publications whose delivered match set shrank
versus the oracle without being flagged -- pinned to zero in every
scenario.  All latencies are virtual and all chaos is hash-derived
from one seed, so the table is bit-identical across runs (the chaos
determinism check runs this twice and diffs).
"""

import statistics

import pytest

from repro.chaos import ChaosInjector, ChaosNodePlane, FaultSchedule
from repro.cluster import NodeBoundScbrRouter, NodeTopology
from repro.microservices import Orchestrator, QosMonitor, ServiceRegistry
from repro.scbr.filters import Publication, Subscription
from repro.scbr.messages import EncryptedEnvelope, serialize_publication
from repro.scbr.router import ScbrClient
from repro.scbr.sharding import PartialCoverage
from repro.scbr.workload import ScbrWorkload
from repro.sgx.attestation import AttestationService
from repro.sgx.platform import SgxPlatform
from repro.sim.clock import cycles_to_seconds
from repro.sim.events import Environment

from benchmarks._harness import report
from tests.scbr.oracle import oracle_match_sets

SEED = 77
NODES = 4

E7_HEADER = ("scenario", "nodes", "node_faults", "detected", "recovered",
             "detect_ms_med", "recover_ms_med", "migrated_subs",
             "silent_loss", "goodput")


def _plane(seed, nodes=NODES, shards=2 * NODES, epc_capacities=None,
           **kwargs):
    topology = NodeTopology.build(
        nodes, seed=seed, epc_capacities=epc_capacities
    )
    platform = SgxPlatform(seed=seed, quoting_key_bits=512)
    attestation = AttestationService()
    attestation.register_platform(
        platform.platform_id, platform.quoting_enclave.public_key
    )
    router = NodeBoundScbrRouter(
        platform, topology,
        attestation_service=attestation, shards=shards, **kwargs,
    )
    attestation.trust_measurement(router.measurement)
    return router, attestation


def _load(router, attestation, count):
    """One subscriber holding a seeded workload; returns the live set."""
    alice = ScbrClient("alice", router, attestation)
    workload = ScbrWorkload(seed=SEED, num_attributes=6,
                            containment_fraction=0.5, num_subscribers=1)
    live = []
    for subscription in workload.subscriptions(count):
        subscription = Subscription(
            subscription.subscription_id,
            list(subscription.constraints.values()),
            "alice",
        )
        alice.subscribe(subscription)
        live.append(subscription)
    return alice, live, workload


def _envelope(publisher, publication):
    return EncryptedEnvelope.seal(
        publisher.key, publisher.client_id, "publish",
        serialize_publication(Publication(publication.attributes)),
    )


def _matched(alice, routed):
    matched = []
    for _subscriber, envelope in routed:
        _pub, ids = alice.open_notification_detail(envelope)
        matched.extend(ids)
    return sorted(matched)


def _median_ms(samples):
    if not samples:
        return 0.0
    return statistics.median(samples) * 1e3


def _node_failover_trial(subscriptions, publications):
    """Scheduled 1-of-4 node kill; correlated detection, mass recovery."""
    env = Environment()
    injector = ChaosInjector(seed=SEED)
    orchestrator = Orchestrator(env, QosMonitor(env), ServiceRegistry())
    router, attestation = _plane(
        SEED + 1, env=env, chaos=injector, orchestrator=orchestrator
    )
    alice, live, workload = _load(router, attestation, subscriptions)
    publisher = ScbrClient("publisher", router, attestation)
    stream = workload.publications(publications)

    schedule = FaultSchedule(env, injector)
    schedule.crash_node_at(0.0031, router, "node-1")
    router.start_health(0.05)

    deliveries = []

    def publish(publication):
        routed = router.publish_routed(_envelope(publisher, publication))
        deliveries.append(_matched(alice, routed))

    # The stream resumes after the detection window: the machine death
    # must be healed by ONE node mass-recovery (correlated verdict),
    # not by per-shard retries.
    for position, publication in enumerate(stream):
        env.call_at(0.012 + 0.002 * position,
                    lambda publication=publication: publish(publication))
    env.run(until=0.05)

    oracle = oracle_match_sets(live, stream)
    assert deliveries == oracle, "failed-over plane diverged from oracle"
    assert router.node_failures == 1
    assert len(router.node_detector.detections) == 1, (
        "the correlated suspicions must yield exactly one node verdict"
    )
    verdict = router.node_detector.detections[0]
    assert verdict.node == "node-1"
    assert len(verdict.shard_ids) == 2, "both homed shards in the verdict"
    assert len(router.node_recovery_episodes) == 1, "one mass recovery"
    assert not router.topology.node("node-1").shard_ids, (
        "the dead node must hold nothing"
    )
    spread = router.topology.shard_spread()
    assert sum(spread.values()) == router.shard_count, "all shards homed"
    assert max(spread.values()) - min(
        count for name, count in spread.items() if name != "node-1"
    ) <= 1, "mass recovery respected anti-affinity across survivors"
    router.check_invariants()
    span = 0.002 * len(stream)
    return {
        "scenario": "node failover 1/%d" % NODES,
        "nodes": NODES,
        "node_faults": router.node_failures,
        "detected": len(router.node_detector.detections),
        "recovered": len(router.node_recovery_episodes),
        "detect_ms": _median_ms(router.node_detection_latencies()),
        "recover_ms": _median_ms(router.node_recovery_latencies()),
        "migrated_subs": 0,
        "silent_loss": sum(
            1 for got, want in zip(deliveries, oracle) if got != want
        ),
        "goodput": "%.3g pub/s" % (len(stream) / span),
    }


def _epc_migration_trial(subscriptions, publications):
    """A tiny-EPC node crosses its watermark; live-migrate off it.

    Publications flow *between* begin and cutover -- the still-full
    source answers them -- and again after; both halves must match the
    oracle exactly (the parked-publication guarantee).
    """
    env = Environment()
    # node-0 gets a deliberately tiny EPC (heterogeneous fleet); its
    # shard's partition outgrows the watermark as subscriptions land.
    router, attestation = _plane(
        SEED + 2, nodes=3, shards=3, env=env,
        epc_capacities=[4 * 1024, None, None],
    )
    alice, live, workload = _load(router, attestation, subscriptions)
    publisher = ScbrClient("publisher", router, attestation)
    stream = workload.publications(publications)
    oracle = oracle_match_sets(live, stream)

    tiny = router.topology.node("node-0")
    assert tiny.epc_watermark_exceeded(router.epc_node_watermark), (
        "the subscription load must push node-0 past its EPC watermark"
    )
    victim = max(
        tiny.shard_ids,
        key=lambda sid: router._shard_by_id(sid).database_bytes,
    )

    cycles = 0
    deliveries = []

    def publish(publication):
        routed = router.publish_routed(_envelope(publisher, publication))
        assert not isinstance(routed, PartialCoverage)
        deliveries.append(_matched(alice, routed))

    ticket = router.begin_migration(victim)
    mid = max(1, len(stream) // 2)
    for publication in stream[:mid]:
        publish(publication)           # served by the still-full source
        cycles += router.last_publish_cycles
    episode = router.complete_migration(ticket)
    assert episode["completed"] and episode["source_node"] == "node-0"
    for publication in stream[mid:]:
        publish(publication)           # served by the loaded replacement
        cycles += router.last_publish_cycles
    assert deliveries == oracle, "migration dropped or shrank a match set"
    assert not tiny.shard_ids, "node-0 must be drained"
    assert router.relieve_epc_pressure() == [], (
        "one migration must be enough to clear the watermark"
    )
    router.check_invariants()
    elapsed = cycles_to_seconds(cycles)
    return {
        "scenario": "epc migration 1 shard",
        "nodes": 3,
        "node_faults": 0,
        "detected": 0,
        "recovered": 0,
        "detect_ms": 0.0,
        "recover_ms": 0.0,
        "migrated_subs": episode["moved"],
        "silent_loss": sum(
            1 for got, want in zip(deliveries, oracle) if got != want
        ),
        "goodput": "%.3g pub/s" % (
            len(stream) / elapsed if elapsed else 0.0
        ),
    }


def _node_chaos_trial(subscriptions, publications, crash_rate=0.04,
                      partition_rate=0.10):
    """Seeded machine crashes + partitions; the plane must self-heal."""
    env = Environment()
    injector = ChaosInjector(
        seed=SEED, node_crash_rate=crash_rate,
        node_partition_rate=partition_rate, node_partition_max=0.004,
    )
    router, attestation = _plane(SEED + 3, env=env)
    hostile = ChaosNodePlane(router, injector)
    alice, live, workload = _load(router, attestation, subscriptions)
    publisher = ScbrClient("publisher", router, attestation)
    stream = workload.publications(publications)

    router.start_health(0.06)

    # The cloud provider returns dead machines to the pool; without
    # this sweep a long chaos run starves the placement plane.
    def repair_sweep():
        for node in router.topology:
            if not node.alive:
                node.repair()

    for tick in range(1, 15):
        env.call_at(0.004 * tick, repair_sweep)

    deliveries = []

    def publish(publication):
        routed = hostile.publish_routed(_envelope(publisher, publication))
        assert not isinstance(routed, PartialCoverage)
        deliveries.append(_matched(alice, routed))

    for position, publication in enumerate(stream):
        env.call_at(0.012 + 0.003 * position,
                    lambda publication=publication: publish(publication))
    env.run(until=0.06)

    oracle = oracle_match_sets(live, stream)
    assert deliveries == oracle, "chaos churn diverged from the oracle"
    faults = hostile.node_crashes_injected + hostile.partitions_injected
    assert faults >= 1, "chaos actually struck at least one machine"
    router.check_invariants()
    span = 0.003 * len(stream)
    return {
        "scenario": "node chaos crash=%d%% part=%d%%" % (
            round(crash_rate * 100), round(partition_rate * 100)
        ),
        "nodes": NODES,
        "node_faults": faults,
        # A chaos fault surfaces either as a coverage gap healed inline
        # or as a detector verdict; both count as "noticed".
        "detected": faults,
        "recovered": len(router.recovery_episodes),
        "detect_ms": 0.0,
        "recover_ms": _median_ms(router.recovery_latencies()),
        "migrated_subs": 0,
        "silent_loss": sum(
            1 for got, want in zip(deliveries, oracle) if got != want
        ),
        "goodput": "%.3g pub/s" % (len(stream) / span),
    }


def run_e7(smoke=False):
    """All scenarios; returns table rows.  ``smoke`` shrinks workloads."""
    scale = 3 if smoke else 1
    trials = [
        _node_failover_trial(60 // scale, 9 // scale),
        _epc_migration_trial(45 // scale, 8 // scale),
        _node_chaos_trial(48 // scale, 9 // scale),
    ]
    return [
        (
            trial["scenario"],
            trial["nodes"],
            trial["node_faults"],
            trial["detected"],
            trial["recovered"],
            trial["detect_ms"],
            trial["recover_ms"],
            trial["migrated_subs"],
            trial["silent_loss"],
            trial["goodput"],
        )
        for trial in trials
    ]


@pytest.fixture(scope="module")
def e7_rows():
    return run_e7()


def bench_e7_node_failover(e7_rows, benchmark):
    rows = e7_rows
    report(
        "e7_node_failover",
        "E7: node fault domains -- correlated detection, mass recovery, "
        "live migration (virtual time)",
        E7_HEADER,
        rows,
        notes=(
            "silent_loss: publications whose match set shrank vs. the",
            "single-index oracle without a flag -- zero in every scenario;",
            "detect/recover medians are virtual (phi detector + cycle model)",
        ),
    )
    by_name = {row[0]: row for row in rows}
    for row in rows:
        assert row[8] == 0, "%s lost matches silently" % row[0]
    failover = by_name["node failover 1/%d" % NODES]
    assert failover[2] == 1 and failover[3] == 1, (
        "one machine death, one correlated verdict"
    )
    assert failover[4] == 1, "one mass recovery healed the whole node"
    assert 0.0 < failover[5] < 50.0, "bounded virtual detection latency"
    assert 0.0 < failover[6], "finite mass-recovery latency"
    migration = by_name["epc migration 1 shard"]
    assert migration[7] > 0, "the migration actually moved subscriptions"
    chaos_row = by_name["node chaos crash=4% part=10%"]
    assert chaos_row[2] >= 1, "chaos struck at least one machine"

    benchmark.pedantic(lambda: _epc_migration_trial(15, 4),
                       rounds=1, iterations=1)
