"""A8 (future work) -- "optimise data structures to avoid paging".

Section V-B's closing sentence promises data-structure optimisations to
avoid paging and cache misses.  This benchmark implements and measures
that promise: the Figure 3 sweep is repeated with the hot/cold matcher
(:class:`~repro.scbr.compact.HotColdIndex`), whose packed 64-byte
constraint summaries keep the *scanned* footprint ~8x below the logical
database size.  The 18x paging cliff at 200 MB collapses back to the
MEE-only regime.
"""

import gc

import pytest

from repro.scbr.compact import HotColdIndex
from repro.scbr.naive import LinearIndex
from repro.scbr.workload import ScbrWorkload
from repro.sgx.costs import DEFAULT_COSTS, MIB
from repro.sgx.memory import EpcModel, SimulatedMemory
from repro.sim.clock import CycleClock, cycles_to_seconds

from benchmarks._harness import report

DB_SIZES_MB = (64, 96, 128, 200)
RECORD_BYTES = 512
POOL_SIZE = 8192


def _pool():
    workload = ScbrWorkload(seed=42, num_attributes=50,
                            containment_fraction=0.0)
    return workload.subscriptions(POOL_SIZE), workload.publications(3)


def _run(index_cls, pool, publications, total_records, enclave):
    costs = DEFAULT_COSTS
    clock = CycleClock()
    if enclave:
        memory = SimulatedMemory(clock, costs, enclave=True,
                                 epc=EpcModel(costs), name="m")
    else:
        memory = SimulatedMemory(clock, costs, name="m")
    index = index_cls(memory=memory, record_bytes=RECORD_BYTES)
    for i in range(total_records):
        index.insert(pool[i % len(pool)])
    index.match(publications[0])  # warm up
    start = clock.now
    for publication in publications[1:]:
        index.match(publication)
    cycles = (clock.now - start) / (len(publications) - 1)
    return cycles_to_seconds(cycles, clock.frequency_hz) * 1e3


def run_a8(smoke=False):
    # CI smoke: one sub-EPC point keeps the path covered in seconds.
    db_sizes = DB_SIZES_MB[:1] if smoke else DB_SIZES_MB
    gc.disable()
    try:
        pool, publications = _pool()
        rows = []
        for db_mb in db_sizes:
            total_records = db_mb * MIB // RECORD_BYTES
            native = _run(LinearIndex, pool, publications, total_records,
                          enclave=False)
            baseline = _run(LinearIndex, pool, publications, total_records,
                            enclave=True)
            compact = _run(HotColdIndex, pool, publications, total_records,
                           enclave=True)
            rows.append(
                (db_mb, native, baseline, compact,
                 baseline / native, compact / native)
            )
    finally:
        gc.enable()
    return rows


@pytest.fixture(scope="module")
def a8_rows():
    return run_a8()


def bench_a8_paging_avoidance(a8_rows, benchmark):
    rows = a8_rows
    report(
        "a8_paging_avoidance",
        "A8: Figure 3 with the paging-avoiding hot/cold matcher",
        ("db_mb", "native_ms", "baseline_enclave_ms", "hotcold_enclave_ms",
         "baseline_slowdown", "hotcold_slowdown"),
        rows,
        notes=(
            "implements the paper's future work: packed 64 B summaries",
            "keep the scanned set inside the EPC; the paging cliff is gone",
            "(below the LLC limit the split costs extra cold reads per",
            "match, so it only pays once the baseline starts missing)",
        ),
    )
    by_size = {row[0]: row for row in rows}
    baseline_200, compact_200 = by_size[200][4], by_size[200][5]
    assert baseline_200 > 10.0, "the baseline still hits the cliff"
    assert compact_200 < 6.0, "the optimised layout avoids paging"
    assert compact_200 < baseline_200 / 3

    benchmark.pedantic(
        lambda: _run(HotColdIndex, *_pool(), 64 * MIB // RECORD_BYTES, True),
        rounds=1, iterations=1,
    )
