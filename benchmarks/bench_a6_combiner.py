"""A6 (ablation) -- map-side combining in secure map/reduce.

Sealing dominates the secure engine's cost (A4): every key/value pair
crossing an enclave boundary is encrypted and MACed.  A combiner
pre-reduces inside the mapper enclave, so only one partial per (key,
partition) is sealed.  Measured on the smart-meter aggregation with a
high record-to-group ratio.
"""

import time

import pytest

from repro.bigdata.mapreduce import MapReduceJob, SecureMapReduce
from repro.sgx.platform import SgxPlatform
from repro.smartgrid.meters import SmartMeterFleet
from repro.smartgrid.theft import _aggregation_job
from repro.smartgrid.topology import GridTopology

from benchmarks._harness import report

HOUR = 3600.0


def _records():
    grid = GridTopology.build(feeders=2, transformers_per_feeder=3,
                              meters_per_transformer=6)
    fleet = SmartMeterFleet(grid, seed=19, interval=60.0)
    readings = fleet.readings_window(0.0, 2 * HOUR)
    detector_map = {meter: grid.transformer_of(meter) for meter in grid.meters}
    map_fn, reduce_fn = _aggregation_job(detector_map, 900.0, 60.0)
    return [reading.to_record() for reading in readings], map_fn, reduce_fn


def run_a6():
    records, map_fn, reduce_fn = _records()
    rows = []
    outputs = {}
    for label, combiner in (("no combiner", None), ("combiner", reduce_fn)):
        platform = SgxPlatform(seed=501, quoting_key_bits=512)
        job = MapReduceJob(map_fn, reduce_fn, mappers=4, reducers=2,
                           combiner_fn=combiner)
        engine = SecureMapReduce(platform, job)
        start = time.perf_counter()
        outputs[label] = engine.run(records)
        seconds = time.perf_counter() - start
        rows.append(
            (label, len(records), engine.sealed_bytes_moved / 1024.0,
             seconds * 1e3)
        )
    # Combining a sum is semantics-preserving up to float association;
    # compare with a tolerance.
    plain_keys = set(outputs["no combiner"])
    assert plain_keys == set(outputs["combiner"])
    for key in plain_keys:
        assert outputs["combiner"][key] == pytest.approx(
            outputs["no combiner"][key], rel=1e-9
        )
    return rows


@pytest.fixture(scope="module")
def a6_rows():
    return run_a6()


def bench_a6_combiner(a6_rows, benchmark):
    rows = a6_rows
    report(
        "a6_combiner",
        "A6: secure map/reduce with and without map-side combining",
        ("mode", "records", "sealed_kb", "host_ms"),
        rows,
        notes=(
            "combining pre-reduces inside mapper enclaves, shrinking the",
            "sealed shuffle; outputs are numerically identical",
        ),
    )
    without_kb, with_kb = rows[0][2], rows[1][2]
    assert with_kb < without_kb / 5, "sealed shuffle shrinks >5x"

    benchmark.pedantic(run_a6, rounds=1, iterations=1)
