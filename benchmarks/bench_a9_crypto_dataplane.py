"""A9 (ablation) -- crypto data-plane micro-throughput.

Every sealed byte in the system (map/reduce splits and shuffle, FS
shield chunks, shielded streams, bulk transfer, SCBR envelopes) flows
through the HMAC-CTR keystream, the XOR pass, and the AEAD framing.
This benchmark measures those paths in isolation, before vs. after the
data-plane reworks:

- *seed* keystream: one ``hmac.new`` per 32-byte block, byte-by-byte
  generator XOR (the implementation the repository seeded with);
- *fused* compatible path: one HMAC context copied per block, big-int
  XOR, and the fused ``keystream_xor`` helper (what single-record
  ``Ciphertext`` uses -- wire format unchanged);
- *XOF* batch path: single-call SHAKE-256 keystream + big-int XOR (what
  the serial ``SealedBatch`` framing uses);
- *chunked-parallel* path: per-chunk derived keystreams over a process
  pool with a manifest-authenticated ``SB2`` frame (what large payloads
  auto-select);
- per-record ``encrypt``/``decrypt`` vs. the batched ``SealedBatch``
  framing for many small records (one nonce+tag per batch).

The chunked columns are reported in *virtual* milliseconds per MB from
the deterministic cost model in :mod:`repro.crypto.chunked` (dispatch
cycles per chunk + the makespan of round-robin worker assignment), so
the performance gate compares stable numbers on any host; the real
process pool is exercised for byte-identity on every run and its
wall-clock throughput is reported in the full (non-smoke) table.
"""

import hashlib
import hmac as _hmac
import time

from repro.crypto.aead import AeadKey, SealedBatch
from repro.crypto.chunked import chunked_seal_cycles, serial_seal_cycles
from repro.crypto.primitives import (
    DeterministicRandomSource,
    keystream,
    keystream_xor,
    xof_keystream,
    xof_keystream_xor,
    xor_bytes,
)
from repro.sim.clock import cycles_to_seconds

from benchmarks._harness import report

# Gate header: column 1 (virtual_ms/MB) is compared against the
# checked-in baseline by ``python -m repro.cli gate``.
A9_HEADER = ("path", "virtual_ms/MB")

_MB = 1024 * 1024
_GATE_PAYLOAD = _MB
_GATE_CHUNK_SIZES = (64 * 1024, 256 * 1024)
_GATE_WORKERS = (1, 2, 4, 8)


# --- the seed implementations, kept verbatim as the baseline ---

def _seed_keystream(key, nonce, length):
    blocks = []
    counter = 0
    produced = 0
    while produced < length:
        block = _hmac.new(
            key, nonce + counter.to_bytes(8, "big"), hashlib.sha256
        ).digest()
        blocks.append(block)
        produced += len(block)
        counter += 1
    return b"".join(blocks)[:length]


def _seed_xor(data, stream):
    return bytes(a ^ b for a, b in zip(data, stream))


def _mb_per_second(nbytes, seconds):
    return nbytes / 1e6 / max(seconds, 1e-12)


def _time(fn, repeats):
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _virtual_ms_per_mb(cycles, nbytes):
    return cycles_to_seconds(cycles) * 1e3 * _MB / nbytes


def virtual_rows(payload_bytes=_GATE_PAYLOAD):
    """Deterministic (label, virtual_ms/MB) rows for the seal paths.

    Serial is the single-pass XOF cost model; the chunked rows sweep
    chunk size x worker count through the makespan model.  These are
    pure functions of the constants in :mod:`repro.crypto.chunked`, so
    they are byte-stable across runs and hosts -- exactly what the
    performance gate and the chaos determinism check need.
    """
    rows = [(
        "serial xof, %dKiB payload" % (payload_bytes // 1024),
        _virtual_ms_per_mb(serial_seal_cycles(payload_bytes), payload_bytes),
    )]
    for chunk_size in _GATE_CHUNK_SIZES:
        for workers in _GATE_WORKERS:
            cycles = chunked_seal_cycles(payload_bytes, chunk_size, workers)
            rows.append((
                "chunked c=%dKiB w=%d" % (chunk_size // 1024, workers),
                _virtual_ms_per_mb(cycles, payload_bytes),
            ))
    return rows


def _chunked_round_trip(aead, payload, chunk_size, workers):
    """Seal/open through the real chunked path; asserts byte-identity.

    Returns the wall-clock seconds of the seal.  The sealed bytes must
    be identical to the serial (``workers=1``) seal -- the determinism
    contract the chaos gate also enforces -- and the frame must open
    back to the payload.
    """
    nonce = DeterministicRandomSource(99).bytes(16)
    start = time.perf_counter()
    batch = aead.encrypt_batch(
        [payload], nonce=nonce, chunk_size=chunk_size, workers=workers
    )
    seconds = time.perf_counter() - start
    serial = aead.encrypt_batch(
        [payload], nonce=nonce, chunk_size=chunk_size, workers=1
    )
    assert batch.to_bytes() == serial.to_bytes()
    opened = aead.decrypt_batch(
        SealedBatch.from_bytes(batch.to_bytes()), workers=workers
    )
    assert opened == [payload]
    return seconds


def run_a9(smoke=False):
    """Measure the data-plane paths; returns the gate rows.

    Smoke mode returns only the deterministic virtual-model rows (after
    exercising a real chunked seal/open round-trip through the process
    pool); the full run additionally measures wall-clock throughput for
    every path and writes the ``a9_crypto_dataplane`` artifact.
    """
    payload_size = 64 * 1024 if smoke else 1024 * 1024
    record_count = 256 if smoke else 2048
    record_size = 64
    repeats = 1 if smoke else 3

    source = DeterministicRandomSource(9)
    key_bytes = source.bytes(32)
    nonce = source.bytes(16)
    data = source.bytes(payload_size)
    records = [source.bytes(record_size) for _ in range(record_count)]
    aead = AeadKey(key_bytes, random_source=source)

    # Identical output first (the optimisation must be invisible).
    assert keystream(key_bytes, nonce, 4096) == _seed_keystream(
        key_bytes, nonce, 4096
    )
    assert keystream_xor(key_bytes, nonce, data[:4096]) == _seed_xor(
        data[:4096], _seed_keystream(key_bytes, nonce, 4096)
    )

    gate_rows = virtual_rows()

    if smoke:
        # End-to-end check of the real pool path (byte-identity and
        # round-trip), but the returned rows stay deterministic: the
        # gate and the chaos check compare them across runs.
        _chunked_round_trip(aead, data, chunk_size=16 * 1024, workers=2)
        return gate_rows

    seed_seconds = _time(
        lambda: _seed_xor(data, _seed_keystream(key_bytes, nonce, len(data))),
        repeats,
    )
    fused_seconds = _time(
        lambda: keystream_xor(key_bytes, nonce, data), repeats
    )
    xof_seconds = _time(
        lambda: xof_keystream_xor(key_bytes, nonce, data), repeats
    )
    ks_seconds = _time(lambda: keystream(key_bytes, nonce, len(data)), repeats)
    xof_ks_seconds = _time(
        lambda: xof_keystream(key_bytes, nonce, len(data)), repeats
    )
    stream = keystream(key_bytes, nonce, len(data))
    xor_seconds = _time(lambda: xor_bytes(data, stream), repeats)
    seed_xor_seconds = _time(lambda: _seed_xor(data, stream), repeats)

    chunked_seconds = {
        workers: _chunked_round_trip(
            aead, data, chunk_size=256 * 1024, workers=workers
        )
        for workers in (1, 4)
    }

    per_record_seconds = _time(
        lambda: [aead.encrypt(record, aad=b"a9") for record in records], repeats
    )
    batch_seconds = _time(
        lambda: aead.encrypt_batch(records, aad=b"a9"), repeats
    )
    record_bytes = record_count * record_size
    per_record_wire = sum(
        len(aead.encrypt(record, aad=b"a9")) for record in records
    )
    batch = aead.encrypt_batch(records, aad=b"a9")
    assert aead.decrypt_batch(
        SealedBatch.from_bytes(batch.to_bytes()), aad=b"a9"
    ) == records
    batch_wire = len(batch)

    fused_speedup = seed_seconds / max(fused_seconds, 1e-12)
    xof_speedup = seed_seconds / max(xof_seconds, 1e-12)
    serial_virtual = gate_rows[0][1]
    chunked_virtual_speedup = serial_virtual / min(
        value for label, value in gate_rows[1:]
    )
    rows = [
        ("keystream+xor, seed (MB/s)", _mb_per_second(len(data), seed_seconds)),
        ("keystream+xor, fused hmac-ctr (MB/s)",
         _mb_per_second(len(data), fused_seconds)),
        ("keystream+xor, xof batch plane (MB/s)",
         _mb_per_second(len(data), xof_seconds)),
        ("hmac-ctr speedup vs seed", fused_speedup),
        ("xof speedup vs seed", xof_speedup),
        ("keystream alone, hmac-ctr (MB/s)", _mb_per_second(len(data), ks_seconds)),
        ("keystream alone, xof (MB/s)", _mb_per_second(len(data), xof_ks_seconds)),
        ("xor alone, seed (MB/s)", _mb_per_second(len(data), seed_xor_seconds)),
        ("xor alone, big-int (MB/s)", _mb_per_second(len(data), xor_seconds)),
        ("chunked seal w=1 (MB/s)",
         _mb_per_second(len(data), chunked_seconds[1])),
        ("chunked seal w=4 (MB/s)",
         _mb_per_second(len(data), chunked_seconds[4])),
        ("chunked virtual speedup vs serial", chunked_virtual_speedup),
        ("seal %d x %dB per-record (MB/s)" % (record_count, record_size),
         _mb_per_second(record_bytes, per_record_seconds)),
        ("seal %d x %dB batched (MB/s)" % (record_count, record_size),
         _mb_per_second(record_bytes, batch_seconds)),
        ("per-record wire bytes", per_record_wire),
        ("batched wire bytes", batch_wire),
        ("framing bytes saved", per_record_wire - batch_wire),
    ] + [("virtual: %s (ms/MB)" % label, value) for label, value in gate_rows]
    report(
        "a9_crypto_dataplane",
        "A9: crypto data-plane throughput, seed vs. fused vs. chunked",
        ("quantity", "value"),
        rows,
        notes=(
            "seed = hmac.new per 32B block + generator XOR;",
            "fused hmac-ctr = copied HMAC context per block + big-int XOR",
            "  (the wire-compatible single-record Ciphertext path);",
            "xof = single-call SHAKE-256 stream + big-int XOR (the",
            "  SealedBatch data plane); chunked = per-chunk derived",
            "  keystreams + manifest-authenticated SB2 frame, pool-",
            "  parallel (bytes identical at any worker count); virtual",
            "  rows are the deterministic makespan model the gate pins",
        ),
    )
    return {
        "rows": rows,
        "gate_rows": gate_rows,
        "fused_speedup": fused_speedup,
        "xof_speedup": xof_speedup,
        "chunked_virtual_speedup": chunked_virtual_speedup,
        "payload_bytes": len(data),
    }


def bench_a9_crypto_dataplane(benchmark):
    outcome = run_a9()
    # Acceptance: the batch-plane keystream+XOR path must be >= 10x the
    # seed primitives; the compatible HMAC-CTR path must still improve;
    # the chunked-parallel plane must model >= 2x over the serial XOF
    # path at 4 workers on a 1 MiB payload.
    assert outcome["xof_speedup"] >= 10.0
    assert outcome["fused_speedup"] >= 1.5
    gate = dict(outcome["gate_rows"])
    serial = gate["serial xof, 1024KiB payload"]
    assert serial / gate["chunked c=256KiB w=4"] >= 2.0
    source = DeterministicRandomSource(9)
    key_bytes = source.bytes(32)
    nonce = source.bytes(16)
    data = source.bytes(outcome["payload_bytes"])

    # Sub-chunk records must keep the serial SB1 path byte-identical
    # (no small-record regression by construction).
    aead = AeadKey(key_bytes, random_source=source)
    small = [source.bytes(64) for _ in range(32)]
    auto = aead.encrypt_batch(small, nonce=nonce)
    forced = aead.encrypt_batch(small, nonce=nonce, chunk_size=0)
    assert auto.to_bytes() == forced.to_bytes()

    benchmark.pedantic(
        lambda: xof_keystream_xor(key_bytes, nonce, data), rounds=3, iterations=1
    )
