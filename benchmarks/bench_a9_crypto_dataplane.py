"""A9 (ablation) -- crypto data-plane micro-throughput.

Every sealed byte in the system (map/reduce splits and shuffle, FS
shield chunks, shielded streams, bulk transfer, SCBR envelopes) flows
through the HMAC-CTR keystream, the XOR pass, and the AEAD framing.
This benchmark measures those paths in isolation, before vs. after the
data-plane rework:

- *seed* keystream: one ``hmac.new`` per 32-byte block, byte-by-byte
  generator XOR (the implementation the repository seeded with);
- *fused* compatible path: one HMAC context copied per block, big-int
  XOR, and the fused ``keystream_xor`` helper (what single-record
  ``Ciphertext`` uses -- wire format unchanged);
- *XOF* batch path: single-call SHAKE-256 keystream + big-int XOR (what
  the new ``SealedBatch`` framing uses);
- per-record ``encrypt``/``decrypt`` vs. the batched ``SealedBatch``
  framing for many small records (one nonce+tag per batch).
"""

import hashlib
import hmac as _hmac
import time

from repro.crypto.aead import AeadKey, SealedBatch
from repro.crypto.primitives import (
    DeterministicRandomSource,
    keystream,
    keystream_xor,
    xof_keystream,
    xof_keystream_xor,
    xor_bytes,
)

from benchmarks._harness import report


# --- the seed implementations, kept verbatim as the baseline ---

def _seed_keystream(key, nonce, length):
    blocks = []
    counter = 0
    produced = 0
    while produced < length:
        block = _hmac.new(
            key, nonce + counter.to_bytes(8, "big"), hashlib.sha256
        ).digest()
        blocks.append(block)
        produced += len(block)
        counter += 1
    return b"".join(blocks)[:length]


def _seed_xor(data, stream):
    return bytes(a ^ b for a, b in zip(data, stream))


def _mb_per_second(nbytes, seconds):
    return nbytes / 1e6 / max(seconds, 1e-12)


def _time(fn, repeats):
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def run_a9(smoke=False):
    """Measure seed vs. fused data-plane throughput; returns the rows."""
    payload_size = 64 * 1024 if smoke else 1024 * 1024
    record_count = 256 if smoke else 2048
    record_size = 64
    repeats = 1 if smoke else 3

    source = DeterministicRandomSource(9)
    key_bytes = source.bytes(32)
    nonce = source.bytes(16)
    data = source.bytes(payload_size)
    records = [source.bytes(record_size) for _ in range(record_count)]
    aead = AeadKey(key_bytes, random_source=source)

    # Identical output first (the optimisation must be invisible).
    assert keystream(key_bytes, nonce, 4096) == _seed_keystream(
        key_bytes, nonce, 4096
    )
    assert keystream_xor(key_bytes, nonce, data[:4096]) == _seed_xor(
        data[:4096], _seed_keystream(key_bytes, nonce, 4096)
    )

    seed_seconds = _time(
        lambda: _seed_xor(data, _seed_keystream(key_bytes, nonce, len(data))),
        repeats,
    )
    fused_seconds = _time(
        lambda: keystream_xor(key_bytes, nonce, data), repeats
    )
    xof_seconds = _time(
        lambda: xof_keystream_xor(key_bytes, nonce, data), repeats
    )
    ks_seconds = _time(lambda: keystream(key_bytes, nonce, len(data)), repeats)
    xof_ks_seconds = _time(
        lambda: xof_keystream(key_bytes, nonce, len(data)), repeats
    )
    stream = keystream(key_bytes, nonce, len(data))
    xor_seconds = _time(lambda: xor_bytes(data, stream), repeats)
    seed_xor_seconds = _time(lambda: _seed_xor(data, stream), repeats)

    per_record_seconds = _time(
        lambda: [aead.encrypt(record, aad=b"a9") for record in records], repeats
    )
    batch_seconds = _time(
        lambda: aead.encrypt_batch(records, aad=b"a9"), repeats
    )
    record_bytes = record_count * record_size
    per_record_wire = sum(
        len(aead.encrypt(record, aad=b"a9")) for record in records
    )
    batch = aead.encrypt_batch(records, aad=b"a9")
    assert aead.decrypt_batch(
        SealedBatch.from_bytes(batch.to_bytes()), aad=b"a9"
    ) == records
    batch_wire = len(batch)

    fused_speedup = seed_seconds / max(fused_seconds, 1e-12)
    xof_speedup = seed_seconds / max(xof_seconds, 1e-12)
    rows = [
        ("keystream+xor, seed (MB/s)", _mb_per_second(len(data), seed_seconds)),
        ("keystream+xor, fused hmac-ctr (MB/s)",
         _mb_per_second(len(data), fused_seconds)),
        ("keystream+xor, xof batch plane (MB/s)",
         _mb_per_second(len(data), xof_seconds)),
        ("hmac-ctr speedup vs seed", fused_speedup),
        ("xof speedup vs seed", xof_speedup),
        ("keystream alone, hmac-ctr (MB/s)", _mb_per_second(len(data), ks_seconds)),
        ("keystream alone, xof (MB/s)", _mb_per_second(len(data), xof_ks_seconds)),
        ("xor alone, seed (MB/s)", _mb_per_second(len(data), seed_xor_seconds)),
        ("xor alone, big-int (MB/s)", _mb_per_second(len(data), xor_seconds)),
        ("seal %d x %dB per-record (MB/s)" % (record_count, record_size),
         _mb_per_second(record_bytes, per_record_seconds)),
        ("seal %d x %dB batched (MB/s)" % (record_count, record_size),
         _mb_per_second(record_bytes, batch_seconds)),
        ("per-record wire bytes", per_record_wire),
        ("batched wire bytes", batch_wire),
        ("framing bytes saved", per_record_wire - batch_wire),
    ]
    if smoke:
        # Smoke mode checks the path end-to-end but must not overwrite
        # the full-workload artifact under benchmarks/out/.
        return {
            "rows": rows,
            "fused_speedup": fused_speedup,
            "xof_speedup": xof_speedup,
            "payload_bytes": len(data),
        }
    report(
        "a9_crypto_dataplane",
        "A9: crypto data-plane throughput, seed vs. fused primitives",
        ("quantity", "value"),
        rows,
        notes=(
            "seed = hmac.new per 32B block + generator XOR;",
            "fused hmac-ctr = copied HMAC context per block + big-int XOR",
            "  (the wire-compatible single-record Ciphertext path);",
            "xof = single-call SHAKE-256 stream + big-int XOR (the",
            "  SealedBatch data plane); batched sealing pays one",
            "  nonce+tag per batch, not per record",
        ),
    )
    return {
        "rows": rows,
        "fused_speedup": fused_speedup,
        "xof_speedup": xof_speedup,
        "payload_bytes": len(data),
    }


def bench_a9_crypto_dataplane(benchmark):
    outcome = run_a9()
    # Acceptance: the batch-plane keystream+XOR path must be >= 10x the
    # seed primitives; the compatible HMAC-CTR path must still improve.
    assert outcome["xof_speedup"] >= 10.0
    assert outcome["fused_speedup"] >= 1.5
    source = DeterministicRandomSource(9)
    key_bytes = source.bytes(32)
    nonce = source.bytes(16)
    data = source.bytes(outcome["payload_bytes"])

    benchmark.pedantic(
        lambda: xof_keystream_xor(key_bytes, nonce, data), rounds=3, iterations=1
    )
