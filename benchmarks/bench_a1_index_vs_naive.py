"""A1 (ablation) -- SCBR's containment index vs. naive matching.

Section V-B: "Performance is enhanced by storing subscriptions in data
structures that exploit containment relations between filters.
Therefore, a reduced number of comparisons is required whenever a
message must be matched against them."

Same subscriptions, same publications, two matchers; reports visited
subscriptions per match and virtual matching time, inside the enclave.
"""

import pytest

from repro.scbr.index import ContainmentIndex
from repro.scbr.naive import LinearIndex
from repro.scbr.workload import ScbrWorkload
from repro.sgx.costs import DEFAULT_COSTS
from repro.sgx.memory import EpcModel, SimulatedMemory
from repro.sim.clock import CycleClock

from benchmarks._harness import report

SUBSCRIPTIONS = 3000
PUBLICATIONS = 40
CONTAINMENT = 0.6

A1_HEADER = ("matcher", "visits/match", "matches/match", "virtual_ms/match")


def _enclave_memory(name):
    costs = DEFAULT_COSTS
    clock = CycleClock()
    return SimulatedMemory(clock, costs, enclave=True, epc=EpcModel(costs),
                           name=name), clock


def run_a1(smoke=False):
    total_subscriptions = 600 if smoke else SUBSCRIPTIONS
    total_publications = 10 if smoke else PUBLICATIONS
    workload = ScbrWorkload(seed=11, num_attributes=12,
                            containment_fraction=CONTAINMENT)
    subscriptions = workload.subscriptions(total_subscriptions)
    publications = workload.publications(total_publications)

    rows = []
    results = {}
    for label, factory in (
        ("naive linear scan", LinearIndex),
        ("containment index", ContainmentIndex),
    ):
        memory, clock = _enclave_memory(label)
        index = factory(memory=memory)
        for subscription in subscriptions:
            index.insert(subscription)
        matches = 0
        visits = 0
        start = clock.now
        matched_sets = []
        for publication in publications:
            matched = index.match(publication)
            matched_sets.append(matched)
            matches += len(matched)
            visits += index.visits_last_match
        cycles = clock.now - start
        results[label] = matched_sets
        rows.append(
            (
                label,
                visits / total_publications,
                matches / total_publications,
                cycles / total_publications / 2.6e6,  # virtual ms per match
            )
        )
    assert results["naive linear scan"] == results["containment index"]
    return rows


@pytest.fixture(scope="module")
def a1_rows():
    return run_a1()


def bench_a1_index_vs_naive(a1_rows, benchmark):
    rows = a1_rows
    report(
        "a1_index_vs_naive",
        "A1: matcher comparison inside the enclave (%d subscriptions)"
        % SUBSCRIPTIONS,
        ("matcher", "visits/match", "matches/match", "virtual_ms/match"),
        rows,
        notes=(
            "identical results; the containment index prunes covered",
            "subtrees, reducing comparisons and enclave memory traffic",
        ),
    )
    naive_visits, index_visits = rows[0][1], rows[1][1]
    naive_ms, index_ms = rows[0][3], rows[1][3]
    assert index_visits < 0.7 * naive_visits, "comparisons reduced"
    assert index_ms < naive_ms, "matching time reduced"

    benchmark.pedantic(run_a1, rounds=1, iterations=1)
