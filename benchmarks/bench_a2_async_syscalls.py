"""A2 (ablation) -- SCONE's asynchronous system-call interface.

Section IV: SCONE "provides acceptable performance by implementing
tailored threading and an asynchronous system call interface."

The same I/O-heavy thread mix (open/read/compute loops) runs three
ways: synchronous syscalls (two enclave transitions each), asynchronous
submit-and-wait from a single thread, and asynchronous syscalls under
the M:N user-level scheduler.  Virtual time shows the paper's ordering.
"""

import pytest

from repro.scone.syscalls import (
    AsyncSyscallExecutor,
    SimulatedKernel,
    SyncSyscallExecutor,
    SyscallRequest,
)
from repro.scone.threads import UserThreadScheduler
from repro.sgx.costs import DEFAULT_COSTS
from repro.sim.clock import CycleClock

from benchmarks._harness import report

THREADS = 16
CALLS_PER_THREAD = 50
COMPUTE_CYCLES = 3_000


def _run_sync():
    clock = CycleClock()
    executor = SyncSyscallExecutor(clock, SimulatedKernel(), DEFAULT_COSTS)
    for thread in range(THREADS):
        fd = executor.call("open", "/data/%d" % thread)
        for _ in range(CALLS_PER_THREAD):
            executor.call("write", fd, b"x" * 64)
            clock.charge(COMPUTE_CYCLES)
    return clock.now


def _run_async_single():
    """Async queue but a single, naturally-written blocking thread:
    every call submits and waits before computing."""
    clock = CycleClock()
    executor = AsyncSyscallExecutor(clock, SimulatedKernel(), DEFAULT_COSTS,
                                    workers=4)
    for thread in range(THREADS):
        fd = executor.call("open", "/data/%d" % thread)
        for _ in range(CALLS_PER_THREAD):
            executor.call("write", fd, b"x" * 64)
            clock.charge(COMPUTE_CYCLES)
    return clock.now


def _run_async_threaded():
    clock = CycleClock()
    executor = AsyncSyscallExecutor(clock, SimulatedKernel(), DEFAULT_COSTS,
                                    workers=4)
    scheduler = UserThreadScheduler(clock, executor)

    def worker(thread):
        fd = yield SyscallRequest("open", ("/data/%d" % thread,))
        for _ in range(CALLS_PER_THREAD):
            yield SyscallRequest("write", (fd, b"x" * 64))
            yield ("compute", COMPUTE_CYCLES)

    for thread in range(THREADS):
        scheduler.spawn(worker(thread))
    scheduler.run()
    return clock.now


def run_a2():
    total_calls = THREADS * (CALLS_PER_THREAD + 1)
    rows = []
    for label, runner in (
        ("sync (exit per call)", _run_sync),
        ("async, single thread", _run_async_single),
        ("async + user threads (SCONE)", _run_async_threaded),
    ):
        cycles = runner()
        rows.append((label, cycles / 1e6, cycles / total_calls))
    return rows


@pytest.fixture(scope="module")
def a2_rows():
    return run_a2()


def bench_a2_async_syscalls(a2_rows, benchmark):
    rows = a2_rows
    report(
        "a2_async_syscalls",
        "A2: %d threads x %d syscalls, virtual cost" % (THREADS,
                                                        CALLS_PER_THREAD),
        ("mode", "total_Mcycles", "cycles/call"),
        rows,
        notes=(
            "sync pays 2 enclave transitions per call; the shared queue",
            "plus M:N threading overlaps kernel time with enclave compute",
        ),
    )
    sync_total = rows[0][1]
    async_total = rows[1][1]
    threaded_total = rows[2][1]
    assert async_total < sync_total, "async avoids transitions"
    assert threaded_total < 0.75 * async_total, "threading overlaps waiting"
    assert threaded_total < sync_total / 4, "SCONE's combined win"

    benchmark.pedantic(_run_async_threaded, rounds=3, iterations=1)
