"""A4 (ablation) -- secure vs. plain map/reduce on the theft workload.

The smart-meter theft-detection aggregation (use case 1) runs once as
plain Python map/reduce and once on the secure engine (enclave mappers/
reducers, sealed shuffle).  Results must be identical; the table
reports the security tax: sealed bytes moved and wall time (the AEAD
work is real computation here).
"""

import time

import pytest

from repro.bigdata.mapreduce import MapReduceJob, SecureMapReduce, plain_mapreduce
from repro.sgx.platform import SgxPlatform
from repro.smartgrid.meters import SmartMeterFleet
from repro.smartgrid.theft import TheftDetector
from repro.smartgrid.topology import GridTopology

from benchmarks._harness import report

HOUR = 3600.0


def build_workload():
    grid = GridTopology.build(feeders=2, transformers_per_feeder=3,
                              meters_per_transformer=6)
    fleet = SmartMeterFleet(grid, seed=13, interval=60.0)
    fleet.inject_theft("meter-0-1-02", start=0.0, fraction=0.4)
    readings = fleet.readings_window(0.0, 1 * HOUR)
    records = [reading.to_record() for reading in readings]
    detector = TheftDetector(grid, interval=60.0)
    return grid, records, detector


def run_a4():
    from repro.smartgrid.theft import _aggregation_job

    grid, records, detector = build_workload()
    map_fn, reduce_fn = _aggregation_job(
        detector._transformer_of, detector.bucket_seconds, detector.interval
    )

    start = time.perf_counter()
    plain = plain_mapreduce(map_fn, reduce_fn, records)
    plain_seconds = time.perf_counter() - start

    platform = SgxPlatform(seed=401, quoting_key_bits=512)
    job = MapReduceJob(map_fn, reduce_fn, mappers=4, reducers=2)
    engine = SecureMapReduce(platform, job)
    start = time.perf_counter()
    secure = engine.run(records)
    secure_seconds = time.perf_counter() - start

    assert secure == {repr(key): value for key, value in plain.items()}
    return {
        "records": len(records),
        "groups": len(plain),
        "plain_seconds": plain_seconds,
        "secure_seconds": secure_seconds,
        "sealed_kb": engine.sealed_bytes_moved / 1024.0,
        "enclave_transitions": sum(
            worker.ecall_count for worker in engine._mappers + engine._reducers
        ),
    }


@pytest.fixture(scope="module")
def a4_outcome():
    return run_a4()


def bench_a4_mapreduce(a4_outcome, benchmark):
    outcome = a4_outcome
    rows = [
        ("input records", outcome["records"]),
        ("output groups", outcome["groups"]),
        ("plain map/reduce (host ms)", outcome["plain_seconds"] * 1e3),
        ("secure map/reduce (host ms)", outcome["secure_seconds"] * 1e3),
        ("overhead factor",
         outcome["secure_seconds"] / max(outcome["plain_seconds"], 1e-9)),
        ("sealed shuffle+output (KB)", outcome["sealed_kb"]),
        ("enclave calls", outcome["enclave_transitions"]),
    ]
    report(
        "a4_mapreduce",
        "A4: theft-detection aggregation, plain vs. secure engine",
        ("quantity", "value"),
        rows,
        notes=(
            "identical outputs; the secure engine's tax is sealing every",
            "record that crosses an enclave boundary",
        ),
    )
    assert outcome["sealed_kb"] > 0
    assert outcome["groups"] > 0

    def kernel():
        return run_a4()["secure_seconds"]

    benchmark.pedantic(kernel, rounds=1, iterations=1)
