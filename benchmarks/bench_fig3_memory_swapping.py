"""E1 -- Figure 3: "Effect of memory swapping".

Reproduces the paper's only quantitative figure: the SCBR matching
engine runs the *same code* against a native memory and an
enclave-backed memory while the subscription database grows from well
below the EPC to 200+ MB.  The paper reports:

- negligible overhead while the working set fits the caches;
- moderate overhead (MEE decryption on LLC misses) while the database
  fits the EPC;
- performance degrading to "nearly 18x" at a 200 MB database, with the
  drop starting *before* the 128 MB EPC line because SGX metadata
  consumes protected memory.

Matching time here is *virtual* time from the cycle-accurate cost model
(see DESIGN.md section 5 for the constants' provenance); wall-clock
time of the simulator itself is meaningless and is not reported.
"""

import gc

import pytest

from repro.scbr.naive import LinearIndex
from repro.scbr.sharding import ShardedMatchingPlane
from repro.scbr.workload import ScbrWorkload
from repro.sgx.costs import DEFAULT_COSTS, MIB
from repro.sgx.memory import EpcModel, SimulatedMemory
from repro.sim.clock import CycleClock, cycles_to_seconds

from benchmarks._harness import report

DB_SIZES_MB = (8, 32, 64, 80, 96, 128, 160, 200, 224)
RECORD_BYTES = 512
POOL_SIZE = 8192
WARMUP_PUBLICATIONS = 1
MEASURED_PUBLICATIONS = 2


def _subscription_pool():
    """A pool of subscriptions reused across the sweep.

    The cost model depends on the visit pattern over records, not on
    the subscriptions' contents, so cycling a pool keeps generation
    cheap while every record still gets its own memory region.
    """
    workload = ScbrWorkload(seed=42, num_attributes=50,
                            containment_fraction=0.0)
    return workload.subscriptions(POOL_SIZE), workload.publications(
        WARMUP_PUBLICATIONS + MEASURED_PUBLICATIONS
    )


def _matching_time_ms(pool, publications, total_records, enclave):
    costs = DEFAULT_COSTS
    clock = CycleClock()
    if enclave:
        memory = SimulatedMemory(clock, costs, enclave=True,
                                 epc=EpcModel(costs), name="scbr")
    else:
        memory = SimulatedMemory(clock, costs, name="scbr")
    index = LinearIndex(memory=memory, record_bytes=RECORD_BYTES)
    for i in range(total_records):
        index.insert(pool[i % len(pool)])
    for publication in publications[:WARMUP_PUBLICATIONS]:
        index.match(publication)
    start = clock.now
    matches = []
    for publication in publications[WARMUP_PUBLICATIONS:]:
        matches.append(index.match(publication))
    cycles = (clock.now - start) / MEASURED_PUBLICATIONS
    return cycles_to_seconds(cycles, clock.frequency_hz) * 1e3, matches


def _sharded_matching_time_ms(pool, publications, total_records):
    """The same enclave matcher, partitioned by the EPC-aware plane.

    Every shard is its own machine (clock, LLC, EPC); the plane splits
    shards before their databases cross the watermark, so the working
    set of each stays cache-resident.  Virtual latency per publication
    is the slowest shard (shards match concurrently).
    """
    plane = ShardedMatchingPlane(index_factory=LinearIndex,
                                 record_bytes=RECORD_BYTES)
    for i in range(total_records):
        plane.insert(pool[i % len(pool)])
    for publication in publications[:WARMUP_PUBLICATIONS]:
        plane.match(publication)
    cycles = 0
    matches = []
    for publication in publications[WARMUP_PUBLICATIONS:]:
        matches.append(plane.match(publication))
        cycles += plane.last_match_cycles
    cycles /= MEASURED_PUBLICATIONS
    ms = cycles_to_seconds(cycles, plane.shards[0].clock.frequency_hz) * 1e3
    return ms, matches, plane.shard_count


def run_figure3_sweep(db_sizes_mb=DB_SIZES_MB, smoke=False):
    """Rows: (db_mb, native_ms, enclave_ms, slowdown, sharded_ms,
    sharded_x, shards).

    ``sharded_x`` is the sharded enclave plane's slowdown against the
    *same* monolithic native baseline; ``shards`` is how many
    partitions the watermark policy ended up with at that size.
    """
    if smoke:
        # CI smoke: exercise the full path on the two cheapest points.
        db_sizes_mb = db_sizes_mb[:2]
    gc.disable()
    try:
        pool, publications = _subscription_pool()
        rows = []
        for db_mb in db_sizes_mb:
            total_records = db_mb * MIB // RECORD_BYTES
            native_ms, _ = _matching_time_ms(
                pool, publications, total_records, enclave=False
            )
            enclave_ms, enclave_matches = _matching_time_ms(
                pool, publications, total_records, enclave=True
            )
            sharded_ms, sharded_matches, shards = _sharded_matching_time_ms(
                pool, publications, total_records
            )
            # Partitioning must not change the results: the union of
            # the shards' matches equals the monolithic match set.
            assert sharded_matches == enclave_matches, (
                "sharded plane diverged from the monolithic matcher "
                "at %d MB" % db_mb
            )
            rows.append(
                (
                    db_mb,
                    native_ms,
                    enclave_ms,
                    enclave_ms / native_ms,
                    sharded_ms,
                    sharded_ms / native_ms,
                    shards,
                )
            )
    finally:
        gc.enable()
    return rows


@pytest.fixture(scope="module")
def figure3_rows():
    return run_figure3_sweep()


def bench_fig3_memory_swapping(figure3_rows, benchmark):
    rows = figure3_rows
    usable_mb = DEFAULT_COSTS.epc_usable / MIB
    report(
        "fig3_memory_swapping",
        "Figure 3: SCBR matching time inside vs. outside the enclave",
        ("db_mb", "native_ms", "enclave_ms", "slowdown", "sharded_ms",
         "sharded_x", "shards"),
        rows,
        notes=(
            "EPC nominal 128 MB; usable for application pages: %.1f MB"
            % usable_mb,
            "paper: slowdown reaches ~18x at a 200 MB database, with the",
            "drop starting before the 128 MB line (SGX metadata overhead)",
            "sharded: EPC-aware plane splits before the watermark; each",
            "shard's working set stays cache-resident and shards match",
            "in parallel, so sharded_x stays near (or below) native",
        ),
    )
    ratio = {row[0]: row[3] for row in rows}
    sharded_x = {row[0]: row[5] for row in rows}
    shard_counts = {row[0]: row[6] for row in rows}
    # Shape assertions (paper's qualitative claims).
    assert ratio[8] < 2.0, "small databases should be near-native"
    assert 1.5 < ratio[80] < 8.0, "within-EPC overhead is limited (MEE only)"
    assert ratio[96] > 2 * ratio[80], "degradation starts before the 128 MB line"
    assert 10.0 < ratio[200] < 30.0, "roughly 18x at 200 MB"
    assert ratio[200] > 2.5 * ratio[80], "paging dominates cache misses"
    # The sharded plane restores near-native matching where the
    # monolithic enclave collapses.
    assert sharded_x[200] <= 2.0, "sharding keeps the 200 MB point near-native"
    assert shard_counts[200] >= 3, "the watermark policy actually partitioned"
    assert shard_counts[8] == 1, "small databases stay on one shard"

    # Representative kernel for pytest-benchmark: one 32 MB enclave run.
    pool, publications = _subscription_pool()

    def kernel():
        return _matching_time_ms(
            pool, publications, 32 * MIB // RECORD_BYTES, enclave=True
        )[0]

    benchmark.pedantic(kernel, rounds=1, iterations=1)
