"""A3 (ablation) -- FS shield cost vs. chunk size.

Section V-A: the FS protection file holds per-chunk MACs; chunk size
trades write amplification (small writes rewrite whole chunks) against
MAC-table size and read amplification.  Reports virtual crypto cycles
charged per logical byte for sequential and small-random access
patterns across chunk sizes, plus the protection-file footprint.
"""

import pytest

from repro.scone.fs_shield import ProtectedVolume, UntrustedStore
from repro.sgx.costs import DEFAULT_COSTS
from repro.sgx.memory import SimulatedMemory
from repro.sim.clock import CycleClock
from repro.sim.rng import RandomStream

from benchmarks._harness import report

FILE_BYTES = 256 * 1024
SMALL_WRITES = 200
SMALL_WRITE_BYTES = 64
CHUNK_SIZES = (1024, 4096, 16384)


def _volume(chunk_size):
    clock = CycleClock()
    memory = SimulatedMemory(clock, DEFAULT_COSTS, name="fs")
    volume = ProtectedVolume(UntrustedStore(), chunk_size=chunk_size,
                             memory=memory)
    return volume, clock


def run_a3():
    rng = RandomStream(7)
    payload = rng.bytes(FILE_BYTES)
    rows = []
    for chunk_size in CHUNK_SIZES:
        volume, clock = _volume(chunk_size)
        start = clock.now
        volume.write("/bulk", payload)
        sequential_write = (clock.now - start) / FILE_BYTES

        start = clock.now
        volume.read_all("/bulk")
        sequential_read = (clock.now - start) / FILE_BYTES

        start = clock.now
        for index in range(SMALL_WRITES):
            offset = (index * 977) % (FILE_BYTES - SMALL_WRITE_BYTES)
            volume.write("/bulk", b"y" * SMALL_WRITE_BYTES, offset=offset)
        small_write = (clock.now - start) / (SMALL_WRITES * SMALL_WRITE_BYTES)

        manifest_bytes = len(volume.protection.serialize())
        rows.append(
            (chunk_size, sequential_write, sequential_read, small_write,
             manifest_bytes)
        )
    return rows


@pytest.fixture(scope="module")
def a3_rows():
    return run_a3()


def bench_a3_fs_shield(a3_rows, benchmark):
    rows = a3_rows
    report(
        "a3_fs_shield",
        "A3: FS shield crypto cycles per logical byte (256 KB file)",
        ("chunk_bytes", "seq_write_cyc/B", "seq_read_cyc/B",
         "small_write_cyc/B", "fspf_bytes"),
        rows,
        notes=(
            "small random writes amplify with chunk size (read-modify-",
            "write of whole chunks); the protection file shrinks with it",
        ),
    )
    by_chunk = {row[0]: row for row in rows}
    # Sequential cost is chunk-size independent (same bytes enciphered).
    assert by_chunk[1024][1] == pytest.approx(by_chunk[16384][1], rel=0.1)
    # Small writes amplify with chunk size.
    assert by_chunk[16384][3] > 4 * by_chunk[1024][3]
    # Protection file shrinks as chunks grow (fewer MACs).
    assert by_chunk[16384][4] < by_chunk[1024][4]

    benchmark.pedantic(run_a3, rounds=1, iterations=1)
