"""A10 (ablation) -- the sharded matching plane's publish fan-out.

Three routers receive the same 3000-subscription database and the same
publication stream, end to end through the attested client protocol:

- **seed per-match**: the original fan-out -- the publication is
  re-serialized and a full envelope sealed for every matched
  *subscription* (a subscriber with several matching subscriptions
  receives duplicates);
- **batched router**: the reworked hot path -- serialize once, dedupe
  by subscriber, one sealed-batch envelope per subscriber through
  cached sealing contexts;
- **sharded plane**: the coordinator + N shard enclaves -- the
  publication is sealed once under the plane key, all shards match
  concurrently (virtual latency is the slowest shard), and the
  coordinator seals the deduplicated per-subscriber fan-out.

Reported times are virtual (cycle model); wall-clock of the simulator
is meaningless.  Delivery equivalence is asserted: every matched
subscription id surfaces exactly once in every mode.
"""

import pytest

from repro.scbr.messages import EncryptedEnvelope, serialize_publication
from repro.scbr.router import ScbrClient, ScbrRouter
from repro.scbr.sharding import ShardedScbrRouter
from repro.scbr.workload import ScbrWorkload
from repro.sgx.attestation import AttestationService
from repro.sgx.platform import SgxPlatform
from repro.sim.clock import cycles_to_seconds

from benchmarks._harness import report

SUBSCRIPTIONS = 3000
WARMUP_PUBLICATIONS = 6
MEASURED_PUBLICATIONS = 8
SHARDS = 4
SUBSCRIBERS = 30

A10_HEADER = ("mode", "virtual_ms/pub", "envelopes/pub", "matched/pub",
              "speedup_vs_seed")


def _workload(total_subscriptions, total_publications):
    # Few attributes and broad (1-2 constraint) filters give a
    # high-match, subscriber-concentrated stream: the regime where the
    # fan-out, not the matching walk, dominates the publish path.
    workload = ScbrWorkload(
        seed=77, num_attributes=8, constraints_per_sub=(1, 2),
        containment_fraction=0.75, num_subscribers=SUBSCRIBERS,
    )
    subscriptions = workload.subscriptions(total_subscriptions)
    publications = workload.publications(total_publications)
    return subscriptions, publications


def _attested(platform):
    service = AttestationService()
    service.register_platform(
        platform.platform_id, platform.quoting_enclave.public_key
    )
    return service


def _connect_clients(router, service, subscriptions):
    clients = {}
    for name in sorted({s.subscriber for s in subscriptions}):
        clients[name] = ScbrClient(name, router, service)
    for subscription in subscriptions:
        clients[subscription.subscriber].subscribe(subscription)
    publisher = ScbrClient("publisher", router, service)
    return clients, publisher


def _publication_envelope(publisher, publication):
    return EncryptedEnvelope.seal(
        publisher.key, publisher.client_id, "publish",
        serialize_publication(publication),
    )


def _matched_ids(envelopes, clients):
    """Every matched subscription id delivered by a batch of envelopes."""
    ids = []
    for envelope in envelopes:
        if envelope.recipient is None:
            # Seed format: one envelope per matched subscription, no
            # ids inside -- each envelope stands for exactly one match.
            ids.append(None)
            continue
        _pub, matched = clients[envelope.recipient].open_notification_detail(
            envelope
        )
        ids.extend(matched)
    return ids


def _measure_single(publish, platform, publisher, publications, warmup):
    for publication in publications[:warmup]:
        publish(_publication_envelope(publisher, publication))
    start = platform.clock.now
    per_publication = []
    for publication in publications[warmup:]:
        per_publication.append(
            publish(_publication_envelope(publisher, publication))
        )
    cycles = platform.clock.now - start
    return cycles / len(per_publication), per_publication


def run_a10(smoke=False):
    """Rows: (mode, virtual_ms/pub, envelopes/pub, matched/pub, speedup)."""
    total_subscriptions = 300 if smoke else SUBSCRIPTIONS
    measured = 3 if smoke else MEASURED_PUBLICATIONS
    shards = 2 if smoke else SHARDS
    subscriptions, publications = _workload(
        total_subscriptions, WARMUP_PUBLICATIONS + measured
    )

    results = {}

    # Seed per-match fan-out and batched fan-out: one monolithic router
    # enclave each, on identical fresh platforms.
    for mode, seed, entry in (
        ("seed per-match", 301, "publish_unbatched"),
        ("batched router", 302, "publish"),
    ):
        platform = SgxPlatform(seed=seed, quoting_key_bits=512)
        service = _attested(platform)
        router = ScbrRouter(platform)
        service.trust_measurement(router.measurement)
        clients, publisher = _connect_clients(router, service, subscriptions)
        publish = getattr(router, entry)
        cycles, batches = _measure_single(
            publish, platform, publisher, publications, WARMUP_PUBLICATIONS
        )
        results[mode] = (cycles, batches, clients)

    # The sharded plane: coordinator + shard enclaves on separate
    # platforms; virtual latency is tracked by the plane itself
    # (coordinator cycles + slowest shard).
    coordinator_platform = SgxPlatform(seed=303, quoting_key_bits=512)
    service = _attested(coordinator_platform)
    plane = ShardedScbrRouter(
        coordinator_platform,
        lambda i: SgxPlatform(seed=310 + i, quoting_key_bits=512),
        attestation_service=service,
        shards=shards,
    )
    service.trust_measurement(plane.measurement)
    clients, publisher = _connect_clients(plane, service, subscriptions)
    for publication in publications[:WARMUP_PUBLICATIONS]:
        plane.publish(_publication_envelope(publisher, publication))
    cycles = 0
    batches = []
    for publication in publications[WARMUP_PUBLICATIONS:]:
        batches.append(
            plane.publish(_publication_envelope(publisher, publication))
        )
        cycles += plane.last_publish_cycles
    results["sharded plane (%d)" % shards] = (
        cycles / measured, batches, clients,
    )

    # Delivery equivalence: per publication, the seed mode's envelope
    # count equals the number of matched ids either batched mode
    # carries -- dedup and sharding change the framing, never the set.
    seed_counts = [
        len(envelopes) for envelopes in results["seed per-match"][1]
    ]
    for mode, (_cycles, mode_batches, mode_clients) in results.items():
        counts = [
            len(_matched_ids(envelopes, mode_clients))
            for envelopes in mode_batches
        ]
        assert counts == seed_counts, (
            "mode %r delivered %r matches, seed delivered %r"
            % (mode, counts, seed_counts)
        )

    frequency = coordinator_platform.clock.frequency_hz
    seed_cycles = results["seed per-match"][0]
    rows = []
    for mode, (mode_cycles, mode_batches, _clients) in results.items():
        envelopes = sum(len(b) for b in mode_batches) / measured
        matched = sum(seed_counts) / measured
        rows.append(
            (
                mode,
                cycles_to_seconds(mode_cycles, frequency) * 1e3,
                envelopes,
                matched,
                seed_cycles / mode_cycles,
            )
        )
    return rows


@pytest.fixture(scope="module")
def a10_rows():
    return run_a10()


def bench_a10_sharded_matching(a10_rows, benchmark):
    rows = a10_rows
    report(
        "a10_sharded_matching",
        "A10: publish fan-out, %d subscriptions, %d subscribers"
        % (SUBSCRIPTIONS, SUBSCRIBERS),
        A10_HEADER,
        rows,
        notes=(
            "identical delivered match sets in all modes; the sharded",
            "plane seals the publication once, matches on %d shard"
            % SHARDS,
            "enclaves concurrently, and seals one deduplicated batch",
            "envelope per subscriber through cached sealing contexts",
        ),
    )
    by_mode = {row[0]: row for row in rows}
    seed = by_mode["seed per-match"]
    batched = by_mode["batched router"]
    sharded = by_mode["sharded plane (%d)" % SHARDS]
    assert batched[1] < seed[1], "batched fan-out beats per-match sealing"
    assert batched[2] <= seed[2], "dedup cannot increase envelope count"
    assert sharded[4] >= 3.0, (
        "acceptance: >=3x virtual-time speedup on publish fan-out, got %.2fx"
        % sharded[4]
    )

    benchmark.pedantic(lambda: run_a10(smoke=True), rounds=1, iterations=1)
