"""E5 -- chaos recovery: fault injection against the self-healing stack.

Every scenario runs a workload with the chaos layer injecting faults at
a fixed seed and reports (a) how many faults were injected, (b) how
many the stack recovered from, (c) the detection-to-recovery latency in
virtual time, and (d) the goodput the workload still achieved -- plus a
correctness verdict against the fault-free reference:

- **map/reduce**: mapper/reducer crashes at >= 10%; crashed tasks are
  re-executed on respawned workers with exponential backoff, and the
  output must equal :func:`plain_mapreduce`.
- **SCBR broker**: the active router enclave is destroyed mid-stream
  (plus live notification drops); the standby restores the sealed
  checkpoint, clients re-attest, and after ``sync()`` every subscriber
  must hold each publication exactly once.
- **event bus**: sealed events are dropped/duplicated/delayed; the
  reliable subscriber NACKs gaps against the retained window and must
  deliver everything exactly once, in order.
- **bulk transfer**: frames are corrupted in flight; selective
  retransmission must reassemble the exact payload.

All randomness is hash-derived from one seed, so the table (and the
injection log) is bit-identical across runs -- the determinism the
tier-1 chaos tests assert.
"""

import statistics

import pytest

from repro.chaos import ChaosBus, ChaosInjector, ChaosNetwork, FaultSchedule
from repro.crypto.aead import AeadKey
from repro.crypto.primitives import DeterministicRandomSource
from repro.bigdata.mapreduce import (
    MapReduceCheckpoint,
    MapReduceJob,
    SecureMapReduce,
    plain_mapreduce,
)
from repro.bigdata.transfer import (
    BulkTransfer,
    ReliableBulkTransfer,
    SimulatedNetwork,
)
from repro.microservices.eventbus import (
    ReliableEventBus,
    ReliableSubscriber,
    SealedEvent,
)
from repro.microservices.orchestrator import Orchestrator
from repro.microservices.qos import QosMonitor
from repro.microservices.registry import ServiceRegistry
from repro.retry import RetryPolicy
from repro.scbr import (
    Constraint,
    FailoverClient,
    Operator,
    Publication,
    ReplicatedBroker,
    Subscription,
)
from repro.sgx.attestation import AttestationService
from repro.sgx.platform import SgxPlatform
from repro.sim.events import Environment

from benchmarks._harness import report

SEED = 421


def _tokenize(record):
    return [(word, 1) for word in record.split()]


def _count(_key, values):
    return sum(values)


_WORDS = ("attest", "seal", "shield", "enclave", "broker", "quote")


def _corpus(records):
    return [
        "%s %s" % (_WORDS[i % len(_WORDS)], _WORDS[(i * 5 + 2) % len(_WORDS)])
        for i in range(records)
    ]


def _median_ms(samples):
    if not samples:
        return 0.0
    return statistics.median(samples) * 1e3


def _mapreduce_trial(crash_rate, records=120):
    platform = SgxPlatform(seed=SEED, quoting_key_bits=512)
    chaos = ChaosInjector(
        seed=SEED,
        mapper_crash_rate=crash_rate,
        reducer_crash_rate=crash_rate / 2.0,
    )
    job = MapReduceJob(
        map_fn=_tokenize, reduce_fn=_count, mappers=6, reducers=3
    )
    # Seed the job key too: the partition salt derives from it, so a
    # random key would shuffle partition contents (and sealed blob
    # sizes) between same-seed runs -- the telemetry determinism gate
    # compares byte-level metric snapshots across passes.
    engine = SecureMapReduce(
        platform, job, chaos=chaos,
        retry_policy=RetryPolicy(max_attempts=8, base_delay=0.005),
        job_key=AeadKey.generate(DeterministicRandomSource(SEED)),
    )
    corpus = _corpus(records)
    result = engine.run(corpus, checkpoint=MapReduceCheckpoint())
    expected = {
        repr(key): value
        for key, value in plain_mapreduce(_tokenize, _count, corpus).items()
    }
    elapsed = platform.clock.now_seconds + engine.backoff.seconds
    return {
        "scenario": "mapreduce crash=%d%%" % round(crash_rate * 100),
        "faults": engine.crashes_detected,
        "recoveries": len(engine.recoveries),
        "recovery_ms": _median_ms(
            [episode["backoff_seconds"] for episode in engine.recoveries]
        ),
        "goodput": "%.3g rec/s" % (records / elapsed if elapsed else 0.0),
        "correct": result == expected,
    }


def _broker_trial(drop_rate, publications=30, fail_at=0.0105):
    env = Environment()
    platform = SgxPlatform(seed=SEED, quoting_key_bits=512)
    attestation = AttestationService()
    attestation.register_platform(
        platform.platform_id, platform.quoting_enclave.public_key
    )
    chaos = ChaosInjector(seed=SEED, notification_drop_rate=drop_rate)
    orchestrator = Orchestrator(
        env, QosMonitor(env), ServiceRegistry()
    )
    broker = ReplicatedBroker(
        platform, env=env, chaos=chaos, orchestrator=orchestrator
    )
    publisher = FailoverClient("alice", broker, attestation)
    subscriber = FailoverClient("bob", broker, attestation)
    subscriber.subscribe(
        Subscription("s-all", [Constraint("t", Operator.GE, 0)], "bob")
    )
    FaultSchedule(env, injector=chaos).fail_broker_at(fail_at, broker)

    for index in range(publications):
        def publish(index=index):
            publisher.publish(
                Publication(attributes={"t": index}, payload=b"p%d" % index)
            )
        env.call_at(0.002 * (index + 1), publish)
    env.run()
    subscriber.sync()
    received = sorted(
        publication.attributes["_pub_seq"] for publication in subscriber.inbox
    )
    span = 0.002 * publications
    return {
        "scenario": "scbr failover drop=%d%%" % round(drop_rate * 100),
        "faults": broker.failovers + broker.notifications_dropped,
        "recoveries": broker.failovers + broker.notifications_replayed,
        "recovery_ms": _median_ms(orchestrator.detection_latencies()),
        "goodput": "%.3g pub/s" % (publications / span),
        "correct": received == list(range(publications))
        and subscriber.reattachments == broker.failovers,
    }


def _bus_trial(drop_rate, events=60):
    env = Environment()
    bus = ReliableEventBus(env, latency=0.0001, retention=256)
    chaos = ChaosInjector(
        seed=SEED,
        message_drop_rate=drop_rate,
        message_duplicate_rate=0.05,
        message_delay_rate=0.05,
    )
    chaotic = ChaosBus(bus, chaos)
    key = AeadKey(b"\x05" * 32)
    opened = []

    def handle(event):
        plaintext = event.open(key)
        if not plaintext.startswith(b"flush"):
            opened.append(plaintext)

    subscriber = ReliableSubscriber(chaotic, "telemetry", handle)
    # A drop at the stream tail is invisible to gap detection (nothing
    # later reveals it), so the stream ends with flush sentinels --
    # the epilogue any gap-detection protocol needs.
    flushes = 3
    for index in range(events + flushes):
        def publish(index=index):
            sequence = bus.next_sequence("telemetry")
            payload = (
                b"m%d" % index if index < events else b"flush%d" % index
            )
            chaotic.publish(
                SealedEvent.seal(key, "telemetry", "gen", sequence, payload)
            )
        env.call_at(0.0005 * (index + 1), publish)
    env.run()
    span = 0.0005 * events
    lost_real = [seq for seq in subscriber.lost if seq < events]
    in_order = opened == [
        b"m%d" % index for index in range(events)
        if index not in subscriber._lost_set
    ]
    return {
        "scenario": "bus drop=%d%%" % round(drop_rate * 100),
        "faults": chaotic.dropped + chaotic.duplicated + chaotic.delayed,
        "recoveries": len(subscriber.recovery_latencies),
        "recovery_ms": _median_ms(subscriber.recovery_latencies),
        "goodput": "%.3g ev/s" % (len(opened) / span),
        "correct": in_order and len(opened) + len(lost_real) == events,
    }


def _transfer_trial(corruption_rate, payload_kb=192):
    key = AeadKey(b"\x07" * 32)
    transfer = BulkTransfer(key, chunk_size=4096, batch_size=2)
    network = SimulatedNetwork(bandwidth_mbps=1000.0)
    chaos = ChaosInjector(seed=SEED, frame_corruption_rate=corruption_rate)
    chaotic = ChaosNetwork(network, chaos, transfer_id=b"e5")
    reliable = ReliableBulkTransfer(
        transfer, policy=RetryPolicy(max_attempts=10, base_delay=0.0005)
    )
    payload = bytes(range(256)) * (payload_kb * 4)
    received, stats = reliable.transmit(payload, chaotic, transfer_id=b"e5")
    return {
        "scenario": "transfer corrupt=%d%%" % round(corruption_rate * 100),
        "faults": stats.corrupted,
        "recoveries": stats.retransmissions,
        "recovery_ms": stats.backoff_seconds * 1e3,
        "goodput": "%.3g MB/s" % stats.goodput_mbps,
        "correct": received == payload,
    }


def run_e5(smoke=False):
    """All scenarios; returns table rows.  ``smoke`` shrinks workloads."""
    scale = 3 if smoke else 1
    trials = [
        _mapreduce_trial(0.10, records=120 // scale),
        _mapreduce_trial(0.25, records=120 // scale),
        _broker_trial(0.20, publications=30 // scale),
        _bus_trial(0.10, events=60 // scale),
        _bus_trial(0.20, events=60 // scale),
        _transfer_trial(0.15, payload_kb=192 // scale),
    ]
    return [
        (
            trial["scenario"],
            trial["faults"],
            trial["recoveries"],
            trial["recovery_ms"],
            trial["goodput"],
            "yes" if trial["correct"] else "NO",
        )
        for trial in trials
    ]


@pytest.fixture(scope="module")
def e5_rows():
    return run_e5()


def bench_e5_chaos_recovery(e5_rows, benchmark):
    rows = e5_rows
    report(
        "e5_chaos_recovery",
        "E5: detection-to-recovery under injected faults (virtual time)",
        ("scenario", "faults", "recoveries", "recovery_ms_med", "goodput",
         "correct"),
        rows,
        notes=(
            "seeded chaos: identical faults and identical table on every run",
            "recovery_ms: median detection-to-recovery (backoff / NACK / "
            "failover) in virtual ms",
        ),
    )
    for scenario, faults, recoveries, _ms, _goodput, correct in rows:
        assert correct == "yes", "%s diverged from reference" % scenario
    by_name = {row[0]: row for row in rows}
    # >=10% mapper crash rate must actually exercise recovery.
    assert by_name["mapreduce crash=10%"][1] > 0
    assert by_name["mapreduce crash=25%"][2] > 0
    assert by_name["scbr failover drop=20%"][2] > 0
    benchmark.pedantic(lambda: _transfer_trial(0.15, payload_kb=32),
                       rounds=1, iterations=1)
