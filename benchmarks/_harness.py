"""Shared reporting for the benchmark suite.

Every benchmark regenerates one table or figure of the paper's
evaluation (see DESIGN.md section 4).  :func:`report` renders the
series the paper reports both to stdout (visible with ``pytest -s`` and
in the captured output) and to ``benchmarks/out/<experiment>.txt`` so a
full run always leaves artifacts behind.  A machine-readable twin,
``benchmarks/out/<experiment>.json``, is written next to every table so
tooling can track the performance trajectory across PRs without parsing
aligned text.
"""

import json
import os

_OUT_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)), "out")


def format_table(title, header, rows, notes=()):
    """Render an aligned text table."""
    columns = len(header)
    widths = [len(str(h)) for h in header]
    rendered_rows = []
    for row in rows:
        rendered = [
            "%.4g" % cell if isinstance(cell, float) else str(cell)
            for cell in row
        ]
        rendered += [""] * (columns - len(rendered))
        widths = [max(w, len(cell)) for w, cell in zip(widths, rendered)]
        rendered_rows.append(rendered)
    lines = [title, "=" * len(title)]
    lines.append("  ".join(str(h).ljust(w) for h, w in zip(header, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for rendered in rendered_rows:
        lines.append("  ".join(cell.ljust(w) for cell, w in zip(rendered, widths)))
    for note in notes:
        lines.append("# " + note)
    return "\n".join(lines)


def _json_payload(experiment_id, title, header, rows, notes):
    return {
        "experiment": experiment_id,
        "title": title,
        "header": list(header),
        "rows": [list(row) for row in rows],
        "notes": list(notes),
    }


def report(experiment_id, title, header, rows, notes=()):
    """Print the experiment table and persist it under benchmarks/out/.

    Writes both the human-readable ``<experiment_id>.txt`` and a
    machine-readable ``<experiment_id>.json`` with the same rows.
    """
    table = format_table(title, header, rows, notes)
    print("\n" + table + "\n")
    os.makedirs(_OUT_DIR, exist_ok=True)
    path = os.path.join(_OUT_DIR, "%s.txt" % experiment_id)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(table + "\n")
    json_path = os.path.join(_OUT_DIR, "%s.json" % experiment_id)
    with open(json_path, "w", encoding="utf-8") as handle:
        json.dump(
            _json_payload(experiment_id, title, header, rows, notes),
            handle,
            indent=2,
            default=str,
        )
        handle.write("\n")
    return table
