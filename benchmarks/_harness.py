"""Shared reporting for the benchmark suite.

Every benchmark regenerates one table or figure of the paper's
evaluation (see DESIGN.md section 4).  :func:`report` renders the
series the paper reports both to stdout (visible with ``pytest -s`` and
in the captured output) and to ``benchmarks/out/<experiment>.txt`` so a
full run always leaves artifacts behind.  A machine-readable twin,
``benchmarks/out/<experiment>.json``, is written next to every table so
tooling can track the performance trajectory across PRs without parsing
aligned text.
"""

import json
import os

from repro.telemetry import default_registry

_OUT_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)), "out")


def format_table(title, header, rows, notes=()):
    """Render an aligned text table."""
    columns = len(header)
    widths = [len(str(h)) for h in header]
    rendered_rows = []
    for row in rows:
        rendered = [
            "%.4g" % cell if isinstance(cell, float) else str(cell)
            for cell in row
        ]
        rendered += [""] * (columns - len(rendered))
        widths = [max(w, len(cell)) for w, cell in zip(widths, rendered)]
        rendered_rows.append(rendered)
    lines = [title, "=" * len(title)]
    lines.append("  ".join(str(h).ljust(w) for h, w in zip(header, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for rendered in rendered_rows:
        lines.append("  ".join(cell.ljust(w) for cell, w in zip(rendered, widths)))
    for note in notes:
        lines.append("# " + note)
    return "\n".join(lines)


def _json_payload(experiment_id, title, header, rows, notes):
    return {
        "experiment": experiment_id,
        "title": title,
        "header": list(header),
        "rows": [list(row) for row in rows],
        "notes": list(notes),
    }


def _write_atomic(path, text):
    """Write ``text`` to ``path`` all-or-nothing.

    The bytes land in a temporary sibling first and move into place
    with :func:`os.replace`, so an interrupted run never leaves a
    truncated artifact shadowing a previous complete one.
    """
    tmp_path = path + ".tmp"
    try:
        with open(tmp_path, "w", encoding="utf-8") as handle:
            handle.write(text)
        os.replace(tmp_path, path)
    finally:
        if os.path.exists(tmp_path):
            os.unlink(tmp_path)


def report(experiment_id, title, header, rows, notes=()):
    """Print the experiment table and persist it under benchmarks/out/.

    Writes both the human-readable ``<experiment_id>.txt`` and a
    machine-readable ``<experiment_id>.json`` with the same rows.  Both
    payloads are fully serialised before the first byte is written, and
    each file is replaced atomically -- a benchmark that raises mid-run
    (or a crash mid-dump) cannot leave a partial ``.txt`` next to a
    stale ``.json``.
    """
    table = format_table(title, header, rows, notes)
    payload = json.dumps(
        _json_payload(experiment_id, title, header, rows, notes),
        indent=2,
        default=str,
    )
    print("\n" + table + "\n")
    os.makedirs(_OUT_DIR, exist_ok=True)
    _write_atomic(os.path.join(_OUT_DIR, "%s.txt" % experiment_id), table + "\n")
    _write_atomic(
        os.path.join(_OUT_DIR, "%s.json" % experiment_id), payload + "\n"
    )
    write_telemetry_sidecar(experiment_id)
    return table


def write_json_sidecar(experiment_id, kind, payload):
    """Write ``benchmarks/out/<id>.<kind>.json`` atomically.

    The generic sibling of :func:`write_telemetry_sidecar` for
    benchmarks that leave extra machine-readable artifacts next to
    their table (e.g. E10's ``e10.audit.json`` chain-verification
    summary).  The payload is fully serialised before the first byte
    is written and the file is replaced atomically, same as every
    other artifact.  Returns the path.
    """
    text = json.dumps(
        {"experiment": experiment_id, kind: payload},
        indent=2,
        sort_keys=True,
        default=str,
    )
    os.makedirs(_OUT_DIR, exist_ok=True)
    path = os.path.join(_OUT_DIR, "%s.%s.json" % (experiment_id, kind))
    _write_atomic(path, text + "\n")
    return path


def write_telemetry_sidecar(experiment_id, registry=None):
    """Write ``benchmarks/out/<id>.telemetry.json`` if telemetry is on.

    When the run collected metrics (the registry is live), the snapshot
    lands next to the table so the performance trajectory and the
    metric trajectory travel together.  :func:`report` calls this
    automatically; ``repro.cli metrics`` calls it directly for
    benchmarks whose ``report`` happens in their pytest wrapper.  With
    telemetry off (the default) nothing is written and ``None`` is
    returned instead of the path.
    """
    registry = registry if registry is not None else default_registry()
    if not registry.active:
        return None
    sidecar = json.dumps(
        {"experiment": experiment_id, "metrics": registry.snapshot()},
        indent=2,
        sort_keys=True,
        default=str,
    )
    os.makedirs(_OUT_DIR, exist_ok=True)
    path = os.path.join(_OUT_DIR, "%s.telemetry.json" % experiment_id)
    _write_atomic(path, sidecar + "\n")
    return path
