"""E10 -- the multi-tenant secure front door under load and faults.

Five scenarios drive four tenants through the front door's full
request pipeline (admission -> quota -> sealed-plane work -> sealed
audit append -> billing) and measure what the service layer promises:

- **steady state**: the clean baseline; per-tenant p99 request latency
  in virtual ms, every chain verified, books balanced;
- **3x admission overload**: arrivals outrun the token buckets 3:1 --
  shedding is visible (counted + audited), completed-request p99 stays
  flat, and not one request goes unaccounted;
- **quota exhaustion**: a tight sealed-bytes quota turns the tail of
  the upload stream into counted, audited ``quota`` outcomes;
- **tenant chaos isolation**: the noisy tenant's jobs crash mappers at
  15% under seeded chaos while the victim tenant runs the exact
  steady-state workload -- the victim's p99 must not move (the gated
  ``victim_ratio``), and the noisy tenant's books still balance;
- **audit tamper**: the host mutates, truncates, and cross-splices
  stored chains; every tamper must be caught by in-enclave
  verification against the attested head.

Every latency is virtual (derived from the platform cycle clock), all
faults are seeded, and each scenario row carries a digest of the
sealed audit bytes -- so the chaos determinism gate pins the entire
trail byte-for-byte across same-seed runs.

``silent_loss = offered - completed - shed - quota - failed`` must be
zero on every row: the front door may refuse work, it may fail work,
but it may never lose work.
"""

import hashlib

import pytest

from repro.chaos.injector import ChaosConfig, ChaosInjector
from repro.errors import IntegrityError
from repro.service import FrontDoorConfig, SecureFrontDoor, TenantQuota
from repro.service.audit import verify_chain
from repro.sim.events import Environment

from benchmarks._harness import report, write_json_sidecar

import sys as _sys
import os as _os

_sys.path.insert(0, _os.path.join(
    _os.path.dirname(_os.path.dirname(_os.path.abspath(__file__)))
))
from tests.service.oracle import FrontDoorOracle  # noqa: E402

SEED = 110
TENANTS = ("victim", "bravo", "carol", "noisy")

E10_HEADER = ("scenario", "tenants", "offered", "completed", "shed",
              "quota", "failed", "recoveries", "p99_ms", "victim_p99_ms",
              "victim_ratio", "verified", "tampers_caught",
              "audit_digest", "silent_loss")


def _map(record):
    return [(record.split("-")[0], 1)]


def _reduce(key, values):
    return sum(values)


def _p99(values):
    if not values:
        return 0.0
    ordered = sorted(values)
    return ordered[min(len(ordered) - 1, int(0.99 * len(ordered)))]


def _session(smoke, rate=200.0, burst=40.0, inter_arrival=0.02,
             quota=None, chaos=None, noisy_jobs=False):
    """One seeded four-tenant session; returns (door, receipts)."""
    env = Environment()
    door = SecureFrontDoor(
        env, seed=SEED, chaos=chaos,
        config=FrontDoorConfig(default_quota=quota or TenantQuota()),
    )
    for tenant in TENANTS:
        door.register_tenant(tenant, rate=rate, burst=burst)
    requests = 8 if smoke else 24
    if noisy_jobs:
        door.upload_dataset(
            "noisy", "grist", [b"job-%d" % i for i in range(12)]
        )
        env.run(until=env.now + inter_arrival)
    receipts = {tenant: [] for tenant in TENANTS}
    for index in range(requests):
        for tenant in TENANTS:
            if tenant == "victim":
                receipt = door.upload_dataset(
                    tenant, "d-%d" % index, [b"v" * 64]
                )
            elif tenant == "noisy" and noisy_jobs and index % 3 == 0:
                receipt = door.submit_job(
                    "noisy", "job-%d" % index, "grist", _map, _reduce,
                    mappers=2, reducers=1,
                )
            elif index % 3 == 0:
                receipt = door.subscribe(
                    tenant, "%s-s-%d" % (tenant, index),
                    [("load", ">", index % 5)],
                )
            elif index % 3 == 1:
                receipt = door.publish(tenant, {"load": index % 7})
            else:
                receipt = door.upload_dataset(
                    tenant, "d-%d" % index, [b"b" * 48]
                )
            receipts[tenant].append(receipt)
            env.run(until=env.now + inter_arrival)
    return door, receipts


def _tamper_drills(door, oracle):
    """Host-side tamper attempts; returns how many were caught.

    Each drill attacks a *copy* of the host store and re-verifies
    against the live attested head: one byte flipped mid-chain, one
    suffix truncation, one cross-tenant splice.
    """
    caught = 0
    victim_blobs = list(door.audit_blobs["victim"])
    count, head_hex = door.audit_head("victim")
    head = bytes.fromhex(head_hex)
    key = oracle.audit_key("victim")
    mutated = list(victim_blobs)
    mutated[1] = mutated[1][:5] + bytes([mutated[1][5] ^ 0x80]) \
        + mutated[1][6:]
    spliced = list(victim_blobs)
    spliced[2] = door.audit_blobs["bravo"][2]
    drills = (
        ("mutation", mutated, count),
        ("truncation", victim_blobs[:-2], count - 2),
        ("splice", spliced, count),
    )
    for _name, blobs, claimed in drills:
        try:
            verify_chain(key, "victim", blobs, claimed, head)
        except IntegrityError:
            caught += 1
    return caught, len(drills)


def _row(scenario, door, receipts, steady_victim_p99=None,
         tampers_caught=0):
    """Fold one session into a table row (plus its verified digest)."""
    oracle = FrontDoorOracle(door._root_key.key_bytes)
    totals = oracle.assert_books_balance(door)
    oracle.assert_billing_consistent(door)
    verified = sum(door.verify_audit(t) for t in TENANTS)
    latencies = [
        r.virtual_ms
        for tenant in TENANTS
        for r in receipts[tenant] if r.ok
    ]
    victim_latencies = [r.virtual_ms for r in receipts["victim"] if r.ok]
    victim_p99 = _p99(victim_latencies)
    ratio = (
        victim_p99 / steady_victim_p99
        if steady_victim_p99 else 1.0
    )
    digest = hashlib.sha256(
        b"|".join(
            oracle.audit_digest(door, t).encode() for t in TENANTS
        )
    ).hexdigest()[:12]
    silent_loss = totals["offered"] - (
        totals["completed"] + totals["shed"]
        + totals["quota_rejected"] + totals["failed"]
    )
    return (
        scenario, len(TENANTS), totals["offered"], totals["completed"],
        totals["shed"], totals["quota_rejected"], totals["failed"],
        door.gateway_recoveries, _p99(latencies), victim_p99, ratio,
        verified, tampers_caught, digest, silent_loss,
    )


def run_e10(smoke=False):
    """All scenarios; returns table rows.  ``smoke`` shrinks workloads."""
    steady_door, steady_receipts = _session(smoke)
    steady = _row("steady state", steady_door, steady_receipts)
    steady_victim_p99 = steady[9]

    # Each tenant sees one arrival per 4 * inter_arrival = 0.08 virtual
    # seconds (12.5/s); a 4/s bucket makes the offered load ~3x the
    # admitted rate.
    over_door, over_receipts = _session(smoke, rate=4.0, burst=2.0)
    overload = _row(
        "3x admission overload", over_door, over_receipts,
        steady_victim_p99,
    )

    quota_door, quota_receipts = _session(
        smoke, quota=TenantQuota(sealed_bytes=64 * (4 if smoke else 12)),
    )
    quota = _row(
        "quota exhaustion", quota_door, quota_receipts,
        steady_victim_p99,
    )

    chaos_door, chaos_receipts = _session(
        smoke, noisy_jobs=True,
        chaos=ChaosInjector(
            ChaosConfig(seed=SEED, mapper_crash_rate=0.15)
        ),
    )
    noisy_crashes = sum(
        job["crashes"] for job in chaos_door.jobs["noisy"].values()
    )
    assert noisy_crashes > 0, (
        "the chaos scenario crashed no mappers; isolation is untested"
    )
    isolation = _row(
        "tenant chaos isolation", chaos_door, chaos_receipts,
        steady_victim_p99,
    )

    tamper_door, tamper_receipts = _session(smoke)
    caught, attempted = _tamper_drills(
        tamper_door, FrontDoorOracle(tamper_door._root_key.key_bytes)
    )
    assert caught == attempted, (
        "only %d/%d audit tampers detected" % (caught, attempted)
    )
    tamper = _row(
        "audit tamper", tamper_door, tamper_receipts,
        steady_victim_p99, tampers_caught=caught,
    )
    return [steady, overload, quota, isolation, tamper]


def audit_summary(rows):
    """The machine-readable chain summary for the e10.audit sidecar."""
    return [
        {
            "scenario": row[0],
            "verified_entries": row[11],
            "audit_digest": row[13],
            "tampers_caught": row[12],
            "silent_loss": row[14],
        }
        for row in rows
    ]


@pytest.fixture(scope="module")
def e10_rows():
    return run_e10()


def bench_e10_front_door(e10_rows, benchmark):
    rows = e10_rows
    report(
        "e10_front_door",
        "E10: multi-tenant secure front door -- admission, quotas, "
        "sealed audit, tenant isolation (virtual time)",
        E10_HEADER,
        rows,
        notes=(
            "p99_ms is per-request virtual latency over completed",
            "requests; victim_ratio is the victim tenant's p99 vs the",
            "steady-state baseline; silent_loss = offered - completed",
            "- shed - quota - failed and must be zero on every row",
        ),
    )
    write_json_sidecar("e10_front_door", "audit", audit_summary(rows))
    by_name = {row[0]: row for row in rows}
    for row in rows:
        assert row[14] == 0, "%s lost requests silently" % row[0]
    steady = by_name["steady state"]
    overload = by_name["3x admission overload"]
    quota = by_name["quota exhaustion"]
    isolation = by_name["tenant chaos isolation"]
    tamper = by_name["audit tamper"]
    assert steady[4] == 0 and steady[5] == 0 and steady[6] == 0, (
        "the clean baseline must not shed, quota-reject, or fail"
    )
    assert overload[4] > 0, "the 3x overload must shed visibly"
    assert overload[3] > 0, "overload must still complete work"
    assert quota[5] > 0, "quota exhaustion must reject visibly"
    assert isolation[10] <= 1.10, (
        "the noisy tenant's chaos moved the victim's p99 by >10%%: %r"
        % (isolation[10],)
    )
    assert tamper[12] == 3, "all three tamper drills must be caught"
    # Every scenario's chains verified: registration + one entry per
    # offered request, across all four tenants.
    for row in rows:
        assert row[11] == row[2] + len(TENANTS), (
            "%s: %d verified entries for %d offered" % (
                row[0], row[11], row[2])
        )

    benchmark.pedantic(
        lambda: run_e10(smoke=True), rounds=1, iterations=1,
    )
