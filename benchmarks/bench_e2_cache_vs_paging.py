"""E2 -- Section V-B (in-text): cache misses vs. EPC paging.

"While cache misses imposes some limited overhead, they are less
critical than memory swapping.  Memory swapping is serviced by the
operating system, which causes higher overheads when compared to cache
misses."

Three working-set regimes over the same cyclic-scan workload:

- fits the LLC: enclave execution is essentially free;
- fits the EPC but not the LLC: every miss pays the MEE
  (decrypt + integrity + freshness) -- *limited* overhead;
- exceeds the EPC: the OS swaps encrypted pages -- much larger.
"""

import pytest

from repro.sgx.costs import DEFAULT_COSTS, MIB
from repro.sgx.memory import EpcModel, SimulatedMemory
from repro.sim.clock import CycleClock

from benchmarks._harness import report

# One 64 B read per 256 B of working set: the touched-line footprint is
# ws/4, so the three regimes below fall either side of the 8 MB LLC and
# the ~93 MB usable EPC respectively.
STRIDE = 256
PASSES = 2

REGIMES = (
    ("fits LLC", 16 * MIB),            # hot lines: 4 MB < LLC
    ("fits EPC, misses LLC", 48 * MIB),  # hot lines: 12 MB > LLC; < EPC
    ("exceeds EPC (paging)", 120 * MIB),
)


def _per_access_cycles(working_set_bytes, enclave):
    costs = DEFAULT_COSTS
    clock = CycleClock()
    if enclave:
        memory = SimulatedMemory(clock, costs, enclave=True,
                                 epc=EpcModel(costs), name="ws")
    else:
        memory = SimulatedMemory(clock, costs, name="ws")
    region = memory.allocate(working_set_bytes)
    accesses = working_set_bytes // STRIDE

    def sweep():
        for index in range(accesses):
            memory.access(region, offset=index * STRIDE, size=64)

    sweep()  # warm-up pass (cold faults excluded from the measurement)
    start = clock.now
    faults_before = memory.stats.page_faults
    for _ in range(PASSES):
        sweep()
    faults = memory.stats.page_faults - faults_before
    return (clock.now - start) / (PASSES * accesses), faults


def run_e2(smoke=False):
    # CI smoke: the LLC regime alone covers the measurement path.
    regimes = REGIMES[:1] if smoke else REGIMES
    rows = []
    for label, working_set in regimes:
        native, _ = _per_access_cycles(working_set, enclave=False)
        enclave, faults = _per_access_cycles(working_set, enclave=True)
        rows.append(
            (label, working_set // MIB, native, enclave, enclave / native,
             faults)
        )
    return rows


@pytest.fixture(scope="module")
def e2_rows():
    return run_e2()


def bench_e2_cache_vs_paging(e2_rows, benchmark):
    rows = e2_rows
    report(
        "e2_cache_vs_paging",
        "E2: per-access cost by working-set regime (cycles)",
        ("regime", "ws_mb", "native_cyc", "enclave_cyc", "overhead",
         "page_faults"),
        rows,
        notes=(
            "paper: cache misses impose limited overhead; OS-serviced EPC",
            "paging is far more expensive",
        ),
    )
    by_label = {row[0]: row for row in rows}
    llc_overhead = by_label["fits LLC"][4]
    mee_overhead = by_label["fits EPC, misses LLC"][4]
    paging_overhead = by_label["exceeds EPC (paging)"][4]
    assert llc_overhead == pytest.approx(1.0, abs=0.05)
    assert 2.0 < mee_overhead < 10.0, "MEE overhead is limited"
    assert paging_overhead > 3 * mee_overhead, "paging >> cache misses"
    assert by_label["fits EPC, misses LLC"][5] == 0, "no paging inside EPC"

    benchmark.pedantic(
        lambda: _per_access_cycles(16 * MIB, enclave=True),
        rounds=1, iterations=1,
    )
