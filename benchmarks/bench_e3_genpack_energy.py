"""E3 -- Section VI (in-text): GenPack energy savings.

"Our experiments with GenPack [11] show that up to 23% energy savings
are possible for typical data-center workloads."

A 24-hour container trace (batch/service/system mix with request
inflation, as in cluster traces) is replayed under GenPack and three
baselines on identical clusters.  The headline number is GenPack's
saving against the *spread* strategy (the common scheduler default);
the first-fit bin-packing baseline isolates how much of the saving
comes from power management alone vs. GenPack's usage-based
generational packing.
"""

import pytest

from repro.genpack.baselines import (
    FirstFitScheduler,
    RandomScheduler,
    SpreadScheduler,
)
from repro.genpack.cluster import Cluster
from repro.genpack.scheduler import GenPackScheduler
from repro.genpack.simulation import compare_schedulers
from repro.genpack.workload import ContainerWorkload

from benchmarks._harness import report

HOUR = 3600.0
SERVERS = 40
TRACE_HOURS = 24
ARRIVALS_PER_HOUR = 60.0


def run_e3(seed=1):
    workload = ContainerWorkload(
        seed=seed,
        duration=TRACE_HOURS * HOUR,
        arrival_rate_per_hour=ARRIVALS_PER_HOUR,
    )
    results = compare_schedulers(
        make_cluster=lambda: Cluster.homogeneous(SERVERS),
        make_schedulers=[
            lambda cluster, monitor: SpreadScheduler(cluster),
            lambda cluster, monitor: RandomScheduler(cluster, seed=seed),
            lambda cluster, monitor: FirstFitScheduler(cluster),
            lambda cluster, monitor: GenPackScheduler(cluster, monitor),
        ],
        workload=workload,
    )
    return results


@pytest.fixture(scope="module")
def e3_results():
    return run_e3()


def bench_e3_genpack_energy(e3_results, benchmark):
    results = e3_results
    genpack = results["genpack"]
    rows = []
    for name in ("spread", "random", "first-fit", "genpack"):
        outcome = results[name]
        rows.append(
            (
                name,
                outcome.energy_kwh,
                outcome.average_servers_on,
                outcome.migrations,
                outcome.completed,
                genpack.energy_savings_vs(outcome) * 100.0,
            )
        )
    report(
        "e3_genpack_energy",
        "E3: 24h trace, %d servers -- energy by scheduler" % SERVERS,
        ("scheduler", "energy_kwh", "avg_on", "migrations", "completed",
         "genpack_saving_%"),
        rows,
        notes=(
            "paper: 'up to 23% energy savings ... for typical data-center",
            "workloads'; headline = saving vs. the spread default",
        ),
    )
    saving_vs_spread = genpack.energy_savings_vs(results["spread"])
    assert 0.15 <= saving_vs_spread <= 0.45, "roughly the 23% band"
    assert genpack.energy_kwh < results["first-fit"].energy_kwh
    assert genpack.energy_kwh < results["random"].energy_kwh
    # GenPack serves at least as much of the trace as every baseline
    # (request-based schedulers reject under pressure), so its energy
    # saving is not bought with dropped work.
    assert genpack.completed >= max(
        outcome.completed for outcome in results.values()
    )

    benchmark.pedantic(
        lambda: run_e3(seed=2)["genpack"].energy_kwh, rounds=1, iterations=1
    )
