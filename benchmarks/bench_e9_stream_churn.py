"""E9 -- the self-stabilising secure streaming plane under churn.

Six scenarios drive the sealed streaming plane (``repro.streams``) over
the same simulated meter fleet and measure throughput, tail latency,
and -- above all -- *accounting*: every released reading must end in a
committed window, a visibly shed pane, or a visible late count.

- **steady state**: the clean baseline; its firing frames are the
  oracle every churn scenario must reproduce exactly;
- **3x overload burst**: production outruns service 3:1 with the pane
  budget armed -- credits throttle the source (queue depth never
  exceeds the bound) and the shed policy degrades *visibly*: the gate
  pins shed tombstones == the sealed shed counters, and silent loss to
  zero;
- **4% / 10% shard churn**: seeded chaos kills shard enclaves at the
  configured per-operation rate; every crash recovers by sealed
  checkpoint restore + replay and the final frames must be
  byte-identical to steady state (exactly-once survives churn);
- **node crash mass recovery**: a FaultSchedule machine death takes
  every hosted shard down in one instant mid-stream;
- **autoscale split+merge**: a low split watermark forces hot ranges
  onto fresh attested shards mid-burst and merges them back when load
  drains, with zero duplicate firings across the cutovers.

Everything runs on the virtual clock with seeded platforms and seeded
chaos, so rows and telemetry snapshots are bit-identical across runs
(the chaos determinism check diffs both).
"""

import statistics

import pytest

from repro.chaos.injector import ChaosConfig, ChaosInjector, FaultSchedule
from repro.cluster.nodes import NodeTopology
from repro.sim.events import Environment
from repro.smartgrid.meters import SmartMeterFleet
from repro.smartgrid.topology import GridTopology
from repro.streams import MeterStreamSource, SecureStreamPlane, StreamConfig

from benchmarks._harness import report

SEED = 99
WINDOW = {"kind": "tumbling", "size": 60.0, "lateness": 30.0}

E9_HEADER = ("scenario", "shards", "records", "windows", "shed", "late",
             "recoveries", "splits", "merges", "dup_firings",
             "queue_peak", "rec_per_vsec", "p99_lag_vsec",
             "recover_ms_med", "silent_loss")


def _config(**overrides):
    base = dict(
        window=dict(WINDOW), queue_bound=6, service_rate=2,
        checkpoint_interval=3, round_interval=30.0,
    )
    base.update(overrides)
    return StreamConfig(**base)


def _fixtures(smoke):
    grid = GridTopology.build(2, 2, 3 if smoke else 4)
    fleet = SmartMeterFleet(grid, seed=SEED)
    return grid, fleet


def _p99(values):
    if not values:
        return 0.0
    ordered = sorted(values)
    return ordered[min(len(ordered) - 1, int(0.99 * len(ordered)))]


def _run_scenario(scenario, smoke, config=None, chaos=None,
                  burst_factor=1, node_crash_at=None, shard_crash_at=None,
                  idle_rounds=0):
    """Stream one workload through a fresh plane; returns (row, frames).

    ``burst_factor`` multiplies the produced horizon (overload);
    ``node_crash_at`` / ``shard_crash_at`` schedule scripted faults on
    the virtual clock; ``idle_rounds`` pumps extra empty rounds after
    the drain so merge triggers can fire.
    """
    grid, fleet = _fixtures(smoke)
    horizon = (300.0 if smoke else 600.0) * burst_factor
    env = Environment()
    topology = NodeTopology.build(4, seed=SEED + 1)
    plane = SecureStreamPlane(
        topology, config or _config(), shards=2, seed=SEED + 2,
        env=env, chaos=chaos, name="e9",
    )
    if node_crash_at is not None or shard_crash_at is not None:
        schedule = FaultSchedule(env, chaos)
        if shard_crash_at is not None:
            schedule.crash_shard_at(shard_crash_at, plane, 0)
        if node_crash_at is not None:
            schedule.crash_node_at(
                node_crash_at, plane, plane.shards[1].node.name
            )
    source = MeterStreamSource(
        "head-0", fleet, grid.meters, plane.ingest_key_bytes,
        batch_records=12,
    )
    source.produce(0.0, horizon)
    queue_peak = 0
    rounds = 0
    while source.backlog or any(
        plane.shards[sid].queue for sid in plane.table.shard_ids()
    ):
        rounds += 1
        env.run(until=env.now + plane.config.round_interval)
        plane.pump([source])
        queue_peak = max(queue_peak, *plane.queue_depths().values())
        assert queue_peak <= plane.config.queue_bound, (
            "queue bound violated in %s" % scenario
        )
    for shard_id in plane.table.shard_ids():
        plane.shards[shard_id].queue.append(("flush", None))
        plane._service_shard(shard_id)
    for _ in range(idle_rounds):
        env.run(until=env.now + plane.config.round_interval)
        plane.pump([source])

    audit = plane.audit([source])
    frames = plane.open_firings()
    window_frames = [f for f in frames if f["kind"] == "window"]
    tombstoned = sum(
        f["result"]["dropped"] for f in frames if f["kind"] == "shed"
    )
    assert tombstoned == audit["shed"], (
        "shed accounting diverged: tombstones %d vs counters %d"
        % (tombstoned, audit["shed"])
    )
    virtual_seconds = rounds * plane.config.round_interval
    latencies = [
        max(0.0, frame["commit_time"]
            - (frame["window_end"] + WINDOW["lateness"]))
        for frame in window_frames
    ]
    row = (
        scenario,
        len(plane.shards),
        audit["released"],
        len(window_frames),
        audit["shed"],
        audit["late"],
        plane.recoveries,
        plane.splits,
        plane.merges,
        plane.duplicates_suppressed,
        queue_peak,
        audit["released"] / virtual_seconds,
        _p99(latencies),
        (statistics.median(plane.recovery_episodes)
         if plane.recovery_episodes else 0.0),
        audit["silent_loss"],
    )
    key_rows = [
        (f["window_start"], f["key"], f["kind"],
         f["result"].get("n"), f["result"].get("w_sum"))
        for f in frames
    ]
    return row, key_rows


def run_e9(smoke=False):
    """All scenarios; returns table rows.  ``smoke`` shrinks workloads."""
    steady, oracle = _run_scenario("steady state", smoke)
    burst, _ = _run_scenario(
        "3x overload burst", smoke,
        config=_config(queue_bound=4, service_rate=1, pane_budget=4),
        burst_factor=3,
    )
    churn4, frames4 = _run_scenario(
        "4% shard churn", smoke,
        chaos=ChaosInjector(ChaosConfig(seed=SEED, shard_crash_rate=0.04)),
    )
    churn10, frames10 = _run_scenario(
        "10% shard churn", smoke,
        chaos=ChaosInjector(ChaosConfig(seed=SEED, shard_crash_rate=0.10)),
    )
    node, node_frames = _run_scenario(
        "node crash mass recovery", smoke,
        chaos=ChaosInjector(ChaosConfig(seed=SEED)),
        shard_crash_at=60.0, node_crash_at=150.0,
    )
    scale, scale_frames = _run_scenario(
        "autoscale split+merge", smoke,
        config=_config(split_queue_watermark=3, merge_idle_rounds=2,
                       max_shards=6),
        idle_rounds=12,
    )
    for name, frames in (("4% churn", frames4), ("10% churn", frames10),
                         ("node crash", node_frames),
                         ("autoscale", scale_frames)):
        assert frames == oracle, (
            "%s diverged from the steady-state oracle" % name
        )
    return [steady, burst, churn4, churn10, node, scale]


@pytest.fixture(scope="module")
def e9_rows():
    return run_e9()


def bench_e9_stream_churn(e9_rows, benchmark):
    rows = e9_rows
    report(
        "e9_stream_churn",
        "E9: self-stabilising secure streaming -- backpressure, "
        "load-shedding, exactly-once windows under churn (virtual time)",
        E9_HEADER,
        rows,
        notes=(
            "rec_per_vsec is released records per virtual second;",
            "p99_lag_vsec is commit lag behind window close + lateness;",
            "dup_firings counts replay re-emissions the committer",
            "suppressed; silent_loss = released - windowed - shed - late",
        ),
    )
    by_name = {row[0]: row for row in rows}
    for row in rows:
        assert row[14] == 0, "%s lost records silently" % row[0]
        assert row[10] <= 6, "%s overran a bounded queue" % row[0]
    steady = by_name["steady state"]
    burst = by_name["3x overload burst"]
    churn4 = by_name["4% shard churn"]
    churn10 = by_name["10% shard churn"]
    node = by_name["node crash mass recovery"]
    scale = by_name["autoscale split+merge"]
    assert steady[4] == 0 and steady[5] == 0 and steady[6] == 0, (
        "the clean baseline must not shed, drop late, or recover"
    )
    assert burst[4] > 0, "the 3x burst must shed visibly"
    assert churn4[6] > 0 and churn10[6] > 0, (
        "churn scenarios must actually crash and recover shards"
    )
    assert churn10[6] >= churn4[6], (
        "10% churn must induce at least as many recoveries as 4%"
    )
    assert node[6] >= 2, (
        "the node crash plus scripted shard crash both recover"
    )
    assert node[13] > 0.0, "mass recovery latency must be measured"
    assert scale[7] > 0 and scale[8] > 0, (
        "the autoscale scenario must split under load and merge back"
    )
    assert scale[9] == 0, (
        "split+merge cutovers must produce zero duplicate firings"
    )
    assert scale[1] == 2, "the plane must scale back to its base shards"
    for churned in (churn4, churn10, node):
        assert churned[3] == steady[3], (
            "churn must not change the number of emitted windows"
        )

    benchmark.pedantic(
        lambda: run_e9(smoke=True), rounds=1, iterations=1,
    )
