"""E4 -- Section VI use case 2: millisecond anomaly detection.

"Orchestration services detect anomalies within milliseconds, which
requires adaptations to the virtual infrastructure that hosts the
application."

A running service is starved (latency anomaly) or crashed (liveness
anomaly) at a known virtual time; the orchestrator samples QoS state on
its 0.5 ms period and reacts.  Reported latencies are virtual-time
deltas from anomaly onset to detection.
"""

import pytest

from repro.crypto.aead import AeadKey
from repro.microservices.eventbus import EventBus, SealedEvent
from repro.microservices.orchestrator import Orchestrator, OrchestratorPolicy
from repro.microservices.qos import QosMonitor
from repro.microservices.registry import ServiceRegistry
from repro.microservices.service import MicroService
from repro.sgx.platform import SgxPlatform
from repro.sim.events import Environment

from benchmarks._harness import report

TRIALS = 10


def _sink(ctx, topic, plaintext):
    return []


def _run_trial(seed, kind):
    env = Environment()
    bus = EventBus(env, latency=0.0001)
    platform = SgxPlatform(seed=seed, quoting_key_bits=512)
    keys = {"in": AeadKey(bytes([seed % 256]) * 32)}
    monitor = QosMonitor(env)
    registry = ServiceRegistry()
    service = MicroService("svc", platform, bus, {"in": _sink}, keys,
                           processing_time=0.001)
    monitor.attach(service)
    registry.register(service)
    policy = OrchestratorPolicy(heartbeat_timeout=0.008)
    orchestrator = Orchestrator(env, monitor, registry, policy)
    orchestrator.start(duration=0.4)

    def heartbeats():
        while env.now < 0.4:
            yield env.timeout(0.003)
            if service.healthy:
                monitor.heartbeat(service.name)

    env.process(heartbeats())

    for index in range(60):
        def publish(_fired, i=index):
            sequence = bus.next_sequence("in")
            bus.publish(SealedEvent.seal(keys["in"], "in", "gen",
                                         sequence, b"%d" % i))
        env.timeout(index * 0.002).callbacks.append(publish)

    onset = 0.020 + (seed % 7) * 0.0003  # desynchronise from sampling

    def inject(_fired):
        if kind == "latency":
            service.slowdown = 25.0
        else:
            service.crash()
        orchestrator.record_onset("svc")

    env.timeout(onset).callbacks.append(inject)
    env.run()
    latencies = orchestrator.detection_latencies()
    assert latencies, "anomaly was never detected"
    return latencies[0]


def run_e4():
    rows = []
    for kind in ("latency", "liveness"):
        samples = [_run_trial(100 + trial, kind) for trial in range(TRIALS)]
        samples.sort()
        rows.append(
            (
                kind,
                TRIALS,
                min(samples) * 1e3,
                samples[len(samples) // 2] * 1e3,
                max(samples) * 1e3,
            )
        )
    return rows


@pytest.fixture(scope="module")
def e4_rows():
    return run_e4()


def bench_e4_orchestration_latency(e4_rows, benchmark):
    rows = e4_rows
    report(
        "e4_orchestration_latency",
        "E4: anomaly detection latency (virtual ms)",
        ("anomaly", "trials", "min_ms", "median_ms", "max_ms"),
        rows,
        notes=(
            "paper: 'orchestration services detect anomalies within",
            "milliseconds'",
        ),
    )
    for _kind, _trials, min_ms, median_ms, max_ms in rows:
        assert min_ms > 0
        assert median_ms < 50.0, "within tens of milliseconds"
        assert max_ms < 100.0

    benchmark.pedantic(lambda: _run_trial(999, "latency"),
                       rounds=1, iterations=1)
