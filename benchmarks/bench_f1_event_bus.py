"""F1 -- Figure 1: the micro-service architecture, executable.

Deploys a three-stage smart-grid pipeline on the full platform (secure
image build, untrusted registry, attestation, SCF delivery, event bus)
and reports per-stage throughput plus the security properties Figure 1
promises.  The reported latency is virtual end-to-end time from
ingestion to alert.
"""

import json

import pytest

from repro.core.application import ApplicationSpec, ServiceSpec
from repro.core.deployment import SecureCloudPlatform

from benchmarks._harness import report

EVENTS = 200


def _validate(ctx, topic, plaintext):
    reading = json.loads(plaintext.decode())
    if reading["w"] < 0:
        return []
    return [("validated", plaintext)]


def _score(ctx, topic, plaintext):
    reading = json.loads(plaintext.decode())
    if reading["w"] > 900.0:
        return [("anomalies", plaintext)]
    return []


def _alert(ctx, topic, plaintext):
    return [("alerts", b"ALERT:" + plaintext)]


def build_application():
    return ApplicationSpec(
        "f1-pipeline",
        [
            ServiceSpec("validator", {"readings": _validate},
                        output_topics=("validated",)),
            ServiceSpec("scorer", {"validated": _score},
                        output_topics=("anomalies",)),
            ServiceSpec("alerter", {"anomalies": _alert},
                        output_topics=("alerts",)),
        ],
    )


def run_f1():
    platform = SecureCloudPlatform(hosts=3, seed=201)
    deployment = platform.deploy(build_application())
    alerts = deployment.collect("alerts")
    snooped = []
    for topic in ("readings", "validated", "anomalies", "alerts"):
        platform.bus.subscribe(topic, lambda event: snooped.append(event.blob))

    start = platform.env.now
    for index in range(EVENTS):
        watts = 1000.0 if index % 10 == 0 else 400.0
        deployment.ingest(
            "readings",
            json.dumps({"meter": "m%03d" % index, "w": watts}).encode(),
        )
    deployment.run()
    elapsed = platform.env.now - start

    stats = deployment.stats()
    leaked = sum(1 for blob in snooped if b"ALERT" in blob or b"meter" in blob)
    return {
        "stats": stats,
        "alerts": len(alerts),
        "elapsed": elapsed,
        "events": EVENTS,
        "snooped": len(snooped),
        "leaked": leaked,
        "attested": platform.cas.delivered,
    }


@pytest.fixture(scope="module")
def f1_outcome():
    return run_f1()


def bench_f1_event_bus(f1_outcome, benchmark):
    outcome = f1_outcome
    rows = [
        ("events ingested", outcome["events"]),
        ("validator handled", outcome["stats"]["validator"]),
        ("scorer handled", outcome["stats"]["scorer"]),
        ("alerter handled", outcome["stats"]["alerter"]),
        ("alerts delivered", outcome["alerts"]),
        ("enclaves attested (CAS)", outcome["attested"]),
        ("bus messages observed by snoop", outcome["snooped"]),
        ("plaintext leaks on the bus", outcome["leaked"]),
        ("virtual end-to-end seconds", round(outcome["elapsed"], 4)),
    ]
    report(
        "f1_event_bus",
        "F1 (Figure 1): three-service pipeline on the full platform",
        ("quantity", "value"),
        rows,
        notes=("logic in enclaves, runtime outside; bus sees ciphertext only",),
    )
    assert outcome["stats"]["validator"] == EVENTS
    assert outcome["alerts"] == EVENTS // 10
    assert outcome["leaked"] == 0
    assert outcome["attested"] >= 3

    benchmark.pedantic(run_f1, rounds=1, iterations=1)
