"""F2 -- Figure 2: the secure-container workflow, executable.

Measures the secure pipeline stage by stage (build, publish, verify,
boot-with-attestation, run) against the equivalent plain container, and
verifies the attack matrix: every tampering point in the untrusted
chain is detected.  Stage costs are wall-clock here (the build pipeline
is real computation -- encryption, MACs, signatures), which is the one
benchmark where host time is the meaningful metric.
"""

import time

import pytest

from repro.crypto.keys import KeyHierarchy
from repro.crypto.primitives import DeterministicRandomSource
from repro.containers.client import SconeClient
from repro.containers.engine import ContainerEngine, ContainerState, Host
from repro.containers.image import FSPF_PATH, Image, ImageConfig, Layer
from repro.containers.registry import Registry
from repro.scone.cas import ConfigurationService
from repro.sgx.attestation import AttestationService

from benchmarks._harness import report

PAYLOAD = bytes(range(256)) * 256  # 64 KB of protected data


def _app_main(ctx, env):
    return len(env.fs.read_all("/opt/data.bin"))


def build_world(seed=301):
    registry = Registry()
    attestation = AttestationService()
    cas = ConfigurationService(attestation, key_bits=512)
    client = SconeClient(
        registry, cas,
        key_hierarchy=KeyHierarchy.generate(DeterministicRandomSource(seed)),
    )
    host = Host("bench-node", seed=seed)
    attestation.register_platform(
        host.platform.platform_id, host.platform.quoting_enclave.public_key
    )
    return registry, cas, client, host, ContainerEngine(cas=cas)


def run_f2():
    registry, _cas, client, host, engine = build_world()

    timings = {}
    clock = time.perf_counter
    start = clock()
    client.build_and_publish(
        "bench-app", {"main": _app_main},
        protected_files={"/opt/data.bin": PAYLOAD},
    )
    timings["build+publish (secure)"] = clock() - start

    start = clock()
    image = client.pull_verified("bench-app:latest")
    timings["pull+verify signature"] = clock() - start

    start = clock()
    container = engine.create(image, host)
    timings["boot: attest + SCF + FS shield"] = clock() - start

    start = clock()
    result = container.run()
    timings["run (reads 64KB protected)"] = clock() - start
    assert result == len(PAYLOAD)

    # Plain container for comparison.
    plain = Image(
        "plain-app",
        layers=[Layer({"/opt/data.bin": PAYLOAD})],
        config=ImageConfig(labels={"plain-entrypoint": lambda: len(PAYLOAD)}),
    )
    start = clock()
    plain_container = engine.create(plain, host)
    plain_container.run()
    timings["plain create+run (baseline)"] = clock() - start

    # Attack matrix.
    attacks = {}
    registry.tamper_layer("bench-app:latest", 0, FSPF_PATH, b"forged")
    try:
        client.pull_verified("bench-app:latest")
        attacks["tampered image detected"] = False
    except Exception:
        attacks["tampered image detected"] = True
    rogue = Host("rogue", seed=999)
    try:
        engine.create(image, rogue)
        attacks["rogue host denied"] = False
    except Exception:
        attacks["rogue host denied"] = True

    container.stop()
    assert container.state is ContainerState.EXITED
    return timings, attacks


@pytest.fixture(scope="module")
def f2_outcome():
    return run_f2()


def bench_f2_secure_containers(f2_outcome, benchmark):
    timings, attacks = f2_outcome
    rows = [(stage, seconds * 1e3) for stage, seconds in timings.items()]
    rows += [(attack, str(detected)) for attack, detected in attacks.items()]
    report(
        "f2_secure_containers",
        "F2 (Figure 2): secure-container workflow stages (host ms)",
        ("stage / attack", "ms / detected"),
        rows,
        notes=(
            "secure containers are indistinguishable from regular ones to",
            "the engine; every untrusted-chain tampering point is caught",
        ),
    )
    assert all(attacks.values())

    def kernel():
        _registry, _cas, client, host, engine = build_world(seed=303)
        client.build_and_publish(
            "bench-app", {"main": _app_main},
            protected_files={"/opt/data.bin": PAYLOAD},
        )
        image = client.pull_verified("bench-app:latest")
        return engine.create(image, host).run()

    benchmark.pedantic(kernel, rounds=3, iterations=1)
