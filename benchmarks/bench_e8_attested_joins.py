"""E8 -- fleet-scale attestation: cached, batched, and ticket joins.

The provisioning plane (``repro.scbr.provisioning``) amortises the
dominant costs of attested shard enrollment -- quote signing, quote
verification, and DH key generation -- across a fleet.  Five join
scenarios measure the same 8-platform fleet joining a coordinator
under progressively more of the plane's machinery:

- **cold per-shard joins**: the baseline CAS handshake.  Every join
  mints a fresh DH key, signs a fresh quote, and pays full FDH quote
  verification on both sides (~19.8M cycles/join);
- **batched cold joins**: one coordinator quote commits to a hash over
  every offered DH value, so N shards verify one coordinator quote
  (the verification cache collapses N-1 of them to cache hits);
- **cached re-joins**: platform-sealed DH keys are reused, so the
  re-offered quotes are byte-identical and the verification cache
  memoises both directions of the handshake;
- **batched+cached re-joins**: both together -- the headline >=5x
  over cold that the gate pins;
- **ticket re-joins**: plane-key-sealed resumption tickets skip quote
  verification *and* the DH exchange entirely (~tens of thousands of
  joins per virtual second).

Two mass-recovery scenarios replay E7's machine-death drill on a
node-bound plane -- ``fail_node`` then ``recover_node`` -- once with
the provisioning plane disabled (cold re-attestation per displaced
shard) and once with it on (ticket re-joins), and route a publication
stream through the healed plane against the single-index oracle.
``silent_loss`` is pinned to zero in both.

Cycle costs are fixed constants and every platform is seeded, so the
table is bit-identical across runs (the chaos determinism check runs
this twice and diffs rows and telemetry).
"""

import statistics

import pytest

from repro.cluster import NodeBoundScbrRouter, NodeTopology
from repro.scbr.filters import Publication, Subscription
from repro.scbr.messages import EncryptedEnvelope, serialize_publication
from repro.scbr.provisioning import (
    CachedAttestationVerifier,
    PlaneProvisioner,
)
from repro.scbr.router import ScbrClient
from repro.scbr.sharding import COORD_CODE, SHARD_CODE, DEFAULT_RECORD_BYTES
from repro.scbr.workload import ScbrWorkload
from repro.sgx.attestation import AttestationService
from repro.sgx.platform import SgxPlatform
from repro.sim.clock import cycles_to_seconds
from repro.sim.events import Environment

from benchmarks._harness import report
from tests.scbr.oracle import oracle_match_sets

SEED = 88
FLEET = 8

E8_HEADER = ("scenario", "shards", "joins", "verify_full", "verify_cached",
             "ms_per_join", "joins_per_vsec", "recover_ms_med",
             "silent_loss")


class _JoinFleet:
    """A coordinator plus a rack of shard platforms joining by hand.

    The fleet owns the raw platforms so join cost can be measured as
    the sum of every participant's cycle-clock delta -- exactly the
    work the provisioning plane claims to amortise, with no routing or
    matching cycles mixed in.
    """

    def __init__(self, seed, size, cache=True, reuse=True, batch=True,
                 tickets=True):
        self.size = size
        self.coordinator_platform = SgxPlatform(
            seed=seed, quoting_key_bits=512
        )
        self.service = AttestationService()
        self.service.register_platform(
            self.coordinator_platform.platform_id,
            self.coordinator_platform.quoting_enclave.public_key,
        )
        self.verifier = CachedAttestationVerifier(
            self.service, enabled=cache
        )
        self.coordinator = self.coordinator_platform.load_enclave(COORD_CODE)
        self.coordinator.ecall(
            "setup", self.verifier, SHARD_CODE.measurement, None
        )
        self.provisioner = PlaneProvisioner(
            attestation=self.verifier, reuse_join_keys=reuse, batch=batch,
            tickets=tickets,
        )
        self.platforms = []
        for index in range(size):
            platform = SgxPlatform(
                seed=seed + 100 + index, quoting_key_bits=512
            )
            self.service.register_platform(
                platform.platform_id, platform.quoting_enclave.public_key
            )
            self.platforms.append(platform)
        self._live = []

    def join_round(self):
        """Join one fresh shard enclave per platform; returns cycles.

        Earlier rounds' enclaves are destroyed first (their EPC pages
        are reclaimed), modelling shards respawning on machines the
        plane has already met -- the re-join path tickets and caches
        are built for.
        """
        for enclave in self._live:
            enclave.destroy()
        self._live = []
        before = self.coordinator_platform.clock.now + sum(
            platform.clock.now for platform in self.platforms
        )
        entries = []
        for shard_id, platform in enumerate(self.platforms):
            enclave = platform.load_enclave(
                SHARD_CODE, name="e8-shard-%d" % shard_id
            )
            enclave.ecall(
                "setup", shard_id, DEFAULT_RECORD_BYTES, self.verifier,
                COORD_CODE.measurement, None,
            )
            entries.append((shard_id, platform, enclave))
        self.provisioner.join(
            self.coordinator, self.coordinator_platform, entries
        )
        self._live = [enclave for _sid, _platform, enclave in entries]
        after = self.coordinator_platform.clock.now + sum(
            platform.clock.now for platform in self.platforms
        )
        return after - before


def _join_trial(scenario, size, cache, reuse, batch, tickets,
                measured_round):
    """Run ``measured_round`` join rounds, report the last one."""
    fleet = _JoinFleet(SEED, size, cache=cache, reuse=reuse, batch=batch,
                       tickets=tickets)
    cycles = 0
    for _round in range(measured_round):
        hits_before = fleet.verifier.hits
        misses_before = fleet.verifier.misses
        cycles = fleet.join_round()
    seconds = cycles_to_seconds(cycles)
    return {
        "scenario": scenario,
        "shards": size,
        "joins": size,
        "verify_full": fleet.verifier.misses - misses_before,
        "verify_cached": fleet.verifier.hits - hits_before,
        "ms_per_join": seconds * 1e3 / size,
        "joins_per_vsec": size / seconds,
        "recover_ms": 0.0,
        "silent_loss": 0,
    }


def _envelope(publisher, publication):
    return EncryptedEnvelope.seal(
        publisher.key, publisher.client_id, "publish",
        serialize_publication(Publication(publication.attributes)),
    )


def _matched(alice, routed):
    matched = []
    for _subscriber, envelope in routed:
        _pub, ids = alice.open_notification_detail(envelope)
        matched.extend(ids)
    return sorted(matched)


def _median_ms(samples):
    if not samples:
        return 0.0
    return statistics.median(samples) * 1e3


def _recovery_trial(scenario, subscriptions, publications,
                    provisioned=True):
    """Machine death and mass recovery, cold vs. provisioned re-joins.

    ``provisioned=False`` disables the verification cache, key reuse,
    batching, and tickets: every displaced shard pays the full CAS
    handshake again, as the plane did before E8.
    """
    topology = NodeTopology.build(4, seed=SEED + 4)
    platform = SgxPlatform(seed=SEED + 4, quoting_key_bits=512)
    attestation = AttestationService()
    attestation.register_platform(
        platform.platform_id, platform.quoting_enclave.public_key
    )
    verifier = CachedAttestationVerifier(attestation, enabled=provisioned)
    provisioner = PlaneProvisioner(
        attestation=verifier, reuse_join_keys=provisioned,
        batch=provisioned, tickets=provisioned,
    )
    router = NodeBoundScbrRouter(
        platform, topology, attestation_service=verifier, shards=8,
        provisioner=provisioner, env=Environment(),
    )
    attestation.trust_measurement(router.measurement)

    alice = ScbrClient("alice", router, attestation)
    workload = ScbrWorkload(seed=SEED, num_attributes=6,
                            containment_fraction=0.5, num_subscribers=1)
    live = []
    for subscription in workload.subscriptions(subscriptions):
        subscription = Subscription(
            subscription.subscription_id,
            list(subscription.constraints.values()),
            "alice",
        )
        alice.subscribe(subscription)
        live.append(subscription)
    publisher = ScbrClient("publisher", router, attestation)
    stream = workload.publications(publications)

    hits_before = verifier.hits
    misses_before = verifier.misses
    dark = router.fail_node("node-1")
    recovered = router.recover_node("node-1")
    assert sorted(recovered) == sorted(dark), "every dark shard respawned"
    assert len(router.node_recovery_episodes) == 1, "one mass recovery"

    deliveries = []
    for publication in stream:
        routed = router.publish_routed(_envelope(publisher, publication))
        deliveries.append(_matched(alice, routed))
    oracle = oracle_match_sets(live, stream)
    assert deliveries == oracle, "recovered plane diverged from oracle"
    router.check_invariants()
    if provisioned:
        assert router.provisioner.resumed_joins >= len(dark), (
            "the displaced shards must re-join on resumption tickets"
        )
    return {
        "scenario": scenario,
        "shards": router.shard_count,
        "joins": len(recovered),
        "verify_full": verifier.misses - misses_before,
        "verify_cached": verifier.hits - hits_before,
        "ms_per_join": 0.0,
        "joins_per_vsec": 0.0,
        "recover_ms": _median_ms(router.node_recovery_latencies()),
        "silent_loss": sum(
            1 for got, want in zip(deliveries, oracle) if got != want
        ),
    }


def run_e8(smoke=False):
    """All scenarios; returns table rows.  ``smoke`` shrinks workloads."""
    scale = 2 if smoke else 1
    size = FLEET // scale
    trials = [
        _join_trial("cold per-shard joins", size, cache=False, reuse=False,
                    batch=False, tickets=False, measured_round=1),
        _join_trial("batched cold joins", size, cache=True, reuse=True,
                    batch=True, tickets=False, measured_round=1),
        _join_trial("cached re-joins", size, cache=True, reuse=True,
                    batch=False, tickets=False, measured_round=2),
        _join_trial("batched+cached re-joins", size, cache=True, reuse=True,
                    batch=True, tickets=False, measured_round=2),
        _join_trial("ticket re-joins", size, cache=True, reuse=True,
                    batch=True, tickets=True, measured_round=2),
        _recovery_trial("mass recovery cold", 40 // scale, 8 // scale,
                        provisioned=False),
        _recovery_trial("mass recovery provisioned", 40 // scale,
                        8 // scale, provisioned=True),
    ]
    return [
        (
            trial["scenario"],
            trial["shards"],
            trial["joins"],
            trial["verify_full"],
            trial["verify_cached"],
            trial["ms_per_join"],
            trial["joins_per_vsec"],
            trial["recover_ms"],
            trial["silent_loss"],
        )
        for trial in trials
    ]


@pytest.fixture(scope="module")
def e8_rows():
    return run_e8()


def bench_e8_attested_joins(e8_rows, benchmark):
    rows = e8_rows
    report(
        "e8_attested_joins",
        "E8: fleet-scale attestation -- cached verification, batched "
        "enrollment, resumption tickets (virtual time)",
        E8_HEADER,
        rows,
        notes=(
            "ms_per_join sums every participant's cycle delta for one",
            "join round; verify_full/verify_cached are verifier deltas in",
            "the measured round; recover_ms is the E7-style node",
            "mass-recovery median, cold CAS handshakes vs. ticket re-joins",
        ),
    )
    by_name = {row[0]: row for row in rows}
    for row in rows:
        assert row[8] == 0, "%s lost matches silently" % row[0]
    cold = by_name["cold per-shard joins"]
    batched = by_name["batched cold joins"]
    cached = by_name["cached re-joins"]
    combined = by_name["batched+cached re-joins"]
    ticket = by_name["ticket re-joins"]
    assert cold[3] > 0 and cold[4] == 0, (
        "the cold baseline pays full verification every time"
    )
    assert combined[3] == 0 and combined[4] > 0, (
        "batched+cached re-joins verify from the cache only"
    )
    assert cached[3] == 0, "cached re-joins never re-verify from scratch"
    assert batched[5] < cold[5], "batching alone already beats cold"
    assert cold[5] >= 5.0 * combined[5], (
        "batched+cached joins must be >=5x cheaper than cold joins"
    )
    assert ticket[5] < combined[5], (
        "ticket re-joins skip even the cached handshake"
    )
    assert ticket[3] == 0 and ticket[4] == 0, (
        "ticket re-joins never touch the quote verifier"
    )
    assert ticket[6] > 1000.0, (
        "resumption sustains thousands of joins per virtual second"
    )
    recovery_cold = by_name["mass recovery cold"]
    recovery_fast = by_name["mass recovery provisioned"]
    assert recovery_cold[7] > recovery_fast[7] > 0.0, (
        "provisioned mass recovery must beat cold re-attestation"
    )
    assert recovery_fast[3] == 0, (
        "ticket-based recovery performs zero full quote verifications"
    )

    benchmark.pedantic(
        lambda: _join_trial("ticket re-joins", 4, cache=True, reuse=True,
                            batch=True, tickets=True, measured_round=2),
        rounds=1, iterations=1,
    )
