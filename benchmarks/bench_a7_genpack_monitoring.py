"""A7 (ablation) -- what GenPack's runtime monitoring is worth.

GenPack = generational placement + power management + *usage-based*
packing learned by monitoring.  Swapping the monitor for one that
reports requests as usage (monitoring disabled) isolates the last
ingredient; the remaining gap to first-fit isolates the generational
structure itself.  Failure injection on top shows the scheduler's
availability story: crashed servers' containers are re-placed.
"""

import pytest

from repro.genpack.baselines import FirstFitScheduler
from repro.genpack.cluster import Cluster
from repro.genpack.monitor import RequestOnlyMonitor, ResourceMonitor
from repro.genpack.scheduler import GenPackScheduler
from repro.genpack.simulation import ClusterSimulation
from repro.genpack.workload import ContainerWorkload

from benchmarks._harness import report

HOUR = 3600.0
SERVERS = 30


def run_a7():
    workload = ContainerWorkload(seed=3, duration=12 * HOUR,
                                 arrival_rate_per_hour=60.0)
    trace = workload.generate()
    failures = [(4 * HOUR, "srv-005"), (8 * HOUR, "srv-011")]
    rows = []
    for label, factory in (
        (
            "genpack (monitoring)",
            lambda cluster, wl: GenPackScheduler(cluster, ResourceMonitor(wl)),
        ),
        (
            "genpack (request-only)",
            lambda cluster, wl: GenPackScheduler(cluster,
                                                 RequestOnlyMonitor(wl)),
        ),
        (
            "first-fit",
            lambda cluster, wl: FirstFitScheduler(cluster),
        ),
    ):
        cluster = Cluster.homogeneous(SERVERS)
        scheduler = factory(cluster, workload)
        monitor = getattr(scheduler, "monitor", None) or ResourceMonitor(
            workload
        )
        result = ClusterSimulation(
            cluster, scheduler, workload, trace=trace, monitor=monitor,
            failures=failures,
        ).run()
        rows.append(
            (label, result.energy_kwh, result.average_servers_on,
             result.completed, result.stranded)
        )
    return rows


@pytest.fixture(scope="module")
def a7_rows():
    return run_a7()


def bench_a7_genpack_monitoring(a7_rows, benchmark):
    rows = a7_rows
    report(
        "a7_genpack_monitoring",
        "A7: GenPack ablation (12 h, %d servers, 2 injected crashes)"
        % SERVERS,
        ("scheduler", "energy_kwh", "avg_on", "completed", "stranded"),
        rows,
        notes=(
            "monitoring -> usage-based packing is the decisive GenPack",
            "ingredient; all schedulers survive server crashes",
        ),
    )
    by_label = {row[0]: row for row in rows}
    monitored = by_label["genpack (monitoring)"][1]
    request_only = by_label["genpack (request-only)"][1]
    assert monitored < request_only, "monitoring pays for itself"
    for row in rows:
        assert row[4] == 0, "no containers stranded by the crashes"

    benchmark.pedantic(run_a7, rounds=1, iterations=1)
