"""E6 -- shard failover: the sharded matching plane under seeded chaos.

Three scenarios exercise the plane's failure-detection, sealed-snapshot
recovery, and coverage-tracked publish guarantees on a 4-shard plane,
each judged against the single-index oracle (``tests.scbr.oracle``):

- **heartbeat failover**: a fault schedule kills 2 of 4 shard enclaves
  mid-run; the phi-accrual monitor must detect both silences and the
  health loop must respawn each replacement from its plane-sealed
  snapshot + mutation log before the publication stream resumes;
- **chaos stream**: a :class:`~repro.chaos.ChaosShardPlane` crashes
  live shards between publishes at a seeded rate; the default
  ``on_partial="retry"`` mode must heal inline so every publication
  is delivered with full coverage;
- **report outage**: with ``on_partial="report"``, publications during
  a 2-shard outage must come back as :class:`PartialCoverage` naming
  exactly the dead partitions -- degraded coverage is *flagged*, and
  after healing the same stream must match the oracle in full.

``silent_loss`` counts publications whose delivered match set shrank
versus the oracle *without* being flagged -- the number the plane's
no-silent-loss guarantee pins to zero.  Latencies are virtual (cycle
model / event clock); all chaos is hash-derived from one seed, so the
table is bit-identical across runs.
"""

import statistics

import pytest

from repro.chaos import ChaosInjector, ChaosShardPlane, FaultSchedule
from repro.microservices import Orchestrator, QosMonitor, ServiceRegistry
from repro.scbr.filters import Publication, Subscription
from repro.scbr.messages import EncryptedEnvelope, serialize_publication
from repro.scbr.router import ScbrClient
from repro.scbr.sharding import PartialCoverage, ShardedScbrRouter
from repro.scbr.workload import ScbrWorkload
from repro.sgx.attestation import AttestationService
from repro.sgx.platform import SgxPlatform
from repro.sim.clock import cycles_to_seconds
from repro.sim.events import Environment

from benchmarks._harness import report
from tests.scbr.oracle import oracle_match_sets

SEED = 66
SHARDS = 4

E6_HEADER = ("scenario", "crashes", "detected", "recovered",
             "detect_ms_med", "recover_ms_med", "partial_flagged",
             "silent_loss", "goodput")


def _plane(seed, shards=SHARDS, **kwargs):
    platform = SgxPlatform(seed=seed, quoting_key_bits=512)
    attestation = AttestationService()
    attestation.register_platform(
        platform.platform_id, platform.quoting_enclave.public_key
    )
    router = ShardedScbrRouter(
        platform,
        lambda i: SgxPlatform(seed=100 * seed + i, quoting_key_bits=512),
        attestation_service=attestation,
        shards=shards,
        **kwargs,
    )
    attestation.trust_measurement(router.measurement)
    return router, attestation


def _load(router, attestation, count):
    """One subscriber holding a seeded workload; returns the live set."""
    alice = ScbrClient("alice", router, attestation)
    workload = ScbrWorkload(seed=SEED, num_attributes=6,
                            containment_fraction=0.5, num_subscribers=1)
    live = []
    for subscription in workload.subscriptions(count):
        subscription = Subscription(
            subscription.subscription_id,
            list(subscription.constraints.values()),
            "alice",
        )
        alice.subscribe(subscription)
        live.append(subscription)
    return alice, live, workload


def _envelope(publisher, publication):
    return EncryptedEnvelope.seal(
        publisher.key, publisher.client_id, "publish",
        serialize_publication(Publication(publication.attributes)),
    )


def _matched(alice, routed):
    matched = []
    for _subscriber, envelope in routed:
        _pub, ids = alice.open_notification_detail(envelope)
        matched.extend(ids)
    return sorted(matched)


def _median_ms(samples):
    if not samples:
        return 0.0
    return statistics.median(samples) * 1e3


def _heartbeat_trial(subscriptions, publications):
    """Scheduled 2-shard kill; health loop detects and respawns."""
    env = Environment()
    injector = ChaosInjector(seed=SEED)
    orchestrator = Orchestrator(env, QosMonitor(env), ServiceRegistry())
    router, attestation = _plane(
        SEED + 1, env=env, chaos=injector, orchestrator=orchestrator
    )
    alice, live, workload = _load(router, attestation, subscriptions)
    publisher = ScbrClient("publisher", router, attestation)
    stream = workload.publications(publications)

    schedule = FaultSchedule(env, injector)
    schedule.crash_shard_at(0.0031, router, 0)
    schedule.crash_shard_at(0.0033, router, 2)
    router.start_health(0.05)

    deliveries = []

    def publish(publication):
        routed = router.publish_routed(_envelope(publisher, publication))
        deliveries.append(_matched(alice, routed))

    # The stream resumes after the detection window; a crash between
    # publishes must be healed by the health loop, not the retry path.
    for position, publication in enumerate(stream):
        env.call_at(0.012 + 0.002 * position,
                    lambda publication=publication: publish(publication))
    env.run(until=0.05)

    oracle = oracle_match_sets(live, stream)
    assert deliveries == oracle, "healed plane diverged from the oracle"
    assert orchestrator.recovery_latencies() == [
        episode["recovery_seconds"] for episode in router.recovery_episodes
    ]
    router.check_invariants()
    span = 0.002 * len(stream)
    return {
        "scenario": "heartbeat failover 2/%d" % SHARDS,
        "crashes": router.shard_failures,
        "detected": len(router.monitor.detections),
        "recovered": len(router.recovery_episodes),
        "detect_ms": _median_ms(router.monitor.detection_latencies()),
        "recover_ms": _median_ms(router.recovery_latencies()),
        "flagged": router.partial_publishes,
        "silent_loss": sum(
            1 for got, want in zip(deliveries, oracle) if got != want
        ),
        "goodput": "%.3g pub/s" % (len(stream) / span),
    }


def _chaos_stream_trial(subscriptions, publications, crash_rate=0.35):
    """Seeded crashes between publishes; retry mode heals inline."""
    injector = ChaosInjector(seed=SEED, shard_crash_rate=crash_rate)
    router, attestation = _plane(SEED + 2)
    hostile = ChaosShardPlane(router, injector)
    alice, live, workload = _load(router, attestation, subscriptions)
    publisher = ScbrClient("publisher", router, attestation)
    stream = workload.publications(publications)

    deliveries = []
    cycles = 0
    for publication in stream:
        routed = hostile.publish_routed(_envelope(publisher, publication))
        assert not isinstance(routed, PartialCoverage)
        cycles += router.last_publish_cycles
        deliveries.append(_matched(alice, routed))

    oracle = oracle_match_sets(live, stream)
    assert deliveries == oracle, "retry mode diverged from the oracle"
    assert len(router.recovery_episodes) >= hostile.crashes_injected
    router.check_invariants()
    elapsed = cycles_to_seconds(cycles)
    return {
        "scenario": "chaos stream crash=%d%%" % round(crash_rate * 100),
        "crashes": hostile.crashes_injected,
        "detected": hostile.crashes_injected,  # coverage gap = detection
        "recovered": len(router.recovery_episodes),
        "detect_ms": 0.0,
        "recover_ms": _median_ms(router.recovery_latencies()),
        "flagged": router.partial_publishes,
        "silent_loss": sum(
            1 for got, want in zip(deliveries, oracle) if got != want
        ),
        "goodput": "%.3g pub/s" % (
            len(stream) / elapsed if elapsed else 0.0
        ),
    }


def _report_outage_trial(subscriptions, publications):
    """2-shard outage with on_partial="report": degraded = flagged."""
    router, attestation = _plane(SEED + 3, on_partial="report")
    alice, live, workload = _load(router, attestation, subscriptions)
    publisher = ScbrClient("publisher", router, attestation)
    stream = workload.publications(publications)
    oracle = oracle_match_sets(live, stream)

    down = (router.shards[1].shard_id, router.shards[3].shard_id)
    for shard_id in down:
        router.fail_shard(shard_id)

    flagged = 0
    silent_loss = 0
    for publication, want in zip(stream, oracle):
        result = router.publish_routed(_envelope(publisher, publication))
        if isinstance(result, PartialCoverage):
            flagged += 1
            assert result.missing == down
            continue
        if _matched(alice, result) != want:
            silent_loss += 1

    for shard_id in down:
        router.recover_shard(shard_id)
    healed = [
        _matched(alice,
                 router.publish_routed(_envelope(publisher, publication)))
        for publication in stream
    ]
    assert healed == oracle, "healed plane diverged from the oracle"
    router.check_invariants()
    return {
        "scenario": "report outage 2/%d" % SHARDS,
        "crashes": len(down),
        "detected": flagged,
        "recovered": len(router.recovery_episodes),
        "detect_ms": 0.0,
        "recover_ms": _median_ms(router.recovery_latencies()),
        "flagged": flagged,
        "silent_loss": silent_loss,
        "goodput": "n/a (outage)",
    }


def run_e6(smoke=False):
    """All scenarios; returns table rows.  ``smoke`` shrinks workloads."""
    scale = 3 if smoke else 1
    trials = [
        _heartbeat_trial(60 // scale, 9 // scale),
        _chaos_stream_trial(60 // scale, 12 // scale),
        _report_outage_trial(42 // scale, 9 // scale),
    ]
    return [
        (
            trial["scenario"],
            trial["crashes"],
            trial["detected"],
            trial["recovered"],
            trial["detect_ms"],
            trial["recover_ms"],
            trial["flagged"],
            trial["silent_loss"],
            trial["goodput"],
        )
        for trial in trials
    ]


@pytest.fixture(scope="module")
def e6_rows():
    return run_e6()


def bench_e6_shard_failover(e6_rows, benchmark):
    rows = e6_rows
    report(
        "e6_shard_failover",
        "E6: %d-shard plane failover under seeded chaos (virtual time)"
        % SHARDS,
        E6_HEADER,
        rows,
        notes=(
            "silent_loss: publications whose match set shrank vs. the",
            "single-index oracle without a PartialCoverage flag -- the",
            "no-silent-loss guarantee pins this to zero in every mode",
        ),
    )
    by_name = {row[0]: row for row in rows}
    for row in rows:
        assert row[7] == 0, "%s lost matches silently" % row[0]
    heartbeat = by_name["heartbeat failover 2/%d" % SHARDS]
    assert heartbeat[1] >= 2 and heartbeat[2] >= 2, "both kills detected"
    assert heartbeat[3] >= 2, "both shards respawned"
    assert 0.0 < heartbeat[4], "finite detection latency"
    assert 0.0 < heartbeat[5], "finite recovery latency"
    chaos = by_name["chaos stream crash=35%"]
    assert chaos[1] >= 2, "chaos actually killed >=2 shards mid-stream"
    outage = by_name["report outage 2/%d" % SHARDS]
    assert outage[6] > 0, "outage publications were flagged"

    benchmark.pedantic(lambda: _chaos_stream_trial(20, 4),
                       rounds=1, iterations=1)
