"""A5 (ablation) -- covering-based forwarding in the broker network.

SCBR's containment relations pay twice: within one broker (A1) and
*across* brokers, where a subscription covered by one already forwarded
over a link need not be propagated.  A chain of brokers receives a
containment-heavy subscription workload with and without the covering
optimisation; the table reports routing-state and traffic reduction --
with identical delivery results.
"""

import pytest

from repro.scbr.network import ScbrNetwork
from repro.scbr.workload import ScbrWorkload

from benchmarks._harness import report
from tests.scbr.oracle import oracle_workload_deliveries

BROKERS = ("edge-0", "edge-1", "core", "edge-2")
SUBSCRIPTIONS = 600
PUBLICATIONS = 60


def _build_network(covering_enabled):
    network = ScbrNetwork()
    for name in BROKERS:
        network.add_broker(name)
    network.connect("edge-0", "core")
    network.connect("edge-1", "core")
    network.connect("edge-2", "core")
    if not covering_enabled:
        # Disable the optimisation: pretend nothing covers anything.
        for broker in network.brokers.values():
            broker_admit = broker._admit

            def admit(subscription, origin, _broker=broker):
                _broker.index.insert(subscription)
                _broker._origin[subscription.subscription_id] = origin
                for neighbour in list(_broker.links):
                    if neighbour == origin:
                        continue
                    link = _broker.links[neighbour]
                    _broker._forwarded.setdefault(neighbour, []).append(
                        subscription
                    )
                    envelope = link.seal_subscription(subscription)
                    link.destination.receive_subscription(
                        envelope, from_broker=_broker.name
                    )

            broker._admit = admit
            assert broker_admit is not None
    return network


def _oracle_deliveries():
    """What a single all-knowing matcher would deliver, per publication.

    Shared referee (``tests.scbr.oracle``): routing -- with or without
    covering -- changes where matching happens, never what is
    delivered.
    """
    return oracle_workload_deliveries(
        seed=21, num_attributes=10, containment_fraction=0.7,
        num_subscriptions=SUBSCRIPTIONS, num_publications=PUBLICATIONS,
    )


def run_a5():
    rows = []
    deliveries = {}
    oracle = _oracle_deliveries()
    for covering in (False, True):
        workload = ScbrWorkload(seed=21, num_attributes=10,
                                containment_fraction=0.7)
        network = _build_network(covering)
        edges = ("edge-0", "edge-1", "edge-2")
        for position, subscription in enumerate(
            workload.subscriptions(SUBSCRIPTIONS)
        ):
            network.subscribe(edges[position % 3], subscription,
                              client="client-%d" % position)
        delivered = []
        for position, publication in enumerate(
            workload.publications(PUBLICATIONS)
        ):
            origin = edges[position % 3]
            result = network.brokers[origin].publish_local(publication)
            delivered.append(sorted(s for _c, s in result))
        deliveries[covering] = delivered
        stats = network.forwarding_stats()
        routing_state = sum(
            len(broker.index) for broker in network.brokers.values()
        )
        rows.append(
            (
                "covering on" if covering else "covering off",
                stats["subscriptions_forwarded"],
                stats["subscriptions_suppressed"],
                routing_state,
                stats["publications_forwarded"],
            )
        )
    assert deliveries[False] == deliveries[True], "optimisation is lossless"
    # Delivery-count oracle: every publication reaches exactly the
    # subscriptions a single index over the whole network would match.
    for covering, delivered in deliveries.items():
        assert delivered == oracle, (
            "covering=%s diverged from the single-index oracle" % covering
        )
    return rows


@pytest.fixture(scope="module")
def a5_rows():
    return run_a5()


def bench_a5_broker_network(a5_rows, benchmark):
    rows = a5_rows
    report(
        "a5_broker_network",
        "A5: 4-broker overlay, %d subscriptions, %d publications"
        % (SUBSCRIPTIONS, PUBLICATIONS),
        ("mode", "subs_forwarded", "subs_suppressed", "routing_entries",
         "pubs_forwarded"),
        rows,
        notes=(
            "covering suppression shrinks inter-broker subscription",
            "traffic and per-broker routing state; deliveries identical",
        ),
    )
    off, on = rows[0], rows[1]
    assert on[1] < 0.7 * off[1], "forwarded subscriptions reduced"
    assert on[3] < off[3], "routing state reduced"
    assert on[2] > 0, "suppression actually happened"

    benchmark.pedantic(run_a5, rounds=1, iterations=1)
