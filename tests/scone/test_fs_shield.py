"""Tests for the file-system shield."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigurationError, IntegrityError
from repro.crypto.aead import AeadKey
from repro.crypto.primitives import DeterministicRandomSource
from repro.scone.fs_shield import (
    FsProtectionFile,
    ProtectedVolume,
    UntrustedStore,
)


def make_volume(chunk_size=64):
    return ProtectedVolume(UntrustedStore(), chunk_size=chunk_size)


class TestRoundTrip:
    def test_write_read(self):
        volume = make_volume()
        volume.write("/data/secret.txt", b"hello enclave")
        assert volume.read_all("/data/secret.txt") == b"hello enclave"

    def test_multi_chunk_file(self):
        volume = make_volume(chunk_size=16)
        data = bytes(range(256))
        volume.write("/big", data)
        assert volume.read_all("/big") == data
        assert volume.store.chunk_count("/big") == 16

    def test_partial_read(self):
        volume = make_volume(chunk_size=16)
        volume.write("/f", b"0123456789abcdef" * 4)
        assert volume.read("/f", offset=14, length=5) == b"ef012"

    def test_overwrite_middle(self):
        volume = make_volume(chunk_size=16)
        volume.write("/f", b"a" * 48)
        volume.write("/f", b"XYZ", offset=20)
        expected = b"a" * 20 + b"XYZ" + b"a" * 25
        assert volume.read_all("/f") == expected

    def test_append(self):
        volume = make_volume(chunk_size=16)
        volume.write("/f", b"start")
        volume.write("/f", b"-end", offset=5)
        assert volume.read_all("/f") == b"start-end"

    def test_write_past_end_zero_fills(self):
        volume = make_volume(chunk_size=16)
        volume.write("/f", b"ab")
        volume.write("/f", b"Z", offset=40)
        data = volume.read_all("/f")
        assert data[:2] == b"ab"
        assert data[2:40] == b"\x00" * 38
        assert data[40:] == b"Z"

    def test_empty_file(self):
        volume = make_volume()
        volume.create("/empty")
        assert volume.read_all("/empty") == b""
        assert volume.file_size("/empty") == 0

    def test_read_bounds_checked(self):
        volume = make_volume()
        volume.write("/f", b"abc")
        with pytest.raises(ConfigurationError):
            volume.read("/f", offset=1, length=10)

    def test_negative_offset_rejected(self):
        volume = make_volume()
        with pytest.raises(ConfigurationError):
            volume.write("/f", b"x", offset=-1)

    def test_unknown_file(self):
        with pytest.raises(ConfigurationError):
            make_volume().read_all("/nope")

    def test_create_twice_rejected(self):
        volume = make_volume()
        volume.create("/f")
        with pytest.raises(ConfigurationError):
            volume.create("/f")

    def test_delete(self):
        volume = make_volume()
        volume.write("/f", b"data")
        volume.delete("/f")
        assert not volume.exists("/f")
        assert volume.store.chunk_count("/f") == 0

    @settings(max_examples=30)
    @given(
        data=st.binary(min_size=0, max_size=500),
        offset=st.integers(0, 200),
        chunk_size=st.sampled_from([16, 64, 256]),
    )
    def test_random_offset_write_read_property(self, data, offset, chunk_size):
        volume = make_volume(chunk_size=chunk_size)
        base = bytes(range(200))
        volume.write("/f", base)
        volume.write("/f", data, offset=offset)
        expected = bytearray(base.ljust(max(200, offset + len(data)), b"\x00"))
        expected[offset : offset + len(data)] = data
        assert volume.read_all("/f") == bytes(expected)


class TestConfidentiality:
    def test_store_never_sees_plaintext(self):
        volume = make_volume(chunk_size=32)
        secret = b"TOP-SECRET-METER-READING-1234"
        volume.write("/f", secret * 4)
        for path, index in list(volume.store._chunks):
            blob = volume.store.get(path, index)
            assert b"TOP-SECRET" not in blob
            assert b"1234" not in blob

    def test_same_plaintext_distinct_ciphertexts(self):
        volume = make_volume(chunk_size=32)
        volume.write("/a", b"x" * 32)
        volume.write("/b", b"x" * 32)
        assert volume.store.get("/a", 0) != volume.store.get("/b", 0)


class TestTamperDetection:
    def test_bit_flip_detected(self):
        volume = make_volume(chunk_size=16)
        volume.write("/f", b"0123456789abcdef" * 2)
        volume.store.tamper("/f", 1, offset=20)
        with pytest.raises(IntegrityError):
            volume.read_all("/f")

    def test_chunk_swap_detected(self):
        volume = make_volume(chunk_size=16)
        volume.write("/f", b"A" * 16 + b"B" * 16)
        volume.store.swap("/f", 0, 1)
        with pytest.raises(IntegrityError):
            volume.read_all("/f")

    def test_rollback_detected(self):
        volume = make_volume(chunk_size=16)
        volume.write("/f", b"version-one-data")
        old_blob = volume.store.snapshot_chunk("/f", 0)
        volume.write("/f", b"version-two-data")
        volume.store.rollback("/f", 0, old_blob)
        with pytest.raises(IntegrityError):
            volume.read_all("/f")

    def test_deleted_chunk_detected(self):
        volume = make_volume(chunk_size=16)
        volume.write("/f", b"x" * 32)
        volume.store.delete_file("/f")
        with pytest.raises(IntegrityError):
            volume.read_all("/f")

    def test_verify_all_passes_clean_volume(self):
        volume = make_volume(chunk_size=16)
        volume.write("/a", b"1" * 40)
        volume.write("/b", b"2" * 40)
        assert volume.verify_all()

    def test_verify_all_catches_any_tamper(self):
        volume = make_volume(chunk_size=16)
        volume.write("/a", b"1" * 40)
        volume.write("/b", b"2" * 40)
        volume.store.tamper("/b", 2)
        with pytest.raises(IntegrityError):
            volume.verify_all()

    def test_untouched_chunks_still_read_after_partial_write(self):
        volume = make_volume(chunk_size=16)
        volume.write("/f", b"c" * 64)
        volume.write("/f", b"NEW", offset=16)
        assert volume.read("/f", 0, 16) == b"c" * 16
        assert volume.read("/f", 48, 16) == b"c" * 16


class TestProtectionFile:
    def test_serialise_round_trip(self):
        volume = make_volume(chunk_size=16)
        volume.write("/a", b"alpha" * 10)
        volume.write("/b", b"beta" * 10)
        manifest = volume.protection
        restored = FsProtectionFile.deserialize(manifest.serialize())
        assert restored.paths() == manifest.paths()
        for path in manifest.paths():
            assert restored.entry(path).chunk_tags == manifest.entry(path).chunk_tags
            assert restored.entry(path).size == manifest.entry(path).size

    def test_restored_manifest_reads_volume(self):
        store = UntrustedStore()
        volume = ProtectedVolume(store, chunk_size=16)
        volume.write("/f", b"persistent-data!")
        restored = ProtectedVolume(
            store,
            protection=FsProtectionFile.deserialize(volume.protection.serialize()),
            chunk_size=16,
        )
        assert restored.read_all("/f") == b"persistent-data!"

    def test_bad_magic_rejected(self):
        with pytest.raises(IntegrityError):
            FsProtectionFile.deserialize(b"not-a-manifest")

    def test_truncated_rejected(self):
        volume = make_volume()
        volume.write("/f", b"data")
        raw = volume.protection.serialize()
        with pytest.raises(IntegrityError):
            FsProtectionFile.deserialize(raw[: len(raw) - 5])

    def test_content_hash_tracks_state(self):
        volume = make_volume()
        volume.write("/f", b"v1")
        first = volume.protection.content_hash()
        volume.write("/f", b"v2")
        assert volume.protection.content_hash() != first

    def test_encrypted_manifest_round_trip(self):
        volume = make_volume()
        volume.write("/f", b"data")
        key = AeadKey(DeterministicRandomSource(0).bytes(32))
        blob = volume.protection.encrypt(key)
        expected_hash = volume.protection.content_hash()
        restored = FsProtectionFile.decrypt(blob, key, expected_hash=expected_hash)
        assert restored.paths() == ["/f"]

    def test_encrypted_manifest_hash_mismatch(self):
        volume = make_volume()
        volume.write("/f", b"data")
        key = AeadKey(DeterministicRandomSource(0).bytes(32))
        blob = volume.protection.encrypt(key)
        with pytest.raises(IntegrityError):
            FsProtectionFile.decrypt(blob, key, expected_hash=b"\x00" * 32)

    def test_wrong_key_rejected(self):
        volume = make_volume()
        volume.write("/f", b"data")
        blob = volume.protection.encrypt(AeadKey(b"\x01" * 32))
        with pytest.raises(IntegrityError):
            FsProtectionFile.decrypt(blob, AeadKey(b"\x02" * 32))
