"""Tests for the shielded syscall interface."""

import pytest

from repro.errors import ConfigurationError, IntegrityError
from repro.sgx.costs import DEFAULT_COSTS
from repro.scone.syscalls import (
    AsyncSyscallExecutor,
    QUEUE_SUBMIT_CYCLES,
    SimulatedKernel,
    SyncSyscallExecutor,
    SyscallRequest,
    SyscallShield,
)
from repro.sim.clock import CycleClock


def sync_executor(kernel=None):
    return SyncSyscallExecutor(
        CycleClock(), kernel or SimulatedKernel(), DEFAULT_COSTS
    )


def async_executor(kernel=None, workers=2):
    return AsyncSyscallExecutor(
        CycleClock(), kernel or SimulatedKernel(), DEFAULT_COSTS, workers=workers
    )


class TestKernel:
    def test_open_write_read(self):
        kernel = SimulatedKernel()
        fd = kernel.execute(SyscallRequest("open", ("/tmp/f",)))
        kernel.execute(SyscallRequest("write", (fd, b"hello")))
        fd2 = kernel.execute(SyscallRequest("open", ("/tmp/f",)))
        data = kernel.execute(SyscallRequest("read", (fd2, 5)))
        assert data == b"hello"

    def test_bad_descriptor(self):
        kernel = SimulatedKernel()
        with pytest.raises(ConfigurationError):
            kernel.execute(SyscallRequest("read", (99, 4)))

    def test_unknown_syscall(self):
        with pytest.raises(ConfigurationError):
            SimulatedKernel().execute(SyscallRequest("fork"))

    def test_sequential_reads_advance_position(self):
        kernel = SimulatedKernel()
        fd = kernel.execute(SyscallRequest("open", ("/f",)))
        kernel.execute(SyscallRequest("write", (fd, b"abcdef")))
        fd2 = kernel.execute(SyscallRequest("open", ("/f",)))
        assert kernel.execute(SyscallRequest("read", (fd2, 3))) == b"abc"
        assert kernel.execute(SyscallRequest("read", (fd2, 3))) == b"def"


class TestShield:
    def test_oversized_read_rejected(self):
        executor = sync_executor(SimulatedKernel(hostile=True))
        fd = 7  # hostile kernel misbehaves on read regardless
        executor.kernel._descriptors[fd] = ["/f", 0]
        executor.kernel._files["/f"] = bytearray(b"xy")
        with pytest.raises(IntegrityError, match="read"):
            executor.call("read", fd, 2)
        assert executor.shield.rejected == 1

    def test_inflated_write_count_rejected(self):
        executor = sync_executor(SimulatedKernel(hostile=True))
        fd_request = SyscallRequest("open", ("/f",))
        fd = executor.kernel.execute(fd_request)
        with pytest.raises(IntegrityError, match="written"):
            executor.call("write", fd, b"data")

    def test_honest_results_pass(self):
        executor = sync_executor()
        fd = executor.call("open", "/f")
        assert executor.call("write", fd, b"data") == 4

    def test_negative_descriptor_rejected(self):
        shield = SyscallShield()
        with pytest.raises(IntegrityError):
            shield.validate(SyscallRequest("open", ("/f",)), -1)

    def test_copy_in_charged(self):
        from repro.sgx.memory import SimulatedMemory

        clock = CycleClock()
        memory = SimulatedMemory(clock, DEFAULT_COSTS)
        shield = SyscallShield(memory=memory)
        shield.validate(SyscallRequest("read", (3, 1000)), b"x" * 1000)
        assert clock.now == 500  # 0.5 cycles/byte


class TestSyncExecutor:
    def test_charges_two_transitions_plus_service(self):
        executor = sync_executor()
        executor.call("nanosleep", 0)
        expected = 2 * DEFAULT_COSTS.transition_cycles + 1_500
        assert executor.clock.now == expected

    def test_call_counter(self):
        executor = sync_executor()
        executor.call("nanosleep", 0)
        executor.call("nanosleep", 0)
        assert executor.calls == 2


class TestAsyncExecutor:
    def test_submit_charges_only_queue_op(self):
        executor = async_executor()
        executor.submit("nanosleep", 0)
        assert executor.clock.now == QUEUE_SUBMIT_CYCLES

    def test_wait_advances_to_completion(self):
        executor = async_executor()
        pending = executor.submit("nanosleep", 0)
        executor.wait(pending)
        assert executor.clock.now == QUEUE_SUBMIT_CYCLES + 1_500

    def test_poll_before_completion_returns_none(self):
        executor = async_executor()
        pending = executor.submit("nanosleep", 0)
        assert executor.poll(pending) is None

    def test_poll_after_compute_returns_result(self):
        executor = async_executor()
        pending = executor.submit("open", "/f")
        executor.clock.charge(10_000)  # enclave does useful work meanwhile
        assert executor.poll(pending) == 3

    def test_overlap_beats_sync(self):
        # 50 calls with 5k cycles of compute between: async should be
        # dramatically cheaper because service time is overlapped.
        sync = sync_executor()
        for _ in range(50):
            sync.call("nanosleep", 0)
            sync.clock.charge(5_000)

        a = async_executor()
        pendings = []
        for _ in range(50):
            pendings.append(a.submit("nanosleep", 0))
            a.clock.charge(5_000)
        for pending in pendings:
            a.wait(pending)
        assert a.clock.now < sync.clock.now / 3

    def test_workers_drain_in_parallel(self):
        one = async_executor(workers=1)
        many = async_executor(workers=4)
        for executor in (one, many):
            fd = executor.call("open", "/f")
            pendings = [executor.submit("fsync", fd) for _ in range(8)]
            for pending in pendings:
                executor.wait(pending)
        assert many.clock.now < one.clock.now

    def test_hostile_kernel_caught_at_wait(self):
        executor = async_executor(SimulatedKernel(hostile=True))
        executor.kernel._descriptors[5] = ["/f", 0]
        executor.kernel._files["/f"] = bytearray(b"ab")
        pending = executor.submit("read", 5, 2)
        with pytest.raises(IntegrityError):
            executor.wait(pending)

    def test_zero_workers_rejected(self):
        with pytest.raises(ConfigurationError):
            async_executor(workers=0)

    def test_call_convenience(self):
        executor = async_executor()
        fd = executor.call("open", "/f")
        assert executor.call("write", fd, b"hi") == 2
