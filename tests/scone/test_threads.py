"""Tests for the user-level thread scheduler."""

import pytest

from repro.errors import ConfigurationError
from repro.sgx.costs import DEFAULT_COSTS
from repro.scone.syscalls import (
    AsyncSyscallExecutor,
    SimulatedKernel,
    SyncSyscallExecutor,
    SyscallRequest,
)
from repro.scone.threads import UserThreadScheduler
from repro.sim.clock import CycleClock


def make_scheduler(workers=2):
    clock = CycleClock()
    executor = AsyncSyscallExecutor(
        clock, SimulatedKernel(), DEFAULT_COSTS, workers=workers
    )
    return UserThreadScheduler(clock, executor)


class TestScheduler:
    def test_single_thread_runs_to_completion(self):
        scheduler = make_scheduler()

        def thread():
            fd = yield SyscallRequest("open", ("/f",))
            count = yield SyscallRequest("write", (fd, b"hello"))
            return count

        scheduler.spawn(thread())
        assert scheduler.run() == [5]

    def test_compute_yield(self):
        scheduler = make_scheduler()

        def thread():
            yield ("compute", 10_000)
            return "done"

        scheduler.spawn(thread())
        assert scheduler.run() == ["done"]
        assert scheduler.clock.now >= 10_000

    def test_many_threads_all_finish(self):
        scheduler = make_scheduler()

        def thread(i):
            fd = yield SyscallRequest("open", ("/f%d" % i,))
            yield SyscallRequest("write", (fd, b"x" * i))
            return i

        for i in range(10):
            scheduler.spawn(thread(i))
        assert scheduler.run() == list(range(10))

    def test_results_preserve_spawn_order(self):
        scheduler = make_scheduler()

        def quick():
            yield ("compute", 1)
            return "quick"

        def slow():
            fd = yield SyscallRequest("open", ("/f",))
            yield SyscallRequest("fsync", (fd,))
            return "slow"

        scheduler.spawn(slow())
        scheduler.spawn(quick())
        assert scheduler.run() == ["slow", "quick"]

    def test_non_generator_rejected(self):
        with pytest.raises(ConfigurationError):
            make_scheduler().spawn(lambda: None)

    def test_bad_yield_rejected(self):
        scheduler = make_scheduler()

        def bad():
            yield 42

        scheduler.spawn(bad())
        with pytest.raises(ConfigurationError):
            scheduler.run()

    def test_empty_scheduler_runs(self):
        assert make_scheduler().run() == []

    def test_context_switches_counted(self):
        scheduler = make_scheduler()

        def thread():
            yield ("compute", 10)
            yield ("compute", 10)

        scheduler.spawn(thread())
        scheduler.run()
        assert scheduler.context_switches >= 2


class TestAsyncAdvantage:
    def test_threaded_async_beats_sync_for_io_heavy_mix(self):
        """Reproduces SCONE's core performance claim in miniature."""
        threads, calls = 8, 20

        # Sync: every call pays 2 transitions + full service inline.
        sync_clock = CycleClock()
        sync = SyncSyscallExecutor(sync_clock, SimulatedKernel(), DEFAULT_COSTS)
        for _t in range(threads):
            for _c in range(calls):
                sync.call("read", sync.call("open", "/f"), 0)
                sync_clock.charge(2_000)

        # Async + user threads: syscalls overlap compute and each other.
        scheduler = make_scheduler(workers=4)

        def worker():
            for _c in range(calls):
                fd = yield SyscallRequest("open", ("/f",))
                yield SyscallRequest("read", (fd, 0))
                yield ("compute", 2_000)

        for _t in range(threads):
            scheduler.spawn(worker())
        scheduler.run()

        assert scheduler.clock.now < sync_clock.now / 2
