"""Tests for shielded standard streams."""

import pytest

from repro.errors import IntegrityError
from repro.crypto.aead import AeadKey
from repro.crypto.primitives import DeterministicRandomSource
from repro.scone.stream_shield import ShieldedStreamReader, ShieldedStreamWriter


def key(seed=0):
    return AeadKey(DeterministicRandomSource(seed).bytes(32))


def pair(stream_name="stdout"):
    transport = []
    k = key()
    writer = ShieldedStreamWriter(k, stream_name, transport)
    reader = ShieldedStreamReader(k, stream_name, transport)
    return writer, reader, transport


class TestStreams:
    def test_round_trip(self):
        writer, reader, _transport = pair()
        writer.write(b"line one\n")
        writer.write(b"line two\n")
        writer.close()
        assert reader.drain() == b"line one\nline two\n"
        assert reader.closed

    def test_transport_is_ciphertext(self):
        writer, _reader, transport = pair()
        writer.write(b"SECRET-OUTPUT")
        assert b"SECRET-OUTPUT" not in transport[0]

    def test_tampered_record(self):
        writer, reader, transport = pair()
        writer.write(b"data")
        blob = bytearray(transport[0])
        blob[-1] ^= 1
        with pytest.raises(IntegrityError):
            reader.read_record(bytes(blob))

    def test_reordered_records(self):
        writer, reader, transport = pair()
        writer.write(b"first")
        writer.write(b"second")
        transport.reverse()
        with pytest.raises(IntegrityError):
            reader.drain()

    def test_replayed_record(self):
        writer, reader, transport = pair()
        writer.write(b"once")
        record = transport[0]
        assert reader.read_record(record) == b"once"
        with pytest.raises(IntegrityError):
            reader.read_record(record)

    def test_dropped_record_detected(self):
        writer, reader, transport = pair()
        writer.write(b"first")
        writer.write(b"second")
        del transport[0]
        with pytest.raises(IntegrityError):
            reader.drain()

    def test_cross_stream_record_rejected(self):
        shared_key = key()
        out_writer = ShieldedStreamWriter(shared_key, "stdout")
        err_reader = ShieldedStreamReader(shared_key, "stderr")
        record = out_writer.write(b"misdirected")
        with pytest.raises(IntegrityError):
            err_reader.read_record(record)

    def test_wrong_key_rejected(self):
        writer, _reader, transport = pair()
        writer.write(b"data")
        wrong_reader = ShieldedStreamReader(key(9), "stdout", transport)
        with pytest.raises(IntegrityError):
            wrong_reader.drain()

    def test_records_after_close_rejected(self):
        writer, reader, _transport = pair()
        writer.write(b"data")
        close_record = writer.close()
        reader.read_record(writer.transport[0])
        reader.read_record(close_record)
        extra = writer.write(b"sneaky")
        with pytest.raises(IntegrityError):
            reader.read_record(extra)

    def test_records_written_counter(self):
        writer, _reader, _transport = pair()
        writer.write(b"a")
        writer.write(b"b")
        assert writer.records_written == 2


class TestBatchedRecords:
    def test_round_trip(self):
        writer, reader, _transport = pair()
        writer.write_batch([b"one ", b"two ", b"three"])
        writer.close()
        assert reader.drain() == b"one two three"
        assert reader.closed

    def test_batch_consumes_one_sequence_number(self):
        writer, reader, _transport = pair()
        writer.write_batch([b"a", b"b"])
        writer.write(b"c")
        writer.close()
        assert writer.records_written == 2
        assert reader.drain() == b"abc"

    def test_batch_is_ciphertext_on_wire(self):
        writer, _reader, transport = pair()
        writer.write_batch([b"SECRET-ONE", b"SECRET-TWO"])
        assert b"SECRET-ONE" not in transport[0]
        assert b"SECRET-TWO" not in transport[0]

    def test_tampered_batch_detected(self):
        writer, reader, transport = pair()
        writer.write_batch([b"data", b"more"])
        blob = bytearray(transport[0])
        blob[-1] ^= 1
        with pytest.raises(IntegrityError):
            reader.read_record(bytes(blob))

    def test_reordered_batches_detected(self):
        writer, reader, transport = pair()
        writer.write_batch([b"first"])
        writer.write_batch([b"second"])
        transport.reverse()
        with pytest.raises(IntegrityError):
            reader.drain()

    def test_replayed_batch_detected(self):
        writer, reader, transport = pair()
        writer.write_batch([b"once"])
        record = transport[0]
        assert reader.read_record(record) == b"once"
        with pytest.raises(IntegrityError):
            reader.read_record(record)

    def test_mixed_batch_and_single_framing_amortised(self):
        chunks = [b"x" * 32] * 64
        batch_writer, batch_reader, batch_transport = pair()
        batch_writer.write_batch(chunks)
        single_writer, _reader, single_transport = pair()
        for chunk in chunks:
            single_writer.write(chunk)
        assert sum(map(len, batch_transport)) < sum(map(len, single_transport))
        assert batch_reader.read_record(batch_transport[0]) == b"".join(chunks)
