"""Tests for the shielded stdin path of a SCONE process."""

import pytest

from repro.errors import IntegrityError
from repro.scone.runtime import SconeProcess
from repro.scone.stream_shield import ShieldedStreamWriter
from repro.sgx.enclave import EnclaveCode
from tests.scone.test_runtime import build_fixture


def consume_stdin(ctx, env):
    data = env.read_stdin()
    env.stdout.write(b"consumed:" + data)
    return data


STDIN_CODE = EnclaveCode("stdin-app", {"main": consume_stdin})


def build_process(seed=15):
    platform, cas, store, fspf_blob, scf = build_fixture(seed=seed)
    cas.register_scf(STDIN_CODE.measurement, scf)
    stdin_transport = []
    process = SconeProcess(
        platform, STDIN_CODE, cas, store=store, fspf_blob=fspf_blob,
        stdin_transport=stdin_transport,
    )
    return process, scf, stdin_transport


class TestStdinPath:
    def test_sealed_stdin_readable_inside(self):
        process, scf, transport = build_process()
        writer = ShieldedStreamWriter(scf.stdin_key, "stdin", transport)
        writer.write(b"line one\n")
        writer.write(b"line two\n")
        writer.close()
        process.start()
        assert process.run("main") == b"line one\nline two\n"

    def test_stdin_transport_is_ciphertext(self):
        process, scf, transport = build_process()
        writer = ShieldedStreamWriter(scf.stdin_key, "stdin", transport)
        writer.write(b"SECRET-INPUT")
        assert all(b"SECRET-INPUT" not in record for record in transport)

    def test_tampered_stdin_rejected_inside(self):
        process, scf, transport = build_process()
        writer = ShieldedStreamWriter(scf.stdin_key, "stdin", transport)
        writer.write(b"data")
        writer.close()
        transport[0] = transport[0][:-1] + bytes([transport[0][-1] ^ 1])
        process.start()
        with pytest.raises(IntegrityError):
            process.run("main")

    def test_wrong_key_stdin_rejected(self):
        from repro.crypto.aead import AeadKey

        process, _scf, transport = build_process()
        stranger = ShieldedStreamWriter(AeadKey(b"\x0c" * 32), "stdin",
                                        transport)
        stranger.write(b"injected")
        process.start()
        with pytest.raises(IntegrityError):
            process.run("main")

    def test_empty_stdin_reads_empty(self):
        process, _scf, _transport = build_process()
        process.start()
        assert process.run("main") == b""
