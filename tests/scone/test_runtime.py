"""Tests for the SCONE process runtime."""

import pytest

from repro.errors import AttestationError, ConfigurationError
from repro.crypto.keys import KeyHierarchy
from repro.crypto.primitives import DeterministicRandomSource
from repro.scone.cas import ConfigurationService
from repro.scone.fs_shield import ProtectedVolume, UntrustedStore
from repro.scone.runtime import SconeProcess, SconeRuntimeConfig
from repro.scone.scf import StartupConfiguration
from repro.scone.stream_shield import ShieldedStreamReader
from repro.sgx.attestation import AttestationService
from repro.sgx.enclave import EnclaveCode
from repro.sgx.platform import SgxPlatform


def app_main(ctx, env):
    data = env.fs.read_all("/data/input.txt")
    env.stdout.write(b"processed:" + data)
    return len(data)


def write_file(ctx, env, path, payload):
    env.fs.write(path, payload)
    return env.fs.file_size(path)


APP_CODE = EnclaveCode("runtime-app", {"main": app_main, "write": write_file})


def build_fixture(seed=9):
    """A platform, CAS, pre-populated protected volume, and SCF."""
    platform = SgxPlatform(seed=seed, quoting_key_bits=512)
    attestation = AttestationService()
    attestation.register_platform(
        platform.platform_id, platform.quoting_enclave.public_key
    )
    cas = ConfigurationService(attestation, key_bits=512)

    hierarchy = KeyHierarchy.generate(DeterministicRandomSource(seed))
    store = UntrustedStore()
    volume = ProtectedVolume(store)
    volume.write("/data/input.txt", b"meter-readings")

    fspf_key = hierarchy.aead_key("fspf")
    fspf_blob = volume.protection.encrypt(fspf_key)
    scf = StartupConfiguration.create(
        hierarchy,
        volume.protection.content_hash(),
        arguments=("--job", "analytics"),
        environment={"TENANT": "utility-7"},
    )
    cas.register_scf(APP_CODE.measurement, scf)
    return platform, cas, store, fspf_blob, scf


class TestBoot:
    def test_start_and_run(self):
        platform, cas, store, fspf_blob, _scf = build_fixture()
        process = SconeProcess(platform, APP_CODE, cas, store=store,
                               fspf_blob=fspf_blob)
        process.start()
        assert process.run("main") == len(b"meter-readings")

    def test_run_before_start_rejected(self):
        platform, cas, store, fspf_blob, _scf = build_fixture()
        process = SconeProcess(platform, APP_CODE, cas, store=store,
                               fspf_blob=fspf_blob)
        with pytest.raises(ConfigurationError):
            process.run("main")

    def test_unregistered_code_cannot_boot(self):
        platform, cas, store, fspf_blob, _scf = build_fixture()
        rogue = EnclaveCode("rogue", {"main": app_main})
        process = SconeProcess(platform, rogue, cas, store=store,
                               fspf_blob=fspf_blob)
        with pytest.raises(AttestationError):
            process.start()

    def test_arguments_and_environment_delivered(self):
        platform, cas, store, fspf_blob, _scf = build_fixture()
        process = SconeProcess(platform, APP_CODE, cas, store=store,
                               fspf_blob=fspf_blob).start()
        assert process.env.arguments == ["--job", "analytics"]
        assert process.env.environment == {"TENANT": "utility-7"}

    def test_tampered_fspf_blob_rejected(self):
        from repro.errors import IntegrityError

        platform, cas, store, fspf_blob, _scf = build_fixture()
        tampered = bytearray(fspf_blob)
        tampered[-1] ^= 1
        process = SconeProcess(platform, APP_CODE, cas, store=store,
                               fspf_blob=bytes(tampered))
        with pytest.raises(IntegrityError):
            process.start()


class TestShieldedIo:
    def test_stdout_encrypted_and_readable_by_key_owner(self):
        platform, cas, store, fspf_blob, scf = build_fixture()
        process = SconeProcess(platform, APP_CODE, cas, store=store,
                               fspf_blob=fspf_blob).start()
        process.run("main")
        assert all(
            b"processed:" not in record for record in process.stdout_transport
        )
        reader = ShieldedStreamReader(
            scf.stdout_key, "stdout", process.stdout_transport
        )
        assert reader.drain() == b"processed:meter-readings"

    def test_files_written_inside_are_protected(self):
        platform, cas, store, fspf_blob, scf = build_fixture()
        process = SconeProcess(platform, APP_CODE, cas, store=store,
                               fspf_blob=fspf_blob).start()
        size = process.run("write", "/data/out.bin", b"derived-secret")
        assert size == len(b"derived-secret")
        for (path, index) in list(store._chunks):
            if path == "/data/out.bin":
                assert b"derived-secret" not in store.get(path, index)

    def test_sync_mode_configurable(self):
        platform, cas, store, fspf_blob, _scf = build_fixture()
        process = SconeProcess(
            platform, APP_CODE, cas, store=store, fspf_blob=fspf_blob,
            config=SconeRuntimeConfig(syscall_mode="sync"),
        ).start()
        from repro.scone.syscalls import SyncSyscallExecutor

        assert isinstance(process.env.syscalls, SyncSyscallExecutor)

    def test_invalid_syscall_mode_rejected(self):
        with pytest.raises(ConfigurationError):
            SconeRuntimeConfig(syscall_mode="magic")

    def test_stop_closes_streams_and_enclave(self):
        platform, cas, store, fspf_blob, scf = build_fixture()
        process = SconeProcess(platform, APP_CODE, cas, store=store,
                               fspf_blob=fspf_blob).start()
        process.run("main")
        process.stop()
        assert not process.started
        reader = ShieldedStreamReader(
            scf.stdout_key, "stdout", process.stdout_transport
        )
        reader.drain()
        assert reader.closed
