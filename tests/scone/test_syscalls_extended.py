"""Tests for the extended syscall surface (stat/unlink/sockets)."""

import pytest

from repro.errors import ConfigurationError, IntegrityError
from repro.sgx.costs import DEFAULT_COSTS
from repro.scone.syscalls import SimulatedKernel, SyncSyscallExecutor
from repro.sim.clock import CycleClock


def executor(kernel=None):
    return SyncSyscallExecutor(
        CycleClock(), kernel or SimulatedKernel(), DEFAULT_COSTS
    )


class TestFileMetadata:
    def test_stat_reports_size(self):
        ex = executor()
        fd = ex.call("open", "/f")
        ex.call("write", fd, b"12345")
        assert ex.call("stat", "/f") == {"size": 5}

    def test_stat_missing_file(self):
        with pytest.raises(ConfigurationError):
            executor().call("stat", "/ghost")

    def test_hostile_stat_rejected(self):
        ex = executor(SimulatedKernel(hostile=True))
        fd = ex.kernel._sys_open("/f")
        with pytest.raises(IntegrityError):
            ex.call("stat", "/f")

    def test_unlink_removes_file(self):
        ex = executor()
        fd = ex.call("open", "/f")
        ex.call("write", fd, b"x")
        ex.call("unlink", "/f")
        with pytest.raises(ConfigurationError):
            ex.call("stat", "/f")

    def test_unlink_missing_file(self):
        with pytest.raises(ConfigurationError):
            executor().call("unlink", "/ghost")


class TestSockets:
    def test_send_recv_loopback(self):
        ex = executor()
        server = ex.call("socket", "svc.example:9")
        client = ex.call("socket", "client.example:1")
        sent = ex.call("send", client, "svc.example:9", b"hello")
        assert sent == 5
        assert ex.call("recv", server, 100) == b"hello"

    def test_recv_empty_queue(self):
        ex = executor()
        fd = ex.call("socket", "svc:1")
        assert ex.call("recv", fd, 10) == b""

    def test_datagram_order_preserved(self):
        ex = executor()
        server = ex.call("socket", "s:1")
        client = ex.call("socket", "c:1")
        for payload in (b"one", b"two", b"three"):
            ex.call("send", client, "s:1", payload)
        received = [ex.call("recv", server, 10) for _ in range(3)]
        assert received == [b"one", b"two", b"three"]

    def test_send_to_unbound_address(self):
        ex = executor()
        fd = ex.call("socket", "c:1")
        with pytest.raises(ConfigurationError):
            ex.call("send", fd, "nowhere:0", b"x")

    def test_send_on_file_descriptor_rejected(self):
        ex = executor()
        fd = ex.call("open", "/f")
        with pytest.raises(ConfigurationError):
            ex.call("send", fd, "s:1", b"x")

    def test_recv_truncates_to_max(self):
        ex = executor()
        server = ex.call("socket", "s:1")
        client = ex.call("socket", "c:1")
        ex.call("send", client, "s:1", b"0123456789")
        assert ex.call("recv", server, 4) == b"0123"

    def test_hostile_recv_rejected(self):
        kernel = SimulatedKernel(hostile=True)
        ex = executor(kernel)
        server = kernel._sys_socket("s:1")
        client = kernel._sys_socket("c:1")
        kernel._sys_send(client, "s:1", b"data")
        kernel._descriptors[server] = ["socket:s:1", 0]
        with pytest.raises(IntegrityError):
            ex.call("recv", server, 4)

    def test_hostile_send_count_rejected(self):
        kernel = SimulatedKernel(hostile=True)
        ex = executor(kernel)
        kernel._sys_socket("s:1")
        client = kernel._sys_socket("c:1")
        kernel._descriptors[client] = ["socket:c:1", 0]
        with pytest.raises(IntegrityError):
            ex.call("send", client, "s:1", b"data")
