"""Tests for the SCF and its attested delivery via the CAS."""

import pytest

from repro.errors import AttestationError, IntegrityError
from repro.crypto.keys import KeyHierarchy
from repro.crypto.primitives import DeterministicRandomSource
from repro.scone.cas import ConfigurationService
from repro.scone.scf import StartupConfiguration
from repro.sgx.attestation import AttestationService
from repro.sgx.enclave import EnclaveCode
from repro.sgx.platform import SgxPlatform


def app_main(ctx, env):
    return "ran"


def other_main(ctx, env):
    return "other"


APP_CODE = EnclaveCode("app", {"main": app_main})
OTHER_CODE = EnclaveCode("app", {"main": other_main})


def make_scf(seed=0, fspf_hash=b"\x00" * 32):
    hierarchy = KeyHierarchy.generate(DeterministicRandomSource(seed))
    return StartupConfiguration.create(
        hierarchy,
        fspf_hash,
        arguments=("--mode", "prod"),
        environment={"REGION": "eu"},
    )


@pytest.fixture()
def platform():
    return SgxPlatform(seed=5, quoting_key_bits=512)


@pytest.fixture()
def cas(platform):
    attestation = AttestationService()
    attestation.register_platform(
        platform.platform_id, platform.quoting_enclave.public_key
    )
    return ConfigurationService(attestation, key_bits=512)


class TestScfSerialisation:
    def test_round_trip(self):
        scf = make_scf()
        assert StartupConfiguration.from_bytes(scf.to_bytes()) == scf

    def test_keys_deterministic_from_hierarchy(self):
        assert make_scf(seed=1) == make_scf(seed=1)
        assert make_scf(seed=1) != make_scf(seed=2)

    def test_stream_keys_independent(self):
        scf = make_scf()
        assert scf.stdin_key != scf.stdout_key
        assert scf.stdout_key != scf.stderr_key

    def test_malformed_rejected(self):
        with pytest.raises(IntegrityError):
            StartupConfiguration.from_bytes(b"not json")
        with pytest.raises(IntegrityError):
            StartupConfiguration.from_bytes(b"{}")


class TestCasProvisioning:
    def test_registered_enclave_receives_scf(self, platform, cas):
        scf = make_scf()
        cas.register_scf(APP_CODE.measurement, scf)
        enclave = platform.load_enclave(APP_CODE)
        delivered = cas.provision(platform, enclave)
        assert delivered == scf
        assert cas.delivered == 1

    def test_unregistered_enclave_denied(self, platform, cas):
        enclave = platform.load_enclave(APP_CODE)
        with pytest.raises(AttestationError):
            cas.provision(platform, enclave)
        assert cas.denied == 1

    def test_modified_code_denied(self, platform, cas):
        cas.register_scf(APP_CODE.measurement, make_scf())
        tampered = platform.load_enclave(OTHER_CODE)
        with pytest.raises(AttestationError):
            cas.provision(platform, tampered)

    def test_unregistered_platform_denied(self, cas):
        rogue_platform = SgxPlatform(seed=66, quoting_key_bits=512)
        cas.register_scf(APP_CODE.measurement, make_scf())
        enclave = rogue_platform.load_enclave(APP_CODE)
        with pytest.raises(AttestationError):
            cas.provision(rogue_platform, enclave)

    def test_each_measurement_gets_its_own_scf(self, platform, cas):
        scf_a = make_scf(seed=1)
        scf_b = make_scf(seed=2)
        code_b = EnclaveCode("app-b", {"main": app_main})
        cas.register_scf(APP_CODE.measurement, scf_a)
        cas.register_scf(code_b.measurement, scf_b)
        assert cas.provision(platform, platform.load_enclave(APP_CODE)) == scf_a
        assert cas.provision(platform, platform.load_enclave(code_b)) == scf_b

    def test_has_scf(self, cas):
        assert not cas.has_scf(APP_CODE.measurement)
        cas.register_scf(APP_CODE.measurement, make_scf())
        assert cas.has_scf(APP_CODE.measurement)
