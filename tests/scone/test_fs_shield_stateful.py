"""Stateful property test: the FS shield against a reference model.

Hypothesis drives random sequences of create/write/read/delete
operations against a :class:`ProtectedVolume` and a plain in-memory
reference; every read must agree, and a full-volume verification must
pass at any point.
"""

from hypothesis import settings
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    rule,
)
from hypothesis import strategies as st

from repro.scone.fs_shield import ProtectedVolume, UntrustedStore

PATHS = ["/a", "/b", "/dir/c"]


class FsShieldMachine(RuleBasedStateMachine):
    @initialize(chunk_size=st.sampled_from([16, 64, 256]))
    def setup(self, chunk_size):
        self.volume = ProtectedVolume(UntrustedStore(), chunk_size=chunk_size)
        self.reference = {}

    @rule(path=st.sampled_from(PATHS),
          data=st.binary(min_size=0, max_size=300),
          offset=st.integers(0, 400))
    def write(self, path, data, offset):
        self.volume.write(path, data, offset=offset)
        current = bytearray(self.reference.get(path, b""))
        if offset > len(current):
            current.extend(b"\x00" * (offset - len(current)))
        if len(current) < offset + len(data):
            current.extend(b"\x00" * (offset + len(data) - len(current)))
        current[offset : offset + len(data)] = data
        self.reference[path] = bytes(current)

    @rule(path=st.sampled_from(PATHS))
    def read_all(self, path):
        if path in self.reference:
            assert self.volume.read_all(path) == self.reference[path]

    @rule(path=st.sampled_from(PATHS),
          offset=st.integers(0, 400),
          length=st.integers(0, 200))
    def read_slice(self, path, offset, length):
        if path not in self.reference:
            return
        size = len(self.reference[path])
        offset = min(offset, size)
        length = min(length, size - offset)
        expected = self.reference[path][offset : offset + length]
        assert self.volume.read(path, offset, length) == expected

    @rule(path=st.sampled_from(PATHS))
    def delete(self, path):
        if path in self.reference:
            self.volume.delete(path)
            del self.reference[path]

    @invariant()
    def sizes_agree(self):
        for path, expected in self.reference.items():
            assert self.volume.file_size(path) == len(expected)

    @invariant()
    def volume_verifies(self):
        assert self.volume.verify_all()


TestFsShieldStateful = FsShieldMachine.TestCase
TestFsShieldStateful.settings = settings(
    max_examples=25, stateful_step_count=30, deadline=None
)
