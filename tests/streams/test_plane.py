import pytest

from repro.errors import (
    ConfigurationError,
    IntegrityError,
    SchedulingError,
)
from repro import telemetry
from repro.streams import StreamConfig

from tests.streams.conftest import WINDOW, make_plane, make_source


def test_config_validation():
    with pytest.raises(ConfigurationError):
        StreamConfig(queue_bound=0)
    with pytest.raises(ConfigurationError):
        StreamConfig(checkpoint_interval=0)
    with pytest.raises(ConfigurationError):
        StreamConfig(service_rate=0)


def test_plane_needs_sgx_nodes():
    from repro.cluster.nodes import NodeTopology
    from repro.streams import SecureStreamPlane
    topology = NodeTopology.build(2, seed=1, sgx_flags=[False, False])
    with pytest.raises(SchedulingError):
        SecureStreamPlane(topology, StreamConfig())


def test_shedding_is_accounted_exactly(grid, fleet):
    plane = make_plane(config=StreamConfig(
        window=dict(WINDOW), queue_bound=4, service_rate=1,
        checkpoint_interval=3, pane_budget=4,
    ))
    source = make_source(fleet, grid, plane)
    source.produce(0.0, 900.0)
    plane.drain([source])
    audit = plane.audit([source])
    assert audit["shed"] > 0
    assert audit["silent_loss"] == 0
    tombstoned = sum(
        frame["result"]["dropped"]
        for frame in plane.open_firings()
        if frame["kind"] == "shed"
    )
    assert tombstoned == audit["shed"]


def test_firing_meta_carries_shed_counts(grid, fleet):
    plane = make_plane(config=StreamConfig(
        window=dict(WINDOW), queue_bound=4, service_rate=1,
        checkpoint_interval=3, pane_budget=4,
    ))
    source = make_source(fleet, grid, plane)
    source.produce(0.0, 600.0)
    plane.drain([source])
    frames = plane.open_firings()
    assert all("shed_records" in frame["meta"] for frame in frames)
    assert max(frame["meta"]["shed_records"] for frame in frames) > 0


def test_telemetry_counters_and_gauges(grid, fleet):
    with telemetry.enabled() as registry:
        plane = make_plane()
        source = make_source(fleet, grid, plane)
        source.produce(0.0, 600.0)
        plane.pump([source])
        plane.fail_shard(0)
        plane.drain([source])
        snapshot = registry.to_json()
    assert b'"streams.committed_firings"' in snapshot
    assert b'"streams.recoveries"' in snapshot
    assert b'"streams.queue_depth{shard=0}"' in snapshot


def test_stats_surface(grid, fleet):
    plane = make_plane()
    source = make_source(fleet, grid, plane)
    source.produce(0.0, 300.0)
    plane.drain([source])
    stats = plane.shard_stats()
    assert set(stats) == set(plane.table.shard_ids())
    for stat in stats.values():
        assert {"open_panes", "buffered_records", "watermark",
                "late_records", "shed_records",
                "version"} <= set(stat)


def test_misrouted_batch_fails_closed(grid, fleet):
    """A host delivering a batch to the wrong shard fails the AEAD
    open -- misrouting can't double-count or vanish a reading."""
    plane = make_plane()
    source = make_source(fleet, grid, plane)
    source.produce(0.0, 60.0)
    source.release(plane)
    victim, other = plane.table.shard_ids()[:2]
    moved = [
        entry for entry in plane.shards[victim].queue
        if entry[0] == "batch"
    ]
    assert moved
    _kind, header, blob = moved[0]
    with pytest.raises(IntegrityError):
        plane.shards[other].enclave.ecall("ingest", header, blob)
    relabel = dict(header, shard=other)
    with pytest.raises(IntegrityError):
        plane.shards[other].enclave.ecall("ingest", relabel, blob)


def test_tampered_firing_fails_closed(grid, fleet):
    plane = make_plane()
    source = make_source(fleet, grid, plane)
    source.produce(0.0, 120.0)
    plane.drain([source])
    firing_id = next(iter(plane.committed))
    blob = bytearray(plane.committed[firing_id])
    blob[-1] ^= 0x01
    with pytest.raises(IntegrityError):
        plane.coordinator.ecall("open_firing", firing_id, bytes(blob))
    other = [fid for fid in plane.committed if fid != firing_id][0]
    with pytest.raises(IntegrityError):
        plane.coordinator.ecall(
            "open_firing", other, plane.committed[firing_id]
        )


def test_restore_refuses_foreign_and_live_state(grid, fleet):
    plane = make_plane()
    source = make_source(fleet, grid, plane)
    source.produce(0.0, 120.0)
    plane.pump([source])
    sid = plane.table.shard_ids()[0]
    checkpoint = plane.shards[sid].enclave.ecall("checkpoint")
    with pytest.raises(IntegrityError):
        plane.shards[sid].enclave.ecall("restore", checkpoint["blob"])
    other = plane.table.shard_ids()[1]
    plane._service_shard(other)
    plane.shards[other].enclave.ecall("flush")
    with pytest.raises(IntegrityError):
        plane.shards[other].enclave.ecall("restore", checkpoint["blob"])


def test_commit_latency_is_observable(grid, fleet):
    plane = make_plane()
    source = make_source(fleet, grid, plane)
    source.produce(0.0, 300.0)
    plane.drain([source])
    frames = plane.open_firings()
    assert all("commit_time" in frame for frame in frames)
    lags = [
        frame["commit_time"]
        - (frame["window_end"] + WINDOW["lateness"])
        for frame in frames
    ]
    assert all(lag == lag for lag in lags)  # finite, well-defined
