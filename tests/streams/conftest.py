import pytest

from repro.cluster.nodes import NodeTopology
from repro.smartgrid.meters import SmartMeterFleet
from repro.smartgrid.topology import GridTopology
from repro.streams import MeterStreamSource, SecureStreamPlane, StreamConfig

WINDOW = {"kind": "tumbling", "size": 60.0, "lateness": 30.0}


@pytest.fixture
def grid():
    return GridTopology.build(2, 2, 3)


@pytest.fixture
def fleet(grid):
    return SmartMeterFleet(grid, seed=11)


def make_plane(config=None, shards=2, seed=3, nodes=4, **kwargs):
    topology = NodeTopology.build(nodes, seed=7)
    config = config or StreamConfig(
        window=dict(WINDOW), queue_bound=6, service_rate=2,
        checkpoint_interval=3,
    )
    return SecureStreamPlane(
        topology, config, shards=shards, seed=seed, **kwargs
    )


def make_source(fleet, grid, plane, batch_records=12):
    return MeterStreamSource(
        "head-0", fleet, grid.meters, plane.ingest_key_bytes,
        batch_records=batch_records,
    )
