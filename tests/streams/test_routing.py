import pytest

from repro.errors import ConfigurationError
from repro.streams import KEY_SPACE, KeyRange, RoutingTable, key_slot


def test_key_slot_is_stable_and_in_range():
    assert key_slot("meter-0-0-00") == key_slot("meter-0-0-00")
    assert 0 <= key_slot("meter-0-0-00") < KEY_SPACE
    assert key_slot("meter-0-0-00") != key_slot("meter-0-0-01")


def test_key_range_validation():
    with pytest.raises(ConfigurationError):
        KeyRange(5, 5)
    with pytest.raises(ConfigurationError):
        KeyRange(-1, 10)
    with pytest.raises(ConfigurationError):
        KeyRange(0, KEY_SPACE + 1)


def test_key_range_split_and_merge_roundtrip():
    whole = KeyRange(0, 100)
    low, high = whole.split()
    assert (low.lo, low.hi, high.lo, high.hi) == (0, 50, 50, 100)
    assert low.adjacent(high) and high.adjacent(low)
    assert low.merge(high) == whole
    assert high.merge(low) == whole


def test_key_range_split_single_slot_fails():
    with pytest.raises(ConfigurationError):
        KeyRange(3, 4).split()


def test_key_range_merge_requires_adjacency():
    with pytest.raises(ConfigurationError):
        KeyRange(0, 10).merge(KeyRange(20, 30))


def test_key_range_json_roundtrip():
    assert KeyRange.from_json(KeyRange(7, 9).to_json()) == KeyRange(7, 9)


def test_even_table_tiles_the_space():
    table = RoutingTable.even(range(3))
    assert table.shard_ids() == [0, 1, 2]
    total = sum(table.range_of(sid).width for sid in table.shard_ids())
    assert total == KEY_SPACE
    table.check_invariants()
    assert 1 in table
    assert len(table) == 3


def test_empty_table_rejected():
    with pytest.raises(ConfigurationError):
        RoutingTable.even([])


def test_every_key_has_exactly_one_owner():
    table = RoutingTable.even(range(4))
    for slot in (0, 1, KEY_SPACE // 2, KEY_SPACE - 1):
        owners = [
            sid for sid in table.shard_ids()
            if table.range_of(sid).contains(slot)
        ]
        assert owners == [table.owner_of_slot(slot)]


def test_split_moves_upper_half_and_bumps_epoch():
    table = RoutingTable.even(range(2))
    before = table.range_of(0)
    kept, moved = table.split(0, 2)
    assert kept.hi == moved.lo
    assert kept.lo == before.lo and moved.hi == before.hi
    assert table.epoch == 1
    table.check_invariants()
    assert table.range_of(2) == moved


def test_split_onto_existing_shard_fails():
    table = RoutingTable.even(range(2))
    with pytest.raises(ConfigurationError):
        table.split(0, 1)


def test_merge_restores_coverage():
    table = RoutingTable.even(range(2))
    table.split(0, 2)
    merged = table.merge(0, 2)
    assert merged == RoutingTable.even(range(2)).range_of(0)
    assert 2 not in table
    table.check_invariants()


def test_unknown_shard_raises():
    table = RoutingTable.even(range(2))
    with pytest.raises(ConfigurationError):
        table.range_of(9)


def test_neighbour_is_adjacent():
    table = RoutingTable.even(range(3))
    neighbour = table.neighbour(1)
    assert table.range_of(1).adjacent(table.range_of(neighbour))
    table2 = RoutingTable.even([0])
    assert table2.neighbour(0) is None


def test_invariant_violation_detected():
    with pytest.raises(ConfigurationError):
        RoutingTable({0: KeyRange(0, 10), 1: KeyRange(20, KEY_SPACE)})
    with pytest.raises(ConfigurationError):
        RoutingTable({0: KeyRange(0, 10)})


def test_to_json_is_sorted_and_stable():
    table = RoutingTable.even(range(2))
    assert table.to_json() == RoutingTable.even(range(2)).to_json()
