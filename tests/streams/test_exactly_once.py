from repro.chaos.injector import ChaosConfig, ChaosInjector, FaultSchedule
from repro.sim.events import Environment
from repro.streams import StreamConfig

from tests.streams.conftest import WINDOW, make_plane, make_source
from tests.streams.oracle import expected_windows, frame_rows, produced_records


def run_clean(grid, fleet, horizon=900.0):
    plane = make_plane()
    source = make_source(fleet, grid, plane)
    source.produce(0.0, horizon)
    plane.drain([source])
    return frame_rows(plane.open_firings())


def test_shard_crash_replays_to_oracle(grid, fleet):
    baseline = run_clean(grid, fleet)
    plane = make_plane()
    source = make_source(fleet, grid, plane)
    source.produce(0.0, 900.0)
    rounds = 0
    while source.backlog or any(
        plane.shards[sid].queue for sid in plane.table.shard_ids()
    ):
        rounds += 1
        plane.pump([source])
        if rounds in (2, 5):
            plane.fail_shard(plane.table.shard_ids()[rounds % 2])
    plane.drain([source])
    assert plane.recoveries >= 2
    assert frame_rows(plane.open_firings()) == baseline
    audit = plane.audit([source])
    assert audit["silent_loss"] == 0


def test_replay_dedupes_committed_firings(grid, fleet):
    """Crash after committed-but-unchecked-pointed closings: the replay
    re-emits them and the committer must suppress every duplicate."""
    plane = make_plane(config=StreamConfig(
        window={"kind": "tumbling", "size": 60.0, "lateness": 0.0},
        queue_bound=8, service_rate=8, checkpoint_interval=50,
    ), shards=1)
    source = make_source(fleet, grid, plane)
    source.produce(0.0, 300.0)
    plane.drain([source])
    committed_before = len(plane.committed)
    assert committed_before > 0
    assert len(plane.shards[0].log) > 0
    plane.fail_shard(0)
    plane.pump([source])
    assert plane.duplicates_suppressed > 0
    assert len(plane.committed) == committed_before


def test_fault_schedule_crash_shard_and_node(grid, fleet):
    baseline = run_clean(grid, fleet)
    env = Environment()
    injector = ChaosInjector(ChaosConfig(seed=5))
    schedule = FaultSchedule(env, injector)
    plane = make_plane(env=env)
    source = make_source(fleet, grid, plane)
    source.produce(0.0, 900.0)
    schedule.crash_shard_at(90.0, plane, 0)
    schedule.crash_node_at(180.0, plane, plane.shards[1].node.name)
    plane.drain([source])
    assert {kind for _t, kind, _name in schedule.fired} == {
        "shard-crash", "node-crash",
    }
    assert plane.shard_crashes >= 1 and plane.node_failures >= 1
    assert frame_rows(plane.open_firings()) == baseline
    assert plane.audit([source])["silent_loss"] == 0


def test_chaos_rate_churn_is_lossless(grid, fleet):
    baseline = run_clean(grid, fleet)
    injector = ChaosInjector(ChaosConfig(seed=9, shard_crash_rate=0.04))
    plane = make_plane(chaos=injector)
    source = make_source(fleet, grid, plane)
    source.produce(0.0, 900.0)
    plane.drain([source])
    assert frame_rows(plane.open_firings()) == baseline
    audit = plane.audit([source])
    assert audit["silent_loss"] == 0
    assert plane.duplicates_suppressed >= 0  # dedupe armed throughout


def test_recovery_latency_is_recorded(grid, fleet):
    plane = make_plane()
    source = make_source(fleet, grid, plane)
    source.produce(0.0, 300.0)
    plane.pump([source])
    plane.fail_shard(0)
    plane.drain([source])
    assert plane.recoveries >= 1
    assert len(plane.recovery_episodes) == plane.recoveries
    assert all(ms >= 0.0 for ms in plane.recovery_episodes)


def test_same_seed_runs_are_identical(grid, fleet):
    def run():
        from repro.chaos.injector import ChaosConfig, ChaosInjector
        injector = ChaosInjector(ChaosConfig(seed=13, shard_crash_rate=0.05))
        plane = make_plane(chaos=injector)
        source = make_source(fleet, grid, plane)
        source.produce(0.0, 600.0)
        plane.drain([source])
        return (
            frame_rows(plane.open_firings()),
            plane.recoveries,
            plane.duplicates_suppressed,
        )

    assert run() == run()


def test_oracle_matches_clean_run(grid, fleet):
    records = produced_records(fleet, grid.meters, 0.0, 900.0)
    assert run_clean(grid, fleet) == expected_windows(
        records, WINDOW["size"]
    )
