"""A pure-python oracle for the sealed streaming plane.

Computes the expected tumbling-window output straight from the reading
records -- no operators, no shards, no sealing -- so "oracle-equal"
really compares the distributed machinery against an independent
reduction of the same inputs.
"""

from repro.streams import meter_window_aggregate


def expected_windows(records, size):
    """Expected ``(window_start, key, result)`` rows, plane-ordered.

    Assumes every record lands (no shedding, nothing late): each
    reading belongs to exactly one tumbling pane of its meter.
    """
    panes = {}
    for record in records:
        window_start = (record["t"] // size) * size
        panes.setdefault((window_start, record["meter"]), []).append(record)
    rows = []
    for (window_start, key), members in panes.items():
        rows.append((window_start, key, meter_window_aggregate(members)))
    rows.sort(key=lambda row: (row[0], str(row[1])))
    return rows


def frame_rows(frames):
    """Project plane firing frames onto the oracle's row shape."""
    return sorted(
        (
            (frame["window_start"], frame["key"], frame["result"])
            for frame in frames
            if frame["kind"] == "window"
        ),
        key=lambda row: (row[0], str(row[1])),
    )


def produced_records(fleet, meters, start, end):
    """The exact records a :class:`MeterStreamSource` would produce."""
    records = []
    timestamp = start
    while timestamp < end:
        for meter in meters:
            records.append(fleet.reading(meter, timestamp).to_record())
        timestamp += fleet.interval
    return records
