import pytest

from repro.errors import ConfigurationError, IntegrityError
from repro.streams import StreamConfig

from tests.streams.conftest import WINDOW, make_plane, make_source
from tests.streams.oracle import expected_windows, frame_rows, produced_records


def scaling_config(**overrides):
    base = dict(
        window=dict(WINDOW), queue_bound=6, service_rate=2,
        checkpoint_interval=3, split_queue_watermark=3,
        merge_idle_rounds=2, max_shards=6,
    )
    base.update(overrides)
    return StreamConfig(**base)


def test_burst_splits_then_merges_back(grid, fleet):
    plane = make_plane(config=scaling_config())
    source = make_source(fleet, grid, plane)
    source.produce(0.0, 900.0)
    plane.drain([source])
    assert plane.splits > 0
    assert len(plane.shards) > 2
    for _ in range(12):   # idle rounds let the merge trigger fire
        plane.pump([source])
    assert plane.merges > 0
    assert len(plane.shards) == 2


def test_scaling_is_lossless_and_duplicate_free(grid, fleet):
    plane = make_plane(config=scaling_config())
    source = make_source(fleet, grid, plane)
    source.produce(0.0, 900.0)
    plane.drain([source])
    for _ in range(12):
        plane.pump([source])
    records = produced_records(fleet, grid.meters, 0.0, 900.0)
    assert frame_rows(plane.open_firings()) == expected_windows(
        records, WINDOW["size"]
    )
    audit = plane.audit([source])
    assert audit["silent_loss"] == 0


def test_max_shards_caps_splitting(grid, fleet):
    plane = make_plane(config=scaling_config(max_shards=3))
    source = make_source(fleet, grid, plane)
    source.produce(0.0, 900.0)
    plane.drain([source])
    assert len(plane.shards) <= 3


def test_routing_invariants_hold_across_scaling(grid, fleet):
    plane = make_plane(config=scaling_config())
    source = make_source(fleet, grid, plane)
    source.produce(0.0, 900.0)
    while source.backlog or any(
        plane.shards[sid].queue for sid in plane.table.shard_ids()
    ):
        plane.pump([source])
        plane.table.check_invariants()
        assert set(plane.table.shard_ids()) == set(plane.shards)


def test_handoff_blob_fails_closed_elsewhere(grid, fleet):
    """A range handoff sealed for one recipient cannot be replayed into
    another shard, and cannot be adopted twice."""
    plane = make_plane(shards=3)
    donor = plane.table.shard_ids()[0]
    new_id = plane.split_shard(donor)
    moved = plane.table.range_of(new_id)
    blob = plane.shards[new_id].enclave.ecall(
        "extract_range", moved.to_json(), donor
    )
    other = plane.table.shard_ids()[-1]
    with pytest.raises(IntegrityError):
        plane.shards[other].enclave.ecall("load_range", new_id, blob)
    plane.shards[donor].enclave.ecall("load_range", new_id, blob)
    with pytest.raises((IntegrityError, ConfigurationError)):
        plane.shards[donor].enclave.ecall("load_range", new_id, blob)


def test_extract_requires_edge_alignment(grid, fleet):
    plane = make_plane(shards=1)
    owned = plane.table.range_of(0)
    middle = [owned.lo + owned.width // 4, owned.hi - owned.width // 4]
    with pytest.raises(ConfigurationError):
        plane.shards[0].enclave.ecall("extract_range", middle, 1)


def test_split_during_load_keeps_records_flowing(grid, fleet):
    """Records released before and after a cutover all land once."""
    plane = make_plane(config=scaling_config())
    source = make_source(fleet, grid, plane)
    source.produce(0.0, 300.0)
    plane.pump([source])
    plane.split_shard(plane.table.shard_ids()[0])
    source.produce(300.0, 600.0)
    plane.drain([source])
    audit = plane.audit([source])
    assert audit["silent_loss"] == 0
    records = produced_records(fleet, grid.meters, 0.0, 600.0)
    assert frame_rows(plane.open_firings()) == expected_windows(
        records, WINDOW["size"]
    )
