import pytest

from repro.bigdata.streaming import TumblingWindow
from repro.errors import ConfigurationError
from repro.streams import OldestPaneShedPolicy, meter_tenant


def test_meter_tenant_is_feeder_prefix():
    assert meter_tenant("meter-0-1-07") == "meter-0"
    assert meter_tenant("meter-3-0-00") == "meter-3"
    assert meter_tenant("oddkey") == "oddkey"


def test_victim_prefers_biggest_tenant_oldest_pane():
    policy = OldestPaneShedPolicy(meter_tenant)
    panes = [
        (0.0, "meter-0-0-00", 4),
        (60.0, "meter-0-0-01", 4),
        (0.0, "meter-1-0-00", 4),
    ]
    # Tenant meter-0 holds two panes; its oldest pane sheds first.
    assert policy.victim(panes) == (0.0, "meter-0-0-00")


def test_victim_tie_breaks_deterministically():
    policy = OldestPaneShedPolicy(meter_tenant)
    panes = [
        (0.0, "meter-1-0-00", 1),
        (0.0, "meter-0-0-00", 1),
    ]
    # Equal tenant sizes: lexicographically greatest tenant name wins
    # (total order, no ambient state), then oldest pane.
    first = policy.victim(panes)
    assert first == policy.victim(list(reversed(panes)))


def test_victim_requires_panes():
    with pytest.raises(ConfigurationError):
        OldestPaneShedPolicy().victim([])


def test_shed_to_budget_counts_and_reaches_budget():
    operator = TumblingWindow(
        60.0, len, key_fn=lambda record: record["meter"]
    )
    for index in range(6):
        operator.ingest(5.0, {"meter": "meter-0-0-%02d" % index})
    policy = OldestPaneShedPolicy(meter_tenant)
    shed = policy.shed_to_budget(operator, 2)
    assert operator.open_windows == 2
    assert sum(dropped for _ws, _key, dropped in shed) == 4
    assert operator.shed_records == 4


def test_shed_to_budget_rejects_zero_budget():
    operator = TumblingWindow(60.0, len)
    with pytest.raises(ConfigurationError):
        OldestPaneShedPolicy().shed_to_budget(operator, 0)


def test_default_tenant_fn_is_identity():
    policy = OldestPaneShedPolicy()
    assert policy.victim([(0.0, "a", 1), (0.0, "b", 2)]) in (
        (0.0, "a"), (0.0, "b"),
    )
