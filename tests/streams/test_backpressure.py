import pytest

from repro.errors import CapacityError
from repro.streams import StreamConfig

from tests.streams.conftest import WINDOW, make_plane, make_source
from tests.streams.oracle import expected_windows, frame_rows, produced_records


def slow_config(**overrides):
    base = dict(
        window=dict(WINDOW), queue_bound=3, service_rate=1,
        checkpoint_interval=3,
    )
    base.update(overrides)
    return StreamConfig(**base)


def test_queue_bound_is_never_exceeded(grid, fleet):
    plane = make_plane(config=slow_config())
    source = make_source(fleet, grid, plane, batch_records=6)
    source.produce(0.0, 600.0)
    while source.backlog or any(
        plane.shards[sid].queue for sid in plane.table.shard_ids()
    ):
        plane.pump([source])
        assert all(
            depth <= plane.config.queue_bound
            for depth in plane.queue_depths().values()
        )
    assert source.throttle_events > 0


def test_enqueue_fails_closed_when_full(grid, fleet):
    plane = make_plane(config=slow_config())
    shard_id = plane.table.shard_ids()[0]
    for _ in range(plane.config.queue_bound):
        plane.shards[shard_id].queue.append(("batch", {"count": 0}, b""))
    with pytest.raises(CapacityError):
        plane.enqueue(shard_id, {"count": 0}, b"")


def test_credits_mirror_free_slots(grid, fleet):
    plane = make_plane(config=slow_config())
    shard_id = plane.table.shard_ids()[0]
    assert plane.credits(shard_id) == plane.config.queue_bound
    plane.enqueue(shard_id, {"count": 0}, b"x")
    assert plane.credits(shard_id) == plane.config.queue_bound - 1


def test_throttled_records_are_never_late(grid, fleet):
    """Backpressure holds the watermark: a throttled reading must not
    be judged late once it finally releases."""
    plane = make_plane(config=slow_config())
    source = make_source(fleet, grid, plane, batch_records=6)
    source.produce(0.0, 900.0)   # 3x more than the plane drains per round
    plane.drain([source])
    audit = plane.audit([source])
    assert audit["late"] == 0
    assert audit["silent_loss"] == 0
    assert audit["backlog"] == 0


def test_overload_drains_to_oracle(grid, fleet):
    plane = make_plane(config=slow_config())
    source = make_source(fleet, grid, plane, batch_records=6)
    source.produce(0.0, 900.0)
    plane.drain([source])
    records = produced_records(fleet, grid.meters, 0.0, 900.0)
    assert frame_rows(plane.open_firings()) == expected_windows(
        records, WINDOW["size"]
    )


def test_release_preserves_order_under_partial_credit(grid, fleet):
    """One blocked target blocks the whole source (head-of-line), so
    released_through stays monotonic."""
    plane = make_plane(config=slow_config())
    source = make_source(fleet, grid, plane, batch_records=6)
    source.produce(0.0, 600.0)
    marks = []
    while source.backlog or any(
        plane.shards[sid].queue for sid in plane.table.shard_ids()
    ):
        plane.pump([source])
        marks.append(source.released_through)
    assert marks == sorted(marks)
    assert source.released == source.produced
