"""Tests for the seeded fault injector and scheduled faults."""

import pytest

from repro.chaos import (
    ChaosConfig,
    ChaosInjector,
    ChaosSyscallExecutor,
    ChaosVolume,
    FaultSchedule,
)
from repro.errors import ConfigurationError, StorageUnavailableError
from repro.scone.fs_shield import ProtectedVolume, UntrustedStore
from repro.sim.events import Environment


class TestChaosConfig:
    def test_rates_must_be_probabilities(self):
        with pytest.raises(ConfigurationError):
            ChaosConfig(message_drop_rate=1.5)
        with pytest.raises(ConfigurationError):
            ChaosConfig(mapper_crash_rate=-0.1)

    def test_config_or_overrides_not_both(self):
        with pytest.raises(ConfigurationError):
            ChaosInjector(ChaosConfig(), message_drop_rate=0.5)


class TestDecisions:
    def test_same_seed_same_decisions(self):
        a = ChaosInjector(seed=3, message_drop_rate=0.3)
        b = ChaosInjector(seed=3, message_drop_rate=0.3)
        decisions_a = [a.drops_message("t", i) for i in range(200)]
        decisions_b = [b.drops_message("t", i) for i in range(200)]
        assert decisions_a == decisions_b
        assert any(decisions_a) and not all(decisions_a)

    def test_decisions_are_order_independent(self):
        forward = ChaosInjector(seed=9, frame_corruption_rate=0.4)
        backward = ChaosInjector(seed=9, frame_corruption_rate=0.4)
        order_a = [forward.corrupts_frame(b"t", i) for i in range(64)]
        order_b = [
            backward.corrupts_frame(b"t", i) for i in reversed(range(64))
        ]
        assert order_a == list(reversed(order_b))
        assert forward.log() == backward.log()

    def test_attempts_are_independent_draws(self):
        injector = ChaosInjector(seed=5, storage_failure_rate=0.5)
        attempts = [
            injector.storage_fails("write", "/p", attempt)
            for attempt in range(40)
        ]
        # With rate 0.5, forty dependent draws would be all-true or
        # all-false; independence means both outcomes appear.
        assert any(attempts) and not all(attempts)

    def test_different_seeds_differ(self):
        a = ChaosInjector(seed=1, message_drop_rate=0.3)
        b = ChaosInjector(seed=2, message_drop_rate=0.3)
        assert [a.drops_message("t", i) for i in range(100)] != [
            b.drops_message("t", i) for i in range(100)
        ]

    def test_zero_rate_never_fires(self):
        injector = ChaosInjector(seed=1)
        assert not any(injector.drops_message("t", i) for i in range(50))
        assert injector.injections == 0

    def test_log_and_counts(self):
        injector = ChaosInjector(seed=3, message_drop_rate=1.0)
        injector.drops_message("t", 0)
        injector.drops_message("t", 1)
        assert injector.injections == 2
        assert injector.counts() == {"message-drop": 2}

    def test_delay_is_bounded_and_deterministic(self):
        a = ChaosInjector(seed=11, message_delay_rate=1.0,
                          message_delay_max=0.001)
        b = ChaosInjector(seed=11, message_delay_rate=1.0,
                          message_delay_max=0.001)
        delays = [a.delay_for_message("t", i) for i in range(20)]
        assert delays == [b.delay_for_message("t", i) for i in range(20)]
        assert all(0.0 <= delay <= 0.001 for delay in delays)


class TestChaosVolume:
    def test_failures_are_transient_and_typed(self):
        volume = ProtectedVolume(UntrustedStore(), chunk_size=128)
        chaotic = ChaosVolume(volume, ChaosInjector(
            seed=2, storage_failure_rate=1.0
        ))
        with pytest.raises(StorageUnavailableError):
            chaotic.write("/f", b"x")
        assert chaotic.failures_injected == 1

    def test_exists_stays_reliable(self):
        volume = ProtectedVolume(UntrustedStore(), chunk_size=128)
        chaotic = ChaosVolume(volume, ChaosInjector(
            seed=2, storage_failure_rate=1.0
        ))
        assert chaotic.exists("/nope") is False


class TestFaultSchedule:
    def test_fires_at_virtual_time(self):
        env = Environment()
        injector = ChaosInjector(seed=1)
        schedule = FaultSchedule(env, injector=injector)
        struck = []
        schedule.call_at(0.5, "custom", "thing", lambda: struck.append(env.now))
        env.run()
        assert struck == [0.5]
        assert schedule.fired == [(0.5, "custom", "thing")]
        assert injector.counts() == {"custom": 1}

    def test_past_time_rejected(self):
        env = Environment()
        env.run(until=1.0)
        schedule = FaultSchedule(env)
        with pytest.raises(Exception):
            schedule.call_at(0.5, "late", "thing", lambda: None)


class TestChaosSyscallExecutor:
    def test_stall_charges_cycles(self):
        from repro.sgx.costs import DEFAULT_COSTS
        from repro.scone.syscalls import AsyncSyscallExecutor, SimulatedKernel
        from repro.sim.clock import CycleClock

        clock = CycleClock()
        executor = AsyncSyscallExecutor(
            clock, SimulatedKernel(), DEFAULT_COSTS
        )
        calm = AsyncSyscallExecutor(
            CycleClock(), SimulatedKernel(), DEFAULT_COSTS
        )
        chaotic = ChaosSyscallExecutor(executor, ChaosInjector(
            seed=4, syscall_stall_rate=1.0, syscall_stall_cycles=1000
        ))
        chaotic.call("open", "/tmp/f")
        calm.call("open", "/tmp/f")
        assert chaotic.stalled == 1
        assert clock.now - calm.clock.now >= 1000


class _FailActive:
    name = "rb-0"

    def __init__(self):
        self.failed = 0

    def fail_active(self):
        self.failed += 1


class _Failable:
    name = "svc-1"

    def __init__(self):
        self.failed = 0

    def fail(self):
        self.failed += 1


class TestFailAt:
    def test_fail_active_target_records_broker_failure(self):
        env = Environment()
        injector = ChaosInjector(seed=1)
        schedule = FaultSchedule(env, injector=injector)
        broker = _FailActive()
        schedule.fail_at(0.25, broker)
        env.run()
        assert broker.failed == 1
        assert schedule.fired == [(0.25, "broker-failure", "rb-0")]

    def test_fail_broker_at_is_a_thin_alias(self):
        env = Environment()
        schedule = FaultSchedule(env)
        broker = _FailActive()
        schedule.fail_broker_at(0.1, broker)
        env.run()
        assert broker.failed == 1
        assert schedule.fired == [(0.1, "broker-failure", "rb-0")]

    def test_fail_method_and_callable_targets(self):
        env = Environment()
        schedule = FaultSchedule(env)
        target = _Failable()
        struck = []

        def pull_the_plug():
            struck.append(env.now)

        schedule.fail_at(0.2, target)
        schedule.fail_at(0.3, pull_the_plug, kind="power-loss")
        env.run()
        assert target.failed == 1
        assert struck == [0.3]
        assert schedule.fired == [
            (0.2, "target-failure", "svc-1"),
            (0.3, "power-loss", "pull_the_plug"),
        ]

    def test_unfailable_target_rejected(self):
        schedule = FaultSchedule(Environment())
        with pytest.raises(ConfigurationError):
            schedule.fail_at(0.1, object())

    def test_crash_shard_at_names_the_shard(self):
        env = Environment()

        class _Plane:
            name = "scbr-plane"

            def __init__(self):
                self.killed = []

            def fail_shard(self, shard_id):
                self.killed.append(shard_id)

        plane = _Plane()
        schedule = FaultSchedule(env)
        schedule.crash_shard_at(0.4, plane, 2)
        env.run()
        assert plane.killed == [2]
        assert schedule.fired == [(0.4, "shard-crash", "scbr-plane/shard-2")]


class TestRateFieldDiscovery:
    """Every *_rate dataclass field is validated -- by discovery, not a
    hand-maintained list, so a new fault rate can never skip it."""

    def test_every_rate_field_is_validated(self):
        import dataclasses

        rate_fields = [
            spec.name for spec in dataclasses.fields(ChaosConfig)
            if spec.name.endswith("_rate")
        ]
        assert "node_crash_rate" in rate_fields
        assert "node_partition_rate" in rate_fields
        for name in rate_fields:
            with pytest.raises(ConfigurationError):
                ChaosConfig(**{name: 1.01})
            with pytest.raises(ConfigurationError):
                ChaosConfig(**{name: -0.01})
            # In-range values pass for every discovered field.
            ChaosConfig(**{name: 0.5})

    def test_non_rate_fields_are_not_probability_checked(self):
        # Durations and cycle counts may exceed 1.0 freely.
        ChaosConfig(message_delay_max=2.0, node_partition_max=3.0,
                    syscall_stall_cycles=10**9)


class TestNodeFaults:
    def test_node_crash_is_seeded_and_order_independent(self):
        a = ChaosInjector(seed=13, node_crash_rate=0.3)
        b = ChaosInjector(seed=13, node_crash_rate=0.3)
        hits_a = [a.crashes_node("node-1", op) for op in range(60)]
        hits_b = [b.crashes_node("node-1", op) for op in reversed(range(60))]
        assert hits_a == list(reversed(hits_b))
        assert any(hits_a) and not all(hits_a)
        assert a.log() == b.log()

    def test_node_partition_duration_bounded_and_deterministic(self):
        a = ChaosInjector(seed=13, node_partition_rate=1.0,
                          node_partition_max=0.002)
        b = ChaosInjector(seed=13, node_partition_rate=1.0,
                          node_partition_max=0.002)
        durations = [a.partition_for_node("node-2", op) for op in range(20)]
        assert durations == [
            b.partition_for_node("node-2", op) for op in range(20)
        ]
        assert all(0.0 <= d <= 0.002 for d in durations)
        assert any(d > 0.0 for d in durations)

    def test_zero_rates_never_fire(self):
        injector = ChaosInjector(seed=13)
        assert not any(injector.crashes_node("n", op) for op in range(30))
        assert all(
            injector.partition_for_node("n", op) == 0.0 for op in range(30)
        )
        assert injector.injections == 0

    def test_schedule_crash_and_partition_node(self):
        class _Plane:
            name = "plane"

            def __init__(self):
                self.failed = []
                self.partitioned = []

            def fail_node(self, name):
                self.failed.append(name)

            def partition_node(self, name, duration):
                self.partitioned.append((name, duration))

        env = Environment()
        injector = ChaosInjector(seed=1)
        schedule = FaultSchedule(env, injector=injector)
        plane = _Plane()
        schedule.crash_node_at(0.2, plane, "node-0")
        schedule.partition_node_at(0.3, plane, "node-1", 0.05)
        env.run()
        assert plane.failed == ["node-0"]
        assert plane.partitioned == [("node-1", 0.05)]
        assert [entry[1] for entry in schedule.fired] == [
            "node-crash", "node-partition"
        ]
        assert injector.counts() == {"node-crash": 1, "node-partition": 1}
