"""Seeded chaos must be reproducible: same seed, same faults, same logs.

Every chaos decision is a pure function of (seed, fault kind,
coordinates), so two runs of the same scenario with the same seed must
inject the same faults, trigger the same detections, and recover along
the same path -- even when the workload itself is multi-threaded.
Without this property every chaos test in the suite would be flaky by
construction.
"""

from repro.chaos import ChaosBus, ChaosInjector, FaultSchedule
from repro.crypto.aead import AeadKey
from repro.microservices.eventbus import (
    ReliableEventBus,
    ReliableSubscriber,
    SealedEvent,
)
from repro.microservices.orchestrator import Orchestrator
from repro.microservices.qos import QosMonitor
from repro.microservices.registry import ServiceRegistry
from repro.retry import RetryPolicy
from repro.bigdata.mapreduce import MapReduceJob, SecureMapReduce
from repro.scbr import (
    Constraint,
    FailoverClient,
    Operator,
    Publication,
    ReplicatedBroker,
    Subscription,
)
from repro.sgx.attestation import AttestationService
from repro.sgx.platform import SgxPlatform
from repro.sim.events import Environment

SEED = 97


def _bus_detection_log():
    """Run a lossy bus scenario; return (injection log, detection log)."""
    env = Environment()
    bus = ReliableEventBus(env, latency=0.0001, retention=64)
    chaos = ChaosInjector(seed=SEED, message_drop_rate=0.2,
                          message_duplicate_rate=0.1,
                          message_delay_rate=0.1)
    chaotic = ChaosBus(bus, chaos)
    orchestrator = Orchestrator(env, QosMonitor(env), ServiceRegistry())
    key = AeadKey(b"\x41" * 32)
    subscriber = ReliableSubscriber(
        chaotic, "t", lambda e: e.open(key), orchestrator=orchestrator
    )
    for index in range(40):
        def publish(index=index):
            sequence = bus.next_sequence("t")
            chaotic.publish(SealedEvent.seal(key, "t", "gen", sequence,
                                             b"m%d" % index))
        env.call_at(0.001 * (index + 1), publish)
    env.run()
    detections = [
        (d.service_name, d.kind, d.detected_at)
        for d in orchestrator.detections
    ]
    return chaos.log(), detections, subscriber.delivered, tuple(
        subscriber.lost
    )


def _mapreduce_recovery_log():
    """Run a crashy parallel map/reduce; return its recovery trace."""
    platform = SgxPlatform(seed=SEED, quoting_key_bits=512)
    chaos = ChaosInjector(seed=SEED, mapper_crash_rate=0.35,
                          reducer_crash_rate=0.2)
    job = MapReduceJob(
        map_fn=lambda r: [(w, 1) for w in r.split()],
        reduce_fn=lambda _k, vs: sum(vs),
        mappers=4, reducers=2,
    )
    engine = SecureMapReduce(
        platform, job, chaos=chaos,
        retry_policy=RetryPolicy(max_attempts=8, base_delay=0.004),
    )
    records = ["a b", "b c", "c a", "a a", "d b", "c d"]
    result = engine.run(records)
    recoveries = sorted(
        (r["task"], r["attempts"], r["backoff_seconds"])
        for r in engine.recoveries
    )
    return chaos.log(), recoveries, engine.crashes_detected, result


def _failover_log():
    """Run a broker failover scenario; return its detection trace."""
    env = Environment()
    platform = SgxPlatform(seed=SEED, quoting_key_bits=512)
    attestation = AttestationService()
    attestation.register_platform(
        platform.platform_id, platform.quoting_enclave.public_key
    )
    chaos = ChaosInjector(seed=SEED, notification_drop_rate=0.3)
    orchestrator = Orchestrator(env, QosMonitor(env), ServiceRegistry())
    broker = ReplicatedBroker(platform, env=env, chaos=chaos,
                              orchestrator=orchestrator)
    publisher = FailoverClient("alice", broker, attestation)
    subscriber = FailoverClient("bob", broker, attestation)
    subscriber.subscribe(
        Subscription("s", [Constraint("t", Operator.GE, 0)], "bob")
    )
    FaultSchedule(env, injector=chaos).fail_broker_at(0.0055, broker)
    for index in range(12):
        env.call_at(0.001 * (index + 1), lambda index=index: publisher.publish(
            Publication(attributes={"t": index}, payload=b"p%d" % index)
        ))
    env.run()
    subscriber.sync()
    detections = [
        (d.service_name, d.kind, d.detected_at, d.onset)
        for d in orchestrator.detections
    ]
    inbox = sorted(p.attributes["_pub_seq"] for p in subscriber.inbox)
    return chaos.log(), detections, broker.failover_latencies, inbox


class TestSameSeedSameRun:
    def test_bus_detection_logs_identical(self):
        assert _bus_detection_log() == _bus_detection_log()

    def test_parallel_mapreduce_recovery_identical(self):
        # The driver runs tasks on a thread pool; hash-based fault
        # decisions make the injected crash set (and hence the recovery
        # trace) independent of thread scheduling.
        assert _mapreduce_recovery_log() == _mapreduce_recovery_log()

    def test_broker_failover_trace_identical(self):
        first = _failover_log()
        assert first == _failover_log()
        # And the scenario is exactly-once on top of being stable.
        assert first[3] == list(range(12))

    def test_different_seed_changes_the_fault_set(self):
        baseline = ChaosInjector(seed=SEED, message_drop_rate=0.2)
        shifted = ChaosInjector(seed=SEED + 1, message_drop_rate=0.2)
        a = [baseline.drops_message("t", i) for i in range(100)]
        b = [shifted.drops_message("t", i) for i in range(100)]
        assert a != b
