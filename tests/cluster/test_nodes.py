"""Tests for cluster nodes and the node topology."""

import pytest

from repro.cluster import ClusterNode, NodeSpec, NodeTopology
from repro.errors import CapacityError, ConfigurationError, SchedulingError
from repro.sgx.costs import DEFAULT_COSTS


class TestClusterNode:
    def test_sgx_node_carries_a_platform(self):
        node = ClusterNode(NodeSpec("n0", seed=1))
        assert node.sgx and node.platform is not None
        assert node.platform.platform_id == "node/n0"
        assert node.epc_usable == DEFAULT_COSTS.epc_usable

    def test_non_sgx_node_has_no_platform(self):
        node = ClusterNode(NodeSpec("legacy", sgx=False))
        assert not node.sgx
        assert node.platform is None
        assert node.epc_usable == 0
        assert node.epc_utilization() == 0.0
        assert not node.epc_watermark_exceeded(0.0)

    def test_epc_capacity_scales_the_costs(self):
        node = ClusterNode(NodeSpec("small", epc_capacity=1 << 20, seed=1))
        assert node.epc_usable < DEFAULT_COSTS.epc_usable
        ratio = node.epc_usable / (1 << 20)
        default_ratio = DEFAULT_COSTS.epc_usable / DEFAULT_COSTS.epc_capacity
        assert abs(ratio - default_ratio) < 1e-6

    def test_bind_places_a_server_container(self):
        node = ClusterNode(NodeSpec("n0", seed=1))
        node.bind_shard(3)
        assert node.shard_ids == {3}
        assert "shard-3" in node.server.containers
        node.unbind_shard(3)
        assert node.shard_ids == set()
        assert node.server.containers == {}

    def test_bind_rejects_non_sgx_and_dead_nodes(self):
        legacy = ClusterNode(NodeSpec("legacy", sgx=False))
        with pytest.raises(SchedulingError):
            legacy.bind_shard(0)
        node = ClusterNode(NodeSpec("n0", seed=1))
        node.crash()
        with pytest.raises(SchedulingError):
            node.bind_shard(0)

    def test_crash_returns_dark_shards_and_clears_ledger(self):
        node = ClusterNode(NodeSpec("n0", seed=1))
        node.bind_shard(1)
        node.bind_shard(4)
        dark = node.crash()
        assert dark == [1, 4]
        assert node.shard_ids == set()
        assert not node.alive
        assert node.crashes == 1
        node.repair()
        assert node.alive and node.server.powered_on

    def test_partition_heals_by_time_or_explicitly(self):
        node = ClusterNode(NodeSpec("n0", seed=1))
        assert node.reachable(0.0)
        node.partition(until=1.0)
        assert not node.reachable(0.5)
        assert node.reachable(1.0), "partition auto-heals at its deadline"
        node.partition(until=2.0)
        node.heal_partition()
        assert node.reachable(0.0)

    def test_partition_only_extends(self):
        node = ClusterNode(NodeSpec("n0", seed=1))
        node.partition(until=2.0)
        node.partition(until=1.0)
        assert node.partitioned_until == 2.0

    def test_crashed_node_is_unreachable_regardless(self):
        node = ClusterNode(NodeSpec("n0", seed=1))
        node.crash()
        assert not node.reachable(0.0)


class TestNodeTopology:
    def test_build_heterogeneous(self):
        topology = NodeTopology.build(
            3, seed=7,
            epc_capacities=[1 << 20, None, None],
            sgx_flags=[True, True, False],
        )
        assert len(topology) == 3
        assert [node.name for node in topology] == [
            "node-0", "node-1", "node-2"
        ]
        assert topology.node("node-0").epc_usable < \
            topology.node("node-1").epc_usable
        assert not topology.node("node-2").sgx
        assert len(topology.sgx_nodes()) == 2

    def test_same_seed_same_platform_seeds(self):
        a = NodeTopology.build(2, seed=7)
        b = NodeTopology.build(2, seed=7)
        assert [n.spec.seed for n in a] == [n.spec.seed for n in b]

    def test_empty_and_duplicate_names_rejected(self):
        with pytest.raises(CapacityError):
            NodeTopology([])
        with pytest.raises(ConfigurationError):
            NodeTopology([
                ClusterNode(NodeSpec("dup", seed=1)),
                ClusterNode(NodeSpec("dup", seed=2)),
            ])

    def test_unknown_node_rejected(self):
        topology = NodeTopology.build(1, seed=1)
        with pytest.raises(ConfigurationError):
            topology.node("nope")

    def test_placement_candidates_filter(self):
        topology = NodeTopology.build(
            4, seed=7, sgx_flags=[True, True, True, False]
        )
        topology.node("node-1").crash()
        topology.node("node-2").partition(until=5.0)
        names = [n.name for n in topology.placement_candidates(0.0)]
        assert names == ["node-0"]
        # The partition heals by t=5; exclusion still applies.
        names = [
            n.name for n in topology.placement_candidates(
                5.0, exclude=("node-0",)
            )
        ]
        assert names == ["node-2"]

    def test_invariants_catch_double_homing(self):
        topology = NodeTopology.build(2, seed=7)
        # Corrupt the ledgers directly: bind_shard would also trip the
        # Cluster-level duplicate-container invariant first.
        topology.node("node-0").shard_ids.add(1)
        topology.node("node-1").shard_ids.add(1)
        with pytest.raises(ConfigurationError):
            topology.check_invariants()

    def test_invariants_catch_non_sgx_shards(self):
        topology = NodeTopology.build(2, seed=7, sgx_flags=[True, False])
        topology.node("node-1").shard_ids.add(0)  # corrupt the ledger
        with pytest.raises(ConfigurationError):
            topology.check_invariants()

    def test_shard_spread(self):
        topology = NodeTopology.build(2, seed=7)
        topology.node("node-0").bind_shard(0)
        topology.node("node-0").bind_shard(1)
        topology.node("node-1").bind_shard(2)
        assert topology.shard_spread() == {"node-0": 2, "node-1": 1}
        topology.check_invariants()
