"""Tests for correlated node-level failure detection."""

import pytest

from repro.cluster import NodeDetection, NodeFailureDetector, NodeHealthPolicy
from repro.errors import ConfigurationError
from repro.scbr.health import ShardHealthMonitor
from repro.sim.events import Environment


def warmed(env, shard_ids, beats=8):
    """A shard monitor with every shard past the startup regime."""
    monitor = ShardHealthMonitor(env)
    for shard_id in shard_ids:
        monitor.register(shard_id)
    period = monitor.policy.heartbeat_period
    for _ in range(beats):
        env._now += period
        for shard_id in shard_ids:
            monitor.beat(shard_id)
    return monitor


def silence(env, monitor, beating, periods=12):
    """Advance time while only ``beating`` shards keep beating."""
    period = monitor.policy.heartbeat_period
    for _ in range(periods):
        env._now += period
        for shard_id in beating:
            monitor.beat(shard_id)
    monitor.poll()


class TestNodeHealthPolicy:
    def test_defaults_validate(self):
        policy = NodeHealthPolicy()
        assert policy.correlation_window > 0
        assert policy.quorum == 1.0

    @pytest.mark.parametrize("field,value", [
        ("correlation_window", 0.0),
        ("correlation_window", -1.0),
        ("quorum", 0.0),
        ("quorum", 1.5),
    ])
    def test_invalid_parameters_rejected(self, field, value):
        with pytest.raises(ConfigurationError):
            NodeHealthPolicy(**{field: value})


class TestNodeFailureDetector:
    def build(self, env):
        monitor = warmed(env, [0, 1, 2])
        detector = NodeFailureDetector(monitor)
        detector.assign(0, "node-a")
        detector.assign(1, "node-a")
        detector.assign(2, "node-b")
        return monitor, detector

    def test_correlated_silence_yields_one_node_verdict(self):
        env = Environment()
        monitor, detector = self.build(env)
        silence(env, monitor, beating=[2])  # node-a dies whole
        assert detector.poll() == ["node-a"]
        assert detector.down() == ["node-a"]
        (verdict,) = detector.detections
        assert isinstance(verdict, NodeDetection)
        assert verdict.node == "node-a"
        assert verdict.shard_ids == (0, 1)
        assert len(verdict.shard_detections) == 2
        # The verdict latches: further polls stay quiet.
        assert detector.poll() == []
        assert len(detector.detections) == 1

    def test_one_surviving_beat_vetoes_the_verdict(self):
        env = Environment()
        monitor, detector = self.build(env)
        silence(env, monitor, beating=[1, 2])  # only shard 0 is dark
        assert monitor.down() == [0]
        assert detector.poll() == [], (
            "a beating neighbour must veto machine death at quorum=1.0"
        )
        assert detector.down() == []

    def test_quorum_below_one_tolerates_survivors(self):
        env = Environment()
        monitor = warmed(env, [0, 1])
        detector = NodeFailureDetector(
            monitor, NodeHealthPolicy(quorum=0.5)
        )
        detector.assign(0, "node-a")
        detector.assign(1, "node-a")
        silence(env, monitor, beating=[1])
        assert detector.poll() == ["node-a"]

    def test_detections_outside_the_window_stay_uncorrelated(self):
        env = Environment()
        monitor = warmed(env, [0, 1])
        detector = NodeFailureDetector(monitor)
        detector.assign(0, "node-a")
        detector.assign(1, "node-a")
        # Shard 0 dies now; shard 1 keeps beating for 30 periods
        # (15 ms) and only then goes silent -- two independent process
        # deaths, not one machine death.
        silence(env, monitor, beating=[1], periods=30)
        assert monitor.down() == [0]
        silence(env, monitor, beating=[], periods=25)
        assert monitor.down() == [0, 1]
        assert detector.poll() == [], (
            "detections 12.5 ms apart must not correlate (window 10 ms)"
        )
        assert detector.down() == []

    def test_reset_opens_a_new_episode(self):
        env = Environment()
        monitor, detector = self.build(env)
        silence(env, monitor, beating=[2])
        assert detector.poll() == ["node-a"]
        # Mass recovery re-registers the shards and closes the episode.
        monitor.register(0)
        monitor.register(1)
        detector.reset("node-a")
        assert detector.down() == []
        # The same node can die again and be detected afresh.
        env._now += monitor.policy.startup_timeout * 1.01
        monitor.beat(2)
        monitor.poll()
        assert detector.poll() == ["node-a"]
        assert len(detector.detections) == 2

    def test_detection_latency_from_recorded_onset(self):
        env = Environment()
        monitor, detector = self.build(env)
        onset = env.now
        monitor.record_onset(0)
        monitor.record_onset(1)
        detector.record_onset("node-a", onset)
        silence(env, monitor, beating=[2])
        assert detector.poll() == ["node-a"]
        (verdict,) = detector.detections
        assert verdict.onset == onset
        assert verdict.detection_latency == pytest.approx(
            verdict.detected_at - onset
        )
        assert detector.detection_latencies() == [verdict.detection_latency]

    def test_unassigned_shards_never_implicate_a_node(self):
        env = Environment()
        monitor, detector = self.build(env)
        detector.unassign(0)
        assert detector.shards_on("node-a") == [1]
        silence(env, monitor, beating=[2])  # both 0 and 1 dark
        # Shard 0 no longer counts toward node-a, but shard 1 alone is
        # all of node-a's assignment -- still a full-quorum verdict.
        assert detector.poll() == ["node-a"]
        (verdict,) = detector.detections
        assert verdict.shard_ids == (1,)

    def test_nodes_without_assignment_are_ignored(self):
        env = Environment()
        monitor = warmed(env, [0])
        detector = NodeFailureDetector(monitor)
        detector.assign(0, "node-a")
        detector.unassign(0)
        silence(env, monitor, beating=[])
        assert detector.poll() == []
        assert detector.detections == []
