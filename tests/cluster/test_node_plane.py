"""Tests for the node-bound sharded SCBR plane.

Placement, machine failure + mass recovery, live migration, and
network partitions -- each judged against the single-index oracle
where publications flow.
"""

import pytest

from repro.cluster import NodeBoundScbrRouter, NodeTopology
from repro.errors import (
    ConfigurationError,
    EnclaveLostError,
    SchedulingError,
)
from repro.scbr.filters import Publication, Subscription
from repro.scbr.messages import EncryptedEnvelope, serialize_publication
from repro.scbr.router import ScbrClient
from repro.scbr.sharding import ShardPlanner
from repro.scbr.workload import ScbrWorkload
from repro.sgx.attestation import AttestationService
from repro.sgx.platform import SgxPlatform
from repro.sim.events import Environment
from tests.scbr.oracle import oracle_match_sets

SEED = 21


def plane(seed=SEED, nodes=3, shards=3, epc_capacities=None, **kwargs):
    env = kwargs.pop("env", None) or Environment()
    topology = NodeTopology.build(
        nodes, seed=seed, epc_capacities=epc_capacities
    )
    platform = SgxPlatform(seed=seed, quoting_key_bits=512)
    attestation = AttestationService()
    attestation.register_platform(
        platform.platform_id, platform.quoting_enclave.public_key
    )
    router = NodeBoundScbrRouter(
        platform, topology,
        attestation_service=attestation, shards=shards, env=env, **kwargs,
    )
    attestation.trust_measurement(router.measurement)
    return router, attestation


def load(router, attestation, count):
    alice = ScbrClient("alice", router, attestation)
    workload = ScbrWorkload(seed=SEED, num_attributes=6,
                            containment_fraction=0.5, num_subscribers=1)
    live = []
    for subscription in workload.subscriptions(count):
        subscription = Subscription(
            subscription.subscription_id,
            list(subscription.constraints.values()),
            "alice",
        )
        alice.subscribe(subscription)
        live.append(subscription)
    return alice, live, workload


def deliver(router, attestation, alice, publisher, stream):
    """Publish the stream; returns the sorted match ids per publication."""
    deliveries = []
    for publication in stream:
        envelope = EncryptedEnvelope.seal(
            publisher.key, publisher.client_id, "publish",
            serialize_publication(Publication(publication.attributes)),
        )
        matched = []
        for _subscriber, notification in router.publish_routed(envelope):
            _pub, ids = alice.open_notification_detail(notification)
            matched.extend(ids)
        deliveries.append(sorted(matched))
    return deliveries


class TestChooseNode:
    """The pure placement function: anti-affinity, then EPC."""

    def test_fewest_shards_wins(self):
        assert ShardPlanner.choose_node([2, 0, 1], [0.9, 0.9, 0.0]) == 1

    def test_ties_break_toward_low_epc_then_position(self):
        assert ShardPlanner.choose_node([1, 1, 1], [0.5, 0.1, 0.1]) == 1
        assert ShardPlanner.choose_node([1, 1], [0.3, 0.3]) == 0

    def test_over_watermark_nodes_are_demoted(self):
        choice = ShardPlanner.choose_node(
            [0, 1], [0.99, 0.10], over_watermark=[True, False]
        )
        assert choice == 1, "emptier but over-watermark node must lose"

    def test_full_fleet_still_places(self):
        choice = ShardPlanner.choose_node(
            [2, 1], [0.9, 0.95], over_watermark=[True, True]
        )
        assert choice == 1, "all-over-watermark falls back to anti-affinity"

    @pytest.mark.parametrize("counts,loads,flags", [
        ([], [], None),
        ([1, 2], [0.1], None),
        ([1, 2], [0.1, 0.2], [True]),
    ])
    def test_misaligned_inputs_rejected(self, counts, loads, flags):
        with pytest.raises(ConfigurationError):
            ShardPlanner.choose_node(counts, loads, over_watermark=flags)


class TestConstruction:
    def test_requires_a_topology(self):
        platform = SgxPlatform(seed=1, quoting_key_bits=512)
        with pytest.raises(ConfigurationError):
            NodeBoundScbrRouter(platform, topology="not-a-topology")

    def test_requires_an_sgx_node(self):
        platform = SgxPlatform(seed=1, quoting_key_bits=512)
        topology = NodeTopology.build(2, seed=1, sgx_flags=[False, False])
        with pytest.raises(SchedulingError):
            NodeBoundScbrRouter(platform, topology)

    def test_rejects_bad_watermark(self):
        platform = SgxPlatform(seed=1, quoting_key_bits=512)
        topology = NodeTopology.build(1, seed=1)
        with pytest.raises(ConfigurationError):
            NodeBoundScbrRouter(platform, topology, epc_node_watermark=0.0)

    def test_initial_placement_is_anti_affine(self):
        router, _ = plane(nodes=4, shards=8)
        spread = router.topology.shard_spread()
        assert set(spread.values()) == {2}, (
            "8 shards over 4 nodes must land 2 per node"
        )
        assert sum(
            len(router.node_detector.shards_on(name)) for name in spread
        ) == 8
        router.check_invariants()
        stats = router.stats()["nodes"]
        assert stats["count"] == 4 and stats["sgx"] == 4
        assert stats["node_failures"] == 0 and stats["migrations"] == 0


class TestNodeFailure:
    def test_fail_then_mass_recover_onto_survivors(self):
        router, attestation = plane(nodes=4, shards=8)
        alice, live, workload = load(router, attestation, 16)
        publisher = ScbrClient("publisher", router, attestation)
        stream = workload.publications(3)

        dark = router.fail_node("node-1")
        assert len(dark) == 2, "the node hosted two partitions"
        assert router.node_failures == 1
        assert not router.topology.node("node-1").alive

        recovered = router.recover_node("node-1")
        assert recovered == dark
        assert not router.topology.node("node-1").shard_ids
        spread = router.topology.shard_spread()
        assert spread["node-1"] == 0
        survivors = [
            count for name, count in spread.items() if name != "node-1"
        ]
        assert sum(survivors) == 8
        assert max(survivors) - min(survivors) <= 1, (
            "mass recovery must respect anti-affinity"
        )
        (episode,) = router.node_recovery_episodes
        assert episode["node"] == "node-1"
        assert episode["shard_ids"] == dark
        assert episode["recovery_seconds"] > 0.0

        deliveries = deliver(router, attestation, alice, publisher, stream)
        assert deliveries == oracle_match_sets(live, stream)
        router.check_invariants()

    def test_repaired_node_attracts_placements_again(self):
        router, _ = plane(nodes=2, shards=2)
        router.fail_node("node-0")
        router.recover_node("node-0")
        assert router.topology.shard_spread() == {"node-0": 0, "node-1": 2}
        router.topology.node("node-0").repair()
        replacement = router.recover_shard(0)
        assert router.node_of(replacement.shard_id).name == "node-0", (
            "the empty repaired node is the anti-affinity winner"
        )
        router.check_invariants()


class TestLiveMigration:
    def tiny_epc_plane(self):
        # node-0's EPC is deliberately tiny; 15 subscriptions over 3
        # shards push its resident partition past the 0.85 watermark.
        router, attestation = plane(
            nodes=3, shards=3, epc_capacities=[4 * 1024, None, None]
        )
        alice, live, workload = load(router, attestation, 15)
        return router, attestation, alice, live, workload

    def test_mid_flight_publications_survive_the_cutover(self):
        router, attestation, alice, live, workload = self.tiny_epc_plane()
        publisher = ScbrClient("publisher", router, attestation)
        stream = workload.publications(4)
        tiny = router.topology.node("node-0")
        assert tiny.epc_watermark_exceeded(router.epc_node_watermark)
        victim = max(
            tiny.shard_ids,
            key=lambda sid: router._shard_by_id(sid).database_bytes,
        )

        ticket = router.begin_migration(victim)
        assert ticket.source_node is tiny
        assert ticket.dest_node is not tiny
        first = deliver(router, attestation, alice, publisher, stream[:2])
        episode = router.complete_migration(ticket)
        assert episode["completed"] and episode["moved"] > 0
        assert episode["source_node"] == "node-0"
        second = deliver(router, attestation, alice, publisher, stream[2:])

        assert first + second == oracle_match_sets(live, stream)
        assert not tiny.shard_ids, "node-0 must be drained"
        assert router.migrations_completed == 1
        assert router.node_of(victim) is ticket.dest_node
        router.check_invariants()

    def test_relieve_epc_pressure_drains_the_hot_node(self):
        router, attestation, alice, live, workload = self.tiny_epc_plane()
        episodes = router.relieve_epc_pressure()
        assert len(episodes) == 1 and episodes[0]["completed"]
        assert episodes[0]["source_node"] == "node-0"
        assert router.relieve_epc_pressure() == [], (
            "one migration must clear the watermark"
        )
        stream = workload.publications(3)
        publisher = ScbrClient("publisher", router, attestation)
        deliveries = deliver(router, attestation, alice, publisher, stream)
        assert deliveries == oracle_match_sets(live, stream)
        router.check_invariants()

    def test_source_death_mid_migration_falls_back_to_recovery(self):
        router, attestation = plane(nodes=3, shards=3)
        alice, live, workload = load(router, attestation, 12)
        publisher = ScbrClient("publisher", router, attestation)
        stream = workload.publications(3)

        ticket = router.begin_migration(0)
        source_name = ticket.source_node.name
        router.fail_node(source_name)
        episode = router.complete_migration(ticket)
        assert episode == {
            "shard_id": 0, "completed": False,
            "fallback": "snapshot-recovery",
        }
        assert router.migrations_completed == 0
        home = router.node_of(0)
        assert home.alive and home.name != source_name
        deliveries = deliver(router, attestation, alice, publisher, stream)
        assert deliveries == oracle_match_sets(live, stream)
        router.check_invariants()

    def test_dark_shard_cannot_begin_migration(self):
        router, _ = plane(nodes=3, shards=3)
        source = router.node_of(0).name
        router.fail_node(source)
        with pytest.raises(EnclaveLostError):
            router.begin_migration(0)

    def test_pinned_destination_must_differ_and_be_reachable(self):
        router, _ = plane(nodes=3, shards=3)
        source = router.node_of(0).name
        with pytest.raises(SchedulingError):
            router.begin_migration(0, node_name=source)
        others = [n.name for n in router.topology if n.name != source]
        router.topology.node(others[0]).crash()
        with pytest.raises(SchedulingError):
            router.begin_migration(0, node_name=others[0])


class TestNetworkPartition:
    def test_partitioned_shard_is_fenced_and_respawned(self):
        router, attestation = plane(nodes=3, shards=3)
        alice, live, workload = load(router, attestation, 12)
        publisher = ScbrClient("publisher", router, attestation)
        stream = workload.publications(3)

        router.partition_node("node-1", duration=0.5)
        assert router.node_partitions == 1
        # on_partial="retry" (the default) heals inline: the coverage
        # gap from the unreachable shard triggers a conservative
        # respawn on a reachable node, then the publish retries.
        deliveries = deliver(router, attestation, alice, publisher, stream)
        assert deliveries == oracle_match_sets(live, stream)
        assert not router.topology.node("node-1").shard_ids, (
            "the partitioned node must be fenced off the plane"
        )
        router.check_invariants()

    def test_partition_requires_an_environment(self):
        topology = NodeTopology.build(1, seed=1)
        platform = SgxPlatform(seed=1, quoting_key_bits=512)
        attestation = AttestationService()
        attestation.register_platform(
            platform.platform_id, platform.quoting_enclave.public_key
        )
        router = NodeBoundScbrRouter(
            platform, topology, attestation_service=attestation, shards=1,
        )
        attestation.trust_measurement(router.measurement)
        with pytest.raises(ConfigurationError):
            router.partition_node("node-0", duration=0.1)


class TestHealthLoop:
    def test_machine_death_heals_as_one_mass_recovery(self):
        env = Environment()
        router, attestation = plane(nodes=4, shards=8, env=env)
        alice, live, workload = load(router, attestation, 16)
        publisher = ScbrClient("publisher", router, attestation)
        stream = workload.publications(2)

        router.start_health(0.03)
        env.call_at(0.003, lambda: router.fail_node("node-2"))
        deliveries = []

        def publish():
            deliveries.extend(
                deliver(router, attestation, alice, publisher, stream)
            )

        env.call_at(0.02, publish)
        env.run(until=0.03)

        assert router.node_failures == 1
        assert len(router.node_detector.detections) == 1
        assert router.node_detector.detections[0].node == "node-2"
        assert len(router.node_recovery_episodes) == 1, (
            "the correlated verdict must heal as ONE mass recovery"
        )
        assert router.node_detection_latencies()[0] > 0.0
        assert deliveries == oracle_match_sets(live, stream)
        router.check_invariants()
