"""Robustness tests for the reworked window operators.

Covers the unbounded-pane-growth regression (one-shot keys must be
evicted once the watermark passes), the telemetry surface for late and
shed records, the error taxonomy of the deployed handler, and
hypothesis property tests over arrival orders.
"""

import json

import pytest
from hypothesis import given, settings, strategies as st

from repro.bigdata.streaming import (
    SlidingWindow,
    TumblingWindow,
    parse_stream_record,
    window_service_handler,
)
from repro.errors import CapacityError, FatalError, TransientError
from repro.telemetry.registry import MetricsRegistry


def count(records):
    return len(records)


class TestPaneEviction:
    def test_one_shot_keys_do_not_accumulate(self):
        """Regression: a long stream of one-shot keys (meters that
        report once and go silent) must not grow state without bound --
        the watermark passing a pane evicts it, key and all."""
        window = TumblingWindow(10.0, count, key_fn=lambda r: r["k"])
        for index in range(500):
            window.ingest(float(index), {"k": "one-shot-%d" % index})
        # At any instant only the keys of still-open panes are resident.
        assert window.open_windows <= 11

    def test_advance_watermark_evicts_dormant_keys(self):
        window = TumblingWindow(10.0, count, key_fn=lambda r: r["k"])
        window.ingest(0.0, {"k": "a"})
        window.ingest(1.0, {"k": "b"})
        assert window.open_windows == 2
        closed = window.advance_watermark(10.0)
        assert {key for _s, _e, key, _r in closed} == {"a", "b"}
        assert window.open_windows == 0
        # A dormant key has no footprint: state holds nothing for it.
        assert window.open_panes() == []

    def test_advance_watermark_is_monotonic(self):
        window = TumblingWindow(10.0, count)
        window.advance_watermark(50.0)
        assert window.advance_watermark(20.0) == []
        assert window.watermark == 50.0

    def test_sliding_panes_evict_too(self):
        window = SlidingWindow(10.0, 5.0, count, key_fn=lambda r: r["k"])
        for index in range(200):
            window.ingest(float(index), {"k": "k%d" % index})
        assert window.open_windows <= 2 * 12


class TestTelemetrySurface:
    def test_late_and_shed_counters_register(self):
        registry = MetricsRegistry()
        window = TumblingWindow(
            10.0, count, key_fn=lambda r: r["k"], registry=registry
        )
        window.ingest(100.0, {"k": "a"})
        window.ingest(1.0, {"k": "a"})            # late, dropped
        window.ingest(101.0, {"k": "b"})
        window.shed_pane(100.0, "a")
        snapshot = registry.to_json()
        assert b'"streaming.late_records{operator=0}":1' in snapshot
        assert b'"streaming.shed_records{operator=0}":1' in snapshot
        assert b'"streaming.open_panes{operator=0}"' in snapshot

    def test_operator_indices_are_distinct(self):
        registry = MetricsRegistry()
        TumblingWindow(10.0, count, registry=registry)
        TumblingWindow(10.0, count, registry=registry)
        snapshot = registry.to_json()
        assert b"{operator=0}" in snapshot and b"{operator=1}" in snapshot

    def test_late_counter_matches_attribute(self):
        registry = MetricsRegistry()
        window = TumblingWindow(10.0, count, registry=registry)
        window.ingest(100.0, {})
        for _ in range(3):
            window.ingest(0.0, {})
        assert window.late_records == 3
        assert b'"streaming.late_records{operator=0}":3' in (
            registry.to_json()
        )


class _Ctx:
    """A stand-in for the micro-service enclave context."""

    def __init__(self):
        self.state = {}


class TestHandlerTaxonomy:
    def handler(self, operator=None):
        window = operator or TumblingWindow(10.0, count)
        return window_service_handler(window, "out"), _Ctx()

    def test_malformed_utf8_is_fatal(self):
        handler, ctx = self.handler()
        with pytest.raises(FatalError):
            handler(ctx, "in", b"\xff\xfe")

    def test_invalid_json_is_fatal(self):
        handler, ctx = self.handler()
        with pytest.raises(FatalError):
            handler(ctx, "in", b"{not json")

    def test_non_object_record_is_fatal(self):
        handler, ctx = self.handler()
        with pytest.raises(FatalError):
            handler(ctx, "in", b"[1, 2, 3]")

    def test_missing_timestamp_is_fatal(self):
        handler, ctx = self.handler()
        with pytest.raises(FatalError):
            handler(ctx, "in", json.dumps({"w": 1.0}).encode())

    def test_non_numeric_timestamp_is_fatal(self):
        handler, ctx = self.handler()
        for bad in ("soon", None, True, float("nan"), float("inf")):
            with pytest.raises(FatalError):
                handler(ctx, "in", json.dumps({"t": bad}).encode())

    def test_capacity_errors_stay_transient(self):
        """Overload is retryable, so it must surface as TransientError
        -- the service layer's retry/backoff path -- not FatalError."""
        window = TumblingWindow(
            10.0, count, key_fn=lambda r: r["k"], pane_budget=1
        )
        handler, ctx = self.handler(window)
        handler(ctx, "in", json.dumps({"t": 0.0, "k": "a"}).encode())
        with pytest.raises(CapacityError) as excinfo:
            handler(ctx, "in", json.dumps({"t": 1.0, "k": "b"}).encode())
        assert isinstance(excinfo.value, TransientError)
        assert not isinstance(excinfo.value, FatalError)

    def test_good_records_still_flow(self):
        handler, ctx = self.handler()
        assert handler(ctx, "in", json.dumps({"t": 0.0}).encode()) == []
        outputs = handler(ctx, "in", json.dumps({"t": 15.0}).encode())
        assert len(outputs) == 1
        topic, payload = outputs[0]
        assert topic == "out"
        assert json.loads(payload.decode())["result"] == 1

    def test_parse_rejects_payload_without_decode(self):
        with pytest.raises(FatalError):
            parse_stream_record(b"null")


timestamps = st.lists(
    st.floats(min_value=0.0, max_value=1_000.0,
              allow_nan=False, allow_infinity=False),
    min_size=1, max_size=60,
)


class TestWindowProperties:
    @settings(max_examples=40, deadline=None)
    @given(timestamps)
    def test_watermark_is_monotone(self, times):
        window = TumblingWindow(10.0, count)
        marks = []
        for timestamp in times:
            window.ingest(timestamp, {})
            marks.append(window.watermark)
        assert marks == sorted(marks)

    @settings(max_examples=40, deadline=None)
    @given(timestamps)
    def test_tumbling_counts_every_record_once(self, times):
        window = TumblingWindow(10.0, count, lateness=2_000.0)
        closed = []
        for timestamp in times:
            closed += window.ingest(timestamp, {})
        closed += window.flush()
        assert sum(result for _s, _e, _k, result in closed) == len(times)
        assert window.late_records == 0

    @settings(max_examples=40, deadline=None)
    @given(timestamps)
    def test_sliding_panes_never_double_count(self, times):
        """Each record lands in exactly size/slide sliding panes."""
        window = SlidingWindow(10.0, 5.0, count, lateness=2_000.0)
        closed = []
        for timestamp in times:
            closed += window.ingest(timestamp, {})
        closed += window.flush()
        total = sum(result for _s, _e, _k, result in closed)
        assert total == 2 * len(times)
        starts = [start for start, _e, _k, _r in closed]
        assert len(starts) == len(set(starts))

    @settings(max_examples=40, deadline=None)
    @given(timestamps, st.randoms(use_true_random=False))
    def test_late_accounting_is_exact_under_shuffles(self, times, rng):
        """However arrivals are shuffled, records accepted plus records
        counted late equals records offered."""
        shuffled = list(times)
        rng.shuffle(shuffled)
        window = TumblingWindow(10.0, count)
        closed = []
        for timestamp in shuffled:
            closed += window.ingest(timestamp, {})
        closed += window.flush()
        landed = sum(result for _s, _e, _k, result in closed)
        assert landed + window.late_records == len(shuffled)

    @settings(max_examples=40, deadline=None)
    @given(timestamps)
    def test_order_independence_with_enough_lateness(self, times):
        """With lateness covering the full span, any arrival order
        yields the same closed windows."""
        def run(sequence):
            window = TumblingWindow(10.0, count, lateness=2_000.0)
            closed = []
            for timestamp in sequence:
                closed += window.ingest(timestamp, {})
            closed += window.flush()
            return sorted(closed)

        assert run(times) == run(sorted(times)) == run(
            sorted(times, reverse=True)
        )
