"""Tests for bulk data transfer."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigurationError, IntegrityError
from repro.crypto.aead import AeadKey
from repro.bigdata.transfer import BulkTransfer, SimulatedNetwork


def key():
    return AeadKey(b"\x09" * 32)


class TestRoundTrip:
    def test_basic(self):
        transfer = BulkTransfer(key(), chunk_size=1024)
        payload = bytes(range(256)) * 40
        frames, stats = transfer.send(payload, SimulatedNetwork())
        assert transfer.receive(frames) == payload
        assert stats.raw_bytes == len(payload)
        assert stats.chunks == 10

    def test_empty_payload(self):
        transfer = BulkTransfer(key())
        frames, _stats = transfer.send(b"", SimulatedNetwork())
        assert transfer.receive(frames) == b""

    @settings(max_examples=20)
    @given(st.binary(min_size=0, max_size=5000), st.integers(1, 7))
    def test_round_trip_property(self, payload, batch):
        transfer = BulkTransfer(key(), chunk_size=512, batch_size=batch)
        frames, _stats = transfer.send(payload, SimulatedNetwork())
        assert transfer.receive(frames) == payload

    def test_uncompressed_mode(self):
        transfer = BulkTransfer(key(), compress=False, chunk_size=100)
        payload = b"A" * 1000
        frames, stats = transfer.send(payload, SimulatedNetwork())
        assert transfer.receive(frames) == payload
        assert stats.compressed_bytes == 1000


class TestCompression:
    def test_compressible_payload_shrinks(self):
        transfer = BulkTransfer(key(), chunk_size=4096)
        payload = b"repeated-pattern " * 2000
        _frames, stats = transfer.send(payload, SimulatedNetwork())
        assert stats.compression_ratio > 3.0
        assert stats.wire_bytes < stats.raw_bytes

    def test_incompressible_payload_overhead_bounded(self):
        import os

        transfer = BulkTransfer(key(), chunk_size=4096)
        payload = os.urandom(40_000)
        _frames, stats = transfer.send(payload, SimulatedNetwork())
        assert stats.wire_bytes < stats.raw_bytes * 1.05


class TestNetworkModel:
    def test_time_charged_per_frame(self):
        network = SimulatedNetwork(bandwidth_mbps=800, latency_seconds=0.001)
        transfer = BulkTransfer(key(), chunk_size=1000, batch_size=1,
                                compress=False)
        _frames, stats = transfer.send(b"x" * 10_000, SimulatedNetwork())
        _frames, stats_slow = transfer.send(b"x" * 10_000, network)
        assert stats_slow.seconds > 0
        assert network.frames_sent == 10

    def test_batching_amortises_latency(self):
        payload = b"y" * 100_000
        unbatched_net = SimulatedNetwork(latency_seconds=0.005)
        batched_net = SimulatedNetwork(latency_seconds=0.005)
        BulkTransfer(key(), chunk_size=1000, batch_size=1).send(
            payload, unbatched_net
        )
        BulkTransfer(key(), chunk_size=1000, batch_size=16).send(
            payload, batched_net
        )
        assert batched_net.clock_seconds < unbatched_net.clock_seconds / 4

    def test_throughput_reported(self):
        _frames, stats = BulkTransfer(key()).send(
            b"z" * 1_000_000, SimulatedNetwork(bandwidth_mbps=1000)
        )
        assert stats.throughput_mbps > 0

    def test_invalid_bandwidth(self):
        with pytest.raises(ConfigurationError):
            SimulatedNetwork(bandwidth_mbps=0)

    def test_invalid_chunking(self):
        with pytest.raises(ConfigurationError):
            BulkTransfer(key(), chunk_size=0)


class TestTamperDetection:
    def make_frames(self, payload=b"secret-data" * 500):
        transfer = BulkTransfer(key(), chunk_size=512, batch_size=2)
        frames, _stats = transfer.send(payload, SimulatedNetwork())
        return transfer, frames

    def test_bit_flip_detected(self):
        transfer, frames = self.make_frames()
        frames[1] = frames[1][:-1] + bytes([frames[1][-1] ^ 1])
        with pytest.raises(IntegrityError):
            transfer.receive(frames)

    def test_dropped_frame_detected(self):
        transfer, frames = self.make_frames()
        with pytest.raises(IntegrityError):
            transfer.receive(frames[:-1])

    def test_reordered_frames_detected(self):
        transfer, frames = self.make_frames()
        frames[0], frames[1] = frames[1], frames[0]
        with pytest.raises(IntegrityError):
            transfer.receive(frames)

    def test_cross_transfer_replay_detected(self):
        transfer = BulkTransfer(key(), chunk_size=512)
        frames_a, _ = transfer.send(b"a" * 2000, SimulatedNetwork(),
                                    transfer_id=b"A")
        with pytest.raises(IntegrityError):
            transfer.receive(frames_a, transfer_id=b"B")

    def test_payload_not_on_wire(self):
        transfer = BulkTransfer(key(), chunk_size=512)
        frames, _stats = transfer.send(b"CONFIDENTIAL" * 100,
                                       SimulatedNetwork())
        assert all(b"CONFIDENTIAL" not in frame for frame in frames)
