"""Tests for crash recovery in the secure map/reduce driver."""

import pytest

from repro.chaos import ChaosInjector
from repro.errors import ConfigurationError, RetryExhaustedError
from repro.retry import RetryPolicy
from repro.bigdata.mapreduce import (
    MapReduceCheckpoint,
    MapReduceJob,
    SecureMapReduce,
    plain_mapreduce,
)
from repro.sgx.platform import SgxPlatform


def word_map(record):
    return [(word, 1) for word in record.split()]


def count_reduce(_key, values):
    return sum(values)


RECORDS = [
    "alpha beta", "beta gamma", "gamma alpha", "alpha alpha",
    "delta beta", "gamma delta", "alpha delta", "beta beta",
]

EXPECTED = {
    repr(key): value
    for key, value in plain_mapreduce(word_map, count_reduce, RECORDS).items()
}


def make_engine(chaos=None, policy=None, job_key=None):
    platform = SgxPlatform(seed=17, quoting_key_bits=512)
    job = MapReduceJob(map_fn=word_map, reduce_fn=count_reduce,
                       mappers=4, reducers=2)
    return SecureMapReduce(platform, job, chaos=chaos, retry_policy=policy,
                           job_key=job_key)


class TestCrashRecovery:
    def test_crashes_are_retried_to_the_correct_answer(self):
        chaos = ChaosInjector(seed=23, mapper_crash_rate=0.4,
                              reducer_crash_rate=0.2)
        engine = make_engine(
            chaos=chaos, policy=RetryPolicy(max_attempts=8, base_delay=0.005)
        )
        assert engine.run(RECORDS) == EXPECTED
        assert engine.crashes_detected > 0
        assert engine.recoveries
        assert engine.backoff.seconds > 0.0
        for episode in engine.recoveries:
            assert episode["attempts"] >= 2
            assert episode["backoff_seconds"] > 0.0

    def test_without_retry_policy_crashes_propagate(self):
        chaos = ChaosInjector(seed=23, mapper_crash_rate=1.0)
        engine = make_engine(chaos=chaos, policy=None)
        with pytest.raises(Exception):
            engine.run(RECORDS)

    def test_budget_exhaustion_fails_cleanly(self):
        chaos = ChaosInjector(seed=23, mapper_crash_rate=1.0)
        engine = make_engine(
            chaos=chaos, policy=RetryPolicy(max_attempts=3, base_delay=0.001)
        )
        with pytest.raises(RetryExhaustedError):
            engine.run(RECORDS)


class TestCheckpointResume:
    def test_checkpoint_accumulates_sealed_outputs(self):
        engine = make_engine(policy=RetryPolicy())
        checkpoint = MapReduceCheckpoint()
        assert engine.run(RECORDS, checkpoint=checkpoint) == EXPECTED
        assert checkpoint.completed_splits == [0, 1, 2, 3]
        assert len(checkpoint.reduce_outputs) == 2
        assert checkpoint.stored_bytes > 0

    def test_failed_job_resumes_from_checkpoint(self):
        # First driver: reducers always crash, so the job fails after
        # the map phase -- but its map outputs are checkpointed.
        chaos = ChaosInjector(seed=23, reducer_crash_rate=1.0)
        first = make_engine(
            chaos=chaos, policy=RetryPolicy(max_attempts=2, base_delay=0.001)
        )
        checkpoint = MapReduceCheckpoint()
        with pytest.raises(RetryExhaustedError):
            first.run(RECORDS, checkpoint=checkpoint)
        assert checkpoint.completed_splits == [0, 1, 2, 3]
        assert not checkpoint.reduce_outputs
        # Second driver (same job key, no chaos): resumes, skipping the
        # four completed splits, and finishes correctly.
        second = make_engine(policy=RetryPolicy(), job_key=first.job_key)
        assert second.run(RECORDS, checkpoint=checkpoint) == EXPECTED
        assert second.splits_resumed == 4

    def test_checkpoint_rejects_foreign_job(self):
        first = make_engine(policy=RetryPolicy())
        checkpoint = MapReduceCheckpoint()
        first.run(RECORDS, checkpoint=checkpoint)
        other = make_engine(policy=RetryPolicy())  # fresh random job key
        with pytest.raises(ConfigurationError):
            other.run(RECORDS, checkpoint=checkpoint)

    def test_chaos_disabled_matches_seed_behaviour(self):
        # The chaos-capable driver with chaos off must compute exactly
        # what the plain reference computes.
        engine = make_engine()
        assert engine.run(RECORDS) == EXPECTED
        assert engine.crashes_detected == 0
        assert engine.recoveries == []
