"""Tests for worker attestation in secure map/reduce."""

import pytest

from repro.errors import AttestationError
from repro.sgx.attestation import AttestationService
from repro.sgx.platform import SgxPlatform
from repro.bigdata.mapreduce import MapReduceJob, SecureMapReduce, WORKER_CODE


def word_count_map(record):
    for word in record.split():
        yield word, 1


def sum_reduce(_key, values):
    return sum(values)


def registered_platform(seed=67):
    platform = SgxPlatform(seed=seed, quoting_key_bits=512)
    attestation = AttestationService()
    attestation.register_platform(
        platform.platform_id, platform.quoting_enclave.public_key
    )
    return platform, attestation


class TestWorkerAttestation:
    def test_attested_job_runs(self):
        platform, attestation = registered_platform()
        job = MapReduceJob(word_count_map, sum_reduce, mappers=2, reducers=1)
        engine = SecureMapReduce(platform, job,
                                 attestation_service=attestation)
        assert engine.run(["a b a"]) == {"'a'": 2, "'b'": 1}

    def test_unregistered_platform_rejected(self):
        platform = SgxPlatform(seed=68, quoting_key_bits=512)
        attestation = AttestationService()  # platform never registered
        job = MapReduceJob(word_count_map, sum_reduce)
        with pytest.raises(AttestationError):
            SecureMapReduce(platform, job, attestation_service=attestation)

    def test_expected_measurement_is_worker_code(self):
        platform, attestation = registered_platform()
        job = MapReduceJob(word_count_map, sum_reduce, mappers=1, reducers=1)
        SecureMapReduce(platform, job, attestation_service=attestation)
        # The allowlist path also works if the measurement is trusted.
        attestation.trust_measurement(WORKER_CODE.measurement)
        quote = platform.quote(platform.enclaves[-1], b"mapreduce-join")
        assert attestation.verify(quote)

    def test_without_service_no_attestation_performed(self):
        platform = SgxPlatform(seed=69, quoting_key_bits=512)
        job = MapReduceJob(word_count_map, sum_reduce, mappers=1, reducers=1)
        engine = SecureMapReduce(platform, job)  # trusts its enclaves
        assert engine.run(["x"]) == {"'x'": 1}
