"""Tests for the parallel secure map/reduce driver.

The driver dispatches map and reduce ecalls on thread pools; these tests
pin down that concurrency changes neither the computed function nor the
accounting, and that small jobs no longer pay for empty splits.
"""

from hypothesis import given, settings, strategies as st

from repro.sgx.platform import SgxPlatform
from repro.bigdata.mapreduce import (
    MapReduceJob,
    SecureMapReduce,
    plain_mapreduce,
)


def word_count_map(record):
    for word in record.split():
        yield word, 1


def sum_reduce(_key, values):
    return sum(values)


def platform():
    return SgxPlatform(seed=31, quoting_key_bits=512)


class TestEmptySplits:
    def test_no_empty_splits_generated(self):
        job = MapReduceJob(word_count_map, sum_reduce, mappers=8, reducers=2)
        engine = SecureMapReduce(platform(), job)
        splits = list(engine._splits(["a", "b", "c"]))
        assert all(splits)
        assert sum(len(split) for split in splits) == 3

    def test_no_splits_for_empty_input(self):
        job = MapReduceJob(word_count_map, sum_reduce, mappers=4, reducers=2)
        engine = SecureMapReduce(platform(), job)
        assert list(engine._splits([])) == []

    def test_idle_mappers_not_ecalled(self):
        """mappers > records: the surplus mappers only see the init call."""
        job = MapReduceJob(word_count_map, sum_reduce, mappers=6, reducers=2)
        engine = SecureMapReduce(platform(), job)
        result = engine.run(["one two", "two"])
        assert result == {"'one'": 1, "'two'": 2}
        map_calls = [m.ecall_count - 1 for m in engine._mappers]  # minus init
        assert sum(map_calls) <= 2
        assert map_calls.count(0) >= 4

    def test_empty_input_still_correct(self):
        job = MapReduceJob(word_count_map, sum_reduce, mappers=5, reducers=3)
        assert SecureMapReduce(platform(), job).run([]) == {}


class TestParallelEquivalence:
    def test_wide_job_matches_plain(self):
        records = ["alpha beta gamma %d" % i for i in range(200)]
        job = MapReduceJob(word_count_map, sum_reduce, mappers=8, reducers=4)
        secure = SecureMapReduce(platform(), job).run(records)
        plain = plain_mapreduce(word_count_map, sum_reduce, records)
        assert secure == {repr(k): v for k, v in plain.items()}

    def test_combiner_under_parallelism(self):
        records = ["x y x y x" for _ in range(50)]
        job = MapReduceJob(
            word_count_map, sum_reduce, mappers=5, reducers=3,
            combiner_fn=sum_reduce,
        )
        secure = SecureMapReduce(platform(), job).run(records)
        plain = plain_mapreduce(word_count_map, sum_reduce, records)
        assert secure == {repr(k): v for k, v in plain.items()}

    def test_sealed_bytes_accounting_deterministic(self):
        """Concurrent dispatch must not race the byte accounting.

        The same engine runs the same records twice: sealed sizes depend
        only on plaintext lengths and the (fixed) partition salt, so the
        second run must account exactly the same number of bytes.
        """
        records = ["w%d w%d" % (i % 7, i % 3) for i in range(120)]
        job = MapReduceJob(word_count_map, sum_reduce, mappers=6, reducers=3)
        engine = SecureMapReduce(platform(), job)
        engine.run(records)
        first = engine.sealed_bytes_moved
        assert first > 0
        engine.run(records)
        assert engine.sealed_bytes_moved == 2 * first

    @settings(max_examples=10, deadline=None)
    @given(
        st.lists(
            st.text(alphabet="abcd ", min_size=0, max_size=20),
            max_size=20,
        ),
        st.integers(1, 6),
        st.integers(1, 4),
    )
    def test_equivalence_property(self, records, mappers, reducers):
        job = MapReduceJob(word_count_map, sum_reduce,
                           mappers=mappers, reducers=reducers)
        secure = SecureMapReduce(platform(), job).run(records)
        plain = plain_mapreduce(word_count_map, sum_reduce, records)
        assert secure == {repr(k): v for k, v in plain.items()}

    def test_numeric_job_matches_plain(self):
        def by_bucket(record):
            yield record % 5, record

        def total(_key, values):
            return sum(values)

        records = list(range(97))
        job = MapReduceJob(by_bucket, total, mappers=7, reducers=3)
        secure = SecureMapReduce(platform(), job).run(records)
        plain = plain_mapreduce(by_bucket, total, records)
        assert secure == {repr(k): v for k, v in plain.items()}
