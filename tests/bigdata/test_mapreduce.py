"""Tests for secure map/reduce."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigurationError
from repro.sgx.platform import SgxPlatform
from repro.bigdata.mapreduce import (
    MapReduceJob,
    SecureMapReduce,
    plain_mapreduce,
)


def word_count_map(record):
    for word in record.split():
        yield word, 1


def sum_reduce(_key, values):
    return sum(values)


@pytest.fixture()
def platform():
    return SgxPlatform(seed=17, quoting_key_bits=512)


class TestPlainReference:
    def test_word_count(self):
        result = plain_mapreduce(
            word_count_map, sum_reduce, ["a b a", "b c"]
        )
        assert result == {"a": 2, "b": 2, "c": 1}

    def test_empty_input(self):
        assert plain_mapreduce(word_count_map, sum_reduce, []) == {}


class TestSecureEngine:
    def test_word_count_matches_plain(self, platform):
        records = ["the quick brown fox", "the lazy dog", "the fox"]
        job = MapReduceJob(word_count_map, sum_reduce, mappers=2, reducers=2)
        secure = SecureMapReduce(platform, job).run(records)
        plain = plain_mapreduce(word_count_map, sum_reduce, records)
        assert secure == {repr(k): v for k, v in plain.items()}

    def test_single_mapper_reducer(self, platform):
        job = MapReduceJob(word_count_map, sum_reduce, mappers=1, reducers=1)
        result = SecureMapReduce(platform, job).run(["x y x"])
        assert result == {"'x'": 2, "'y'": 1}

    def test_more_mappers_than_records(self, platform):
        job = MapReduceJob(word_count_map, sum_reduce, mappers=8, reducers=3)
        result = SecureMapReduce(platform, job).run(["solo"])
        assert result == {"'solo'": 1}

    def test_empty_input(self, platform):
        job = MapReduceJob(word_count_map, sum_reduce)
        assert SecureMapReduce(platform, job).run([]) == {}

    def test_invalid_parallelism(self):
        with pytest.raises(ConfigurationError):
            MapReduceJob(word_count_map, sum_reduce, mappers=0)

    def test_sealed_bytes_counted(self, platform):
        job = MapReduceJob(word_count_map, sum_reduce, mappers=2, reducers=2)
        engine = SecureMapReduce(platform, job)
        engine.run(["a b c d e f g"])
        assert engine.sealed_bytes_moved > 0

    def test_numeric_aggregation(self, platform):
        def by_region(record):
            yield record["region"], record["kwh"]

        def mean(_key, values):
            return sum(values) / len(values)

        records = [
            {"region": "north", "kwh": 10.0},
            {"region": "north", "kwh": 20.0},
            {"region": "south", "kwh": 6.0},
        ]
        job = MapReduceJob(by_region, mean, mappers=2, reducers=2)
        result = SecureMapReduce(platform, job).run(records)
        assert result["'north'"] == pytest.approx(15.0)
        assert result["'south'"] == pytest.approx(6.0)

    @settings(max_examples=10, deadline=None)
    @given(
        st.lists(
            st.text(alphabet="abcd ", min_size=0, max_size=20),
            max_size=12,
        ),
        st.integers(1, 4),
        st.integers(1, 3),
    )
    def test_equivalence_property(self, records, mappers, reducers):
        platform = SgxPlatform(seed=23, quoting_key_bits=512)
        job = MapReduceJob(word_count_map, sum_reduce,
                           mappers=mappers, reducers=reducers)
        secure = SecureMapReduce(platform, job).run(records)
        plain = plain_mapreduce(word_count_map, sum_reduce, records)
        assert secure == {repr(k): v for k, v in plain.items()}

    def test_intermediate_data_is_sealed(self, platform):
        """The driver-visible shuffle blobs never contain plaintext."""
        job = MapReduceJob(word_count_map, sum_reduce, mappers=1, reducers=1)
        engine = SecureMapReduce(platform, job)
        mapper = engine._mappers[0]
        from repro.bigdata.mapreduce import _seal_batch

        sealed_split = _seal_batch(engine.job_key, b"split", ["SECRETWORD data"])
        partitions = mapper.ecall("map", word_count_map, sealed_split)
        for blob in partitions.values():
            assert b"SECRETWORD" not in blob
