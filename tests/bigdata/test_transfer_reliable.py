"""Tests for reliable bulk transfer over a corrupting link."""

import pytest

from repro.chaos import ChaosInjector, ChaosNetwork
from repro.crypto.aead import AeadKey
from repro.errors import RetryExhaustedError, TransportError
from repro.retry import RetryPolicy
from repro.bigdata.transfer import (
    BulkTransfer,
    ReliableBulkTransfer,
    SimulatedNetwork,
)

KEY = AeadKey(b"\x33" * 32)
PAYLOAD = bytes(range(256)) * 64  # 16 KiB


def make_links(corruption_rate, seed=7):
    network = SimulatedNetwork(bandwidth_mbps=1000.0)
    injector = ChaosInjector(seed=seed, frame_corruption_rate=corruption_rate)
    return network, ChaosNetwork(network, injector, transfer_id=b"t1")


class TestHappyPath:
    def test_reliable_layer_is_transparent_without_chaos(self):
        transfer = BulkTransfer(KEY, chunk_size=1024, batch_size=2)
        network = SimulatedNetwork()
        reliable = ReliableBulkTransfer(transfer)
        received, stats = reliable.transmit(PAYLOAD, network,
                                            transfer_id=b"t1")
        assert received == PAYLOAD
        assert stats.retransmissions == 0
        assert stats.corrupted == 0
        assert stats.rounds == 1
        assert stats.backoff_seconds == 0.0

    def test_matches_plain_send_framing(self):
        transfer = BulkTransfer(KEY, chunk_size=1024, batch_size=2)
        plain_frames, _ = transfer.send(PAYLOAD, SimulatedNetwork(),
                                        transfer_id=b"t1")
        assert transfer.receive(plain_frames, transfer_id=b"t1") == PAYLOAD


class TestCorruptionRecovery:
    def test_selective_retransmission_reassembles_payload(self):
        transfer = BulkTransfer(KEY, chunk_size=1024, batch_size=2)
        _network, chaotic = make_links(0.3)
        reliable = ReliableBulkTransfer(
            transfer, policy=RetryPolicy(max_attempts=10, base_delay=0.001)
        )
        received, stats = reliable.transmit(PAYLOAD, chaotic,
                                            transfer_id=b"t1")
        assert received == PAYLOAD
        assert stats.corrupted > 0
        assert stats.retransmissions > 0
        # Selective: far fewer retransmissions than a full resend per
        # round would cost.
        assert stats.retransmissions < stats.frames * stats.rounds
        assert stats.backoff_seconds > 0.0
        assert stats.goodput_mbps < stats.stats.throughput_mbps

    def test_corrupted_frames_detected_not_trusted(self):
        transfer = BulkTransfer(KEY, chunk_size=1024, batch_size=2)
        _network, chaotic = make_links(1.0)
        reliable = ReliableBulkTransfer(
            transfer, policy=RetryPolicy(max_attempts=3, base_delay=0.001)
        )
        with pytest.raises(RetryExhaustedError) as excinfo:
            reliable.transmit(PAYLOAD, chaotic, transfer_id=b"t1")
        assert isinstance(excinfo.value.last_error, TransportError)
        assert reliable.corrupted_detected > 0

    def test_retransmission_uses_pristine_frames(self):
        # Regression: the sender must retransmit its own sealed frames,
        # not the (possibly corrupted) bytes the network delivered --
        # otherwise a corrupted frame can never recover.
        transfer = BulkTransfer(KEY, chunk_size=512, batch_size=1)
        _network, chaotic = make_links(0.5, seed=11)
        reliable = ReliableBulkTransfer(
            transfer, policy=RetryPolicy(max_attempts=12, base_delay=0.0005)
        )
        received, stats = reliable.transmit(PAYLOAD, chaotic,
                                            transfer_id=b"t1")
        assert received == PAYLOAD
        assert stats.corrupted >= stats.retransmissions > 0


class TestDeterminism:
    def test_same_seed_same_corruption_pattern(self):
        def run():
            transfer = BulkTransfer(KEY, chunk_size=1024, batch_size=2)
            _network, chaotic = make_links(0.3, seed=21)
            reliable = ReliableBulkTransfer(
                transfer, policy=RetryPolicy(max_attempts=10,
                                             base_delay=0.001)
            )
            _, stats = reliable.transmit(PAYLOAD, chaotic, transfer_id=b"t1")
            return (stats.corrupted, stats.retransmissions, stats.rounds,
                    chaotic.injector.log())

        assert run() == run()
