"""Tests for retry-with-backoff on the secure table's volume I/O."""

import pytest

from repro.chaos import ChaosInjector, ChaosVolume
from repro.errors import RetryExhaustedError, StorageUnavailableError
from repro.retry import RetryPolicy
from repro.scone.fs_shield import ProtectedVolume, UntrustedStore
from repro.bigdata.kvstore import SecureTable


def chaotic_volume(rate, seed=31):
    volume = ProtectedVolume(UntrustedStore(), chunk_size=128)
    return ChaosVolume(volume, ChaosInjector(
        seed=seed, storage_failure_rate=rate
    ))


class TestRetry:
    def test_transient_failures_are_retried_through(self):
        volume = chaotic_volume(0.3)
        table = SecureTable(volume, "meters",
                            retry_policy=RetryPolicy(max_attempts=6,
                                                     base_delay=0.002))
        for index in range(12):
            table.put("m%d" % index, b"v%d" % index)
        assert len(table) == 12
        for index in range(12):
            assert table.get("m%d" % index) == b"v%d" % index
        assert volume.failures_injected > 0
        assert table.retries == volume.failures_injected
        assert table.backoff.seconds > 0.0

    def test_without_policy_failures_propagate(self):
        volume = chaotic_volume(1.0)
        table = SecureTable(volume, "meters")
        with pytest.raises(StorageUnavailableError):
            table.put("k", b"v")

    def test_budget_exhaustion_is_typed(self):
        volume = chaotic_volume(1.0)
        table = SecureTable(volume, "meters",
                            retry_policy=RetryPolicy(max_attempts=3,
                                                     base_delay=0.001))
        with pytest.raises(RetryExhaustedError):
            table.put("k", b"v")

    def test_put_many_resume_is_idempotent(self):
        # A put_many that dies before the manifest seal leaves only
        # unregistered row files; re-running the same call overwrites
        # them and completes.
        volume = ProtectedVolume(UntrustedStore(), chunk_size=128)
        table = SecureTable(volume, "meters")
        items = [("m%d" % i, b"v%d" % i) for i in range(6)]
        # Simulate the partial first run: rows written, manifest not.
        for key, value in items[:4]:
            volume.write("/tables/meters/%s" % key, value)
        table.put_many(items)
        assert len(table) == 6
        reopened = SecureTable.open(volume, "meters")
        assert reopened.keys() == [key for key, _value in items]
        assert reopened.verify()

    def test_reopen_with_policy_survives_flaky_manifest_read(self):
        volume = ProtectedVolume(UntrustedStore(), chunk_size=128)
        SecureTable(volume, "meters").put("k", b"v")
        flaky = ChaosVolume(volume, ChaosInjector(
            seed=3, storage_failure_rate=0.5
        ))
        reopened = SecureTable.open(
            flaky, "meters",
            retry_policy=RetryPolicy(max_attempts=8, base_delay=0.001),
        )
        assert reopened.get("k") == b"v"
