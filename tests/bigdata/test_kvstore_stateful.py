"""Stateful property test: SecureTable against a plain dict."""

from hypothesis import settings
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    rule,
)
from hypothesis import strategies as st

from repro.scone.fs_shield import ProtectedVolume, UntrustedStore
from repro.bigdata.kvstore import SecureTable

KEYS = ["k1", "k2", "meter-7", "row.42"]


class KvStoreMachine(RuleBasedStateMachine):
    @initialize()
    def setup(self):
        self.volume = ProtectedVolume(UntrustedStore(), chunk_size=64)
        self.table = SecureTable(self.volume, "t")
        self.reference = {}

    @rule(key=st.sampled_from(KEYS), value=st.binary(max_size=200))
    def put(self, key, value):
        self.table.put(key, value)
        self.reference[key] = value

    @rule(key=st.sampled_from(KEYS))
    def get(self, key):
        if key in self.reference:
            assert self.table.get(key) == self.reference[key]
        else:
            assert key not in self.table

    @rule(key=st.sampled_from(KEYS))
    def delete(self, key):
        self.table.delete(key)
        self.reference.pop(key, None)

    @rule()
    def reopen(self):
        """A fresh handle over the same volume sees the same rows."""
        reopened = SecureTable.open(self.volume, "t")
        assert reopened.keys() == sorted(self.reference)
        self.table = reopened

    @rule(prefix=st.sampled_from(["", "k", "meter-"]))
    def scan(self, prefix):
        expected = sorted(
            (key, value)
            for key, value in self.reference.items()
            if key.startswith(prefix)
        )
        assert self.table.scan(prefix) == expected

    @invariant()
    def lengths_agree(self):
        assert len(self.table) == len(self.reference)


TestKvStoreStateful = KvStoreMachine.TestCase
TestKvStoreStateful.settings = settings(
    max_examples=20, stateful_step_count=25, deadline=None
)
