"""Tests for sealed whole-table export/import on the secure store."""

import pytest

from repro.crypto.aead import AeadKey, CHUNKED_MAGIC, SealedBatch
from repro.crypto.chunked import DEFAULT_CHUNK_SIZE
from repro.crypto.primitives import DeterministicRandomSource
from repro.errors import IntegrityError
from repro.scone.fs_shield import ProtectedVolume, UntrustedStore
from repro.bigdata.kvstore import SecureTable


@pytest.fixture()
def volume():
    return ProtectedVolume(UntrustedStore(), chunk_size=128)


@pytest.fixture()
def export_key():
    return AeadKey.generate(DeterministicRandomSource(42))


class TestSealedExport:
    def test_round_trip(self, volume, export_key):
        table = SecureTable(volume, "meters")
        table.put_many([("m%02d" % i, b"reading-%d" % i) for i in range(10)])
        blob = table.export_sealed(export_key)

        dest = ProtectedVolume(UntrustedStore(), chunk_size=128)
        imported = SecureTable.import_sealed(dest, "meters", export_key, blob)
        assert imported.keys() == table.keys()
        for key in table.keys():
            assert imported.get(key) == table.get(key)

    def test_empty_table_round_trips(self, volume, export_key):
        blob = SecureTable(volume, "t").export_sealed(export_key)
        dest = ProtectedVolume(UntrustedStore(), chunk_size=128)
        assert len(SecureTable.import_sealed(dest, "t", export_key, blob)) == 0

    def test_large_table_uses_chunked_framing(self, volume, export_key):
        table = SecureTable(volume, "big")
        row = bytes(64 * 1024)
        table.put_many([("r%d" % i, row) for i in range(6)])
        blob = table.export_sealed(export_key, workers=2)
        assert blob[:3] == CHUNKED_MAGIC
        assert len(blob) > DEFAULT_CHUNK_SIZE

        dest = ProtectedVolume(UntrustedStore(), chunk_size=128)
        imported = SecureTable.import_sealed(
            dest, "big", export_key, blob, workers=2
        )
        assert imported.get("r3") == row

    def test_tampered_export_fails_closed(self, volume, export_key):
        table = SecureTable(volume, "t")
        table.put("k", b"v")
        blob = bytearray(table.export_sealed(export_key))
        blob[-1] ^= 0x01
        dest = ProtectedVolume(UntrustedStore(), chunk_size=128)
        with pytest.raises(IntegrityError):
            SecureTable.import_sealed(dest, "t", export_key, bytes(blob))
        # Fail-closed means nothing was materialised on the destination.
        assert len(SecureTable.open(dest, "t")) == 0

    def test_wrong_table_name_fails_closed(self, volume, export_key):
        # The export AAD binds the table name: a blob exported from one
        # table cannot be imported as another.
        table = SecureTable(volume, "source")
        table.put("k", b"v")
        blob = table.export_sealed(export_key)
        dest = ProtectedVolume(UntrustedStore(), chunk_size=128)
        with pytest.raises(IntegrityError):
            SecureTable.import_sealed(dest, "elsewhere", export_key, blob)

    def test_row_dropped_from_export_fails_closed(self, volume, export_key):
        # Re-frame the decrypted records minus one row under the right
        # key: the key-list/row-count cross-check must reject it.
        table = SecureTable(volume, "t")
        table.put_many([("a", b"1"), ("b", b"2")])
        blob = table.export_sealed(export_key)
        records = export_key.decrypt_batch(
            SealedBatch.from_bytes(blob), aad=b"kvstore-export|t"
        )
        forged = export_key.encrypt_batch(
            records[:-1], aad=b"kvstore-export|t"
        ).to_bytes()
        dest = ProtectedVolume(UntrustedStore(), chunk_size=128)
        with pytest.raises(IntegrityError):
            SecureTable.import_sealed(dest, "t", export_key, forged)
