"""Tests for map-side combining."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.sgx.platform import SgxPlatform
from repro.bigdata.mapreduce import (
    MapReduceJob,
    SecureMapReduce,
    plain_mapreduce,
)


def word_count_map(record):
    for word in record.split():
        yield word, 1


def sum_reduce(_key, values):
    return sum(values)


@pytest.fixture()
def platform():
    return SgxPlatform(seed=29, quoting_key_bits=512)


class TestCombiner:
    def test_results_unchanged(self, platform):
        records = ["a b a b c", "a a a", "c c b"]
        plain = plain_mapreduce(word_count_map, sum_reduce, records)
        job = MapReduceJob(word_count_map, sum_reduce, mappers=2, reducers=2,
                           combiner_fn=sum_reduce)
        secure = SecureMapReduce(platform, job).run(records)
        assert secure == {repr(k): v for k, v in plain.items()}

    def test_combiner_reduces_sealed_bytes(self, platform):
        records = ["alpha beta alpha beta " * 40] * 8
        without = SecureMapReduce(
            platform, MapReduceJob(word_count_map, sum_reduce, mappers=2,
                                   reducers=2)
        )
        result_without = without.run(records)
        with_combiner = SecureMapReduce(
            platform, MapReduceJob(word_count_map, sum_reduce, mappers=2,
                                   reducers=2, combiner_fn=sum_reduce)
        )
        result_with = with_combiner.run(records)
        assert result_with == result_without
        assert with_combiner.sealed_bytes_moved < without.sealed_bytes_moved / 5

    def test_tuple_keys_survive_combining(self, platform):
        def pair_map(record):
            yield (record["g"], record["h"]), record["x"]

        records = [
            {"g": "a", "h": 1, "x": 2},
            {"g": "a", "h": 1, "x": 3},
            {"g": "b", "h": 2, "x": 4},
        ]
        job = MapReduceJob(pair_map, sum_reduce, mappers=2, reducers=2,
                           combiner_fn=sum_reduce)
        result = SecureMapReduce(platform, job).run(records)
        assert result[repr(("a", 1))] == 5
        assert result[repr(("b", 2))] == 4

    @settings(max_examples=8, deadline=None)
    @given(
        st.lists(st.text(alphabet="xyz ", max_size=15), max_size=10),
        st.integers(1, 3),
    )
    def test_combiner_equivalence_property(self, records, reducers):
        platform = SgxPlatform(seed=31, quoting_key_bits=512)
        plain = plain_mapreduce(word_count_map, sum_reduce, records)
        job = MapReduceJob(word_count_map, sum_reduce, mappers=2,
                           reducers=reducers, combiner_fn=sum_reduce)
        secure = SecureMapReduce(platform, job).run(records)
        assert secure == {repr(k): v for k, v in plain.items()}
