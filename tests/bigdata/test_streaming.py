"""Tests for windowed stream processing."""

import json

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigurationError
from repro.bigdata.streaming import (
    SlidingWindow,
    TumblingWindow,
    window_service_handler,
)


def mean(records):
    values = [record["w"] for record in records]
    return sum(values) / len(values)


def count(records):
    return len(records)


class TestTumblingWindow:
    def test_windows_close_when_watermark_passes(self):
        window = TumblingWindow(10.0, count)
        assert window.ingest(1.0, {"w": 1}) == []
        assert window.ingest(5.0, {"w": 1}) == []
        closed = window.ingest(10.0, {"w": 1})
        assert closed == [(0.0, 10.0, None, 2)]

    def test_aggregation(self):
        window = TumblingWindow(10.0, mean)
        window.ingest(0.0, {"w": 10.0})
        window.ingest(5.0, {"w": 20.0})
        closed = window.ingest(12.0, {"w": 99.0})
        assert closed[0][3] == pytest.approx(15.0)

    def test_keyed_windows_separate(self):
        window = TumblingWindow(10.0, count, key_fn=lambda r: r["meter"])
        window.ingest(0.0, {"meter": "a"})
        window.ingest(1.0, {"meter": "b"})
        window.ingest(2.0, {"meter": "a"})
        closed = window.ingest(15.0, {"meter": "a"})
        results = {(key): result for _s, _e, key, result in closed}
        assert results == {"a": 2, "b": 1}

    def test_flush_closes_everything(self):
        window = TumblingWindow(10.0, count)
        closed = []
        closed += window.ingest(0.0, {})
        closed += window.ingest(25.0, {})  # closes [0, 10) en route
        closed += window.flush()
        starts = sorted(start for start, _e, _k, _r in closed)
        assert starts == [0.0, 20.0]
        assert window.open_windows == 0

    def test_lateness_tolerates_minor_disorder(self):
        window = TumblingWindow(10.0, count, lateness=5.0)
        window.ingest(12.0, {})
        closed = window.ingest(9.0, {})  # late but within lateness
        assert closed == []
        closed = window.ingest(16.0, {})
        assert closed == [(0.0, 10.0, None, 1)]
        assert window.late_records == 0

    def test_too_late_records_dropped_and_counted(self):
        window = TumblingWindow(10.0, count, lateness=2.0)
        window.ingest(20.0, {})
        window.ingest(5.0, {})  # beyond lateness: dropped
        assert window.late_records == 1

    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            TumblingWindow(0.0, count)
        with pytest.raises(ConfigurationError):
            TumblingWindow(10.0, count, lateness=-1.0)

    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.floats(min_value=0.0, max_value=100.0,
                              allow_nan=False), max_size=60))
    def test_every_in_order_record_lands_in_exactly_one_window(self, times):
        times.sort()
        window = TumblingWindow(10.0, count)
        total = 0
        for timestamp in times:
            for _s, _e, _k, result in window.ingest(timestamp, {}):
                total += result
        for _s, _e, _k, result in window.flush():
            total += result
        assert total == len(times)


class TestSlidingWindow:
    def test_record_lands_in_overlapping_windows(self):
        window = SlidingWindow(10.0, 5.0, count)
        window.ingest(7.0, {})          # windows [0,10) and [5,15)
        closed = window.ingest(20.0, {})
        counted = {start: result for start, _e, _k, result in closed}
        assert counted[0.0] == 1
        assert counted[5.0] == 1

    def test_slide_equals_size_behaves_like_tumbling(self):
        sliding = SlidingWindow(10.0, 10.0, count)
        tumbling = TumblingWindow(10.0, count)
        for timestamp in (1.0, 4.0, 11.0, 14.0, 25.0):
            sliding_closed = sliding.ingest(timestamp, {})
            tumbling_closed = tumbling.ingest(timestamp, {})
            assert sliding_closed == tumbling_closed

    def test_invalid_slide(self):
        with pytest.raises(ConfigurationError):
            SlidingWindow(10.0, 0.0, count)
        with pytest.raises(ConfigurationError):
            SlidingWindow(10.0, 20.0, count)

    @settings(max_examples=20, deadline=None)
    @given(st.lists(st.floats(min_value=0.0, max_value=50.0,
                              allow_nan=False), max_size=40))
    def test_each_record_in_size_over_slide_windows(self, times):
        times.sort()
        window = SlidingWindow(10.0, 5.0, count)
        total = 0
        for timestamp in times:
            for *_rest, result in window.ingest(timestamp, {}):
                total += result
        for *_rest, result in window.flush():
            total += result
        assert total == 2 * len(times)  # size/slide = 2 windows each


class TestDeployedWindowService:
    def test_windowed_aggregation_as_secure_service(self):
        from repro.crypto.aead import AeadKey
        from repro.microservices.eventbus import EventBus, SealedEvent
        from repro.microservices.service import MicroService
        from repro.sgx.platform import SgxPlatform
        from repro.sim.events import Environment

        env = Environment()
        bus = EventBus(env, latency=0.0001)
        platform = SgxPlatform(seed=53, quoting_key_bits=512)
        keys = {"readings": AeadKey(b"\x01" * 32),
                "averages": AeadKey(b"\x02" * 32)}
        operator = TumblingWindow(60.0, mean, key_fn=lambda r: r["meter"])
        handler = window_service_handler(operator, "averages")
        MicroService("windower", platform, bus, {"readings": handler}, keys)

        outputs = []
        bus.subscribe("averages", outputs.append)
        samples = [
            (0.0, "m1", 100.0), (30.0, "m1", 200.0),
            (10.0, "m2", 50.0), (70.0, "m1", 300.0),
            (130.0, "m1", 0.0),
        ]
        for timestamp, meter, watts in samples:
            payload = json.dumps({"t": timestamp, "meter": meter,
                                  "w": watts}).encode()
            sequence = bus.next_sequence("readings")
            bus.publish(SealedEvent.seal(keys["readings"], "readings",
                                         "gw", sequence, payload))
        env.run()

        results = [json.loads(event.open(keys["averages"]).decode())
                   for event in outputs]
        first_window = next(
            r for r in results
            if r["key"] == "m1" and r["window_start"] == 0.0
        )
        assert first_window["result"] == pytest.approx(150.0)
        # Aggregates left the enclave only as sealed events.
        assert all(b"150" not in event.blob for event in outputs)
