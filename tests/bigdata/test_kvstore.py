"""Tests for the secure structured store."""

import pytest

from repro.errors import ConfigurationError, IntegrityError
from repro.scone.fs_shield import ProtectedVolume, UntrustedStore
from repro.bigdata.kvstore import SecureTable


@pytest.fixture()
def volume():
    return ProtectedVolume(UntrustedStore(), chunk_size=128)


class TestSecureTable:
    def test_put_get(self, volume):
        table = SecureTable(volume, "meters")
        table.put("meter-1", b"reading=230")
        assert table.get("meter-1") == b"reading=230"

    def test_overwrite(self, volume):
        table = SecureTable(volume, "meters")
        table.put("k", b"v1")
        table.put("k", b"longer-value-2")
        assert table.get("k") == b"longer-value-2"
        assert len(table) == 1

    def test_put_many(self, volume):
        table = SecureTable(volume, "meters")
        table.put_many([("m%d" % i, b"v%d" % i) for i in range(20)])
        assert len(table) == 20
        assert table.get("m7") == b"v7"
        # Reopening sees the single, final manifest.
        reopened = SecureTable.open(volume, "meters")
        assert reopened.keys() == table.keys()
        assert reopened.verify()

    def test_put_many_overwrites_and_validates(self, volume):
        table = SecureTable(volume, "meters")
        table.put("k", b"old")
        table.put_many([("k", b"new"), ("j", b"other")])
        assert table.get("k") == b"new"
        assert len(table) == 2
        with pytest.raises(ConfigurationError):
            table.put_many([("bad/key", b"x")])

    def test_get_unknown(self, volume):
        with pytest.raises(ConfigurationError):
            SecureTable(volume, "t").get("ghost")

    def test_delete(self, volume):
        table = SecureTable(volume, "t")
        table.put("k", b"v")
        table.delete("k")
        assert "k" not in table
        with pytest.raises(ConfigurationError):
            table.get("k")

    def test_delete_idempotent(self, volume):
        SecureTable(volume, "t").delete("never-existed")

    def test_scan_prefix(self, volume):
        table = SecureTable(volume, "t")
        table.put("meter-1", b"a")
        table.put("meter-2", b"b")
        table.put("sensor-1", b"c")
        scanned = table.scan("meter-")
        assert [key for key, _v in scanned] == ["meter-1", "meter-2"]

    def test_reopen_preserves_rows(self, volume):
        table = SecureTable(volume, "t")
        table.put("k1", b"v1")
        table.put("k2", b"v2")
        reopened = SecureTable.open(volume, "t")
        assert reopened.keys() == ["k1", "k2"]
        assert reopened.get("k1") == b"v1"

    def test_values_encrypted_at_rest(self, volume):
        table = SecureTable(volume, "t")
        table.put("k", b"VERY-SECRET-READING" * 5)
        for (path, index) in list(volume.store._chunks):
            assert b"VERY-SECRET" not in volume.store.get(path, index)

    def test_tampered_row_detected(self, volume):
        table = SecureTable(volume, "t")
        table.put("k", b"value" * 40)
        volume.store.tamper("/tables/t/k", 0)
        with pytest.raises(IntegrityError):
            table.get("k")

    def test_verify_all_rows(self, volume):
        table = SecureTable(volume, "t")
        table.put("a", b"1")
        table.put("b", b"2")
        assert table.verify()
        volume.store.tamper("/tables/t/b", 0)
        with pytest.raises(IntegrityError):
            table.verify()

    def test_rolled_back_row_detected(self, volume):
        table = SecureTable(volume, "t")
        table.put("k", b"version-1")
        old = volume.store.snapshot_chunk("/tables/t/k", 0)
        table.put("k", b"version-2")
        volume.store.rollback("/tables/t/k", 0, old)
        with pytest.raises(IntegrityError):
            table.get("k")

    def test_invalid_names_rejected(self, volume):
        with pytest.raises(ConfigurationError):
            SecureTable(volume, "bad/name")
        table = SecureTable(volume, "t")
        with pytest.raises(ConfigurationError):
            table.put("bad/key", b"v")

    def test_two_tables_independent(self, volume):
        a = SecureTable(volume, "a")
        b = SecureTable(volume, "b")
        a.put("k", b"from-a")
        b.put("k", b"from-b")
        assert a.get("k") == b"from-a"
        assert b.get("k") == b"from-b"
