"""Tests for the secure record store query engine."""

import pytest

from repro.errors import ConfigurationError, IntegrityError
from repro.scone.fs_shield import ProtectedVolume, UntrustedStore
from repro.bigdata.query import SecureRecordStore


@pytest.fixture()
def store():
    volume = ProtectedVolume(UntrustedStore(), chunk_size=128)
    record_store = SecureRecordStore(volume, "readings")
    rows = [
        ("r1", {"meter": "m1", "w": 100.0, "zone": "north"}),
        ("r2", {"meter": "m2", "w": 250.0, "zone": "north"}),
        ("r3", {"meter": "m3", "w": 80.0, "zone": "south"}),
        ("r4", {"meter": "m1", "w": 300.0, "zone": "south"}),
        ("r5", {"meter": "m2", "w": 50.0, "zone": "north"}),
    ]
    for key, record in rows:
        record_store.insert(key, record)
    return record_store


class TestCrud:
    def test_insert_get(self, store):
        assert store.get("r1")["w"] == 100.0

    def test_non_dict_rejected(self, store):
        with pytest.raises(ConfigurationError):
            store.insert("bad", [1, 2, 3])

    def test_delete(self, store):
        store.delete("r1")
        assert len(store) == 4

    def test_records_encrypted_at_rest(self, store):
        for (path, index) in list(store.table.volume.store._chunks):
            blob = store.table.volume.store.get(path, index)
            assert b"north" not in blob
            assert b"meter" not in blob

    def test_tamper_detected_on_query(self, store):
        store.table.volume.store.tamper("/tables/readings/r2", 0)
        with pytest.raises(IntegrityError):
            store.query()


class TestQuery:
    def test_filter_conjunction(self, store):
        rows = store.query(where=[("zone", "==", "north"), ("w", ">", 60.0)])
        assert sorted(key for key, _r in rows) == ["r1", "r2"]

    def test_all_operators(self, store):
        assert len(store.query(where=[("w", "!=", 100.0)])) == 4
        assert len(store.query(where=[("w", "<=", 80.0)])) == 2
        assert len(store.query(where=[("w", ">=", 250.0)])) == 2
        assert len(store.query(where=[("w", "<", 80.0)])) == 1

    def test_unknown_operator_rejected(self, store):
        with pytest.raises(ConfigurationError):
            store.query(where=[("w", "~=", 1)])

    def test_missing_column_excludes_row(self, store):
        store.insert("r6", {"meter": "m9"})  # no "w"
        rows = store.query(where=[("w", ">", 0.0)])
        assert all(key != "r6" for key, _r in rows)

    def test_projection(self, store):
        rows = store.query(project=["meter"])
        assert all(set(record) == {"meter"} for _k, record in rows)

    def test_order_and_limit(self, store):
        rows = store.query(order_by="w", descending=True, limit=2)
        assert [record["w"] for _k, record in rows] == [300.0, 250.0]

    def test_negative_limit_rejected(self, store):
        with pytest.raises(ConfigurationError):
            store.query(limit=-1)

    def test_empty_result(self, store):
        assert store.query(where=[("w", ">", 1e9)]) == []


class TestAggregation:
    def test_scalar_aggregates(self, store):
        assert store.aggregate("w", "sum") == pytest.approx(780.0)
        assert store.aggregate("w", "count") == 5
        assert store.aggregate("w", "min") == 50.0
        assert store.aggregate("w", "max") == 300.0
        assert store.aggregate("w", "mean") == pytest.approx(156.0)

    def test_grouped_aggregate(self, store):
        by_zone = store.aggregate("w", "sum", group_by="zone")
        assert by_zone == {"north": pytest.approx(400.0),
                           "south": pytest.approx(380.0)}

    def test_filtered_aggregate(self, store):
        total = store.aggregate("w", "sum", where=[("meter", "==", "m2")])
        assert total == pytest.approx(300.0)

    def test_empty_aggregate_is_none(self, store):
        assert store.aggregate("w", "sum", where=[("w", ">", 1e9)]) is None

    def test_unknown_aggregate_rejected(self, store):
        with pytest.raises(ConfigurationError):
            store.aggregate("w", "median")
