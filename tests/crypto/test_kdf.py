"""Tests for HKDF."""

import pytest

from repro.crypto.kdf import hkdf, hkdf_expand, hkdf_extract


class TestHkdf:
    def test_rfc5869_test_case_1(self):
        # RFC 5869 Appendix A.1 (SHA-256).
        ikm = bytes.fromhex("0b" * 22)
        salt = bytes.fromhex("000102030405060708090a0b0c")
        info = bytes.fromhex("f0f1f2f3f4f5f6f7f8f9")
        prk = hkdf_extract(salt, ikm)
        assert prk.hex() == (
            "077709362c2e32df0ddc3f0dc47bba6390b6c73bb50f9c3122ec844ad7c2b3e5"
        )
        okm = hkdf_expand(prk, info, 42)
        assert okm.hex() == (
            "3cb25f25faacd57a90434f64d0362f2a2d2d0a90cf1a5a4c5db02d56ecc4c5bf"
            "34007208d5b887185865"
        )

    def test_deterministic(self):
        assert hkdf(b"secret", b"ctx") == hkdf(b"secret", b"ctx")

    def test_info_separation(self):
        assert hkdf(b"secret", b"a") != hkdf(b"secret", b"b")

    def test_salt_separation(self):
        assert hkdf(b"secret", b"i", salt=b"s1") != hkdf(b"secret", b"i", salt=b"s2")

    def test_length_control(self):
        assert len(hkdf(b"x", b"y", length=100)) == 100

    def test_too_long_rejected(self):
        with pytest.raises(ValueError):
            hkdf_expand(b"\x00" * 32, b"", 255 * 32 + 1)

    def test_empty_salt_defaults_to_zeros(self):
        assert hkdf_extract(b"", b"ikm") == hkdf_extract(b"\x00" * 32, b"ikm")
