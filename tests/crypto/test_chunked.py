"""Unit tests for the chunked-parallel sealing core.

Covers the chunk geometry, the per-chunk derivations, worker-count
invariance (serial, inline, and process-pool execution must produce
byte-identical ciphertext), manifest verification, the auto-selection
threshold between ``SB1`` and ``SB2`` framing, and the deterministic
virtual cost model the benchmarks gate on.
"""

import dataclasses

import pytest

from repro.crypto.aead import AeadKey, BATCH_MAGIC, CHUNKED_MAGIC, SealedBatch
from repro.crypto.chunked import (
    CHUNK_SEAL_CYCLES_PER_BYTE,
    CHUNK_SETUP_CYCLES,
    DEFAULT_CHUNK_SIZE,
    MANIFEST_ENTRY_SIZE,
    POOL_DISPATCH_CYCLES,
    build_manifest,
    chunk_nonce,
    chunk_spans,
    chunked_keystream_xor,
    chunked_seal_cycles,
    derive_chunk_key,
    serial_seal_cycles,
    verify_manifest,
)
from repro.crypto.primitives import DeterministicRandomSource
from repro.errors import IntegrityError

CHUNK = 1024


def _key(seed=7):
    return AeadKey.generate(DeterministicRandomSource(seed))


def _payload(size, seed=11):
    return DeterministicRandomSource(seed).bytes(size)


class TestChunkGeometry:
    def test_spans_cover_exactly(self):
        spans = chunk_spans(2500, 1000)
        assert spans == [(0, 1000), (1000, 1000), (2000, 500)]

    def test_empty_payload_has_no_spans(self):
        assert chunk_spans(0, 1000) == []

    def test_exact_multiple_has_no_runt(self):
        assert chunk_spans(2000, 1000) == [(0, 1000), (1000, 1000)]

    def test_invalid_geometry_rejected(self):
        with pytest.raises(ValueError):
            chunk_spans(10, 0)
        with pytest.raises(ValueError):
            chunk_spans(-1, 10)


class TestDerivations:
    def test_chunk_keys_differ_per_index_and_nonce(self):
        enc = b"k" * 32
        nonce = b"n" * 16
        keys = {derive_chunk_key(enc, nonce, i) for i in range(8)}
        assert len(keys) == 8
        assert derive_chunk_key(enc, b"m" * 16, 0) != derive_chunk_key(
            enc, nonce, 0
        )

    def test_chunk_nonce_is_prefix_plus_counter(self):
        nonce = bytes(range(16))
        assert chunk_nonce(nonce, 3) == nonce[:8] + (3).to_bytes(8, "big")


class TestWorkerInvariance:
    def test_serial_and_pool_bytes_identical(self):
        data = _payload(5 * CHUNK + 123)
        enc = b"e" * 32
        nonce = b"v" * 16
        serial = chunked_keystream_xor(enc, nonce, data, CHUNK, workers=1)
        pooled = chunked_keystream_xor(enc, nonce, data, CHUNK, workers=3)
        assert serial == pooled

    def test_xor_is_its_own_inverse(self):
        data = _payload(3 * CHUNK + 1)
        sealed = chunked_keystream_xor(b"e" * 32, b"v" * 16, data, CHUNK)
        opened = chunked_keystream_xor(b"e" * 32, b"v" * 16, sealed, CHUNK)
        assert opened == data

    def test_memoryview_input_accepted(self):
        data = _payload(2 * CHUNK)
        direct = chunked_keystream_xor(b"e" * 32, b"v" * 16, data, CHUNK)
        viewed = chunked_keystream_xor(
            b"e" * 32, b"v" * 16, memoryview(data), CHUNK
        )
        assert direct == viewed

    def test_bad_worker_count_rejected(self):
        with pytest.raises(ValueError):
            chunked_keystream_xor(b"e" * 32, b"v" * 16, b"x", CHUNK, workers=0)


class TestManifest:
    def test_manifest_entry_count_matches_chunks(self):
        body = _payload(3 * CHUNK + 7)
        manifest = build_manifest(body, CHUNK)
        assert len(manifest) == 4 * MANIFEST_ENTRY_SIZE
        verify_manifest(body, CHUNK, manifest)

    def test_truncated_body_fails(self):
        body = _payload(2 * CHUNK)
        manifest = build_manifest(body, CHUNK)
        with pytest.raises(IntegrityError):
            verify_manifest(body[:-1], CHUNK, manifest)

    def test_reordered_chunks_fail(self):
        body = _payload(2 * CHUNK)
        manifest = build_manifest(body, CHUNK)
        swapped = body[CHUNK:] + body[:CHUNK]
        with pytest.raises(IntegrityError):
            verify_manifest(swapped, CHUNK, manifest)

    def test_ragged_manifest_length_fails(self):
        body = _payload(CHUNK)
        manifest = build_manifest(body, CHUNK)
        with pytest.raises(IntegrityError):
            verify_manifest(body, CHUNK, manifest[:-1])

    def test_empty_body_empty_manifest(self):
        assert build_manifest(b"", CHUNK) == b""
        verify_manifest(b"", CHUNK, b"")


class TestAutoSelection:
    def test_sub_chunk_frames_keep_sb1_bytes(self):
        # Small records must not regress: the auto-selected path must be
        # byte-identical to the forced-serial SB1 path.
        key = _key()
        nonce = DeterministicRandomSource(3).bytes(16)
        records = [b"r" * 64] * 16
        auto = key.encrypt_batch(records, aad=b"s", nonce=nonce)
        forced = key.encrypt_batch(records, aad=b"s", nonce=nonce, chunk_size=0)
        assert auto.to_bytes() == forced.to_bytes()
        assert auto.to_bytes()[:3] == BATCH_MAGIC

    def test_large_frames_choose_chunked(self):
        key = _key()
        batch = key.encrypt_batch([_payload(DEFAULT_CHUNK_SIZE + 1)])
        assert batch.chunk_size == DEFAULT_CHUNK_SIZE
        assert batch.to_bytes()[:3] == CHUNKED_MAGIC

    def test_threshold_boundary_stays_serial(self):
        key = _key()
        # Exactly one chunk's worth of framed bytes must stay serial
        # (chunking a single chunk is pure overhead).
        payload = _payload(DEFAULT_CHUNK_SIZE - 4)
        assert key.encrypt_batch([payload]).chunk_size == 0

    def test_wire_round_trip_both_magics(self):
        key = _key()
        for payloads in ([b"tiny"], [_payload(DEFAULT_CHUNK_SIZE * 2)]):
            raw = key.encrypt_batch(payloads, aad=b"w").to_bytes()
            assert SealedBatch.is_batch(raw)
            opened = key.decrypt_batch(SealedBatch.from_bytes(raw), aad=b"w")
            assert opened == payloads

    def test_chunked_ciphertext_worker_invariant_end_to_end(self):
        key = _key()
        nonce = DeterministicRandomSource(5).bytes(16)
        payloads = [_payload(4 * CHUNK + 77)]
        one = key.encrypt_batch(
            payloads, nonce=nonce, chunk_size=CHUNK, workers=1
        ).to_bytes()
        four = key.encrypt_batch(
            payloads, nonce=nonce, chunk_size=CHUNK, workers=4
        ).to_bytes()
        assert one == four
        assert key.decrypt_batch(
            SealedBatch.from_bytes(four), workers=4
        ) == payloads


class TestChunkedFailClosed:
    def test_tampered_chunk_fails_before_plaintext(self):
        key = _key()
        batch = key.encrypt_batch([_payload(3 * CHUNK)], chunk_size=CHUNK)
        evil_body = bytearray(batch.body)
        evil_body[CHUNK + 5] ^= 0x80
        evil = dataclasses.replace(batch, body=bytes(evil_body))
        with pytest.raises(IntegrityError):
            key.decrypt_batch(evil)

    def test_consistent_reorder_of_manifest_and_body_fails_on_tag(self):
        # An attacker who reorders body chunks *and* the matching
        # manifest entries defeats the digest check but not the tag.
        key = _key()
        batch = key.encrypt_batch([_payload(2 * CHUNK)], chunk_size=CHUNK)
        body = bytes(batch.body)
        evil = dataclasses.replace(
            batch,
            body=body[CHUNK:] + body[:CHUNK],
            manifest=(
                batch.manifest[MANIFEST_ENTRY_SIZE:]
                + batch.manifest[:MANIFEST_ENTRY_SIZE]
            ),
        )
        with pytest.raises(IntegrityError):
            key.decrypt_batch(evil)

    def test_zero_chunk_size_wire_rejected(self):
        key = _key()
        raw = bytearray(
            key.encrypt_batch([_payload(2 * CHUNK)], chunk_size=CHUNK).to_bytes()
        )
        raw[7:11] = (0).to_bytes(4, "big")   # chunk_size field
        with pytest.raises(IntegrityError):
            SealedBatch.from_bytes(bytes(raw))


class TestCostModel:
    def test_serial_cost_is_linear(self):
        assert serial_seal_cycles(1000) == (
            CHUNK_SETUP_CYCLES + 1000 * CHUNK_SEAL_CYCLES_PER_BYTE
        )

    def test_makespan_shrinks_with_workers(self):
        length = 16 * DEFAULT_CHUNK_SIZE
        serial = chunked_seal_cycles(length, DEFAULT_CHUNK_SIZE, workers=1)
        quad = chunked_seal_cycles(length, DEFAULT_CHUNK_SIZE, workers=4)
        assert quad < serial
        assert serial / quad >= 2.0

    def test_makespan_deterministic(self):
        a = chunked_seal_cycles(10_000_000, 65536, workers=8)
        b = chunked_seal_cycles(10_000_000, 65536, workers=8)
        assert a == b

    def test_workers_beyond_chunks_do_not_help(self):
        length = 2 * DEFAULT_CHUNK_SIZE
        assert chunked_seal_cycles(length, DEFAULT_CHUNK_SIZE, workers=2) == (
            chunked_seal_cycles(length, DEFAULT_CHUNK_SIZE, workers=16)
        )

    def test_empty_payload_costs_nothing(self):
        assert chunked_seal_cycles(0, DEFAULT_CHUNK_SIZE, workers=4) == 0

    def test_dispatch_cost_charged_per_chunk(self):
        length = 4 * DEFAULT_CHUNK_SIZE
        makespan = chunked_seal_cycles(length, DEFAULT_CHUNK_SIZE, workers=4)
        per_chunk = CHUNK_SETUP_CYCLES + (
            DEFAULT_CHUNK_SIZE * CHUNK_SEAL_CYCLES_PER_BYTE
        )
        assert makespan == 4 * POOL_DISPATCH_CYCLES + per_chunk
