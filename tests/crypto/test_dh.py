"""Tests for Diffie-Hellman key agreement."""

import pytest

from repro.crypto.dh import DH_PRIME, DhKeyPair
from repro.crypto.primitives import DeterministicRandomSource


class TestDh:
    def test_shared_key_agreement(self):
        a = DhKeyPair.generate(DeterministicRandomSource(1))
        b = DhKeyPair.generate(DeterministicRandomSource(2))
        assert a.shared_key(b.public_value) == b.shared_key(a.public_value)

    def test_shared_key_length(self):
        a = DhKeyPair.generate(DeterministicRandomSource(1))
        b = DhKeyPair.generate(DeterministicRandomSource(2))
        assert len(a.shared_key(b.public_value)) == 32

    def test_different_peers_different_keys(self):
        a = DhKeyPair.generate(DeterministicRandomSource(1))
        b = DhKeyPair.generate(DeterministicRandomSource(2))
        c = DhKeyPair.generate(DeterministicRandomSource(3))
        assert a.shared_key(b.public_value) != a.shared_key(c.public_value)

    def test_info_separates_derivations(self):
        a = DhKeyPair.generate(DeterministicRandomSource(1))
        b = DhKeyPair.generate(DeterministicRandomSource(2))
        assert a.shared_key(b.public_value, info=b"x") != a.shared_key(
            b.public_value, info=b"y"
        )

    def test_invalid_private_value(self):
        with pytest.raises(ValueError):
            DhKeyPair(1)
        with pytest.raises(ValueError):
            DhKeyPair(DH_PRIME - 1)

    def test_invalid_peer_value_rejected(self):
        a = DhKeyPair.generate(DeterministicRandomSource(1))
        with pytest.raises(ValueError):
            a.shared_key(0)
        with pytest.raises(ValueError):
            a.shared_key(DH_PRIME)

    def test_public_value_in_group(self):
        a = DhKeyPair.generate(DeterministicRandomSource(1))
        assert 1 < a.public_value < DH_PRIME - 1
