"""Property-based tests for the sealed-batch AEAD framing.

Random payload batches must round-trip exactly, and every adversarial
mutation of the wire blob -- truncation at any point, any single bit
flip, reordered record frames, a forged record count, a swapped AAD --
must fail *closed*: :class:`~repro.errors.IntegrityError` before a
single byte of plaintext is released.
"""

import pytest

from hypothesis import assume, given, settings, strategies as st

from repro.crypto.aead import (
    BATCH_MAGIC,
    NONCE_SIZE,
    TAG_SIZE,
    AeadKey,
    SealedBatch,
    _LEN_SIZE,
)
from repro.crypto.primitives import DeterministicRandomSource
from repro.errors import IntegrityError

_HEADER = len(BATCH_MAGIC) + 4 + NONCE_SIZE + TAG_SIZE


def _key(seed):
    return AeadKey.generate(DeterministicRandomSource(seed))


def _open(key, raw, aad=b""):
    return key.decrypt_batch(SealedBatch.from_bytes(raw), aad=aad)


class TestRoundTrip:
    @settings(max_examples=50)
    @given(
        st.integers(min_value=0, max_value=2**16),
        st.lists(st.binary(max_size=256), max_size=16),
        st.binary(max_size=32),
    )
    def test_wire_round_trip(self, seed, payloads, aad):
        key = _key(seed)
        raw = key.encrypt_batch(payloads, aad=aad).to_bytes()
        assert _open(key, raw, aad=aad) == payloads

    @settings(max_examples=25)
    @given(st.lists(st.binary(max_size=64), max_size=8))
    def test_ciphertext_hides_payload_bytes(self, payloads):
        key = _key(1)
        raw = key.encrypt_batch(payloads).to_bytes()
        body = raw[_HEADER:]
        for payload in payloads:
            if len(payload) >= 8:        # short strings collide by chance
                assert payload not in body


class TestFailClosed:
    @settings(max_examples=50)
    @given(
        st.lists(st.binary(min_size=1, max_size=64), min_size=1, max_size=8),
        st.data(),
    )
    def test_any_truncation_fails_closed(self, payloads, data):
        key = _key(2)
        raw = key.encrypt_batch(payloads).to_bytes()
        cut = data.draw(st.integers(min_value=0, max_value=len(raw) - 1))
        with pytest.raises(IntegrityError):
            _open(key, raw[:cut])

    @settings(max_examples=50)
    @given(
        st.lists(st.binary(max_size=64), max_size=8),
        st.data(),
    )
    def test_any_bit_flip_fails_closed(self, payloads, data):
        key = _key(3)
        raw = bytearray(key.encrypt_batch(payloads).to_bytes())
        position = data.draw(
            st.integers(min_value=0, max_value=len(raw) - 1)
        )
        bit = data.draw(st.integers(min_value=0, max_value=7))
        raw[position] ^= 1 << bit
        with pytest.raises(IntegrityError):
            _open(key, bytes(raw))

    @settings(max_examples=50)
    @given(
        st.lists(st.binary(min_size=4, max_size=32), min_size=2,
                 max_size=6),
        st.data(),
    )
    def test_reordered_frames_fail_closed(self, payloads, data):
        """Swapping two whole ``len || record`` frames inside the
        encrypted body is a splice, not noise -- the tag still refuses
        it, so record order is authenticated."""
        # Make records pairwise distinct so a swap changes the frame.
        payloads = [
            index.to_bytes(2, "big") + payload
            for index, payload in enumerate(payloads)
        ]
        key = _key(4)
        batch = key.encrypt_batch(payloads)
        # Frame boundaries inside the (encrypted) body mirror the
        # plaintext framing: len-prefix plus payload, in order.
        offsets, cursor = [], 0
        for payload in payloads:
            size = _LEN_SIZE + len(payload)
            offsets.append((cursor, cursor + size))
            cursor += size
        first = data.draw(
            st.integers(min_value=0, max_value=len(payloads) - 2)
        )
        second = data.draw(
            st.integers(min_value=first + 1, max_value=len(payloads) - 1)
        )
        body = batch.body
        (a0, a1), (b0, b1) = offsets[first], offsets[second]
        mutated = (body[:a0] + body[b0:b1] + body[a1:b0]
                   + body[a0:a1] + body[b1:])
        assert len(mutated) == len(body)
        assume(mutated != body)
        raw = SealedBatch(
            nonce=batch.nonce, body=mutated, tag=batch.tag,
            count=batch.count,
        ).to_bytes()
        with pytest.raises(IntegrityError):
            _open(key, raw)

    @settings(max_examples=50)
    @given(
        st.lists(st.binary(max_size=64), max_size=8),
        st.integers(min_value=0, max_value=2**32 - 1),
    )
    def test_forged_count_fails_closed(self, payloads, forged):
        key = _key(5)
        batch = key.encrypt_batch(payloads)
        assume(forged != batch.count)
        raw = SealedBatch(
            nonce=batch.nonce, body=batch.body, tag=batch.tag,
            count=forged,
        ).to_bytes()
        with pytest.raises(IntegrityError):
            _open(key, raw)

    @settings(max_examples=25)
    @given(
        st.lists(st.binary(max_size=64), max_size=8),
        st.binary(max_size=16),
        st.binary(max_size=16),
    )
    def test_aad_swap_fails_closed(self, payloads, aad, other_aad):
        assume(aad != other_aad)
        key = _key(6)
        raw = key.encrypt_batch(payloads, aad=aad).to_bytes()
        with pytest.raises(IntegrityError):
            _open(key, raw, aad=other_aad)

    @settings(max_examples=25)
    @given(
        st.lists(st.binary(max_size=64), max_size=8),
        st.integers(min_value=0, max_value=2**16),
        st.integers(min_value=0, max_value=2**16),
    )
    def test_wrong_key_fails_closed(self, payloads, seed_a, seed_b):
        assume(seed_a != seed_b)
        raw = _key(seed_a).encrypt_batch(payloads).to_bytes()
        with pytest.raises(IntegrityError):
            _open(_key(seed_b), raw)
