"""Tests and property tests for the SealedBatch AEAD framing."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import IntegrityError
from repro.crypto.aead import (
    AeadKey,
    Ciphertext,
    KEY_SIZE,
    NONCE_SIZE,
    SealedBatch,
    TAG_SIZE,
)
from repro.crypto.primitives import DeterministicRandomSource


def deterministic_key(seed=0):
    source = DeterministicRandomSource(seed)
    return AeadKey(source.bytes(KEY_SIZE), random_source=source)


class TestRoundTrip:
    def test_basic(self):
        key = deterministic_key()
        payloads = [b"alpha", b"", b"gamma" * 100]
        batch = key.encrypt_batch(payloads, aad=b"hdr")
        assert key.decrypt_batch(batch, aad=b"hdr") == payloads

    def test_empty_batch(self):
        key = deterministic_key()
        batch = key.encrypt_batch([])
        assert key.decrypt_batch(batch) == []

    def test_serialisation_round_trip(self):
        key = deterministic_key()
        batch = key.encrypt_batch([b"a", b"bb"], aad=b"x")
        parsed = SealedBatch.from_bytes(batch.to_bytes())
        assert parsed == batch
        assert key.decrypt_batch(parsed, aad=b"x") == [b"a", b"bb"]

    @settings(max_examples=50)
    @given(
        st.lists(st.binary(max_size=256), max_size=16),
        st.binary(max_size=32),
    )
    def test_batch_equals_per_record_round_trip(self, payloads, aad):
        """decrypt_batch(encrypt_batch(...)) == [decrypt(encrypt(p))...]."""
        key = deterministic_key()
        batched = key.decrypt_batch(key.encrypt_batch(payloads, aad=aad), aad=aad)
        per_record = [
            key.decrypt(key.encrypt(payload, aad=aad), aad=aad)
            for payload in payloads
        ]
        assert batched == per_record == payloads

    def test_framing_amortised(self):
        key = deterministic_key()
        payloads = [b"x" * 16] * 100
        batch_wire = len(key.encrypt_batch(payloads))
        per_record_wire = sum(len(key.encrypt(p)) for p in payloads)
        # One nonce+tag for the batch instead of one per record.
        assert batch_wire < per_record_wire - 90 * (NONCE_SIZE + TAG_SIZE)


class TestTamperDetection:
    def test_flipped_body_bit(self):
        key = deterministic_key()
        batch = key.encrypt_batch([b"payload"])
        evil = SealedBatch(
            batch.nonce,
            bytes([batch.body[0] ^ 1]) + batch.body[1:],
            batch.tag,
            batch.count,
        )
        with pytest.raises(IntegrityError):
            key.decrypt_batch(evil)

    def test_flipped_tag_bit(self):
        key = deterministic_key()
        batch = key.encrypt_batch([b"payload"])
        evil = SealedBatch(
            batch.nonce,
            batch.body,
            bytes([batch.tag[0] ^ 1]) + batch.tag[1:],
            batch.count,
        )
        with pytest.raises(IntegrityError):
            key.decrypt_batch(evil)

    def test_tampered_count(self):
        key = deterministic_key()
        batch = key.encrypt_batch([b"a", b"b"])
        evil = SealedBatch(batch.nonce, batch.body, batch.tag, 1)
        with pytest.raises(IntegrityError):
            key.decrypt_batch(evil)

    def test_wrong_aad(self):
        key = deterministic_key()
        batch = key.encrypt_batch([b"payload"], aad=b"right")
        with pytest.raises(IntegrityError):
            key.decrypt_batch(batch, aad=b"wrong")

    def test_wrong_key(self):
        batch = deterministic_key(1).encrypt_batch([b"payload"])
        with pytest.raises(IntegrityError):
            deterministic_key(2).decrypt_batch(batch)

    def test_truncated_blob_rejected(self):
        with pytest.raises(IntegrityError):
            SealedBatch.from_bytes(b"SB1short")

    def test_non_batch_blob_rejected(self):
        with pytest.raises(IntegrityError):
            SealedBatch.from_bytes(b"X" * 64)

    @settings(max_examples=30)
    @given(st.integers(min_value=0))
    def test_any_wire_bitflip_detected(self, position):
        key = deterministic_key()
        batch = key.encrypt_batch([b"one", b"two", b"three"], aad=b"a")
        raw = bytearray(batch.to_bytes())
        raw[position % len(raw)] ^= 0x01
        with pytest.raises(IntegrityError):
            key.decrypt_batch(SealedBatch.from_bytes(bytes(raw)), aad=b"a")


class TestDomainSeparation:
    def test_batch_not_decryptable_as_ciphertext(self):
        key = deterministic_key()
        batch = key.encrypt_batch([b"payload"], aad=b"a")
        as_single = Ciphertext(nonce=batch.nonce, body=batch.body, tag=batch.tag)
        with pytest.raises(IntegrityError):
            key.decrypt(as_single, aad=b"a")

    def test_ciphertext_not_decryptable_as_batch(self):
        key = deterministic_key()
        single = key.encrypt(b"payload", aad=b"a")
        as_batch = SealedBatch(
            nonce=single.nonce, body=single.body, tag=single.tag, count=1
        )
        with pytest.raises(IntegrityError):
            key.decrypt_batch(as_batch, aad=b"a")

    def test_is_batch_discriminates(self):
        key = deterministic_key()
        assert SealedBatch.is_batch(key.encrypt_batch([b"x"]).to_bytes())
        assert not SealedBatch.is_batch(key.encrypt(b"x").to_bytes())


class TestKeyHashing:
    def test_hash_not_derived_from_raw_key_bytes(self):
        material = DeterministicRandomSource(0).bytes(KEY_SIZE)
        key = AeadKey(material)
        assert hash(key) != hash(material)
        assert hash(key) == hash(AeadKey(material))

    def test_usable_in_sets(self):
        material = DeterministicRandomSource(0).bytes(KEY_SIZE)
        assert len({AeadKey(material), AeadKey(material)}) == 1
