"""Property-based tests for the chunked ``SB2`` sealing frame.

Mirrors the ``SB1`` suite in :mod:`tests.crypto.test_aead_properties`:
random payloads at chunk-size boundaries (empty, one byte, exactly N
chunks, N chunks plus one) must round-trip byte-exactly at any worker
count, and every adversarial move against the chunk structure --
truncation, chunk reordering, chunk duplication, splicing a chunk from
another payload, or the wrong key -- must fail *closed* with
:class:`~repro.errors.IntegrityError` before any plaintext is released.
"""

import dataclasses

import pytest

from hypothesis import given, settings, strategies as st

from repro.crypto.aead import AeadKey, SealedBatch
from repro.crypto.primitives import DeterministicRandomSource
from repro.errors import IntegrityError

CHUNK = 512          # small chunk size keeps many-chunk cases fast


def _key(seed):
    return AeadKey.generate(DeterministicRandomSource(seed))


def _seal(key, payload, seed=0, chunk_size=CHUNK, workers=None):
    nonce = DeterministicRandomSource(seed + 1000).bytes(16)
    return key.encrypt_batch(
        [payload], nonce=nonce, chunk_size=chunk_size, workers=workers
    )


# Payload sizes pinned to the interesting chunk boundaries: empty, one
# byte, one byte short of a chunk, exactly N chunks, N chunks plus one.
_boundary_sizes = st.sampled_from(
    [0, 1, CHUNK - 1, CHUNK, CHUNK + 1, 3 * CHUNK, 3 * CHUNK + 1]
)


def _payload(size, seed):
    return DeterministicRandomSource(seed + 7).bytes(size)


class TestRoundTrip:
    @settings(max_examples=40)
    @given(st.integers(min_value=0, max_value=2**16), _boundary_sizes)
    def test_boundary_sizes_round_trip(self, seed, size):
        key = _key(seed)
        payload = _payload(size, seed)
        batch = _seal(key, payload, seed)
        raw = batch.to_bytes()
        opened = key.decrypt_batch(SealedBatch.from_bytes(raw))
        assert opened == [payload]

    @settings(max_examples=20)
    @given(
        st.integers(min_value=0, max_value=2**16),
        _boundary_sizes,
        st.sampled_from([1, 2, 4]),
    )
    def test_worker_count_never_changes_bytes(self, seed, size, workers):
        key = _key(seed)
        payload = _payload(size, seed)
        serial = _seal(key, payload, seed, workers=1).to_bytes()
        pooled = _seal(key, payload, seed, workers=workers).to_bytes()
        assert serial == pooled


class TestFailClosed:
    @settings(max_examples=40)
    @given(
        st.integers(min_value=0, max_value=2**16),
        st.integers(min_value=0, max_value=3 * CHUNK),
    )
    def test_truncation_anywhere_fails(self, seed, cut):
        key = _key(seed)
        raw = _seal(key, _payload(3 * CHUNK + 1, seed), seed).to_bytes()
        cut = min(cut, len(raw) - 1)
        with pytest.raises(IntegrityError):
            key.decrypt_batch(SealedBatch.from_bytes(raw[:cut]))

    @settings(max_examples=40)
    @given(
        st.integers(min_value=0, max_value=2**16),
        st.integers(min_value=0, max_value=3),
        st.integers(min_value=0, max_value=3),
    )
    def test_chunk_reorder_fails(self, seed, a, b):
        if a == b:
            return
        key = _key(seed)
        batch = _seal(key, _payload(4 * CHUNK, seed), seed)
        body = bytearray(batch.body)
        chunk_a = bytes(body[a * CHUNK : (a + 1) * CHUNK])
        chunk_b = bytes(body[b * CHUNK : (b + 1) * CHUNK])
        body[a * CHUNK : (a + 1) * CHUNK] = chunk_b
        body[b * CHUNK : (b + 1) * CHUNK] = chunk_a
        evil = dataclasses.replace(batch, body=bytes(body))
        with pytest.raises(IntegrityError):
            key.decrypt_batch(evil)

    @settings(max_examples=40)
    @given(
        st.integers(min_value=0, max_value=2**16),
        st.integers(min_value=0, max_value=3),
        st.integers(min_value=0, max_value=3),
    )
    def test_chunk_duplication_fails(self, seed, src, dst):
        if src == dst:
            return
        key = _key(seed)
        batch = _seal(key, _payload(4 * CHUNK, seed), seed)
        body = bytearray(batch.body)
        body[dst * CHUNK : (dst + 1) * CHUNK] = (
            body[src * CHUNK : (src + 1) * CHUNK]
        )
        evil = dataclasses.replace(batch, body=bytes(body))
        with pytest.raises(IntegrityError):
            key.decrypt_batch(evil)

    @settings(max_examples=40)
    @given(
        st.integers(min_value=0, max_value=2**16),
        st.integers(min_value=0, max_value=2),
    )
    def test_cross_payload_splice_fails(self, seed, index):
        # Splice a same-position ciphertext chunk from a *different*
        # payload sealed under the same key (different nonce): the
        # manifest digest for that chunk no longer matches.
        key = _key(seed)
        victim = _seal(key, _payload(3 * CHUNK, seed), seed)
        donor = _seal(key, _payload(3 * CHUNK, seed + 1), seed + 1)
        body = bytearray(victim.body)
        body[index * CHUNK : (index + 1) * CHUNK] = bytes(
            donor.body[index * CHUNK : (index + 1) * CHUNK]
        )
        evil = dataclasses.replace(victim, body=bytes(body))
        with pytest.raises(IntegrityError):
            key.decrypt_batch(evil)

    @settings(max_examples=40)
    @given(st.integers(min_value=0, max_value=2**16), _boundary_sizes)
    def test_wrong_key_fails(self, seed, size):
        raw = _seal(_key(seed), _payload(size, seed), seed).to_bytes()
        with pytest.raises(IntegrityError):
            _key(seed + 1).decrypt_batch(SealedBatch.from_bytes(raw))

    @settings(max_examples=40)
    @given(st.integers(min_value=0, max_value=2**16))
    def test_wrong_aad_fails(self, seed):
        key = _key(seed)
        nonce = DeterministicRandomSource(seed).bytes(16)
        batch = key.encrypt_batch(
            [_payload(2 * CHUNK, seed)], aad=b"right", nonce=nonce,
            chunk_size=CHUNK,
        )
        with pytest.raises(IntegrityError):
            key.decrypt_batch(batch, aad=b"wrong")

    @settings(max_examples=25)
    @given(
        st.integers(min_value=0, max_value=2**16),
        st.integers(min_value=0, max_value=2**16),
    )
    def test_single_bit_flip_anywhere_fails(self, seed, position):
        key = _key(seed)
        raw = bytearray(_seal(key, _payload(2 * CHUNK + 3, seed), seed).to_bytes())
        raw[position % len(raw)] ^= 1 << (position % 8)
        with pytest.raises(IntegrityError):
            key.decrypt_batch(SealedBatch.from_bytes(bytes(raw)))
