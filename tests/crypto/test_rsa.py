"""Tests for RSA signatures."""

import pytest

from repro.errors import IntegrityError
from repro.crypto.primitives import DeterministicRandomSource
from repro.crypto.rsa import RsaKeyPair, _is_probable_prime


def small_keypair(seed=0):
    return RsaKeyPair.generate(bits=512, random_source=DeterministicRandomSource(seed))


@pytest.fixture(scope="module")
def keypair():
    return small_keypair()


class TestSignatures:
    def test_sign_verify_round_trip(self, keypair):
        signature = keypair.sign(b"message")
        keypair.public_key.verify(b"message", signature)

    def test_wrong_message_rejected(self, keypair):
        signature = keypair.sign(b"message")
        with pytest.raises(IntegrityError):
            keypair.public_key.verify(b"other", signature)

    def test_wrong_key_rejected(self, keypair):
        other = small_keypair(seed=99)
        signature = keypair.sign(b"message")
        with pytest.raises(IntegrityError):
            other.public_key.verify(b"message", signature)

    def test_signature_deterministic(self, keypair):
        assert keypair.sign(b"m") == keypair.sign(b"m")

    def test_out_of_range_signature_rejected(self, keypair):
        with pytest.raises(IntegrityError):
            keypair.public_key.verify(b"m", 0)
        with pytest.raises(IntegrityError):
            keypair.public_key.verify(b"m", keypair.public_key.modulus)

    def test_is_valid_boolean_form(self, keypair):
        signature = keypair.sign(b"m")
        assert keypair.public_key.is_valid(b"m", signature)
        assert not keypair.public_key.is_valid(b"n", signature)

    def test_fingerprint_stable(self, keypair):
        assert keypair.public_key.fingerprint() == keypair.public_key.fingerprint()
        assert keypair.public_key.fingerprint() != small_keypair(1).public_key.fingerprint()


class TestKeyGeneration:
    def test_modulus_width(self, keypair):
        assert keypair.public_key.modulus.bit_length() >= 511

    def test_tiny_modulus_rejected(self):
        with pytest.raises(ValueError):
            RsaKeyPair.generate(bits=64)

    def test_deterministic_generation(self):
        a = small_keypair(7)
        b = small_keypair(7)
        assert a.public_key == b.public_key


class TestMillerRabin:
    def test_known_primes(self):
        source = DeterministicRandomSource(0)
        for prime in (2, 3, 5, 104729, (1 << 61) - 1):
            assert _is_probable_prime(prime, source)

    def test_known_composites(self):
        source = DeterministicRandomSource(0)
        for composite in (0, 1, 4, 561, 104729 * 104723):
            assert not _is_probable_prime(composite, source)
