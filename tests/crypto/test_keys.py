"""Tests for the key hierarchy."""

import pytest

from repro.crypto.keys import KeyHierarchy
from repro.crypto.primitives import DeterministicRandomSource


class TestKeyHierarchy:
    def test_deterministic_derivation(self):
        root = KeyHierarchy(b"0123456789abcdef0123456789abcdef")
        assert root.aead_key("fs", "vol0") == root.aead_key("fs", "vol0")

    def test_label_separation(self):
        root = KeyHierarchy(b"0123456789abcdef0123456789abcdef")
        assert root.aead_key("fs") != root.aead_key("stdio")

    def test_label_path_unambiguous(self):
        root = KeyHierarchy(b"0123456789abcdef0123456789abcdef")
        assert root.derive_bytes("ab", "c") != root.derive_bytes("a", "bc")

    def test_short_root_rejected(self):
        with pytest.raises(ValueError):
            KeyHierarchy(b"short")

    def test_generate(self):
        root = KeyHierarchy.generate(DeterministicRandomSource(0))
        key = root.aead_key("x")
        assert key.decrypt(key.encrypt(b"data")) == b"data"

    def test_subhierarchy_independent(self):
        root = KeyHierarchy(b"0123456789abcdef0123456789abcdef")
        child = root.subhierarchy("tenant-1")
        assert child.aead_key("fs") != root.aead_key("fs")

    def test_subhierarchy_deterministic(self):
        root = KeyHierarchy(b"0123456789abcdef0123456789abcdef")
        assert (
            root.subhierarchy("t").aead_key("fs")
            == root.subhierarchy("t").aead_key("fs")
        )

    def test_derive_bytes_length(self):
        root = KeyHierarchy(b"0123456789abcdef0123456789abcdef")
        assert len(root.derive_bytes("x", length=48)) == 48
