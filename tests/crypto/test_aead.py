"""Tests and property tests for the AEAD construction."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import IntegrityError
from repro.crypto.aead import AeadKey, Ciphertext, KEY_SIZE, NONCE_SIZE, TAG_SIZE
from repro.crypto.primitives import DeterministicRandomSource


def deterministic_key(seed=0):
    source = DeterministicRandomSource(seed)
    return AeadKey(source.bytes(KEY_SIZE), random_source=source)


class TestRoundTrip:
    def test_basic(self):
        key = deterministic_key()
        ct = key.encrypt(b"hello world", aad=b"hdr")
        assert key.decrypt(ct, aad=b"hdr") == b"hello world"

    def test_empty_plaintext(self):
        key = deterministic_key()
        assert key.decrypt(key.encrypt(b"")) == b""

    def test_large_plaintext(self):
        key = deterministic_key()
        data = bytes(range(256)) * 512
        assert key.decrypt(key.encrypt(data)) == data

    @given(st.binary(max_size=2048), st.binary(max_size=64))
    def test_round_trip_property(self, plaintext, aad):
        key = deterministic_key()
        assert key.decrypt(key.encrypt(plaintext, aad=aad), aad=aad) == plaintext


class TestTamperDetection:
    def test_flipped_body_bit(self):
        key = deterministic_key()
        ct = key.encrypt(b"payload")
        evil = Ciphertext(ct.nonce, bytes([ct.body[0] ^ 1]) + ct.body[1:], ct.tag)
        with pytest.raises(IntegrityError):
            key.decrypt(evil)

    def test_flipped_tag_bit(self):
        key = deterministic_key()
        ct = key.encrypt(b"payload")
        evil = Ciphertext(ct.nonce, ct.body, bytes([ct.tag[0] ^ 1]) + ct.tag[1:])
        with pytest.raises(IntegrityError):
            key.decrypt(evil)

    def test_flipped_nonce(self):
        key = deterministic_key()
        ct = key.encrypt(b"payload")
        evil = Ciphertext(bytes(NONCE_SIZE), ct.body, ct.tag)
        with pytest.raises(IntegrityError):
            key.decrypt(evil)

    def test_wrong_aad(self):
        key = deterministic_key()
        ct = key.encrypt(b"payload", aad=b"right")
        with pytest.raises(IntegrityError):
            key.decrypt(ct, aad=b"wrong")

    def test_wrong_key(self):
        ct = deterministic_key(1).encrypt(b"payload")
        with pytest.raises(IntegrityError):
            deterministic_key(2).decrypt(ct)

    @given(
        st.binary(min_size=1, max_size=256),
        st.integers(min_value=0),
    )
    def test_any_body_bitflip_detected(self, plaintext, position):
        key = deterministic_key()
        ct = key.encrypt(plaintext)
        raw = bytearray(ct.to_bytes())
        raw[position % len(raw)] ^= 0x01
        with pytest.raises(IntegrityError):
            key.decrypt(Ciphertext.from_bytes(bytes(raw)))


class TestSerialisation:
    def test_round_trip(self):
        key = deterministic_key()
        ct = key.encrypt(b"abc")
        parsed = Ciphertext.from_bytes(ct.to_bytes())
        assert parsed == ct
        assert key.decrypt(parsed) == b"abc"

    def test_length(self):
        key = deterministic_key()
        ct = key.encrypt(b"abc")
        assert len(ct) == NONCE_SIZE + TAG_SIZE + 3

    def test_truncated_blob_rejected(self):
        with pytest.raises(IntegrityError):
            Ciphertext.from_bytes(b"short")


class TestKeyManagement:
    def test_generate_produces_working_key(self):
        key = AeadKey.generate()
        assert key.decrypt(key.encrypt(b"x")) == b"x"

    def test_bad_key_size(self):
        with pytest.raises(ValueError):
            AeadKey(b"short")

    def test_bad_nonce_size(self):
        with pytest.raises(ValueError):
            deterministic_key().encrypt(b"x", nonce=b"tiny")

    def test_equality_and_hash(self):
        material = DeterministicRandomSource(0).bytes(KEY_SIZE)
        assert AeadKey(material) == AeadKey(material)
        assert hash(AeadKey(material)) == hash(AeadKey(material))
        assert AeadKey(material) != AeadKey(bytes(KEY_SIZE))

    def test_fingerprint_stable_and_safe(self):
        material = DeterministicRandomSource(0).bytes(KEY_SIZE)
        fp = AeadKey(material).fingerprint()
        assert fp == AeadKey(material).fingerprint()
        assert len(fp) == 16  # 8 bytes hex

    def test_fresh_nonces_give_distinct_ciphertexts(self):
        key = AeadKey.generate()
        assert key.encrypt(b"same").to_bytes() != key.encrypt(b"same").to_bytes()
