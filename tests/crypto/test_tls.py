"""Tests for the TLS-like secure channel."""

import pytest

from repro.errors import AttestationError, IntegrityError
from repro.crypto.primitives import DeterministicRandomSource
from repro.crypto.rsa import RsaKeyPair
from repro.crypto.tls import establish_channel


@pytest.fixture(scope="module")
def identities():
    client = RsaKeyPair.generate(bits=512, random_source=DeterministicRandomSource(1))
    server = RsaKeyPair.generate(bits=512, random_source=DeterministicRandomSource(2))
    return client, server


def make_channels(identities, **kwargs):
    client, server = identities
    kwargs.setdefault("client_random_source", DeterministicRandomSource(10))
    kwargs.setdefault("server_random_source", DeterministicRandomSource(11))
    return establish_channel(client, server, **kwargs)


class TestHandshake:
    def test_establishes_working_pair(self, identities):
        client_chan, server_chan = make_channels(identities)
        record = client_chan.seal(b"hello server")
        assert server_chan.open(record) == b"hello server"
        reply = server_chan.seal(b"hello client")
        assert client_chan.open(reply) == b"hello client"

    def test_peer_fingerprints(self, identities):
        client, server = identities
        client_chan, server_chan = make_channels(identities)
        assert client_chan.peer_fingerprint == server.public_key.fingerprint()
        assert server_chan.peer_fingerprint == client.public_key.fingerprint()

    def test_attestation_payload_delivered(self, identities):
        seen = []
        make_channels(
            identities,
            server_attestation_payload=b"quote-bytes",
            verify_server_payload=seen.append,
        )
        assert seen == [b"quote-bytes"]

    def test_attestation_rejection_aborts(self, identities):
        def reject(payload):
            raise AttestationError("untrusted enclave")

        with pytest.raises(AttestationError):
            make_channels(identities, verify_server_payload=reject)


class TestRecordLayer:
    def test_tampered_record_rejected(self, identities):
        client_chan, server_chan = make_channels(identities)
        record = bytearray(client_chan.seal(b"secret"))
        record[-1] ^= 0x01
        with pytest.raises(IntegrityError):
            server_chan.open(bytes(record))

    def test_replay_rejected(self, identities):
        client_chan, server_chan = make_channels(identities)
        record = client_chan.seal(b"once")
        assert server_chan.open(record) == b"once"
        with pytest.raises(IntegrityError):
            server_chan.open(record)

    def test_reorder_rejected(self, identities):
        client_chan, server_chan = make_channels(identities)
        first = client_chan.seal(b"first")
        second = client_chan.seal(b"second")
        with pytest.raises(IntegrityError):
            server_chan.open(second)
        assert server_chan.open(first) == b"first"

    def test_record_type_binding(self, identities):
        client_chan, server_chan = make_channels(identities)
        record = client_chan.seal(b"config", record_type=b"scf")
        with pytest.raises(IntegrityError):
            server_chan.open(record, record_type=b"data")

    def test_directional_keys_differ(self, identities):
        client_chan, _server_chan = make_channels(identities)
        assert client_chan.send_key != client_chan.receive_key

    def test_long_conversation(self, identities):
        client_chan, server_chan = make_channels(identities)
        for i in range(50):
            message = ("msg-%d" % i).encode()
            assert server_chan.open(client_chan.seal(message)) == message
