"""Tests for hash/MAC/keystream primitives."""

import pytest
from hypothesis import given, strategies as st

import hashlib
import hmac

from repro.crypto.primitives import (
    DeterministicRandomSource,
    SystemRandomSource,
    constant_time_equal,
    hmac_context,
    hmac_sha256,
    keystream,
    keystream_xor,
    sha256,
    sha256_hex,
    xof_keystream,
    xof_keystream_xor,
    xor_bytes,
)


class TestHashes:
    def test_sha256_known_vector(self):
        assert sha256_hex(b"") == (
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        )

    def test_sha256_length(self):
        assert len(sha256(b"data")) == 32

    def test_hmac_differs_by_key(self):
        assert hmac_sha256(b"k1", b"m") != hmac_sha256(b"k2", b"m")

    def test_constant_time_equal(self):
        assert constant_time_equal(b"abc", b"abc")
        assert not constant_time_equal(b"abc", b"abd")


class TestKeystream:
    def test_deterministic(self):
        assert keystream(b"k", b"n", 100) == keystream(b"k", b"n", 100)

    def test_nonce_sensitivity(self):
        assert keystream(b"k", b"n1", 64) != keystream(b"k", b"n2", 64)

    def test_prefix_property(self):
        long = keystream(b"k", b"n", 100)
        short = keystream(b"k", b"n", 40)
        assert long[:40] == short

    def test_zero_length(self):
        assert keystream(b"k", b"n", 0) == b""

    def test_negative_length_rejected(self):
        with pytest.raises(ValueError):
            keystream(b"k", b"n", -1)

    @given(st.binary(max_size=256))
    def test_xor_involution(self, data):
        stream = keystream(b"key", b"nonce", len(data))
        assert xor_bytes(xor_bytes(data, stream), stream) == data

    def test_xor_length_mismatch(self):
        with pytest.raises(ValueError):
            xor_bytes(b"ab", b"a")

    def test_matches_seed_construction(self):
        """The optimised keystream is byte-identical to HMAC(key, nonce||i)."""
        key, nonce = b"compat-key", b"compat-nonce"
        blocks = [
            hmac.new(
                key, nonce + counter.to_bytes(8, "big"), hashlib.sha256
            ).digest()
            for counter in range(4)
        ]
        assert keystream(key, nonce, 100) == b"".join(blocks)[:100]

    @given(st.integers(0, 300), st.integers(0, 300))
    def test_prefix_property_holds_for_any_lengths(self, a, b):
        a, b = min(a, b), max(a, b)
        assert keystream(b"k", b"n", a) == keystream(b"k", b"n", b)[:a]

    @given(st.binary(max_size=512))
    def test_keystream_xor_fused_equals_unfused(self, data):
        fused = keystream_xor(b"k", b"n", data)
        assert fused == xor_bytes(data, keystream(b"k", b"n", len(data)))
        assert keystream_xor(b"k", b"n", fused) == data


class TestXofKeystream:
    def test_deterministic(self):
        assert xof_keystream(b"k", b"n", 100) == xof_keystream(b"k", b"n", 100)

    def test_key_and_nonce_sensitivity(self):
        assert xof_keystream(b"k1", b"n", 64) != xof_keystream(b"k2", b"n", 64)
        assert xof_keystream(b"k", b"n1", 64) != xof_keystream(b"k", b"n2", 64)

    def test_differs_from_hmac_ctr(self):
        assert xof_keystream(b"k", b"n", 64) != keystream(b"k", b"n", 64)

    @given(st.integers(0, 300), st.integers(0, 300))
    def test_prefix_property(self, a, b):
        a, b = min(a, b), max(a, b)
        assert xof_keystream(b"k", b"n", a) == xof_keystream(b"k", b"n", b)[:a]

    def test_zero_length(self):
        assert xof_keystream(b"k", b"n", 0) == b""

    def test_negative_length_rejected(self):
        with pytest.raises(ValueError):
            xof_keystream(b"k", b"n", -1)

    @given(st.binary(max_size=512))
    def test_xor_involution(self, data):
        once = xof_keystream_xor(b"key", b"nonce", data)
        assert xof_keystream_xor(b"key", b"nonce", once) == data

    def test_key_length_framed(self):
        """key||nonce boundary is unambiguous (no concatenation aliasing)."""
        assert xof_keystream(b"ab", b"c", 32) != xof_keystream(b"a", b"bc", 32)


class TestHmacContext:
    def test_copy_equals_fresh_hmac(self):
        base = hmac_context(b"secret")
        for message in (b"", b"a", b"hello world" * 10):
            ctx = base.copy()
            ctx.update(message)
            assert ctx.digest() == hmac_sha256(b"secret", message)


class TestRandomSources:
    def test_system_source_lengths(self):
        source = SystemRandomSource()
        assert len(source.bytes(16)) == 16
        assert source.randbits(12) < 2**12

    def test_deterministic_source_reproducible(self):
        assert (
            DeterministicRandomSource(5).bytes(32)
            == DeterministicRandomSource(5).bytes(32)
        )

    def test_deterministic_source_seed_matters(self):
        assert (
            DeterministicRandomSource(1).bytes(32)
            != DeterministicRandomSource(2).bytes(32)
        )

    def test_deterministic_zero_bytes(self):
        assert DeterministicRandomSource(1).bytes(0) == b""
