"""Tests for hash/MAC/keystream primitives."""

import pytest
from hypothesis import given, strategies as st

from repro.crypto.primitives import (
    DeterministicRandomSource,
    SystemRandomSource,
    constant_time_equal,
    hmac_sha256,
    keystream,
    sha256,
    sha256_hex,
    xor_bytes,
)


class TestHashes:
    def test_sha256_known_vector(self):
        assert sha256_hex(b"") == (
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        )

    def test_sha256_length(self):
        assert len(sha256(b"data")) == 32

    def test_hmac_differs_by_key(self):
        assert hmac_sha256(b"k1", b"m") != hmac_sha256(b"k2", b"m")

    def test_constant_time_equal(self):
        assert constant_time_equal(b"abc", b"abc")
        assert not constant_time_equal(b"abc", b"abd")


class TestKeystream:
    def test_deterministic(self):
        assert keystream(b"k", b"n", 100) == keystream(b"k", b"n", 100)

    def test_nonce_sensitivity(self):
        assert keystream(b"k", b"n1", 64) != keystream(b"k", b"n2", 64)

    def test_prefix_property(self):
        long = keystream(b"k", b"n", 100)
        short = keystream(b"k", b"n", 40)
        assert long[:40] == short

    def test_zero_length(self):
        assert keystream(b"k", b"n", 0) == b""

    def test_negative_length_rejected(self):
        with pytest.raises(ValueError):
            keystream(b"k", b"n", -1)

    @given(st.binary(max_size=256))
    def test_xor_involution(self, data):
        stream = keystream(b"key", b"nonce", len(data))
        assert xor_bytes(xor_bytes(data, stream), stream) == data

    def test_xor_length_mismatch(self):
        with pytest.raises(ValueError):
            xor_bytes(b"ab", b"a")


class TestRandomSources:
    def test_system_source_lengths(self):
        source = SystemRandomSource()
        assert len(source.bytes(16)) == 16
        assert source.randbits(12) < 2**12

    def test_deterministic_source_reproducible(self):
        assert (
            DeterministicRandomSource(5).bytes(32)
            == DeterministicRandomSource(5).bytes(32)
        )

    def test_deterministic_source_seed_matters(self):
        assert (
            DeterministicRandomSource(1).bytes(32)
            != DeterministicRandomSource(2).bytes(32)
        )

    def test_deterministic_zero_bytes(self):
        assert DeterministicRandomSource(1).bytes(0) == b""
