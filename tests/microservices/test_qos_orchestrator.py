"""Tests for QoS monitoring, billing, and the orchestrator (E4)."""

import pytest

from repro.crypto.aead import AeadKey
from repro.microservices.eventbus import EventBus, SealedEvent
from repro.microservices.orchestrator import Orchestrator, OrchestratorPolicy
from repro.microservices.qos import QosMonitor
from repro.microservices.registry import ServiceRegistry
from repro.microservices.service import MicroService
from repro.sgx.platform import SgxPlatform
from repro.sim.events import Environment


def sink(ctx, topic, plaintext):
    return []


def heartbeat_pump(env, monitor, service, period=0.005, duration=0.6):
    """Periodic liveness signals while the service is healthy."""
    while env.now < duration:
        yield env.timeout(period)
        if service.healthy:
            monitor.heartbeat(service.name)


@pytest.fixture()
def world():
    env = Environment()
    bus = EventBus(env, latency=0.0001)
    platform = SgxPlatform(seed=43, quoting_key_bits=512)
    keys = {"in": AeadKey(b"\x01" * 32)}
    monitor = QosMonitor(env)
    registry = ServiceRegistry()
    service = MicroService("svc", platform, bus, {"in": sink}, keys,
                           processing_time=0.001)
    monitor.attach(service)
    registry.register(service)
    env.process(heartbeat_pump(env, monitor, service))
    return env, bus, keys, monitor, registry, service


def feed(bus, keys, count, spacing=0.002, start=0.0):
    """Schedule ``count`` events spaced ``spacing`` apart."""
    env = bus.env
    for index in range(count):
        def publish(_fired, i=index):
            sequence = bus.next_sequence("in")
            bus.publish(
                SealedEvent.seal(keys["in"], "in", "gen", sequence, b"%d" % i)
            )
        env.timeout(start + index * spacing).callbacks.append(publish)


class TestQosMonitor:
    def test_observations_recorded(self, world):
        env, bus, keys, monitor, _registry, _service = world
        feed(bus, keys, 5)
        env.run()
        state = monitor.of("svc")
        assert state.events_handled == 5
        assert state.average_latency() == pytest.approx(0.001)
        assert state.busy_seconds == pytest.approx(0.005)

    def test_billing_prices_busy_time(self, world):
        env, bus, keys, monitor, _registry, _service = world
        feed(bus, keys, 10)
        env.run()
        report = monitor.billing_report(cpu_second_price=100.0)
        assert report.lines["svc"] == pytest.approx(1.0)
        assert report.total == pytest.approx(1.0)

    def test_rolling_window_bounded(self, world):
        env, bus, keys, monitor, _registry, _service = world
        feed(bus, keys, 80)
        env.run()
        assert len(monitor.of("svc").recent_latencies) <= 50

    def test_heartbeat_updates(self, world):
        env, _bus, _keys, monitor, _registry, _service = world
        env.timeout(0.01).callbacks.append(lambda _e: monitor.heartbeat("svc"))
        env.run(until=0.011)
        assert monitor.of("svc").last_heartbeat == pytest.approx(
            0.01, abs=0.006  # the fixture's heartbeat pump also fires
        )


class TestOrchestrator:
    def test_latency_anomaly_detected_within_milliseconds(self, world):
        env, bus, keys, monitor, registry, service = world
        orchestrator = Orchestrator(env, monitor, registry)
        orchestrator.start(duration=0.5)
        feed(bus, keys, 20, spacing=0.002)

        def inject(_fired):
            service.slowdown = 20.0  # 1 ms -> 20 ms handling
            orchestrator.record_onset("svc")

        env.timeout(0.010).callbacks.append(inject)
        env.run()
        assert orchestrator.detections
        detection = orchestrator.detections[0]
        assert detection.kind == "latency"
        latency = detection.detection_latency
        assert 0 < latency < 0.1  # detected within tens of milliseconds

    def test_reaction_restores_service_speed(self, world):
        env, bus, keys, monitor, registry, service = world
        orchestrator = Orchestrator(env, monitor, registry)
        orchestrator.start(duration=0.5)
        feed(bus, keys, 30, spacing=0.002)

        def inject(_fired):
            service.slowdown = 20.0
            orchestrator.record_onset("svc")

        env.timeout(0.010).callbacks.append(inject)
        env.run()
        assert orchestrator.reactions >= 1
        assert service.slowdown == 1.0

    def test_liveness_anomaly_detected(self, world):
        env, bus, keys, monitor, registry, service = world
        policy = OrchestratorPolicy(heartbeat_timeout=0.01)
        orchestrator = Orchestrator(env, monitor, registry, policy)
        orchestrator.start(duration=0.2)
        feed(bus, keys, 3, spacing=0.002)

        def inject(_fired):
            service.crash()
            orchestrator.record_onset("svc")

        env.timeout(0.02).callbacks.append(inject)
        env.run()
        kinds = {d.kind for d in orchestrator.detections}
        assert "liveness" in kinds
        assert service.healthy  # orchestrator recovered it

    def test_no_false_positives_on_healthy_service(self, world):
        env, bus, keys, monitor, registry, _service = world
        orchestrator = Orchestrator(env, monitor, registry)
        orchestrator.start(duration=0.1)
        feed(bus, keys, 30, spacing=0.002)
        env.run()
        assert orchestrator.detections == []

    def test_custom_reaction_hook_invoked(self, world):
        env, bus, keys, monitor, registry, service = world
        observed = []

        def adapt(detection, svc):
            observed.append((detection.kind, svc.name if svc else None))

        orchestrator = Orchestrator(env, monitor, registry,
                                    on_detection=adapt)
        orchestrator.start(duration=0.5)
        feed(bus, keys, 20, spacing=0.002)
        env.timeout(0.01).callbacks.append(
            lambda _e: setattr(service, "slowdown", 30.0)
        )
        env.run()
        assert ("latency", "svc") in observed

    def test_detection_latencies_listing(self, world):
        env, bus, keys, monitor, registry, service = world
        orchestrator = Orchestrator(env, monitor, registry)
        orchestrator.start(duration=0.5)
        feed(bus, keys, 20, spacing=0.002)
        env.timeout(0.01).callbacks.append(
            lambda _e: (setattr(service, "slowdown", 30.0),
                        orchestrator.record_onset("svc"))
        )
        env.run()
        latencies = orchestrator.detection_latencies()
        assert latencies and all(l > 0 for l in latencies)
