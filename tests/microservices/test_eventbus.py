"""Tests for the event bus and sealed events."""

import pytest

from repro.errors import IntegrityError
from repro.crypto.aead import AeadKey
from repro.microservices.eventbus import EventBus, SealedEvent
from repro.sim.events import Environment


def key(byte=7):
    return AeadKey(bytes([byte]) * 32)


class TestSealedEvent:
    def test_round_trip(self):
        event = SealedEvent.seal(key(), "readings", "meter-1", 0, b"w=230")
        assert event.open(key()) == b"w=230"

    def test_wrong_key(self):
        event = SealedEvent.seal(key(1), "readings", "meter-1", 0, b"w=230")
        with pytest.raises(IntegrityError):
            event.open(key(2))

    def test_topic_binding(self):
        event = SealedEvent.seal(key(), "readings", "meter-1", 0, b"x")
        event.topic = "commands"
        with pytest.raises(IntegrityError):
            event.open(key())

    def test_sequence_binding(self):
        event = SealedEvent.seal(key(), "readings", "meter-1", 5, b"x")
        event.sequence = 6
        with pytest.raises(IntegrityError):
            event.open(key())

    def test_sender_binding(self):
        event = SealedEvent.seal(key(), "readings", "meter-1", 0, b"x")
        event.sender = "imposter"
        with pytest.raises(IntegrityError):
            event.open(key())

    def test_ciphertext_on_the_wire(self):
        event = SealedEvent.seal(key(), "readings", "m", 0, b"SECRET-READING")
        assert b"SECRET-READING" not in event.blob


class TestEventBus:
    def test_delivery_after_latency(self):
        env = Environment()
        bus = EventBus(env, latency=0.002)
        received = []
        bus.subscribe("t", lambda event: received.append((env.now, event)))
        event = SealedEvent.seal(key(), "t", "s", bus.next_sequence("t"), b"x")
        bus.publish(event)
        env.run()
        assert len(received) == 1
        assert received[0][0] == pytest.approx(0.002)

    def test_fifo_per_topic(self):
        env = Environment()
        bus = EventBus(env)
        received = []
        bus.subscribe("t", lambda event: received.append(event.sequence))
        for _ in range(5):
            sequence = bus.next_sequence("t")
            bus.publish(SealedEvent.seal(key(), "t", "s", sequence, b"x"))
        env.run()
        assert received == [0, 1, 2, 3, 4]

    def test_fanout_to_all_subscribers(self):
        env = Environment()
        bus = EventBus(env)
        counts = {"a": 0, "b": 0}
        bus.subscribe("t", lambda _e: counts.__setitem__("a", counts["a"] + 1))
        bus.subscribe("t", lambda _e: counts.__setitem__("b", counts["b"] + 1))
        bus.publish(SealedEvent.seal(key(), "t", "s", 0, b"x"))
        env.run()
        assert counts == {"a": 1, "b": 1}

    def test_no_cross_topic_delivery(self):
        env = Environment()
        bus = EventBus(env)
        received = []
        bus.subscribe("other", received.append)
        bus.publish(SealedEvent.seal(key(), "t", "s", 0, b"x"))
        env.run()
        assert received == []

    def test_unsubscribe(self):
        env = Environment()
        bus = EventBus(env)
        received = []
        unsubscribe = bus.subscribe("t", received.append)
        unsubscribe()
        bus.publish(SealedEvent.seal(key(), "t", "s", 0, b"x"))
        env.run()
        assert received == []

    def test_counters(self):
        env = Environment()
        bus = EventBus(env)
        bus.subscribe("t", lambda _e: None)
        bus.publish(SealedEvent.seal(key(), "t", "s", 0, b"x"))
        bus.publish(SealedEvent.seal(key(), "t", "s", 1, b"x"))
        env.run()
        assert bus.published == 2
        assert bus.delivered == 2

    def test_sequences_independent_per_topic(self):
        env = Environment()
        bus = EventBus(env)
        assert bus.next_sequence("a") == 0
        assert bus.next_sequence("a") == 1
        assert bus.next_sequence("b") == 0
