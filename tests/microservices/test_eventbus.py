"""Tests for the event bus and sealed events."""

import pytest

from repro.errors import IntegrityError
from repro.crypto.aead import AeadKey
from repro.microservices.eventbus import EventBus, SealedEvent
from repro.sim.events import Environment


def key(byte=7):
    return AeadKey(bytes([byte]) * 32)


class TestSealedEvent:
    def test_round_trip(self):
        event = SealedEvent.seal(key(), "readings", "meter-1", 0, b"w=230")
        assert event.open(key()) == b"w=230"

    def test_wrong_key(self):
        event = SealedEvent.seal(key(1), "readings", "meter-1", 0, b"w=230")
        with pytest.raises(IntegrityError):
            event.open(key(2))

    def test_topic_binding(self):
        event = SealedEvent.seal(key(), "readings", "meter-1", 0, b"x")
        event.topic = "commands"
        with pytest.raises(IntegrityError):
            event.open(key())

    def test_sequence_binding(self):
        event = SealedEvent.seal(key(), "readings", "meter-1", 5, b"x")
        event.sequence = 6
        with pytest.raises(IntegrityError):
            event.open(key())

    def test_sender_binding(self):
        event = SealedEvent.seal(key(), "readings", "meter-1", 0, b"x")
        event.sender = "imposter"
        with pytest.raises(IntegrityError):
            event.open(key())

    def test_ciphertext_on_the_wire(self):
        event = SealedEvent.seal(key(), "readings", "m", 0, b"SECRET-READING")
        assert b"SECRET-READING" not in event.blob


class TestEventBus:
    def test_delivery_after_latency(self):
        env = Environment()
        bus = EventBus(env, latency=0.002)
        received = []
        bus.subscribe("t", lambda event: received.append((env.now, event)))
        event = SealedEvent.seal(key(), "t", "s", bus.next_sequence("t"), b"x")
        bus.publish(event)
        env.run()
        assert len(received) == 1
        assert received[0][0] == pytest.approx(0.002)

    def test_fifo_per_topic(self):
        env = Environment()
        bus = EventBus(env)
        received = []
        bus.subscribe("t", lambda event: received.append(event.sequence))
        for _ in range(5):
            sequence = bus.next_sequence("t")
            bus.publish(SealedEvent.seal(key(), "t", "s", sequence, b"x"))
        env.run()
        assert received == [0, 1, 2, 3, 4]

    def test_fanout_to_all_subscribers(self):
        env = Environment()
        bus = EventBus(env)
        counts = {"a": 0, "b": 0}
        bus.subscribe("t", lambda _e: counts.__setitem__("a", counts["a"] + 1))
        bus.subscribe("t", lambda _e: counts.__setitem__("b", counts["b"] + 1))
        bus.publish(SealedEvent.seal(key(), "t", "s", 0, b"x"))
        env.run()
        assert counts == {"a": 1, "b": 1}

    def test_no_cross_topic_delivery(self):
        env = Environment()
        bus = EventBus(env)
        received = []
        bus.subscribe("other", received.append)
        bus.publish(SealedEvent.seal(key(), "t", "s", 0, b"x"))
        env.run()
        assert received == []

    def test_unsubscribe(self):
        env = Environment()
        bus = EventBus(env)
        received = []
        unsubscribe = bus.subscribe("t", received.append)
        unsubscribe()
        bus.publish(SealedEvent.seal(key(), "t", "s", 0, b"x"))
        env.run()
        assert received == []

    def test_counters(self):
        env = Environment()
        bus = EventBus(env)
        bus.subscribe("t", lambda _e: None)
        bus.publish(SealedEvent.seal(key(), "t", "s", 0, b"x"))
        bus.publish(SealedEvent.seal(key(), "t", "s", 1, b"x"))
        env.run()
        assert bus.published == 2
        assert bus.delivered == 2

    def test_sequences_independent_per_topic(self):
        env = Environment()
        bus = EventBus(env)
        assert bus.next_sequence("a") == 0
        assert bus.next_sequence("a") == 1
        assert bus.next_sequence("b") == 0


class TestPublishMany:
    def _burst(self, bus, topic, count):
        return [
            SealedEvent.seal(
                key(), topic, "s", bus.next_sequence(topic), b"p%d" % i
            )
            for i in range(count)
        ]

    def test_burst_delivered_in_order_after_one_latency(self):
        env = Environment()
        bus = EventBus(env, latency=0.002)
        received = []
        bus.subscribe("t", lambda event: received.append((env.now, event)))
        events = self._burst(bus, "t", 5)
        bus.publish_many(events)
        env.run()
        assert [event for _t, event in received] == events
        # One shared timer: every event lands at the same virtual time.
        assert all(t == pytest.approx(0.002) for t, _e in received)

    def test_order_preserved_across_topics(self):
        env = Environment()
        bus = EventBus(env, latency=0.001)
        received = []
        bus.subscribe("a", received.append)
        bus.subscribe("b", received.append)
        a0 = SealedEvent.seal(key(), "a", "s", bus.next_sequence("a"), b"0")
        b0 = SealedEvent.seal(key(), "b", "s", bus.next_sequence("b"), b"1")
        a1 = SealedEvent.seal(key(), "a", "s", bus.next_sequence("a"), b"2")
        bus.publish_many([a0, b0, a1])
        env.run()
        assert received == [a0, b0, a1]

    def test_subscriber_snapshot_taken_at_publish_time(self):
        env = Environment()
        bus = EventBus(env, latency=0.001)
        received = []
        unsubscribe = bus.subscribe("t", received.append)
        events = self._burst(bus, "t", 2)
        bus.publish_many(events)
        unsubscribe()  # too late: the burst already snapshotted
        env.run()
        assert received == events

    def test_counters_match_single_publish(self):
        env = Environment()
        bus = EventBus(env, latency=0.001)
        bus.subscribe("t", lambda event: None)
        bus.publish_many(self._burst(bus, "t", 3))
        env.run()
        assert bus.published == 3
        assert bus.delivered == 3

    def test_empty_burst(self):
        env = Environment()
        bus = EventBus(env, latency=0.001)
        bus.publish_many([])
        env.run()
        assert bus.published == 0

    def test_reliable_bus_retains_burst_for_redelivery(self):
        from repro.microservices.eventbus import ReliableEventBus

        env = Environment()
        bus = ReliableEventBus(env, latency=0.001, retention=8)
        bus.subscribe("t", lambda event: None)
        events = self._burst(bus, "t", 3)
        bus.publish_many(events)
        env.run()
        assert bus.retained_sequences("t") == [0, 1, 2]
        redelivered = []
        bus.redeliver("t", [1], handler=redelivered.append)
        env.run()
        assert [event.sequence for event in redelivered] == [1]
