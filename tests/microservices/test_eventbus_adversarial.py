"""Adversarial event-bus behaviours: reorder, tamper, drop -> gap.

The bus is untrusted infrastructure.  These tests drive it through the
attacks the threat model grants a hostile broker -- reordering sealed
events, tampering with ciphertext, silently dropping messages -- and
assert the consumer-side machinery detects (and, with the reliable
subscriber, recovers from) each one.
"""

from collections import OrderedDict

import pytest

from repro.chaos import ChaosBus, ChaosInjector
from repro.crypto.aead import AeadKey
from repro.errors import IntegrityError
from repro.microservices.eventbus import (
    ReliableEventBus,
    ReliableSubscriber,
    SealedEvent,
    SequenceTracker,
)
from repro.sim.events import Environment

KEY = AeadKey(b"\x21" * 32)
TOPIC = "grid"


def _event(sequence, payload=None):
    return SealedEvent.seal(
        KEY, TOPIC, "sensor", sequence, payload or b"m%d" % sequence
    )


def _pump(env, bus, events, period=0.001):
    for index, event in enumerate(events):
        env.call_at(period * (index + 1),
                    lambda event=event: bus.publish(event))


class TestReordering:
    def test_out_of_order_arrivals_are_buffered_and_delivered_in_order(self):
        env = Environment()
        bus = ReliableEventBus(env, latency=0.0001)
        seen = []
        ReliableSubscriber(bus, TOPIC, lambda e: seen.append(e.open(KEY)))
        # The broker delivers 2 before 1: sequence 1 is late, not lost.
        events = [_event(0), _event(2), _event(1), _event(3)]
        _pump(env, bus, events)
        env.run()
        assert seen == [b"m0", b"m1", b"m2", b"m3"]

    def test_plain_tracker_rejects_replayed_sequence(self):
        tracker = SequenceTracker(TOPIC)
        tracker.observe(_event(0))
        tracker.observe(_event(1))
        with pytest.raises(IntegrityError):
            tracker.observe(_event(0))


class TestTampering:
    def test_flipped_ciphertext_fails_authentication(self):
        event = _event(0)
        flipped = bytearray(event.blob)
        flipped[len(flipped) // 2] ^= 0x01
        event.blob = bytes(flipped)
        with pytest.raises(IntegrityError):
            event.open(KEY)

    def test_resequenced_event_fails_authentication(self):
        # The broker cannot renumber a sealed event: the AAD binds the
        # sequence, so presenting it under another number fails.
        event = _event(5)
        event.sequence = 6
        with pytest.raises(IntegrityError):
            event.open(KEY)


class TestDropRecovery:
    def test_gap_is_nacked_and_redelivered(self):
        env = Environment()
        bus = ReliableEventBus(env, latency=0.0001)
        seen = []
        subscriber = ReliableSubscriber(
            bus, TOPIC, lambda e: seen.append(e.open(KEY))
        )
        # Publish 0..4 but suppress the live delivery of 2 by
        # publishing it to the retained window only.
        for sequence in range(5):
            event = _event(sequence)
            if sequence == 2:
                # The hostile broker "loses" the push; retention still
                # holds the ciphertext, which is what NACKs hit.
                window = bus._retained.setdefault(TOPIC, OrderedDict())
                window[sequence] = event
            else:
                env.call_at(0.001 * (sequence + 1),
                            lambda event=event: bus.publish(event))
        env.run()
        assert seen == [b"m0", b"m1", b"m2", b"m3", b"m4"]
        assert subscriber.nacks >= 1
        assert subscriber.lost == []
        assert subscriber.recovery_latencies

    def test_unrecoverable_gap_is_bounded_and_explicit(self):
        env = Environment()
        bus = ReliableEventBus(env, latency=0.0001, retention=4)
        seen = []
        subscriber = ReliableSubscriber(
            bus, TOPIC, lambda e: seen.append(e.open(KEY)),
            max_nacks=3,
        )
        # Sequence 1 is never published anywhere: NACKs find nothing,
        # and after max_nacks the hole is recorded as lost and later
        # events still flow.
        for sequence in (0, 2, 3):
            env.call_at(0.001 * (sequence + 1),
                        lambda s=sequence: bus.publish(_event(s)))
        env.run()
        assert seen == [b"m0", b"m2", b"m3"]
        assert subscriber.lost == [1]
        assert subscriber.nacks == 3

    def test_chaos_drops_recovered_end_to_end(self):
        env = Environment()
        bus = ReliableEventBus(env, latency=0.0001, retention=64)
        chaos = ChaosInjector(seed=13, message_drop_rate=0.25)
        chaotic = ChaosBus(bus, chaos)
        seen = []
        subscriber = ReliableSubscriber(
            chaotic, TOPIC, lambda e: seen.append(e.open(KEY))
        )
        events = 30
        for index in range(events + 2):  # +2 flush sentinels for tail gaps
            def publish(index=index):
                sequence = bus.next_sequence(TOPIC)
                chaotic.publish(_event(sequence))
            env.call_at(0.001 * (index + 1), publish)
        env.run()
        assert chaotic.dropped > 0
        real = [b"m%d" % i for i in range(events)
                if i not in subscriber._lost_set]
        assert seen[:len(real)] == real
        # Exactly-once: duplicates from redelivery races are discarded.
        assert len(seen) == len(set(seen))


class TestDuplication:
    def test_hostile_duplicates_are_discarded(self):
        env = Environment()
        bus = ReliableEventBus(env, latency=0.0001)
        seen = []
        subscriber = ReliableSubscriber(
            bus, TOPIC, lambda e: seen.append(e.open(KEY))
        )
        event = _event(0)
        _pump(env, bus, [event, event, _event(1)])
        env.run()
        assert seen == [b"m0", b"m1"]
        assert subscriber.duplicates == 1
