"""Regression tests for the QoS/orchestrator counter migration.

The ad-hoc counters (``orchestrator.reactions``, the detection and
recovery-episode lists, ``ServiceMetrics.events_handled``) moved onto
the metrics registry as *mirrors*: the functional attributes remain the
source of truth the billing report, benchmarks, and reactions read, and
an enabled registry must agree with them exactly.  Anomaly and recovery
episode counts must be identical whether telemetry is on or off.
"""

from repro.crypto.aead import AeadKey
from repro.microservices.eventbus import EventBus, SealedEvent
from repro.microservices.orchestrator import Orchestrator
from repro.microservices.qos import QosMonitor
from repro.microservices.registry import ServiceRegistry
from repro.microservices.service import MicroService
from repro.sgx.platform import SgxPlatform
from repro.sim.events import Environment
from repro import telemetry


def _sink(ctx, topic, plaintext):
    return []


def _anomaly_scenario():
    """A latency anomaly plus a reported recovery episode; returns the
    functional counts every consumer reads."""
    env = Environment()
    bus = EventBus(env, latency=0.0001)
    platform = SgxPlatform(seed=43, quoting_key_bits=512)
    keys = {"in": AeadKey(b"\x01" * 32)}
    monitor = QosMonitor(env)
    registry = ServiceRegistry()
    service = MicroService("svc", platform, bus, {"in": _sink}, keys,
                           processing_time=0.001)
    monitor.attach(service)
    registry.register(service)
    orchestrator = Orchestrator(env, monitor, registry)
    orchestrator.start(duration=0.5)
    for index in range(20):
        def publish(_fired, i=index):
            sequence = bus.next_sequence("in")
            bus.publish(SealedEvent.seal(
                keys["in"], "in", "gen", sequence, b"%d" % i
            ))
        env.timeout(index * 0.002).callbacks.append(publish)

    def inject(_fired):
        service.slowdown = 20.0
        orchestrator.record_onset("svc")

    env.timeout(0.010).callbacks.append(inject)
    env.run()
    orchestrator.report_recovery("svc", "latency", recovery_seconds=0.004)
    return monitor, orchestrator


class TestCounterMigration:
    def test_functional_counts_survive_with_telemetry_off(self):
        monitor, orchestrator = _anomaly_scenario()
        assert telemetry.default_registry() is telemetry.NULL_REGISTRY
        assert len(orchestrator.detections) >= 1
        assert orchestrator.reactions >= 1
        assert len(orchestrator.recoveries) == 1
        assert monitor.of("svc").events_handled == 20

    def test_episode_counts_identical_on_and_off(self):
        """The migration must not change behaviour: same scenario, same
        anomaly/recovery episode counts either way."""
        monitor_off, orchestrator_off = _anomaly_scenario()
        with telemetry.enabled():
            monitor_on, orchestrator_on = _anomaly_scenario()
        assert (len(orchestrator_on.detections)
                == len(orchestrator_off.detections))
        assert ([d.kind for d in orchestrator_on.detections]
                == [d.kind for d in orchestrator_off.detections])
        assert orchestrator_on.reactions == orchestrator_off.reactions
        assert (len(orchestrator_on.recoveries)
                == len(orchestrator_off.recoveries))
        assert (monitor_on.of("svc").events_handled
                == monitor_off.of("svc").events_handled)

    def test_registry_mirrors_functional_counters(self):
        with telemetry.enabled() as registry:
            monitor, orchestrator = _anomaly_scenario()
        counters = registry.snapshot()["counters"]
        assert (counters["orchestrator.reactions"]
                == orchestrator.reactions)
        assert (counters["orchestrator.recovery_episodes"]
                == len(orchestrator.recoveries))
        detections = sum(
            value for name, value in counters.items()
            if name.startswith("orchestrator.detections")
        )
        assert detections == len(orchestrator.detections)
        assert (counters["qos.events_handled{service=svc}"]
                == monitor.of("svc").events_handled)
        histograms = registry.snapshot()["histograms"]
        recovery = histograms["orchestrator.recovery_seconds"]
        assert recovery["count"] == len(orchestrator.recoveries)
        latency = histograms["qos.handling_latency_seconds"]
        assert latency["count"] == monitor.of("svc").events_handled

    def test_billing_unchanged_by_telemetry(self):
        monitor_off, _ = _anomaly_scenario()
        with telemetry.enabled():
            monitor_on, _ = _anomaly_scenario()
        off = monitor_off.billing_report(cpu_second_price=100.0)
        on = monitor_on.billing_report(cpu_second_price=100.0)
        assert on.lines == off.lines
        assert on.total == off.total
