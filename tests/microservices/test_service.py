"""Tests for the micro-service frame (Figure 1 properties)."""

import pytest

from repro.errors import ConfigurationError, IntegrityError
from repro.crypto.aead import AeadKey
from repro.microservices.eventbus import EventBus, SealedEvent
from repro.microservices.registry import ServiceRegistry
from repro.microservices.service import MicroService
from repro.sgx.platform import SgxPlatform
from repro.sim.events import Environment


def doubler(ctx, topic, plaintext):
    value = int(plaintext.decode())
    return [("out", str(value * 2).encode())]


def swallower(ctx, topic, plaintext):
    return []


@pytest.fixture()
def world():
    env = Environment()
    bus = EventBus(env, latency=0.0001)
    platform = SgxPlatform(seed=41, quoting_key_bits=512)
    keys = {"in": AeadKey(b"\x01" * 32), "out": AeadKey(b"\x02" * 32)}
    return env, bus, platform, keys


def publish_plain(bus, keys, topic, payload, sender="source"):
    sequence = bus.next_sequence(topic)
    bus.publish(SealedEvent.seal(keys[topic], topic, sender, sequence, payload))


class TestMicroService:
    def test_processes_and_republishes(self, world):
        env, bus, platform, keys = world
        MicroService("doubler", platform, bus, {"in": doubler}, keys)
        outputs = []
        bus.subscribe("out", outputs.append)
        publish_plain(bus, keys, "in", b"21")
        env.run()
        assert len(outputs) == 1
        assert outputs[0].open(keys["out"]) == b"42"

    def test_output_is_ciphertext_on_bus(self, world):
        env, bus, platform, keys = world
        MicroService("doubler", platform, bus, {"in": doubler}, keys)
        outputs = []
        bus.subscribe("out", outputs.append)
        publish_plain(bus, keys, "in", b"21")
        env.run()
        assert b"42" not in outputs[0].blob

    def test_chained_services(self, world):
        env, bus, platform, keys = world
        keys = dict(keys)
        keys["final"] = AeadKey(b"\x03" * 32)

        def relabel(ctx, topic, plaintext):
            return [("final", b"result:" + plaintext)]

        MicroService("doubler", platform, bus, {"in": doubler}, keys)
        MicroService("relabel", platform, bus, {"out": relabel}, keys)
        finals = []
        bus.subscribe("final", finals.append)
        publish_plain(bus, keys, "in", b"10")
        env.run()
        assert finals[0].open(keys["final"]) == b"result:20"

    def test_tampered_event_rejected_inside_enclave(self, world):
        env, bus, platform, keys = world
        MicroService("doubler", platform, bus, {"in": doubler}, keys)
        event = SealedEvent.seal(keys["in"], "in", "source", 0, b"21")
        event.blob = event.blob[:-1] + bytes([event.blob[-1] ^ 1])
        bus.next_sequence("in")
        bus.publish(event)
        with pytest.raises(IntegrityError):
            env.run()

    def test_missing_topic_key_rejected(self, world):
        env, bus, platform, keys = world

        def bad_output(ctx, topic, plaintext):
            return [("unknown-topic", b"x")]

        MicroService("bad", platform, bus, {"in": bad_output}, keys)
        publish_plain(bus, keys, "in", b"1")
        with pytest.raises(ConfigurationError):
            env.run()

    def test_crashed_service_stops_handling(self, world):
        env, bus, platform, keys = world
        service = MicroService("doubler", platform, bus, {"in": doubler}, keys)
        service.crash()
        outputs = []
        bus.subscribe("out", outputs.append)
        publish_plain(bus, keys, "in", b"21")
        env.run()
        assert outputs == []
        assert service.stats()["handled"] == 0

    def test_stats_counts_handled(self, world):
        env, bus, platform, keys = world
        service = MicroService("sink", platform, bus, {"in": swallower}, keys)
        for payload in (b"1", b"2", b"3"):
            publish_plain(bus, keys, "in", payload)
        env.run()
        assert service.stats()["handled"] == 3

    def test_processing_time_advances_clock(self, world):
        env, bus, platform, keys = world
        MicroService("sink", platform, bus, {"in": swallower}, keys,
                     processing_time=0.004)
        publish_plain(bus, keys, "in", b"1")
        env.run()
        assert env.now >= 0.004


class TestServiceRegistry:
    def test_register_and_lookup(self, world):
        _env, bus, platform, keys = world
        registry = ServiceRegistry()
        service = MicroService("svc", platform, bus, {"in": swallower}, keys)
        registry.register(service)
        assert registry.lookup("svc") is service
        assert registry.names() == ["svc"]

    def test_pin_accepts_matching_measurement(self, world):
        _env, bus, platform, keys = world
        registry = ServiceRegistry()
        service = MicroService("svc", platform, bus, {"in": swallower}, keys)
        registry.pin("svc", service.measurement)
        registry.register(service)

    def test_pin_rejects_wrong_measurement(self, world):
        from repro.errors import AttestationError

        _env, bus, platform, keys = world
        registry = ServiceRegistry()
        service = MicroService("svc", platform, bus, {"in": swallower}, keys)
        registry.pin("svc", "0" * 64)
        with pytest.raises(AttestationError):
            registry.register(service)

    def test_lookup_unknown(self):
        with pytest.raises(ConfigurationError):
            ServiceRegistry().lookup("ghost")

    def test_deregister(self, world):
        _env, bus, platform, keys = world
        registry = ServiceRegistry()
        service = MicroService("svc", platform, bus, {"in": swallower}, keys)
        registry.register(service)
        registry.deregister("svc")
        with pytest.raises(ConfigurationError):
            registry.lookup("svc")
