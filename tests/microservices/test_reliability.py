"""Tests for loss detection on the untrusted bus."""

import pytest

from repro.errors import IntegrityError
from repro.crypto.aead import AeadKey
from repro.microservices.eventbus import (
    EventBus,
    LossyBus,
    SealedEvent,
    SequenceTracker,
)
from repro.sim.events import Environment


def key():
    return AeadKey(b"\x05" * 32)


def publish_series(bus, count, topic="t"):
    for index in range(count):
        sequence = bus.next_sequence(topic)
        bus.publish(
            SealedEvent.seal(key(), topic, "src", sequence, b"%d" % index)
        )


class TestSequenceTracker:
    def test_no_gaps_on_clean_stream(self):
        env = Environment()
        bus = EventBus(env)
        tracker = SequenceTracker("t")
        bus.subscribe("t", tracker.observe)
        publish_series(bus, 10)
        env.run()
        assert tracker.received == 10
        assert tracker.missing == []

    def test_dropped_events_detected(self):
        env = Environment()
        lossy = LossyBus(EventBus(env), drop_sequences={2, 5})
        tracker = SequenceTracker("t")
        lossy.bus.subscribe("t", tracker.observe)
        publish_series(lossy, 8)
        env.run()
        assert lossy.dropped == 2
        assert tracker.missing == [2, 5]
        assert tracker.received == 6

    def test_trailing_drop_visible_as_count_mismatch(self):
        env = Environment()
        lossy = LossyBus(EventBus(env), drop_sequences={7})
        tracker = SequenceTracker("t")
        lossy.bus.subscribe("t", tracker.observe)
        publish_series(lossy, 8)
        env.run()
        # A trailing gap is invisible to the tracker alone...
        assert tracker.missing == []
        # ...but the producer-side count exposes it.
        assert tracker.received == 7
        assert lossy.bus._sequences["t"] == 8

    def test_replay_rejected(self):
        tracker = SequenceTracker("t")
        event = SealedEvent.seal(key(), "t", "src", 0, b"x")
        tracker.observe(event)
        with pytest.raises(IntegrityError):
            tracker.observe(event)

    def test_wrong_topic_rejected(self):
        tracker = SequenceTracker("t")
        event = SealedEvent.seal(key(), "other", "src", 0, b"x")
        with pytest.raises(IntegrityError):
            tracker.observe(event)

    def test_drop_topic_filter(self):
        env = Environment()
        lossy = LossyBus(EventBus(env), drop_sequences={0},
                         drop_topic="victim")
        received = []
        lossy.bus.subscribe("victim", received.append)
        lossy.bus.subscribe("safe", received.append)
        lossy.publish(SealedEvent.seal(key(), "victim", "s",
                                       lossy.next_sequence("victim"), b"x"))
        lossy.publish(SealedEvent.seal(key(), "safe", "s",
                                       lossy.next_sequence("safe"), b"x"))
        env.run()
        assert len(received) == 1
        assert received[0].topic == "safe"
