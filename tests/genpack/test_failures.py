"""Tests for server-failure handling (availability)."""

import pytest

from repro.errors import SchedulingError
from repro.genpack.baselines import FirstFitScheduler, SpreadScheduler
from repro.genpack.cluster import Cluster
from repro.genpack.monitor import RequestOnlyMonitor, ResourceMonitor
from repro.genpack.scheduler import GenPackScheduler
from repro.genpack.simulation import ClusterSimulation
from repro.genpack.workload import ContainerWorkload
from tests.genpack.test_cluster import running

HOUR = 3600.0


class TestServerCrash:
    def test_crash_orphans_containers(self):
        cluster = Cluster.homogeneous(2)
        container = running("a")
        cluster.servers[0].place(container)
        orphans = cluster.servers[0].crash()
        assert orphans == [container]
        assert container.server is None
        assert cluster.servers[0].failed
        assert not cluster.servers[0].powered_on

    def test_failed_server_cannot_power_on(self):
        server = Cluster.homogeneous(1).servers[0]
        server.crash()
        with pytest.raises(SchedulingError):
            server.power_on()

    def test_repair_returns_server_to_pool(self):
        server = Cluster.homogeneous(1).servers[0]
        server.crash()
        server.repair()
        server.power_on()
        assert server.powered_on and not server.failed


class TestCrashRepairCycle:
    """Regression: a crash->repair cycle leaves no orphaned resources.

    ``Server.crash()`` clears the container map but the orphans still
    reference their specs; after ``GenPackScheduler.on_server_failure``
    re-places them and the machine is repaired, the cluster invariants
    must hold and the repaired server must carry zero residual
    CPU/memory bookings from its pre-crash tenants.
    """

    def test_crash_repair_passes_invariants(self):
        cluster = Cluster.homogeneous(3)
        workload = ContainerWorkload(seed=4)
        scheduler = GenPackScheduler(cluster, ResourceMonitor(workload))
        containers = [running("c%d" % i, cpu=2.0) for i in range(5)]
        for i, container in enumerate(containers):
            scheduler.on_arrival(container, float(i))
        victim = containers[0].server
        scheduler.on_server_failure(victim, 10.0)
        victim.repair()
        victim.power_on()
        cluster.check_invariants()
        assert victim.containers == {}, "repaired server must come back empty"
        assert victim.cpu_requested == 0.0
        assert victim.mem_requested == 0.0
        assert victim.cpu_used == 0.0
        assert not victim.failed and victim.powered_on
        # Every pre-crash tenant lives on exactly one *other* server.
        for container in containers:
            assert container.server is not None
            host = container.server
            assert host.containers[container.spec.container_id] is container

    def test_repaired_server_is_schedulable_again(self):
        cluster = Cluster.homogeneous(2)
        workload = ContainerWorkload(seed=4)
        scheduler = GenPackScheduler(cluster, ResourceMonitor(workload))
        first = running("a", cpu=2.0)
        scheduler.on_arrival(first, 0.0)
        victim = first.server
        scheduler.on_server_failure(victim, 1.0)
        victim.repair()
        victim.power_on()
        returned = running("b", cpu=2.0)
        victim.place(returned)
        cluster.check_invariants()
        assert returned.server is victim


class TestSchedulerFailover:
    def test_genpack_reschedules_orphans(self):
        cluster = Cluster.homogeneous(8)
        workload = ContainerWorkload(seed=2)
        scheduler = GenPackScheduler(cluster, ResourceMonitor(workload))
        containers = [running("c%d" % i, cpu=2.0) for i in range(6)]
        for i, container in enumerate(containers):
            scheduler.on_arrival(container, float(i))
        victim = containers[0].server
        residents_before = len(victim.containers)
        stranded = scheduler.on_server_failure(victim, 100.0)
        assert stranded == []
        assert residents_before > 0
        for container in containers:
            assert container.server is not None
            assert container.server is not victim
        cluster.check_invariants()

    def test_genpack_reports_stranded_when_no_capacity(self):
        cluster = Cluster.homogeneous(1, cpu_capacity=4.0)
        workload = ContainerWorkload(seed=2)
        scheduler = GenPackScheduler(cluster, ResourceMonitor(workload))
        container = running("a", cpu=4.0)
        scheduler.on_arrival(container, 0.0)
        stranded = scheduler.on_server_failure(container.server, 1.0)
        assert stranded == [container]

    def test_baseline_failover(self):
        cluster = Cluster.homogeneous(4)
        scheduler = SpreadScheduler(cluster)
        containers = [running("c%d" % i, cpu=2.0) for i in range(4)]
        for container in containers:
            scheduler.on_arrival(container, 0.0)
        victim = containers[0].server
        stranded = scheduler.on_server_failure(victim, 1.0)
        assert stranded == []
        cluster.check_invariants()

    def test_first_fit_skips_failed_servers_on_wake(self):
        cluster = Cluster.homogeneous(3, cpu_capacity=4.0)
        scheduler = FirstFitScheduler(cluster, keep_on=1)
        cluster.servers[1].crash()
        scheduler.on_arrival(running("a", cpu=4.0), 0.0)
        second = scheduler.on_arrival(running("b", cpu=4.0), 0.0)
        assert second.name == "srv-002"


class TestSimulationWithFailures:
    def test_injected_failures_survived(self):
        workload = ContainerWorkload(seed=4, duration=4 * HOUR,
                                     arrival_rate_per_hour=20)
        cluster = Cluster.homogeneous(20)
        monitor = ResourceMonitor(workload)
        scheduler = GenPackScheduler(cluster, monitor)
        simulation = ClusterSimulation(
            cluster, scheduler, workload, monitor=monitor,
            failures=[(1 * HOUR, "srv-000"), (2 * HOUR, "srv-003")],
        )
        result = simulation.run(check_invariants_every=25)
        assert result.failures == 2
        assert result.completed > 0
        assert result.stranded == 0
        failed = [server for server in cluster.servers if server.failed]
        assert len(failed) == 2

    def test_failure_of_unknown_server_ignored(self):
        workload = ContainerWorkload(seed=4, duration=1 * HOUR,
                                     arrival_rate_per_hour=10)
        cluster = Cluster.homogeneous(5)
        monitor = ResourceMonitor(workload)
        scheduler = GenPackScheduler(cluster, monitor)
        result = ClusterSimulation(
            cluster, scheduler, workload, monitor=monitor,
            failures=[(100.0, "no-such-server")],
        ).run()
        assert result.completed >= 0


class TestRequestOnlyMonitor:
    def test_reports_requests_as_usage(self):
        workload = ContainerWorkload(seed=3)
        monitor = RequestOnlyMonitor(workload)
        container = running("a", cpu=4.0, usage=1.0)
        monitor.sample_all([container])
        monitor.sample_all([container])
        assert container.observed_cpu == pytest.approx(4.0)
        assert monitor.is_profiled(container)

    def test_disables_usage_packing_advantage(self):
        """GenPack with monitoring beats GenPack without it."""
        workload = ContainerWorkload(seed=5, duration=8 * HOUR,
                                     arrival_rate_per_hour=50)
        trace = workload.generate()
        results = {}
        for label, monitor_cls in (
            ("with-monitoring", ResourceMonitor),
            ("request-only", RequestOnlyMonitor),
        ):
            cluster = Cluster.homogeneous(30)
            monitor = monitor_cls(workload)
            scheduler = GenPackScheduler(cluster, monitor)
            results[label] = ClusterSimulation(
                cluster, scheduler, workload, trace=trace, monitor=monitor
            ).run()
        assert (
            results["with-monitoring"].energy_kwh
            < results["request-only"].energy_kwh
        )
