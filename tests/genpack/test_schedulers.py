"""Tests for GenPack, the baselines, and the simulation driver."""

import pytest

from repro.errors import SchedulingError
from repro.genpack.baselines import (
    FirstFitScheduler,
    RandomScheduler,
    SpreadScheduler,
)
from repro.genpack.cluster import Cluster
from repro.genpack.monitor import ResourceMonitor
from repro.genpack.scheduler import NURSERY, OLD, YOUNG, GenPackScheduler
from repro.genpack.simulation import ClusterSimulation, compare_schedulers
from repro.genpack.workload import ContainerWorkload, RunningContainer
from tests.genpack.test_cluster import running, spec

HOUR = 3600.0


def small_workload(seed=1, hours=6, rate=30.0):
    return ContainerWorkload(
        seed=seed, duration=hours * HOUR, arrival_rate_per_hour=rate
    )


class TestWorkloadGeneration:
    def test_deterministic(self):
        a = small_workload().generate()
        b = small_workload().generate()
        assert [s.container_id for s in a] == [s.container_id for s in b]
        assert [s.arrival for s in a] == [s.arrival for s in b]

    def test_arrivals_sorted_and_bounded(self):
        trace = small_workload().generate()
        arrivals = [s.arrival for s in trace]
        assert arrivals == sorted(arrivals)
        assert all(0 <= a < 6 * HOUR for a in arrivals)

    def test_requests_inflated_above_usage(self):
        for s in small_workload().generate():
            assert s.cpu_request >= s.cpu_usage_mean

    def test_class_mix(self):
        trace = ContainerWorkload(
            seed=3, duration=24 * HOUR, arrival_rate_per_hour=50
        ).generate()
        classes = {s.workload_class for s in trace}
        assert classes == {"batch", "service", "system"}
        batch = sum(1 for s in trace if s.workload_class == "batch")
        assert batch > len(trace) * 0.5

    def test_usage_sample_bounded(self):
        workload = small_workload()
        s = spec(cpu=4.0, usage=2.0)
        for _ in range(50):
            sample = workload.sample_usage(s)
            assert 0.05 <= sample <= s.cpu_request


class TestBaselines:
    def test_spread_picks_least_loaded(self):
        cluster = Cluster.homogeneous(3)
        scheduler = SpreadScheduler(cluster)
        scheduler.on_arrival(running("a", cpu=4.0), 0.0)
        second = scheduler.on_arrival(running("b", cpu=1.0), 0.0)
        assert second.cpu_requested == 1.0  # went to an empty server

    def test_spread_keeps_all_servers_on(self):
        cluster = Cluster.homogeneous(3)
        SpreadScheduler(cluster)
        assert len(cluster.powered_on) == 3

    def test_first_fit_powers_off_initially(self):
        cluster = Cluster.homogeneous(4)
        FirstFitScheduler(cluster, keep_on=1)
        assert len(cluster.powered_on) == 1

    def test_first_fit_wakes_servers_on_pressure(self):
        cluster = Cluster.homogeneous(2, cpu_capacity=4.0)
        scheduler = FirstFitScheduler(cluster, keep_on=1)
        scheduler.on_arrival(running("a", cpu=4.0), 0.0)
        scheduler.on_arrival(running("b", cpu=4.0), 0.0)
        assert len(cluster.powered_on) == 2

    def test_first_fit_tick_powers_off_empty(self):
        cluster = Cluster.homogeneous(2, cpu_capacity=4.0)
        scheduler = FirstFitScheduler(cluster, keep_on=1)
        a = running("a", cpu=4.0)
        b = running("b", cpu=4.0)
        scheduler.on_arrival(a, 0.0)
        scheduler.on_arrival(b, 0.0)
        scheduler.on_departure(b, 10.0)
        scheduler.on_tick(10.0)
        assert len(cluster.powered_on) == 1

    def test_random_deterministic_with_seed(self):
        placements = []
        for _attempt in range(2):
            cluster = Cluster.homogeneous(5)
            scheduler = RandomScheduler(cluster, seed=9)
            names = [
                scheduler.on_arrival(running("c%d" % i), 0.0).name
                for i in range(10)
            ]
            placements.append(names)
        assert placements[0] == placements[1]

    def test_rejection_when_full(self):
        cluster = Cluster.homogeneous(1, cpu_capacity=2.0)
        scheduler = SpreadScheduler(cluster)
        scheduler.on_arrival(running("a", cpu=2.0), 0.0)
        with pytest.raises(SchedulingError):
            scheduler.on_arrival(running("b", cpu=1.0), 0.0)
        assert scheduler.rejected == 1


class TestGenPack:
    def make(self, servers=10):
        cluster = Cluster.homogeneous(servers)
        workload = small_workload()
        monitor = ResourceMonitor(workload, period=300.0)
        scheduler = GenPackScheduler(cluster, monitor)
        return cluster, monitor, scheduler

    def test_generations_assigned(self):
        cluster, _monitor, _scheduler = self.make()
        generations = {server.generation for server in cluster.servers}
        assert generations == {NURSERY, YOUNG, OLD}

    def test_new_containers_go_to_nursery(self):
        _cluster, _monitor, scheduler = self.make()
        container = running("a")
        server = scheduler.on_arrival(container, 0.0)
        assert server.generation == NURSERY
        assert container.generation == NURSERY

    def test_profiled_containers_promoted_to_young(self):
        _cluster, monitor, scheduler = self.make()
        container = running("a", cpu=4.0)
        scheduler.on_arrival(container, 0.0)
        container.usage_samples = [1.0, 1.0]  # profiled
        scheduler.on_tick(600.0)
        assert container.generation == YOUNG
        assert container.server.generation == YOUNG

    def test_aged_containers_promoted_to_old(self):
        _cluster, _monitor, scheduler = self.make()
        container = running("a", cpu=4.0)
        scheduler.on_arrival(container, 0.0)
        container.usage_samples = [1.0, 1.0]
        scheduler.on_tick(600.0)
        scheduler.on_tick(2 * HOUR)
        assert container.generation == OLD

    def test_empty_non_nursery_servers_powered_off(self):
        cluster, _monitor, scheduler = self.make()
        scheduler.on_tick(300.0)
        for server in cluster.servers:
            if server.generation != NURSERY:
                assert not server.powered_on

    def test_usage_based_packing_tighter_than_requests(self):
        """Two 8-core-request containers using 2 cores share a server."""
        _cluster, _monitor, scheduler = self.make()
        first = running("a", cpu=8.0)
        second = running("b", cpu=8.0)
        scheduler.on_arrival(first, 0.0)
        scheduler.on_arrival(second, 0.0)
        first.usage_samples = [2.0, 2.0]
        second.usage_samples = [2.0, 2.0]
        scheduler.on_tick(600.0)
        assert first.generation == YOUNG and second.generation == YOUNG
        assert first.server is second.server

    def test_cluster_invariants_hold_through_churn(self):
        cluster, _monitor, scheduler = self.make()
        containers = [running("c%d" % i, cpu=2.0) for i in range(12)]
        for i, container in enumerate(containers):
            scheduler.on_arrival(container, float(i))
            container.usage_samples = [1.0, 1.0]
        scheduler.on_tick(600.0)
        cluster.check_invariants()
        for container in containers[:6]:
            scheduler.on_departure(container, 700.0)
        scheduler.on_tick(900.0)
        cluster.check_invariants()


class TestSimulation:
    def test_simulation_completes_containers(self):
        workload = small_workload(hours=4, rate=20)
        cluster = Cluster.homogeneous(20)
        monitor = ResourceMonitor(workload)
        scheduler = GenPackScheduler(cluster, monitor)
        result = ClusterSimulation(
            cluster, scheduler, workload, monitor=monitor
        ).run(check_invariants_every=50)
        assert result.completed > 0
        assert result.energy_kwh > 0
        assert result.rejected == 0

    def test_compare_schedulers_runs_same_trace(self):
        workload = small_workload(hours=4, rate=20)
        results = compare_schedulers(
            make_cluster=lambda: Cluster.homogeneous(20),
            make_schedulers=[
                lambda cluster, monitor: SpreadScheduler(cluster),
                lambda cluster, monitor: GenPackScheduler(cluster, monitor),
            ],
            workload=workload,
        )
        assert set(results) == {"spread", "genpack"}
        assert results["spread"].completed == results["genpack"].completed

    def test_genpack_saves_energy_vs_spread(self):
        """Reproduces the paper's Section VI claim qualitatively."""
        workload = small_workload(hours=8, rate=60)
        results = compare_schedulers(
            make_cluster=lambda: Cluster.homogeneous(30),
            make_schedulers=[
                lambda cluster, monitor: SpreadScheduler(cluster),
                lambda cluster, monitor: FirstFitScheduler(cluster),
                lambda cluster, monitor: GenPackScheduler(cluster, monitor),
            ],
            workload=workload,
        )
        genpack = results["genpack"]
        assert genpack.energy_kwh < results["first-fit"].energy_kwh
        assert genpack.energy_savings_vs(results["spread"]) > 0.15
        assert genpack.average_servers_on < results["spread"].average_servers_on

    def test_energy_savings_vs_self_is_zero(self):
        workload = small_workload(hours=2, rate=10)
        cluster = Cluster.homogeneous(10)
        monitor = ResourceMonitor(workload)
        result = ClusterSimulation(
            cluster, GenPackScheduler(cluster, monitor), workload, monitor=monitor
        ).run()
        assert result.energy_savings_vs(result) == pytest.approx(0.0)
