"""Tests for the power model and energy meter."""

import pytest

from repro.errors import ConfigurationError
from repro.genpack.cluster import Cluster, Server
from repro.genpack.energy import EnergyMeter, PowerModel
from tests.genpack.test_cluster import running


class TestPowerModel:
    def test_idle_draw(self):
        model = PowerModel(idle_watts=100, peak_watts=200)
        assert model.power(Server("s")) == 100

    def test_peak_draw(self):
        model = PowerModel(idle_watts=100, peak_watts=200)
        server = Server("s", cpu_capacity=4.0)
        server.place(running("a", cpu=4.0, samples=[4.0]))
        assert model.power(server) == 200

    def test_linear_interpolation(self):
        model = PowerModel(idle_watts=100, peak_watts=200)
        server = Server("s", cpu_capacity=10.0)
        server.place(running("a", cpu=5.0, samples=[5.0]))
        assert model.power(server) == pytest.approx(150)

    def test_standby_draw(self):
        model = PowerModel(standby_watts=5)
        server = Server("s")
        server.power_off()
        assert model.power(server) == 5

    def test_invalid_ordering_rejected(self):
        with pytest.raises(ConfigurationError):
            PowerModel(idle_watts=300, peak_watts=200)


class TestEnergyMeter:
    def test_integrates_constant_power(self):
        cluster = Cluster.homogeneous(2)
        meter = EnergyMeter(cluster, PowerModel(idle_watts=100, peak_watts=200))
        meter.advance_to(3600.0)  # two idle servers for one hour
        assert meter.energy_kwh == pytest.approx(0.2)

    def test_piecewise_integration(self):
        cluster = Cluster.homogeneous(1, cpu_capacity=10.0)
        meter = EnergyMeter(cluster, PowerModel(idle_watts=100, peak_watts=200))
        meter.advance_to(1800.0)              # half hour idle: 50 Wh
        container = running("a", cpu=10.0, samples=[10.0])
        cluster.servers[0].place(container)   # now at peak
        meter.advance_to(3600.0)              # half hour peak: 100 Wh
        assert meter.energy_kwh == pytest.approx(0.15)

    def test_powered_off_server_costs_standby(self):
        cluster = Cluster.homogeneous(1)
        cluster.servers[0].power_off()
        meter = EnergyMeter(
            cluster, PowerModel(idle_watts=100, peak_watts=200, standby_watts=0)
        )
        meter.advance_to(3600.0)
        assert meter.energy_kwh == 0.0

    def test_backwards_time_rejected(self):
        meter = EnergyMeter(Cluster.homogeneous(1))
        meter.advance_to(10.0)
        with pytest.raises(ConfigurationError):
            meter.advance_to(5.0)

    def test_average_servers_on(self):
        cluster = Cluster.homogeneous(2)
        meter = EnergyMeter(cluster)
        meter.advance_to(1800.0)
        cluster.servers[1].power_off()
        meter.advance_to(3600.0)
        assert meter.average_servers_on() == pytest.approx(1.5)

    def test_energy_equals_power_times_time_invariant(self):
        """Energy accounting equals sum of power x interval."""
        cluster = Cluster.homogeneous(3, cpu_capacity=8.0)
        model = PowerModel(idle_watts=80, peak_watts=240)
        meter = EnergyMeter(cluster, model)
        expected_joules = 0.0
        time = 0.0
        for step in range(1, 11):
            watts = sum(model.power(server) for server in cluster.servers)
            dt = step * 7.0
            expected_joules += watts * dt
            time += dt
            meter.advance_to(time)
            if step == 3:
                cluster.servers[0].place(running("a", cpu=8.0, samples=[6.0]))
            if step == 6:
                cluster.servers[1].power_off()
        assert meter.energy_joules == pytest.approx(expected_joules)
