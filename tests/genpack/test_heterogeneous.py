"""Tests for heterogeneous clusters and memory-dimension packing."""

import pytest

from repro.genpack.baselines import FirstFitScheduler, SpreadScheduler
from repro.genpack.cluster import Cluster, Server
from repro.genpack.monitor import ResourceMonitor
from repro.genpack.scheduler import GenPackScheduler
from repro.genpack.simulation import ClusterSimulation
from repro.genpack.workload import ContainerWorkload
from tests.genpack.test_cluster import running

HOUR = 3600.0


def mixed_cluster():
    """Big memory-heavy boxes plus small compute nodes."""
    servers = [Server("big-%d" % i, cpu_capacity=32.0, mem_capacity=256.0)
               for i in range(4)]
    servers += [Server("small-%d" % i, cpu_capacity=8.0, mem_capacity=16.0)
                for i in range(8)]
    return Cluster(servers)


class TestHeterogeneousCluster:
    def test_capacity_sums(self):
        cluster = mixed_cluster()
        assert cluster.total_cpu_capacity == 4 * 32 + 8 * 8

    def test_memory_constrains_placement(self):
        small = Server("small", cpu_capacity=8.0, mem_capacity=4.0)
        assert not small.fits_requests(
            running("a", cpu=1.0, mem=8.0).spec
        )

    def test_spread_respects_memory_dimension(self):
        cluster = Cluster([
            Server("fat-mem", cpu_capacity=4.0, mem_capacity=64.0),
            Server("thin-mem", cpu_capacity=16.0, mem_capacity=2.0),
        ])
        scheduler = SpreadScheduler(cluster)
        placed = scheduler.on_arrival(running("a", cpu=1.0, mem=16.0), 0.0)
        assert placed.name == "fat-mem"

    def test_genpack_simulation_on_mixed_cluster(self):
        workload = ContainerWorkload(seed=6, duration=6 * HOUR,
                                     arrival_rate_per_hour=30)
        cluster = mixed_cluster()
        monitor = ResourceMonitor(workload)
        scheduler = GenPackScheduler(cluster, monitor)
        result = ClusterSimulation(
            cluster, scheduler, workload, monitor=monitor
        ).run(check_invariants_every=50)
        assert result.completed > 0
        assert result.rejected == 0
        cluster.check_invariants()

    def test_first_fit_simulation_on_mixed_cluster(self):
        workload = ContainerWorkload(seed=6, duration=6 * HOUR,
                                     arrival_rate_per_hour=30)
        cluster = mixed_cluster()
        scheduler = FirstFitScheduler(cluster)
        result = ClusterSimulation(
            cluster, scheduler, workload,
            monitor=ResourceMonitor(workload),
        ).run(check_invariants_every=50)
        assert result.completed > 0
        cluster.check_invariants()

    def test_memory_overcommit_never_happens(self):
        workload = ContainerWorkload(seed=8, duration=4 * HOUR,
                                     arrival_rate_per_hour=40)
        cluster = mixed_cluster()
        monitor = ResourceMonitor(workload)
        scheduler = GenPackScheduler(cluster, monitor)
        ClusterSimulation(
            cluster, scheduler, workload, monitor=monitor
        ).run()
        for server in cluster.servers:
            assert server.mem_requested <= server.mem_capacity + 1e-9