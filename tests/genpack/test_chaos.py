"""Chaos property test: random crash schedules never break invariants."""

from hypothesis import given, settings, strategies as st

from repro.genpack.baselines import FirstFitScheduler
from repro.genpack.cluster import Cluster
from repro.genpack.monitor import ResourceMonitor
from repro.genpack.scheduler import GenPackScheduler
from repro.genpack.simulation import ClusterSimulation
from repro.genpack.workload import ContainerWorkload

HOUR = 3600.0


def crash_schedule(draw_times, server_count):
    return [
        (time, "srv-%03d" % (index % server_count))
        for index, time in enumerate(sorted(draw_times))
    ]


class TestChaos:
    @settings(max_examples=10, deadline=None)
    @given(
        st.integers(0, 2**16),
        st.lists(
            st.floats(min_value=600.0, max_value=3.5 * HOUR,
                      allow_nan=False),
            max_size=5,
        ),
    )
    def test_genpack_survives_random_crashes(self, seed, crash_times):
        workload = ContainerWorkload(seed=seed, duration=4 * HOUR,
                                     arrival_rate_per_hour=25)
        cluster = Cluster.homogeneous(16)
        monitor = ResourceMonitor(workload)
        scheduler = GenPackScheduler(cluster, monitor)
        result = ClusterSimulation(
            cluster, scheduler, workload, monitor=monitor,
            failures=crash_schedule(crash_times, 16),
        ).run(check_invariants_every=20)
        cluster.check_invariants()
        # Energy accounting stays sane whatever the crash schedule.
        assert result.energy_kwh > 0
        assert result.completed + result.stranded + result.rejected >= 0
        # No container sits on a failed server.
        for server in cluster.servers:
            if server.failed:
                assert server.is_empty

    @settings(max_examples=8, deadline=None)
    @given(st.integers(0, 2**16), st.integers(0, 10))
    def test_first_fit_survives_random_crashes(self, seed, crash_count):
        workload = ContainerWorkload(seed=seed, duration=3 * HOUR,
                                     arrival_rate_per_hour=20)
        crashes = [
            (600.0 + 900.0 * index, "srv-%03d" % (index % 12))
            for index in range(crash_count)
        ]
        cluster = Cluster.homogeneous(12)
        scheduler = FirstFitScheduler(cluster)
        ClusterSimulation(
            cluster, scheduler, workload,
            monitor=ResourceMonitor(workload), failures=crashes,
        ).run(check_invariants_every=20)
        cluster.check_invariants()
        assert len([s for s in cluster.servers if s.failed]) <= crash_count
