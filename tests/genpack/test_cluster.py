"""Tests for servers and cluster invariants."""

import pytest

from repro.errors import CapacityError, SchedulingError
from repro.genpack.cluster import Cluster, Server
from repro.genpack.workload import ContainerSpec, RunningContainer


def spec(container_id="c1", cpu=2.0, mem=4.0, usage=1.0):
    return ContainerSpec(
        container_id=container_id,
        arrival=0.0,
        lifetime=100.0,
        cpu_request=cpu,
        mem_request=mem,
        cpu_usage_mean=usage,
        workload_class="batch",
    )


def running(container_id="c1", cpu=2.0, mem=4.0, usage=1.0, samples=()):
    container = RunningContainer(spec=spec(container_id, cpu, mem, usage))
    container.usage_samples = list(samples)
    return container


class TestServer:
    def test_place_and_evict(self):
        server = Server("s1")
        container = running()
        server.place(container)
        assert container.server is server
        assert server.cpu_requested == 2.0
        server.evict(container)
        assert server.is_empty

    def test_double_place_rejected(self):
        server = Server("s1")
        container = running()
        server.place(container)
        with pytest.raises(SchedulingError):
            server.place(container)

    def test_evict_absent_rejected(self):
        with pytest.raises(SchedulingError):
            Server("s1").evict(running())

    def test_fits_requests(self):
        server = Server("s1", cpu_capacity=4.0, mem_capacity=8.0)
        server.place(running("a", cpu=3.0, mem=4.0))
        assert server.fits_requests(spec("b", cpu=1.0, mem=4.0))
        assert not server.fits_requests(spec("c", cpu=2.0, mem=1.0))
        assert not server.fits_requests(spec("d", cpu=1.0, mem=5.0))

    def test_observed_usage_defaults_to_request(self):
        container = running("a", cpu=4.0, usage=1.0)
        assert container.observed_cpu == 4.0  # unprofiled: assume request

    def test_observed_usage_from_samples(self):
        container = running("a", cpu=4.0, samples=[1.0, 1.2, 0.8])
        assert container.observed_cpu == pytest.approx(1.0)

    def test_utilization(self):
        server = Server("s1", cpu_capacity=10.0)
        server.place(running("a", cpu=8.0, samples=[4.0]))
        assert server.utilization == pytest.approx(0.4)

    def test_power_off_requires_empty(self):
        server = Server("s1")
        server.place(running())
        with pytest.raises(SchedulingError):
            server.power_off()

    def test_place_on_powered_off_rejected(self):
        server = Server("s1")
        server.power_off()
        with pytest.raises(SchedulingError):
            server.place(running())

    def test_powered_off_not_fitting(self):
        server = Server("s1")
        server.power_off()
        assert not server.fits_requests(spec())


class TestCluster:
    def test_homogeneous_factory(self):
        cluster = Cluster.homogeneous(5, cpu_capacity=8.0)
        assert len(cluster) == 5
        assert cluster.total_cpu_capacity == 40.0

    def test_empty_rejected(self):
        with pytest.raises(CapacityError):
            Cluster([])

    def test_duplicate_names_rejected(self):
        with pytest.raises(CapacityError):
            Cluster([Server("x"), Server("x")])

    def test_powered_lists(self):
        cluster = Cluster.homogeneous(3)
        cluster.servers[1].power_off()
        assert len(cluster.powered_on) == 2
        assert len(cluster.powered_off) == 1

    def test_invariant_detects_double_placement(self):
        cluster = Cluster.homogeneous(2)
        container = running()
        cluster.servers[0].place(container)
        # Violate deliberately, bypassing the API.
        cluster.servers[1].containers[container.spec.container_id] = container
        with pytest.raises(SchedulingError):
            cluster.check_invariants()

    def test_invariant_passes_clean_cluster(self):
        cluster = Cluster.homogeneous(2)
        cluster.servers[0].place(running("a"))
        cluster.servers[1].place(running("b"))
        assert cluster.check_invariants()

    def test_running_containers(self):
        cluster = Cluster.homogeneous(2)
        cluster.servers[0].place(running("a"))
        cluster.servers[1].place(running("b"))
        ids = {c.spec.container_id for c in cluster.running_containers()}
        assert ids == {"a", "b"}
