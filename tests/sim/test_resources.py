"""Tests for Resource and Store."""

import pytest

from repro.errors import CapacityError
from repro.sim.events import Environment
from repro.sim.resources import Resource, Store


class TestResource:
    def test_capacity_validation(self):
        env = Environment()
        with pytest.raises(CapacityError):
            Resource(env, capacity=0)

    def test_immediate_grant_below_capacity(self):
        env = Environment()
        cpu = Resource(env, capacity=2)
        assert cpu.request().triggered
        assert cpu.request().triggered
        assert cpu.available == 0

    def test_fifo_queueing(self):
        env = Environment()
        cpu = Resource(env, capacity=1)
        order = []

        def job(name, hold):
            yield cpu.request()
            order.append(("start", name, env.now))
            yield env.timeout(hold)
            cpu.release()

        env.process(job("first", 2.0))
        env.process(job("second", 1.0))
        env.process(job("third", 1.0))
        env.run()
        names = [name for _tag, name, _t in order]
        assert names == ["first", "second", "third"]
        starts = {name: t for _tag, name, t in order}
        assert starts["second"] == 2.0
        assert starts["third"] == 3.0

    def test_release_without_request_rejected(self):
        env = Environment()
        with pytest.raises(CapacityError):
            Resource(env).release()

    def test_queue_length(self):
        env = Environment()
        cpu = Resource(env, capacity=1)
        cpu.request()
        cpu.request()
        cpu.request()
        assert cpu.queue_length == 2
        assert cpu.in_use == 1


class TestStore:
    def test_put_then_get(self):
        env = Environment()
        store = Store(env)

        def consumer():
            item = yield store.get()
            return item

        store.put("hello")
        proc = env.process(consumer())
        assert env.run(until=proc) == "hello"

    def test_get_blocks_until_put(self):
        env = Environment()
        store = Store(env)
        received = []

        def consumer():
            item = yield store.get()
            received.append((env.now, item))

        def producer():
            yield env.timeout(5.0)
            yield store.put("late")

        env.process(consumer())
        env.process(producer())
        env.run()
        assert received == [(5.0, "late")]

    def test_fifo_item_order(self):
        env = Environment()
        store = Store(env)
        for i in range(5):
            store.put(i)
        taken = []

        def consumer():
            for _ in range(5):
                item = yield store.get()
                taken.append(item)

        env.process(consumer())
        env.run()
        assert taken == [0, 1, 2, 3, 4]

    def test_bounded_put_blocks(self):
        env = Environment()
        store = Store(env, capacity=1)
        store.put("a")
        timeline = []

        def producer():
            yield store.put("b")
            timeline.append(("put-b", env.now))

        def consumer():
            yield env.timeout(3.0)
            item = yield store.get()
            timeline.append(("got-" + item, env.now))

        env.process(producer())
        env.process(consumer())
        env.run()
        assert ("got-a", 3.0) in timeline
        assert ("put-b", 3.0) in timeline
        assert len(store) == 1

    def test_invalid_capacity(self):
        env = Environment()
        with pytest.raises(CapacityError):
            Store(env, capacity=0)

    def test_waiting_getter_served_directly(self):
        env = Environment()
        store = Store(env)
        results = []

        def consumer(tag):
            item = yield store.get()
            results.append((tag, item))

        env.process(consumer("one"))
        env.process(consumer("two"))

        def producer():
            yield env.timeout(1.0)
            yield store.put("x")
            yield store.put("y")

        env.process(producer())
        env.run()
        assert results == [("one", "x"), ("two", "y")]
