"""Tests for seeded random streams."""

import pytest
from hypothesis import given, strategies as st

from repro.sim.rng import RandomStream, derive_seed


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(42, "a", "b") == derive_seed(42, "a", "b")

    def test_name_sensitivity(self):
        assert derive_seed(42, "a") != derive_seed(42, "b")

    def test_seed_sensitivity(self):
        assert derive_seed(1, "a") != derive_seed(2, "a")

    def test_path_not_concatenation_ambiguous(self):
        assert derive_seed(0, "ab", "c") != derive_seed(0, "a", "bc")


class TestRandomStream:
    def test_reproducible(self):
        a = RandomStream(7)
        b = RandomStream(7)
        assert [a.random() for _ in range(10)] == [b.random() for _ in range(10)]

    def test_child_streams_independent(self):
        root = RandomStream(7)
        child_a = root.child("arrivals")
        child_b = root.child("sizes")
        assert child_a.seed != child_b.seed

    def test_child_deterministic(self):
        assert (
            RandomStream(7).child("x").random()
            == RandomStream(7).child("x").random()
        )

    def test_bytes_length(self):
        stream = RandomStream(1)
        assert len(stream.bytes(17)) == 17
        assert stream.bytes(0) == b""

    def test_zipf_range(self):
        stream = RandomStream(3)
        draws = [stream.zipf(100, alpha=1.2) for _ in range(500)]
        assert all(0 <= d < 100 for d in draws)

    def test_zipf_skew(self):
        stream = RandomStream(3)
        draws = [stream.zipf(1000, alpha=1.5) for _ in range(2000)]
        top_ten = sum(1 for d in draws if d < 10)
        assert top_ten > len(draws) * 0.4  # strong head concentration

    def test_zipf_invalid_n(self):
        with pytest.raises(ValueError):
            RandomStream(0).zipf(0)

    def test_bounded_pareto_in_bounds(self):
        stream = RandomStream(5)
        draws = [stream.bounded_pareto(1.1, 1.0, 100.0) for _ in range(300)]
        assert all(1.0 <= d <= 100.0 for d in draws)

    def test_bounded_pareto_invalid_bounds(self):
        with pytest.raises(ValueError):
            RandomStream(0).bounded_pareto(1.0, 5.0, 1.0)

    def test_poisson_mean(self):
        stream = RandomStream(11)
        draws = [stream.poisson(4.0) for _ in range(3000)]
        mean = sum(draws) / len(draws)
        assert 3.6 < mean < 4.4

    def test_poisson_negative_rejected(self):
        with pytest.raises(ValueError):
            RandomStream(0).poisson(-1)

    @given(st.integers(min_value=0, max_value=2**32), st.integers(1, 64))
    def test_bytes_deterministic_property(self, seed, n):
        assert RandomStream(seed).bytes(n) == RandomStream(seed).bytes(n)
