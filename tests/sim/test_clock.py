"""Tests for the virtual cycle clock."""

import pytest

from repro.sim.clock import (
    CycleClock,
    DEFAULT_FREQUENCY_HZ,
    cycles_to_seconds,
    seconds_to_cycles,
)


class TestCycleClock:
    def test_starts_at_zero(self):
        assert CycleClock().now == 0

    def test_charge_advances(self):
        clock = CycleClock()
        clock.charge(100)
        clock.charge(50)
        assert clock.now == 150

    def test_charge_returns_new_time(self):
        clock = CycleClock()
        assert clock.charge(7) == 7

    def test_negative_charge_rejected(self):
        with pytest.raises(ValueError):
            CycleClock().charge(-1)

    def test_zero_charge_allowed(self):
        clock = CycleClock()
        clock.charge(0)
        assert clock.now == 0

    def test_seconds_conversion(self):
        clock = CycleClock(frequency_hz=1_000_000)
        clock.charge(2_500_000)
        assert clock.now_seconds == pytest.approx(2.5)

    def test_invalid_frequency(self):
        with pytest.raises(ValueError):
            CycleClock(frequency_hz=0)

    def test_reset(self):
        clock = CycleClock()
        clock.charge(10)
        clock.reset()
        assert clock.now == 0

    def test_float_charge_truncated_to_int(self):
        clock = CycleClock()
        clock.charge(10.7)
        assert clock.now == 10


class TestCycleSpan:
    def test_span_measures_elapsed(self):
        clock = CycleClock()
        clock.charge(5)
        with clock.measure() as span:
            clock.charge(40)
        assert span.elapsed == 40

    def test_span_live_elapsed(self):
        clock = CycleClock()
        span = clock.measure()
        clock.charge(12)
        assert span.elapsed == 12

    def test_span_elapsed_seconds(self):
        clock = CycleClock(frequency_hz=100)
        with clock.measure() as span:
            clock.charge(50)
        assert span.elapsed_seconds == pytest.approx(0.5)


class TestConversions:
    def test_round_trip(self):
        assert seconds_to_cycles(cycles_to_seconds(123456)) == 123456

    def test_default_frequency_is_scone_testbed(self):
        assert DEFAULT_FREQUENCY_HZ == 2_600_000_000
