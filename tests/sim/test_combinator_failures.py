"""Failure-path tests for AllOf/AnyOf combinators."""

import pytest

from repro.sim.events import Environment


class TestAllOfFailure:
    def test_all_of_fails_when_child_fails(self):
        env = Environment()

        def failing():
            yield env.timeout(1.0)
            raise ValueError("child boom")

        def healthy():
            yield env.timeout(5.0)
            return "ok"

        combined = env.all_of([env.process(failing()), env.process(healthy())])
        with pytest.raises(ValueError, match="child boom"):
            env.run(until=combined)

    def test_all_of_with_triggered_failure(self):
        env = Environment()
        failed = env.event()
        failed.fail(RuntimeError("already broken"))
        # Combinator attaches before the failure is processed, so the
        # failure is observed (not an unhandled-event crash).
        combined = env.all_of([failed, env.timeout(1.0)])
        with pytest.raises(RuntimeError, match="already broken"):
            env.run(until=combined)

    def test_all_of_success_after_failure_branch_untaken(self):
        env = Environment()
        combined = env.all_of([env.timeout(1.0, value="a"),
                               env.timeout(2.0, value="b")])
        assert env.run(until=combined) == ["a", "b"]


class TestAnyOfFailure:
    def test_any_of_fails_if_first_event_fails(self):
        env = Environment()

        def failing():
            yield env.timeout(1.0)
            raise ValueError("first boom")

        slow = env.timeout(10.0, value="slow")
        combined = env.any_of([env.process(failing()), slow])
        with pytest.raises(ValueError, match="first boom"):
            env.run(until=combined)

    def test_any_of_success_beats_later_failure(self):
        env = Environment()

        def failing():
            yield env.timeout(10.0)
            raise ValueError("too late to matter")

        fast = env.timeout(1.0, value="fast")
        process = env.process(failing())
        combined = env.any_of([process, fast])
        _event, value = env.run(until=combined)
        assert value == "fast"
        # The late failure is observed by the (already triggered)
        # combinator, so draining does not crash the kernel.
        env.run()
        assert not process.ok
