"""Tests for the discrete-event kernel."""

import pytest

from repro.sim.events import Environment, Interrupt, SimulationError


class TestTimeouts:
    def test_run_advances_time(self):
        env = Environment()
        env.timeout(5.0)
        env.run()
        assert env.now == 5.0

    def test_timeouts_fire_in_order(self):
        env = Environment()
        fired = []
        for delay in (3.0, 1.0, 2.0):
            event = env.timeout(delay, value=delay)
            event.callbacks.append(lambda ev: fired.append(ev.value))
        env.run()
        assert fired == [1.0, 2.0, 3.0]

    def test_same_time_fifo(self):
        env = Environment()
        fired = []
        for tag in ("a", "b", "c"):
            event = env.timeout(1.0, value=tag)
            event.callbacks.append(lambda ev: fired.append(ev.value))
        env.run()
        assert fired == ["a", "b", "c"]

    def test_negative_delay_rejected(self):
        env = Environment()
        with pytest.raises(SimulationError):
            env.timeout(-1.0)

    def test_run_until_time_stops_early(self):
        env = Environment()
        env.timeout(10.0)
        env.run(until=4.0)
        assert env.now == 4.0


class TestProcesses:
    def test_process_sequencing(self):
        env = Environment()
        log = []

        def worker(name, delay):
            yield env.timeout(delay)
            log.append((env.now, name))

        env.process(worker("slow", 2.0))
        env.process(worker("fast", 1.0))
        env.run()
        assert log == [(1.0, "fast"), (2.0, "slow")]

    def test_process_return_value(self):
        env = Environment()

        def worker():
            yield env.timeout(1.0)
            return 42

        proc = env.process(worker())
        assert env.run(until=proc) == 42

    def test_process_waits_on_process(self):
        env = Environment()

        def inner():
            yield env.timeout(3.0)
            return "inner-result"

        def outer():
            result = yield env.process(inner())
            return result + "!"

        proc = env.process(outer())
        assert env.run(until=proc) == "inner-result!"
        assert env.now == 3.0

    def test_unhandled_exception_propagates(self):
        env = Environment()

        def failing():
            yield env.timeout(1.0)
            raise ValueError("boom")

        env.process(failing())
        with pytest.raises(ValueError, match="boom"):
            env.run()

    def test_waited_exception_raises_at_yield(self):
        env = Environment()

        def failing():
            yield env.timeout(1.0)
            raise ValueError("boom")

        def waiter():
            try:
                yield env.process(failing())
            except ValueError:
                return "caught"

        proc = env.process(waiter())
        assert env.run(until=proc) == "caught"

    def test_yield_non_event_fails_process(self):
        env = Environment()

        def bad():
            yield 17

        env.process(bad())
        with pytest.raises(SimulationError):
            env.run()

    def test_interrupt(self):
        env = Environment()

        def sleeper():
            try:
                yield env.timeout(100.0)
            except Interrupt as interruption:
                return ("interrupted", interruption.cause, env.now)

        def interrupter(victim):
            yield env.timeout(2.0)
            victim.interrupt(cause="preempted")

        victim = env.process(sleeper())
        env.process(interrupter(victim))
        assert env.run(until=victim) == ("interrupted", "preempted", 2.0)

    def test_interrupt_finished_process_rejected(self):
        env = Environment()

        def quick():
            yield env.timeout(0.0)

        proc = env.process(quick())
        env.run()
        with pytest.raises(SimulationError):
            proc.interrupt()

    def test_waiting_on_already_triggered_event(self):
        env = Environment()
        pre_fired = env.event()
        pre_fired.succeed("early")

        def waiter():
            value = yield pre_fired
            return value

        proc = env.process(waiter())
        assert env.run(until=proc) == "early"


class TestEvents:
    def test_double_trigger_rejected(self):
        env = Environment()
        event = env.event()
        event.succeed(1)
        with pytest.raises(SimulationError):
            event.succeed(2)

    def test_fail_requires_exception(self):
        env = Environment()
        with pytest.raises(SimulationError):
            env.event().fail("not an exception")

    def test_value_before_trigger_rejected(self):
        env = Environment()
        with pytest.raises(SimulationError):
            env.event().value

    def test_run_until_untriggerable_event_deadlocks(self):
        env = Environment()
        orphan = env.event()
        with pytest.raises(SimulationError, match="deadlock"):
            env.run(until=orphan)


class TestCombinators:
    def test_all_of_collects_values(self):
        env = Environment()
        events = [env.timeout(d, value=d) for d in (2.0, 1.0, 3.0)]
        combined = env.all_of(events)
        assert env.run(until=combined) == [2.0, 1.0, 3.0]
        assert env.now == 3.0

    def test_all_of_empty(self):
        env = Environment()
        combined = env.all_of([])
        assert env.run(until=combined) == []

    def test_any_of_returns_first(self):
        env = Environment()
        slow = env.timeout(5.0, value="slow")
        fast = env.timeout(1.0, value="fast")
        winner_event, value = env.run(until=env.any_of([slow, fast]))
        assert value == "fast"
        assert winner_event is fast
        assert env.now == 1.0

    def test_any_of_with_pretriggered(self):
        env = Environment()
        done = env.event()
        done.succeed("already")
        _event, value = env.run(until=env.any_of([done, env.timeout(9.0)]))
        assert value == "already"
