"""Tests for the experiment CLI."""

import pytest

from repro.cli import EXPERIMENTS, main, run_experiment


class TestCli:
    def test_list_covers_all_experiments(self, capsys):
        assert main(["list"]) == 0
        output = capsys.readouterr().out
        for experiment_id in EXPERIMENTS:
            assert experiment_id in output

    def test_run_a2_prints_table(self, capsys):
        assert main(["run", "a2"]) == 0
        output = capsys.readouterr().out
        assert "sync (exit per call)" in output
        assert "async + user threads (SCONE)" in output

    def test_run_unknown_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "zz"])

    def test_run_experiment_returns_result(self):
        rows = run_experiment("e2")
        assert len(rows) == 3

    def test_every_experiment_is_registered_with_callable(self):
        import importlib

        for experiment_id, (module_name, function_name, description) in (
            EXPERIMENTS.items()
        ):
            module = importlib.import_module(module_name)
            assert callable(getattr(module, function_name)), experiment_id
            assert description
