"""Unit tests for the metrics registry (counters/gauges/histograms)."""

import json
import threading

import pytest

from repro.errors import ConfigurationError
from repro.telemetry import (
    DEFAULT_CYCLE_BUCKETS,
    NULL_REGISTRY,
    MetricsRegistry,
    NullRegistry,
    default_registry,
    enabled,
    exponential_buckets,
    set_default_registry,
)


class TestExponentialBuckets:
    def test_geometric_series(self):
        assert exponential_buckets(10, 2, 4) == (10, 20, 40, 80)

    def test_defaults_span_cycle_range(self):
        assert DEFAULT_CYCLE_BUCKETS[0] == 1_000
        assert DEFAULT_CYCLE_BUCKETS == tuple(sorted(DEFAULT_CYCLE_BUCKETS))

    @pytest.mark.parametrize("start,factor,count", [
        (0, 2, 4), (-1, 2, 4), (10, 1, 4), (10, 0.5, 4), (10, 2, 0),
    ])
    def test_bad_args_rejected(self, start, factor, count):
        with pytest.raises(ConfigurationError):
            exponential_buckets(start, factor, count)


class TestInstruments:
    def test_counter_accumulates(self):
        registry = MetricsRegistry()
        counter = registry.counter("hits")
        counter.inc()
        counter.inc(5)
        assert counter.value == 6

    def test_gauge_last_write_wins(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("depth")
        gauge.set(3)
        gauge.set(1)
        assert gauge.value == 1

    def test_histogram_buckets_values_deterministically(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("lat", buckets=(10, 100, 1000))
        for value in (5, 10, 11, 1000, 5000):
            histogram.observe(value)
        # <=10: {5, 10}; <=100: {11}; <=1000: {1000}; overflow: {5000}
        assert histogram.bucket_counts == [2, 1, 1, 1]
        assert histogram.count == 5
        assert histogram.total == 5 + 10 + 11 + 1000 + 5000

    def test_histogram_resolution_is_bucket_width(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("lat", buckets=(10, 100, 1000))
        assert histogram.resolution(5) == 10
        assert histogram.resolution(50) == 90
        assert histogram.resolution(500) == 900
        assert histogram.resolution(5000) == float("inf")

    def test_histogram_mean(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("lat", buckets=(10,))
        assert histogram.mean() == 0
        histogram.observe(4)
        histogram.observe(8)
        assert histogram.mean() == 6

    def test_unsorted_buckets_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(ConfigurationError):
            registry.histogram("bad", buckets=(10, 5))

    def test_falsy_buckets_fall_back_to_cycle_defaults(self):
        registry = MetricsRegistry()
        assert registry.histogram("d").buckets == DEFAULT_CYCLE_BUCKETS
        assert (registry.histogram("e", buckets=()).buckets
                == DEFAULT_CYCLE_BUCKETS)

    def test_instruments_memoized_by_name_and_labels(self):
        registry = MetricsRegistry()
        assert registry.counter("x") is registry.counter("x")
        assert registry.counter("x") is not registry.counter("x", mode="a")
        assert (registry.counter("x", a="1", b="2")
                is registry.counter("x", b="2", a="1"))

    def test_counter_updates_are_thread_safe(self):
        registry = MetricsRegistry()
        counter = registry.counter("contended")

        def spin():
            for _ in range(1000):
                counter.inc()

        threads = [threading.Thread(target=spin) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert counter.value == 4000


class TestSnapshot:
    def test_sections_sorted_and_labelled(self):
        registry = MetricsRegistry()
        registry.counter("b").inc()
        registry.counter("a", mode="x").inc(2)
        registry.gauge("g").set(7)
        registry.histogram("h", buckets=(10,)).observe(3)
        snapshot = registry.snapshot()
        assert list(snapshot["counters"]) == ["a{mode=x}", "b"]
        assert snapshot["counters"]["a{mode=x}"] == 2
        assert snapshot["gauges"]["g"] == 7
        assert snapshot["histograms"]["h"] == {
            "buckets": [10], "bucket_counts": [1, 0],
            "count": 1, "total": 3,
        }

    def test_empty_sections_omitted(self):
        registry = MetricsRegistry()
        assert registry.snapshot() == {}
        registry.counter("only").inc()
        assert set(registry.snapshot()) == {"counters"}

    def test_gauge_fn_sampled_at_snapshot_time(self):
        registry = MetricsRegistry()
        box = {"value": 1}
        registry.gauge_fn("sampled", lambda: box["value"])
        assert registry.snapshot()["gauges"]["sampled"] == 1
        box["value"] = 9
        assert registry.snapshot()["gauges"]["sampled"] == 9

    def test_to_json_is_canonical(self):
        registry = MetricsRegistry()
        registry.counter("z").inc()
        registry.counter("a").inc()
        raw = registry.to_json()
        assert raw == registry.to_json()
        assert json.loads(raw.decode("utf-8")) == registry.snapshot()
        # Compact separators, sorted keys: byte-stable by construction.
        assert b" " not in raw

    def test_next_index_is_per_name(self):
        registry = MetricsRegistry()
        assert registry.next_index("platform") == 0
        assert registry.next_index("platform") == 1
        assert registry.next_index("enclave") == 0


class TestNullRegistry:
    def test_shared_noop_instruments(self):
        registry = NullRegistry()
        assert registry.counter("a") is registry.counter("b")
        assert registry.histogram("a") is registry.histogram("b")
        registry.counter("a").inc(10)
        registry.gauge("g").set(5)
        registry.histogram("h").observe(123)
        assert registry.counter("a").value == 0
        assert registry.snapshot() == {}
        assert registry.to_json() == b"{}"
        assert registry.active is False

    def test_gauge_fn_dropped(self):
        registry = NullRegistry()
        registry.gauge_fn("sampled", lambda: 1)
        assert registry.snapshot() == {}

    def test_next_index_constant(self):
        registry = NullRegistry()
        assert registry.next_index("x") == 0
        assert registry.next_index("x") == 0


class TestDefaultRegistry:
    def test_default_is_null(self):
        assert default_registry() is NULL_REGISTRY

    def test_enabled_installs_and_restores(self):
        with enabled() as registry:
            assert default_registry() is registry
            assert registry.active
        assert default_registry() is NULL_REGISTRY

    def test_enabled_restores_on_error(self):
        with pytest.raises(RuntimeError):
            with enabled():
                raise RuntimeError("boom")
        assert default_registry() is NULL_REGISTRY

    def test_enabled_accepts_existing_registry(self):
        registry = MetricsRegistry()
        with enabled(registry) as installed:
            assert installed is registry

    def test_set_default_returns_previous(self):
        registry = MetricsRegistry()
        previous = set_default_registry(registry)
        try:
            assert previous is NULL_REGISTRY
            assert default_registry() is registry
        finally:
            set_default_registry(previous)
