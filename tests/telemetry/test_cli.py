"""Tests for the ``repro.cli metrics`` / ``repro.cli trace`` commands."""

from repro import cli, telemetry
from repro.cli import main


class TestTraceCommand:
    def test_trace_reconstructs_cross_enclave_tree(self, capsys):
        """The acceptance path: sealed snapshots from every enclave
        open under the operator key, join the driver's spans into one
        tree, and the root's duration equals the plane's reported
        publish latency within histogram-bucket resolution."""
        assert main(["trace"]) == 0
        output = capsys.readouterr().out
        assert "trace ok" in output
        # The flame view spans every domain of the publish path.
        for name in ("scbr.publish", "coord.ingest", "shard.match",
                     "coord.finalize"):
            assert name in output
        assert "[driver]" in output
        assert "[coord]" in output
        assert "[shard-0]" in output
        # The host relayed sealed blobs for the coordinator and shards.
        assert "sealed snapshot coordinator" in output
        assert "sealed snapshot shard-0" in output

    def test_trace_leaves_telemetry_disabled(self):
        assert cli.run_trace(seed=9) == 0
        assert telemetry.default_registry() is telemetry.NULL_REGISTRY


class TestMetricsCommand:
    def test_run_metrics_dumps_snapshot_and_sidecars(
            self, capsys, monkeypatch, tmp_path):
        from benchmarks import _harness

        monkeypatch.setattr(_harness, "_OUT_DIR", str(tmp_path))
        monkeypatch.setitem(
            cli.EXPERIMENTS, "zz",
            ("tests.telemetry._fake_bench", "run_fake", "stub probe"),
        )
        assert cli.run_metrics("zz") == 0
        output = capsys.readouterr().out
        assert '"fake.runs": 1' in output
        # report() wrote its sidecar because the registry was live...
        assert (tmp_path / "zz_fake_probe.telemetry.json").exists()
        # ...and the CLI wrote one under the module's artifact name.
        assert (tmp_path / "_fake_bench.telemetry.json").exists()
        assert telemetry.default_registry() is telemetry.NULL_REGISTRY

    def test_report_writes_no_sidecar_when_disabled(
            self, capsys, monkeypatch, tmp_path):
        from benchmarks import _harness

        monkeypatch.setattr(_harness, "_OUT_DIR", str(tmp_path))
        _harness.report("zz_off", "probe", ("col",), [(1,)])
        capsys.readouterr()
        assert (tmp_path / "zz_off.json").exists()
        assert not (tmp_path / "zz_off.telemetry.json").exists()
