"""Unit tests for span tracing and cross-domain tree reconstruction."""

from repro.sim.clock import CycleClock
from repro.telemetry import (
    NULL_RECORDER,
    Span,
    SpanRecorder,
    build_span_tree,
    render_flame,
)


class TestSpanRecorder:
    def test_span_measures_clock_delta(self):
        clock = CycleClock()
        recorder = SpanRecorder("driver")
        with recorder.span("work", clock) as span:
            clock.charge(500)
        assert span.duration == 500
        assert recorder.spans == [span]
        assert span.domain == "driver"

    def test_nested_spans_parent_implicitly(self):
        clock = CycleClock()
        recorder = SpanRecorder("driver")
        with recorder.span("outer", clock) as outer:
            with recorder.span("inner", clock) as inner:
                clock.charge(1)
        assert inner.trace_id == outer.trace_id
        assert inner.parent_id == outer.span_id
        assert outer.parent_id is None

    def test_ids_are_sequential_and_deterministic(self):
        first = SpanRecorder("d")
        second = SpanRecorder("d")
        clock = CycleClock()
        for recorder in (first, second):
            with recorder.span("a", clock):
                pass
            with recorder.span("b", clock):
                pass
        assert ([span.span_id for span in first.spans]
                == [span.span_id for span in second.spans]
                == ["d:0", "d:1"])
        assert first.spans[0].trace_id == "d/t0"

    def test_cross_boundary_trace_argument(self):
        """An enclave-side recorder parents under a host (trace, span)
        pair passed across the ECALL boundary."""
        host_clock, enclave_clock = CycleClock(), CycleClock()
        host = SpanRecorder("host")
        enclave = SpanRecorder("enclave")
        reservation = host.reserve()
        with enclave.span("match", enclave_clock, trace=reservation):
            enclave_clock.charge(10)
        host.record_reserved(
            reservation, "publish", host_clock.now, host_clock.now + 99
        )
        child = enclave.spans[0]
        root = host.spans[0]
        assert child.trace_id == root.trace_id
        assert child.parent_id == root.span_id
        assert root.duration == 99
        assert root.parent_id is None

    def test_record_with_computed_timestamps(self):
        recorder = SpanRecorder("d")
        span = recorder.record("calc", 100, 350, answer=42)
        assert span.duration == 250
        assert span.attrs == {"answer": 42}
        assert span.trace_id == "d/t0"

    def test_export_round_trips_through_dicts(self):
        clock = CycleClock()
        recorder = SpanRecorder("d")
        with recorder.span("op", clock, size=3):
            clock.charge(7)
        restored = [Span.from_dict(raw) for raw in recorder.export()]
        assert restored == recorder.spans


class TestNullRecorder:
    def test_disabled_and_inert(self):
        clock = CycleClock()
        assert NULL_RECORDER.enabled is False
        with NULL_RECORDER.span("op", clock) as span:
            span.attrs["key"] = "value"   # must not leak anywhere
            span.end = 123                # attribute writes swallowed
        assert NULL_RECORDER.spans == ()
        assert NULL_RECORDER.export() == []
        assert span.attrs == {}

    def test_reserve_and_record_are_noops(self):
        reservation = NULL_RECORDER.reserve()
        NULL_RECORDER.record_reserved(reservation, "op", 0, 1)
        NULL_RECORDER.record("op", 0, 1)
        assert NULL_RECORDER.spans == ()


class TestSpanTree:
    def _spans(self):
        root = Span("root", "h:0", "h/t0", None, "host", 0, 100)
        early = Span("early", "e:0", "h/t0", "h:0", "enclave", 5, 20)
        late = Span("late", "e:1", "h/t0", "h:0", "enclave", 30, 60)
        grandchild = Span("leaf", "e:2", "h/t0", "e:1", "enclave", 31, 40)
        other = Span("other", "h:1", "h/t1", None, "host", 0, 10)
        return root, early, late, grandchild, other

    def test_tree_joins_domains_by_context(self):
        root, early, late, grandchild, other = self._spans()
        tree = build_span_tree(
            [other, grandchild, late, early, root], trace_id="h/t0"
        )
        assert len(tree) == 1
        node, children = tree[0]
        assert node is root
        assert [child.name for child, _ in children] == ["early", "late"]
        late_node = children[1]
        assert [child.name for child, _ in late_node[1]] == ["leaf"]

    def test_orphan_parent_becomes_root(self):
        orphan = Span("orphan", "x:0", "t", "missing", "d", 0, 1)
        tree = build_span_tree([orphan])
        assert [span.name for span, _ in tree] == ["orphan"]

    def test_render_flame_indents_and_labels_domains(self):
        root, early, late, grandchild, _other = self._spans()
        text = render_flame(
            build_span_tree([root, early, late, grandchild])
        )
        lines = text.splitlines()
        assert lines[0].startswith("root")
        assert "[host]" in lines[0]
        assert lines[1].startswith("  early")
        assert "[enclave]" in lines[1]
        assert lines[3].startswith("    leaf")

    def test_render_flame_shows_sorted_attrs(self):
        span = Span("op", "d:0", "t", None, "d", 0, 2600000,
                    attrs={"b": 2, "a": 1})
        text = render_flame(build_span_tree([span]))
        assert "a=1 b=2" in text
        assert "1.0000 ms" in text
