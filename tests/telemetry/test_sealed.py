"""Tests for sealed telemetry snapshots: the trust boundary itself."""

import pytest

from repro.crypto.aead import AeadKey
from repro.crypto.primitives import DeterministicRandomSource
from repro.errors import IntegrityError
from repro.sim.clock import CycleClock
from repro.telemetry import (
    TELEMETRY_AAD,
    EnclaveTelemetry,
    open_snapshot,
    seal_snapshot,
    spans_from_snapshot,
)


def _key(seed=7):
    return AeadKey.generate(DeterministicRandomSource(seed))


class TestSealOpen:
    def test_round_trip(self):
        key = _key()
        payload = {"domain": "shard-0", "metrics": {"counters": {"m": 3}}}
        assert open_snapshot(key, seal_snapshot(key, payload)) == payload

    def test_blob_is_not_plaintext(self):
        key = _key()
        blob = seal_snapshot(key, {"secret_metric": 12345})
        assert b"secret_metric" not in blob
        assert b"12345" not in blob

    def test_bit_flip_fails_closed(self):
        key = _key()
        blob = bytearray(seal_snapshot(key, {"m": 1}))
        blob[-1] ^= 0x01
        with pytest.raises(IntegrityError):
            open_snapshot(key, bytes(blob))

    def test_truncation_fails_closed(self):
        key = _key()
        blob = seal_snapshot(key, {"m": 1})
        with pytest.raises(IntegrityError):
            open_snapshot(key, blob[:-1])

    def test_wrong_key_fails_closed(self):
        blob = seal_snapshot(_key(1), {"m": 1})
        with pytest.raises(IntegrityError):
            open_snapshot(_key(2), blob)

    def test_wrong_domain_separation_fails_closed(self):
        """A blob sealed under another AAD (say a plane checkpoint)
        cannot be passed off as a telemetry snapshot."""
        key = _key()
        foreign = key.encrypt_batch(
            [b"{}"], aad=b"checkpoint|v1"
        ).to_bytes()
        assert TELEMETRY_AAD != b"checkpoint|v1"
        with pytest.raises(IntegrityError):
            open_snapshot(key, foreign)


class TestEnclaveTelemetry:
    def test_export_carries_metrics_and_spans(self):
        telemetry = EnclaveTelemetry(_key(), "shard-3")
        telemetry.registry.counter("matched").inc(4)
        clock = CycleClock()
        with telemetry.recorder.span("match", clock):
            clock.charge(64)
        payload = open_snapshot(telemetry.key, telemetry.export_sealed())
        assert payload["domain"] == "shard-3"
        assert payload["metrics"]["counters"]["matched"] == 4
        spans = spans_from_snapshot(payload)
        assert len(spans) == 1
        assert spans[0].name == "match"
        assert spans[0].duration == 64
        assert spans[0].domain == "shard-3"

    def test_registry_is_live_regardless_of_host_default(self):
        """The enclave decided to record by accepting the key; the
        host-global on/off switch governs host-side instruments only."""
        telemetry = EnclaveTelemetry(_key(), "coord")
        assert telemetry.registry.active

    def test_spans_from_snapshot_tolerates_absent_section(self):
        assert spans_from_snapshot({"metrics": {}}) == []
