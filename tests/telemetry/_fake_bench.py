"""A stub benchmark module for CLI telemetry tests (not a benchmark)."""

from benchmarks._harness import report
from repro.telemetry import default_registry


def run_fake(smoke=False):
    default_registry().counter("fake.runs").inc()
    report("zz_fake_probe", "probe table", ("col",), [(1,)])
    return [(1,)]
