"""Instrumented subsystems record into an enabled registry -- and cost
nothing (shared no-op handles) when telemetry is off, the default."""

from repro.scone.syscalls import (
    AsyncSyscallExecutor,
    SimulatedKernel,
    SyncSyscallExecutor,
)
from repro.sgx.costs import DEFAULT_COSTS
from repro.sgx.enclave import EnclaveCode
from repro.sgx.platform import SgxPlatform
from repro.sim.clock import CycleClock
from repro.telemetry import NULL_REGISTRY, enabled


def _echo(ctx, value):
    return value


def _call_out(ctx, fn):
    return ctx.ocall(fn)


CODE = EnclaveCode("svc", {"echo": _echo, "call_out": _call_out})


class TestSgxInstrumentation:
    def test_transitions_counted_when_enabled(self):
        with enabled() as registry:
            platform = SgxPlatform(seed=3, quoting_key_bits=512)
            enclave = platform.load_enclave(CODE)
            enclave.ecall("echo", 1)
            enclave.ecall("call_out", lambda: None)
        counters = registry.snapshot()["counters"]
        assert counters["sgx.ecalls{enclave=svc}"] == 2
        assert counters["sgx.ocalls{enclave=svc}"] == 1
        # Each ecall and each ocall is 2 boundary crossings.
        assert counters["sgx.transitions{enclave=svc}"] == 6

    def test_epc_gauges_sampled_per_platform_ordinal(self):
        with enabled() as registry:
            SgxPlatform(seed=3, quoting_key_bits=512)
            SgxPlatform(seed=4, quoting_key_bits=512)
            gauges = registry.snapshot()["gauges"]
        assert "sgx.epc.faults{platform=0}" in gauges
        assert "sgx.epc.faults{platform=1}" in gauges
        assert "sgx.epc.resident_pages{platform=0}" in gauges

    def test_disabled_default_uses_shared_noop_handles(self):
        platform = SgxPlatform(seed=3, quoting_key_bits=512)
        enclave = platform.load_enclave(CODE)
        assert enclave._tel_ecalls is NULL_REGISTRY.counter("anything")
        enclave.ecall("echo", 1)
        assert enclave._tel_ecalls.value == 0


class TestSconeInstrumentation:
    def test_sync_and_async_call_counters(self):
        with enabled() as registry:
            sync = SyncSyscallExecutor(
                CycleClock(), SimulatedKernel(), DEFAULT_COSTS
            )
            fd = sync.call("open", "/f")
            sync.call("write", fd, b"x")
            asynchronous = AsyncSyscallExecutor(
                CycleClock(), SimulatedKernel(), DEFAULT_COSTS, workers=2
            )
            asynchronous.wait(asynchronous.submit("open", "/g"))
        counters = registry.snapshot()["counters"]
        assert counters["scone.syscalls{mode=sync}"] == 2
        assert counters["scone.syscalls{mode=async}"] == 1
        depth = registry.snapshot()["histograms"]["scone.syscall_queue_depth"]
        assert depth["count"] == 1

    def test_queue_depth_histogram_sees_busy_workers(self):
        with enabled() as registry:
            executor = AsyncSyscallExecutor(
                CycleClock(), SimulatedKernel(), DEFAULT_COSTS, workers=2
            )
            for _ in range(4):
                executor.submit("open", "/f")
        histogram = registry.snapshot()["histograms"][
            "scone.syscall_queue_depth"
        ]
        assert histogram["count"] == 4
        # At least the first submit saw an idle queue (depth 0).
        assert histogram["bucket_counts"][0] >= 1


class TestSnapshotDeterminismAcrossRuns:
    def test_same_scenario_same_snapshot_in_one_process(self):
        """Global id counters advance between runs; metric names must
        not embed them, so two same-seed runs snapshot identically."""

        def scenario():
            with enabled() as registry:
                platform = SgxPlatform(seed=9, quoting_key_bits=512)
                enclave = platform.load_enclave(CODE)
                for value in range(5):
                    enclave.ecall("echo", value)
                return registry.to_json()

        assert scenario() == scenario()
