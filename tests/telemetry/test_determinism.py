"""Telemetry-asserted chaos determinism.

The chaos layer's guarantee is that everything observable is a pure
function of the seed.  The telemetry plane widens "observable": two
identical seeded chaos-smoke runs -- including the E6 shard-failover
scenarios, whose recovery work runs through thread pools -- must
produce byte-identical canonical metric snapshots, not just identical
benchmark rows.
"""

import pytest

from repro import telemetry
from repro.cli import _load


def _snapshots(experiment_id):
    _module, function = _load(experiment_id)
    passes = []
    for _ in range(2):
        with telemetry.enabled() as registry:
            rows = function(smoke=True)
        passes.append((rows, registry.to_json()))
    return passes


class TestChaosTelemetryDeterminism:
    @pytest.mark.parametrize("experiment_id", ["e5", "e6"])
    def test_same_seed_same_metric_snapshot(self, experiment_id):
        (rows_a, snap_a), (rows_b, snap_b) = _snapshots(experiment_id)
        assert rows_a == rows_b
        assert snap_a == snap_b
        assert snap_a != b"{}"   # the run actually recorded something

    def test_e6_snapshot_covers_failover_metrics(self):
        """The byte-compared snapshot includes the failure/recovery
        counters, so a nondeterministic failover path cannot hide."""
        _module, function = _load("e6")
        with telemetry.enabled() as registry:
            function(smoke=True)
        counters = registry.snapshot()["counters"]
        assert counters["scbr.shard_failures"] > 0
        assert counters["scbr.recoveries"] > 0
        histograms = registry.snapshot()["histograms"]
        assert histograms["scbr.coverage_wait_cycles"]["count"] > 0
        assert histograms["scbr.recovery_cycles"]["count"] > 0
