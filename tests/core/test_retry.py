"""Tests for the error taxonomy and the retry/backoff machinery."""

import pytest

from repro.errors import (
    BrokerUnavailableError,
    CapacityError,
    ConfigurationError,
    EnclaveError,
    EnclaveLostError,
    FatalError,
    IntegrityError,
    RetryExhaustedError,
    SecureCloudError,
    StorageUnavailableError,
    TransientError,
    TransportError,
    WorkerCrashError,
)
from repro.retry import BackoffClock, RetryPolicy, retry_call


class TestHierarchy:
    def test_transient_vs_fatal_split(self):
        for transient in (
            CapacityError, WorkerCrashError, BrokerUnavailableError,
            StorageUnavailableError, TransportError, EnclaveLostError,
        ):
            assert issubclass(transient, TransientError)
            assert not issubclass(transient, FatalError)
        for fatal in (IntegrityError, ConfigurationError,
                      RetryExhaustedError):
            assert issubclass(fatal, FatalError)
            assert not issubclass(fatal, TransientError)

    def test_everything_is_a_securecloud_error(self):
        assert issubclass(TransientError, SecureCloudError)
        assert issubclass(FatalError, SecureCloudError)

    def test_enclave_lost_is_both_enclave_and_transient(self):
        # Failover paths catch it as transient; existing enclave
        # plumbing still catches it as EnclaveError.
        assert issubclass(EnclaveLostError, EnclaveError)
        assert issubclass(EnclaveLostError, TransientError)

    def test_retry_exhausted_carries_cause(self):
        error = RetryExhaustedError(
            "gave up", attempts=3, last_error=TransportError("down")
        )
        assert error.attempts == 3
        assert isinstance(error.last_error, TransportError)


class TestRetryPolicy:
    def test_exponential_delays_capped(self):
        policy = RetryPolicy(max_attempts=6, base_delay=0.010, factor=2.0,
                             max_delay=0.050)
        assert policy.delay(1) == pytest.approx(0.010)
        assert policy.delay(2) == pytest.approx(0.020)
        assert policy.delay(3) == pytest.approx(0.040)
        assert policy.delay(4) == pytest.approx(0.050)  # capped
        assert policy.delay(5) == pytest.approx(0.050)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ConfigurationError):
            RetryPolicy(base_delay=-1.0)


class TestBackoffClock:
    def test_accumulates_virtual_time(self):
        clock = BackoffClock()
        clock.sleep(0.25)
        clock.sleep(0.5)
        assert clock.seconds == pytest.approx(0.75)
        assert clock.sleeps == 2


class TestRetryCall:
    def test_succeeds_after_transient_failures(self):
        attempts = []

        def flaky(attempt):
            attempts.append(attempt)
            if attempt < 3:
                raise StorageUnavailableError("hiccup")
            return "done"

        clock = BackoffClock()
        result = retry_call(
            flaky, RetryPolicy(max_attempts=5, base_delay=0.010), clock=clock
        )
        assert result == "done"
        assert attempts == [1, 2, 3]
        assert clock.seconds == pytest.approx(0.010 + 0.020)

    def test_fatal_errors_are_not_retried(self):
        attempts = []

        def poisoned(attempt):
            attempts.append(attempt)
            raise IntegrityError("tampered")

        with pytest.raises(IntegrityError):
            retry_call(poisoned, RetryPolicy(max_attempts=5))
        assert attempts == [1]

    def test_budget_exhaustion_is_typed(self):
        def always_down(attempt):
            raise TransportError("down")

        with pytest.raises(RetryExhaustedError) as excinfo:
            retry_call(always_down, RetryPolicy(max_attempts=3,
                                                base_delay=0.001))
        assert excinfo.value.attempts == 3
        assert isinstance(excinfo.value.last_error, TransportError)

    def test_on_retry_hook_sees_each_recovery(self):
        episodes = []

        def flaky(attempt):
            if attempt == 1:
                raise WorkerCrashError("boom")
            return attempt

        retry_call(
            flaky, RetryPolicy(max_attempts=3, base_delay=0.002),
            on_retry=lambda attempt, exc, delay: episodes.append(
                (attempt, type(exc).__name__, delay)
            ),
        )
        assert episodes == [(1, "WorkerCrashError", pytest.approx(0.002))]
