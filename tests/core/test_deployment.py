"""Tests for the end-to-end deployment pipeline."""

import pytest

from repro.errors import ConfigurationError
from repro.core.application import ApplicationSpec, ServiceSpec
from repro.core.deployment import SecureCloudPlatform
from repro.containers.engine import ContainerState


def cleaner(ctx, topic, plaintext):
    value = float(plaintext.decode())
    if value < 0:
        return []
    return [("cleaned", plaintext)]


def thresholder(ctx, topic, plaintext):
    value = float(plaintext.decode())
    if value > 100.0:
        return [("alerts", b"high:" + plaintext)]
    return []


def make_app():
    return ApplicationSpec(
        "grid-analytics",
        [
            ServiceSpec("cleaner", {"readings": cleaner},
                        output_topics=("cleaned",)),
            ServiceSpec("thresholder", {"cleaned": thresholder},
                        output_topics=("alerts",),
                        protected_files={"/threshold.cfg": b"100.0"}),
        ],
    )


@pytest.fixture()
def platform():
    return SecureCloudPlatform(hosts=2, seed=61)


class TestDeploy:
    def test_services_running_on_hosts(self, platform):
        deployment = platform.deploy(make_app())
        assert set(deployment.services) == {"cleaner", "thresholder"}
        hosts_used = {
            container.host.name for container in deployment.containers.values()
        }
        assert len(hosts_used) == 2  # round-robin over both hosts
        for container in deployment.containers.values():
            assert container.is_secure

    def test_end_to_end_dataflow(self, platform):
        deployment = platform.deploy(make_app())
        alerts = deployment.collect("alerts")
        deployment.ingest("readings", b"150.0")
        deployment.ingest("readings", b"50.0")
        deployment.ingest("readings", b"-3.0")
        deployment.run()
        assert alerts == [b"high:150.0"]
        assert deployment.stats() == {"cleaner": 3, "thresholder": 2}

    def test_bus_carries_only_ciphertext(self, platform):
        deployment = platform.deploy(make_app())
        observed = []
        platform.bus.subscribe("readings", lambda e: observed.append(e.blob))
        platform.bus.subscribe("alerts", lambda e: observed.append(e.blob))
        deployment.ingest("readings", b"150.0")
        deployment.run()
        assert observed
        for blob in observed:
            assert b"150.0" not in blob

    def test_images_signed_and_in_registry(self, platform):
        platform.deploy(make_app())
        references = platform.registry.references()
        assert "grid-analytics/cleaner:latest" in references
        assert "grid-analytics/thresholder:latest" in references
        for reference in references:
            assert platform.registry.signature_for(reference) is not None

    def test_scfs_registered_with_cas(self, platform):
        deployment = platform.deploy(make_app())
        for service in deployment.services.values():
            assert platform.cas.has_scf(service.measurement)

    def test_topic_keys_arrive_via_scf(self, platform):
        deployment = platform.deploy(make_app())
        container = deployment.containers["cleaner"]
        environment = container.process.env.environment
        key_names = [
            name for name in environment if name.startswith("SCONE_TOPIC_KEY_")
        ]
        assert sorted(key_names) == [
            "SCONE_TOPIC_KEY_cleaned", "SCONE_TOPIC_KEY_readings",
        ]

    def test_ingest_unknown_topic_rejected(self, platform):
        deployment = platform.deploy(make_app())
        with pytest.raises(ConfigurationError):
            deployment.ingest("bogus", b"x")

    def test_collect_unknown_topic_rejected(self, platform):
        deployment = platform.deploy(make_app())
        with pytest.raises(ConfigurationError):
            deployment.collect("bogus")

    def test_orchestrator_attached(self, platform):
        deployment = platform.deploy(make_app())
        assert deployment.orchestrator is not None

    def test_stop_exits_containers(self, platform):
        deployment = platform.deploy(make_app())
        deployment.stop()
        for container in deployment.containers.values():
            assert container.state is ContainerState.EXITED

    def test_two_deployments_isolated_keys(self, platform):
        first = platform.deploy(make_app())
        second = platform.deploy(make_app())
        assert (
            first.topic_keys["readings"] != second.topic_keys["readings"]
        )

    def test_invalid_host_count(self):
        with pytest.raises(ConfigurationError):
            SecureCloudPlatform(hosts=0)
