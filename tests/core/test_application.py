"""Tests for application descriptors."""

import pytest

from repro.errors import ConfigurationError
from repro.core.application import ApplicationSpec, ServiceSpec


def handler(ctx, topic, plaintext):
    return []


def make_app():
    ingest = ServiceSpec(
        name="ingest",
        handlers={"readings": handler},
        output_topics=("cleaned",),
    )
    analyse = ServiceSpec(
        name="analyse",
        handlers={"cleaned": handler},
        output_topics=("alerts",),
        protected_files={"/model.bin": b"weights"},
    )
    return ApplicationSpec("grid-analytics", [ingest, analyse])


class TestServiceSpec:
    def test_topics_union(self):
        spec = ServiceSpec("s", {"a": handler}, output_topics=("b", "a"))
        assert spec.topics() == ["a", "b"]

    def test_defaults(self):
        spec = ServiceSpec("s", {"a": handler})
        assert spec.protected_files == {}
        assert spec.output_topics == ()


class TestApplicationSpec:
    def test_topics(self):
        assert make_app().topics() == ["alerts", "cleaned", "readings"]

    def test_external_inputs(self):
        assert make_app().external_input_topics() == ["readings"]

    def test_external_outputs(self):
        assert make_app().external_output_topics() == ["alerts"]

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            ApplicationSpec("empty", [])

    def test_duplicate_names_rejected(self):
        spec = ServiceSpec("s", {"a": handler})
        with pytest.raises(ConfigurationError):
            ApplicationSpec("app", [spec, spec])
