"""Theft detection under harder conditions: multiple thieves, drift."""

import pytest

from repro.sgx.platform import SgxPlatform
from repro.smartgrid.meters import SmartMeterFleet
from repro.smartgrid.theft import TheftDetector
from repro.smartgrid.topology import GridTopology

HOUR = 3600.0


def build(seed=9):
    grid = GridTopology.build(feeders=2, transformers_per_feeder=3,
                              meters_per_transformer=5)
    fleet = SmartMeterFleet(grid, seed=seed, interval=60.0)
    detector = TheftDetector(grid, interval=60.0)
    return grid, fleet, detector


def windows(fleet):
    baseline = fleet.readings_window(0.0, 1 * HOUR)
    window = fleet.readings_window(1 * HOUR, 2 * HOUR)
    measured = fleet.transformer_window(1 * HOUR, 2 * HOUR)
    return baseline, window, measured


class TestMultipleThieves:
    def test_two_thieves_on_different_transformers(self):
        _grid, fleet, detector = build()
        fleet.inject_theft("meter-0-1-02", start=1 * HOUR, fraction=0.45)
        fleet.inject_theft("meter-1-2-00", start=1 * HOUR, fraction=0.5)
        baseline, window, measured = windows(fleet)
        report = detector.detect(window, measured, baseline)
        assert report.flagged_transformers == ["tx-0-1", "tx-1-2"]
        assert report.suspects["tx-0-1"] == "meter-0-1-02"
        assert report.suspects["tx-1-2"] == "meter-1-2-00"
        precision, recall = report.score(fleet.theft_ground_truth)
        assert precision == 1.0 and recall == 1.0

    def test_two_thieves_same_transformer_primary_found(self):
        """With one suspect per transformer, recall drops but precision
        holds -- the report never accuses an innocent meter."""
        _grid, fleet, detector = build()
        fleet.inject_theft("meter-0-0-01", start=1 * HOUR, fraction=0.5)
        fleet.inject_theft("meter-0-0-03", start=1 * HOUR, fraction=0.5)
        baseline, window, measured = windows(fleet)
        report = detector.detect(window, measured, baseline)
        assert report.flagged_transformers == ["tx-0-0"]
        suspect = report.suspects["tx-0-0"]
        assert suspect in fleet.theft_ground_truth
        precision, recall = report.score(fleet.theft_ground_truth)
        assert precision == 1.0
        assert recall == pytest.approx(0.5)

    def test_theft_starting_mid_window_still_detected(self):
        _grid, fleet, detector = build()
        # Starts 15 minutes into the detection window at a high rate.
        fleet.inject_theft("meter-0-1-02", start=1.25 * HOUR, fraction=0.8)
        baseline, window, measured = windows(fleet)
        report = detector.detect(window, measured, baseline)
        assert "tx-0-1" in report.flagged_transformers

    def test_secure_path_handles_multiple_thieves(self):
        grid, fleet, _plain = build()
        fleet.inject_theft("meter-0-1-02", start=1 * HOUR, fraction=0.45)
        fleet.inject_theft("meter-1-2-00", start=1 * HOUR, fraction=0.5)
        platform = SgxPlatform(seed=47, quoting_key_bits=512)
        detector = TheftDetector(grid, interval=60.0, platform=platform)
        baseline, window, measured = windows(fleet)
        report = detector.detect(window, measured, baseline)
        assert report.flagged_transformers == ["tx-0-1", "tx-1-2"]


class TestRobustness:
    def test_fault_during_window_not_misread_as_theft(self):
        """A blackout removes load from both meters *and* the
        transformer measurement, so loss stays near zero."""
        _grid, fleet, detector = build()
        fleet.inject_fault("tx-0-2", 1.2 * HOUR, 1.6 * HOUR)
        baseline, window, measured = windows(fleet)
        report = detector.detect(window, measured, baseline)
        assert "tx-0-2" not in report.flagged_transformers

    def test_voltage_sag_not_misread_as_theft(self):
        _grid, fleet, detector = build()
        fleet.inject_voltage_event("tx-0-2", 1.2 * HOUR, 1.4 * HOUR,
                                   per_unit=0.85)
        baseline, window, measured = windows(fleet)
        report = detector.detect(window, measured, baseline)
        assert "tx-0-2" not in report.flagged_transformers
