"""Tests for power-quality monitoring and fault detection."""

import pytest

from repro.smartgrid.faults import FaultDetector
from repro.smartgrid.meters import NOMINAL_VOLTS, SmartMeterFleet
from repro.smartgrid.quality import (
    PowerQualityMonitor,
    classify_sample,
)
from repro.smartgrid.topology import GridTopology


@pytest.fixture()
def grid():
    return GridTopology.build(
        feeders=2, transformers_per_feeder=2, meters_per_transformer=4
    )


@pytest.fixture()
def fleet(grid):
    return SmartMeterFleet(grid, seed=7, interval=30.0)


class TestClassification:
    @pytest.mark.parametrize(
        "per_unit,expected",
        [
            (1.0, "normal"),
            (0.95, "normal"),
            (0.85, "sag"),
            (0.5, "sag"),
            (0.01, "interruption"),
            (0.0, "interruption"),
            (1.15, "swell"),
            (1.05, "normal"),
        ],
    )
    def test_bands(self, per_unit, expected):
        assert classify_sample(NOMINAL_VOLTS * per_unit) == expected


class TestQualityMonitor:
    def test_clean_window_no_events(self, grid, fleet):
        monitor = PowerQualityMonitor(grid)
        readings = fleet.readings_window(0.0, 600.0)
        assert monitor.detect(readings) == []

    def test_sag_event_detected_and_merged(self, grid, fleet):
        fleet.inject_voltage_event("tx-0-0", 120.0, 300.0, per_unit=0.8)
        monitor = PowerQualityMonitor(grid)
        readings = fleet.readings_window(0.0, 600.0)
        events = monitor.detect(readings)
        assert len(events) == 1
        event = events[0]
        assert event.transformer == "tx-0-0"
        assert event.kind == "sag"
        assert event.start == 120.0
        assert event.end == 300.0
        assert event.duration == pytest.approx(180.0)
        assert len(event.affected_meters) == 4

    def test_swell_event(self, grid, fleet):
        fleet.inject_voltage_event("tx-1-1", 60.0, 120.0, per_unit=1.2)
        monitor = PowerQualityMonitor(grid)
        events = monitor.detect(fleet.readings_window(0.0, 300.0))
        assert [e.kind for e in events] == ["swell"]
        assert events[0].transformer == "tx-1-1"

    def test_two_transformers_two_events(self, grid, fleet):
        fleet.inject_voltage_event("tx-0-0", 60.0, 120.0, per_unit=0.8)
        fleet.inject_voltage_event("tx-1-0", 60.0, 120.0, per_unit=0.8)
        monitor = PowerQualityMonitor(grid)
        events = monitor.detect(fleet.readings_window(0.0, 300.0))
        assert {event.transformer for event in events} == {"tx-0-0", "tx-1-0"}

    def test_sample_classification_counts(self, grid, fleet):
        fleet.inject_voltage_event("tx-0-0", 0.0, 60.0, per_unit=0.8)
        monitor = PowerQualityMonitor(grid)
        counts = monitor.sample_classifications(
            fleet.readings_window(0.0, 60.0)
        )
        assert counts.get("sag", 0) == 8  # 4 meters x 2 slots
        assert counts.get("normal", 0) > 0


class TestFaultDetector:
    def test_no_fault_no_events(self, grid, fleet):
        detector = FaultDetector(grid)
        assert detector.scan_window(fleet, 0.0, 300.0) == []

    def test_transformer_fault_localised(self, grid, fleet):
        fleet.inject_fault("tx-0-1", 150.0, 900.0)
        detector = FaultDetector(grid)
        events = detector.scan_window(fleet, 0.0, 600.0)
        assert len(events) == 1
        event = events[0]
        assert event.element == "tx-0-1"
        assert event.kind == "transformer"
        assert len(event.dark_meters) == 4

    def test_detection_latency_within_one_interval(self, grid, fleet):
        fleet.inject_fault("tx-0-1", 145.0, 900.0)
        detector = FaultDetector(grid)
        events = detector.scan_window(fleet, 0.0, 600.0)
        delay = events[0].detected_at - 145.0
        assert 0 <= delay <= fleet.interval

    def test_feeder_fault_localised_to_feeder(self, grid, fleet):
        fleet.inject_fault("feeder-1", 100.0, 900.0)
        detector = FaultDetector(grid)
        events = detector.scan_window(fleet, 0.0, 300.0)
        assert [event.element for event in events] == ["feeder-1"]
        assert events[0].kind == "feeder"

    def test_persistent_fault_reported_once(self, grid, fleet):
        fleet.inject_fault("tx-0-0", 100.0, 10_000.0)
        detector = FaultDetector(grid)
        events = detector.scan_window(fleet, 0.0, 1_000.0)
        assert len(events) == 1

    def test_two_simultaneous_faults(self, grid, fleet):
        fleet.inject_fault("tx-0-0", 100.0, 900.0)
        fleet.inject_fault("tx-1-1", 100.0, 900.0)
        detector = FaultDetector(grid)
        events = detector.scan_window(fleet, 0.0, 300.0)
        assert {event.element for event in events} == {"tx-0-0", "tx-1-1"}

    def test_restoration_then_new_fault_redetected(self, grid, fleet):
        fleet.inject_fault("tx-0-0", 100.0, 200.0)
        fleet.inject_fault("tx-0-0", 400.0, 500.0)
        detector = FaultDetector(grid)
        events = detector.scan_window(fleet, 0.0, 600.0)
        assert len(events) == 2
