"""Tests for the smart-meter fleet simulation."""

import pytest

from repro.errors import ConfigurationError
from repro.smartgrid.meters import DAY, NOMINAL_VOLTS, SmartMeterFleet
from repro.smartgrid.topology import GridTopology


@pytest.fixture()
def grid():
    return GridTopology.build(
        feeders=1, transformers_per_feeder=2, meters_per_transformer=4
    )


@pytest.fixture()
def fleet(grid):
    return SmartMeterFleet(grid, seed=5)


NOON = DAY * 0.5
EVENING = DAY * 0.8125


class TestLoadModel:
    def test_deterministic(self, grid):
        a = SmartMeterFleet(grid, seed=5).reading("meter-0-0-00", NOON)
        b = SmartMeterFleet(grid, seed=5).reading("meter-0-0-00", NOON)
        assert a == b

    def test_repeated_query_stable(self, fleet):
        first = fleet.true_watts("meter-0-0-00", NOON)
        second = fleet.true_watts("meter-0-0-00", NOON)
        assert first == second

    def test_non_negative_load(self, fleet):
        for meter in fleet.topology.meters:
            for hour in range(0, 24, 3):
                assert fleet.true_watts(meter, hour * 3600.0) >= 0.0

    def test_household_evening_peak(self, grid):
        fleet = SmartMeterFleet(grid, seed=5, industrial_fraction=0.0)
        meter = grid.meters[0]
        night = fleet.true_watts(meter, DAY * 0.125)  # 03:00
        evening = fleet.true_watts(meter, EVENING)    # 19:30
        assert evening > night

    def test_industrial_business_hours(self, grid):
        fleet = SmartMeterFleet(grid, seed=5, industrial_fraction=1.0)
        meter = grid.meters[0]
        working = fleet.true_watts(meter, NOON)
        night = fleet.true_watts(meter, DAY * 0.05)
        assert working > 2 * night

    def test_voltage_near_nominal(self, fleet):
        reading = fleet.reading("meter-0-0-00", NOON)
        assert abs(reading.volts - NOMINAL_VOLTS) < NOMINAL_VOLTS * 0.05

    def test_readings_window_shape(self, fleet):
        readings = fleet.readings_window(0.0, 300.0)
        # 8 meters x 10 samples at 30 s.
        assert len(readings) == 80
        assert len({reading.meter_id for reading in readings}) == 8

    def test_to_record(self, fleet):
        record = fleet.reading("meter-0-0-00", 60.0).to_record()
        assert set(record) == {"meter", "t", "w", "v"}


class TestAggregateConsistency:
    def test_transformer_equals_sum_of_true_loads(self, fleet):
        transformer = "tx-0-0"
        total = fleet.transformer_watts(transformer, NOON)
        summed = sum(
            fleet.true_watts(meter, NOON)
            for meter in fleet.topology.meters_under(transformer)
        )
        assert total == pytest.approx(summed)

    def test_no_theft_no_loss(self, fleet):
        transformer = "tx-0-0"
        reported = sum(
            fleet.reading(meter, NOON).watts
            for meter in fleet.topology.meters_under(transformer)
        )
        measured = fleet.transformer_watts(transformer, NOON)
        assert reported == pytest.approx(measured, rel=1e-9)


class TestTheftInjection:
    def test_reported_drops_after_start(self, fleet):
        meter = "meter-0-0-01"
        fleet.inject_theft(meter, start=1000.0, fraction=0.5)
        before = fleet.reading(meter, 999.0)
        after = fleet.reading(meter, 1000.0)
        true_after = fleet.true_watts(meter, 1000.0)
        assert after.watts == pytest.approx(true_after * 0.5)
        assert before.watts == pytest.approx(fleet.true_watts(meter, 999.0))

    def test_transformer_still_sees_truth(self, fleet):
        meter = "meter-0-0-01"
        fleet.inject_theft(meter, start=0.0, fraction=0.5)
        measured = fleet.transformer_watts("tx-0-0", NOON)
        reported = sum(
            fleet.reading(m, NOON).watts
            for m in fleet.topology.meters_under("tx-0-0")
        )
        assert measured > reported

    def test_ground_truth_listing(self, fleet):
        fleet.inject_theft("meter-0-0-01", start=0.0)
        assert fleet.theft_ground_truth == {"meter-0-0-01"}

    def test_invalid_injections(self, fleet):
        with pytest.raises(ConfigurationError):
            fleet.inject_theft("ghost", 0.0)
        with pytest.raises(ConfigurationError):
            fleet.inject_theft("meter-0-0-00", 0.0, fraction=1.5)


class TestVoltageAndFaults:
    def test_voltage_sag_applied(self, fleet):
        fleet.inject_voltage_event("tx-0-0", 100.0, 200.0, per_unit=0.8)
        in_event = fleet.reading("meter-0-0-00", 150.0)
        outside = fleet.reading("meter-0-0-00", 300.0)
        assert in_event.volts == pytest.approx(NOMINAL_VOLTS * 0.8)
        assert abs(outside.volts - NOMINAL_VOLTS) < NOMINAL_VOLTS * 0.05

    def test_sag_only_affects_that_transformer(self, fleet):
        fleet.inject_voltage_event("tx-0-0", 100.0, 200.0, per_unit=0.8)
        unaffected = fleet.reading("meter-0-1-00", 150.0)
        assert abs(unaffected.volts - NOMINAL_VOLTS) < NOMINAL_VOLTS * 0.05

    def test_unknown_transformer_rejected(self, fleet):
        with pytest.raises(ConfigurationError):
            fleet.inject_voltage_event("ghost", 0.0, 1.0, 0.8)

    def test_fault_blacks_out_subtree(self, fleet):
        fleet.inject_fault("tx-0-1", 100.0, 200.0)
        dark = fleet.reading("meter-0-1-00", 150.0)
        lit = fleet.reading("meter-0-0-00", 150.0)
        assert dark.watts == 0.0 and dark.volts == 0.0
        assert lit.watts > 0.0

    def test_fault_ends(self, fleet):
        fleet.inject_fault("tx-0-1", 100.0, 200.0)
        restored = fleet.reading("meter-0-1-00", 200.0)
        assert restored.volts > 0.0

    def test_fault_removes_load_from_transformer(self, fleet):
        before = fleet.transformer_watts("tx-0-1", 150.0)
        fleet.inject_fault("tx-0-1", 100.0, 200.0)
        during = fleet.transformer_watts("tx-0-1", 150.0)
        assert before > 0.0
        assert during == 0.0
