"""Property tests on smart-grid invariants."""

from hypothesis import given, settings, strategies as st

from repro.smartgrid.meters import SmartMeterFleet
from repro.smartgrid.topology import GridTopology

topology_shapes = st.tuples(
    st.integers(1, 3),  # feeders
    st.integers(1, 3),  # transformers per feeder
    st.integers(1, 5),  # meters per transformer
)


class TestTopologyProperties:
    @settings(max_examples=25, deadline=None)
    @given(topology_shapes)
    def test_meter_partition(self, shape):
        """Transformers partition the meter set exactly."""
        feeders, transformers, meters = shape
        grid = GridTopology.build(feeders, transformers, meters)
        seen = []
        for transformer in grid.transformers:
            seen.extend(grid.meters_under(transformer))
        assert sorted(seen) == grid.meters

    @settings(max_examples=25, deadline=None)
    @given(topology_shapes)
    def test_paths_always_go_through_hierarchy(self, shape):
        grid = GridTopology.build(*shape)
        for meter in grid.meters:
            path = grid.path_to(meter)
            kinds = [grid.kind_of(element) for element in path]
            assert kinds == ["substation", "feeder", "transformer", "meter"]

    @settings(max_examples=20, deadline=None)
    @given(topology_shapes, st.data())
    def test_common_ancestor_contains_all(self, shape, data):
        grid = GridTopology.build(*shape)
        chosen = data.draw(
            st.lists(st.sampled_from(grid.meters), min_size=1, max_size=5)
        )
        ancestor = grid.deepest_common_ancestor(chosen)
        covered = set(grid.meters_under(ancestor)) or {ancestor}
        assert set(chosen) <= covered


class TestFleetProperties:
    @settings(max_examples=15, deadline=None)
    @given(
        st.integers(0, 1000),
        st.floats(min_value=0.0, max_value=86400.0 * 2,
                  allow_nan=False, allow_infinity=False),
    )
    def test_aggregate_consistency_property(self, seed, timestamp):
        """Transformer measurement equals the sum of true meter loads,
        for every seed and instant."""
        grid = GridTopology.build(1, 2, 3)
        fleet = SmartMeterFleet(grid, seed=seed)
        for transformer in grid.transformers:
            total = fleet.transformer_watts(transformer, timestamp)
            summed = sum(
                fleet.true_watts(meter, timestamp)
                for meter in grid.meters_under(transformer)
            )
            assert abs(total - summed) < 1e-6

    @settings(max_examples=15, deadline=None)
    @given(st.integers(0, 1000))
    def test_loads_always_non_negative(self, seed):
        grid = GridTopology.build(1, 1, 4)
        fleet = SmartMeterFleet(grid, seed=seed)
        for meter in grid.meters:
            for hour in (0, 6, 12, 18, 23):
                assert fleet.true_watts(meter, hour * 3600.0) >= 0.0
