"""Tests for the grid topology."""

import pytest

from repro.errors import ConfigurationError
from repro.smartgrid.topology import GridTopology


@pytest.fixture()
def grid():
    return GridTopology.build(
        feeders=2, transformers_per_feeder=2, meters_per_transformer=3
    )


class TestConstruction:
    def test_regular_build_counts(self, grid):
        assert len(grid.feeders) == 2
        assert len(grid.transformers) == 4
        assert len(grid.meters) == 12

    def test_duplicate_rejected(self, grid):
        with pytest.raises(ConfigurationError):
            grid.add_feeder("feeder-0")

    def test_unknown_parent_rejected(self):
        topology = GridTopology()
        with pytest.raises(ConfigurationError):
            topology.add_transformer("tx", "no-such-feeder")

    def test_kind_validation(self, grid):
        with pytest.raises(ConfigurationError):
            grid.add_meter("m", "feeder-0")  # meters attach to transformers
        with pytest.raises(ConfigurationError):
            grid.add_transformer("t", "tx-0-0")

    def test_kind_of_unknown(self, grid):
        with pytest.raises(ConfigurationError):
            grid.kind_of("ghost")


class TestQueries:
    def test_parent_chain(self, grid):
        meter = "meter-0-1-00"
        assert grid.transformer_of(meter) == "tx-0-1"
        assert grid.parent_of("tx-0-1") == "feeder-0"
        assert grid.parent_of("feeder-0") == grid.substation
        assert grid.parent_of(grid.substation) is None

    def test_meters_under_transformer(self, grid):
        meters = grid.meters_under("tx-1-0")
        assert len(meters) == 3
        assert all(meter.startswith("meter-1-0-") for meter in meters)

    def test_meters_under_feeder(self, grid):
        assert len(grid.meters_under("feeder-0")) == 6

    def test_path_to(self, grid):
        path = grid.path_to("meter-1-1-02")
        assert path == [grid.substation, "feeder-1", "tx-1-1", "meter-1-1-02"]

    def test_transformer_of_rejects_non_meter(self, grid):
        with pytest.raises(ConfigurationError):
            grid.transformer_of("tx-0-0")


class TestCommonAncestor:
    def test_same_transformer(self, grid):
        assert (
            grid.deepest_common_ancestor(["meter-0-0-00", "meter-0-0-01"])
            == "tx-0-0"
        )

    def test_same_feeder(self, grid):
        assert (
            grid.deepest_common_ancestor(["meter-0-0-00", "meter-0-1-00"])
            == "feeder-0"
        )

    def test_cross_feeder(self, grid):
        assert (
            grid.deepest_common_ancestor(["meter-0-0-00", "meter-1-0-00"])
            == grid.substation
        )

    def test_single_element(self, grid):
        assert grid.deepest_common_ancestor(["meter-0-0-00"]) == "meter-0-0-00"

    def test_empty_rejected(self, grid):
        with pytest.raises(ConfigurationError):
            grid.deepest_common_ancestor([])
