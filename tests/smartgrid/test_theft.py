"""Tests for power-theft detection."""

import pytest

from repro.errors import ConfigurationError
from repro.sgx.platform import SgxPlatform
from repro.smartgrid.meters import SmartMeterFleet
from repro.smartgrid.theft import TheftDetector
from repro.smartgrid.topology import GridTopology

HOUR = 3600.0


def make_world(seed=5, theft_meter=None, fraction=0.45):
    grid = GridTopology.build(
        feeders=1, transformers_per_feeder=3, meters_per_transformer=5
    )
    fleet = SmartMeterFleet(grid, seed=seed, interval=60.0)
    if theft_meter is not None:
        fleet.inject_theft(theft_meter, start=1 * HOUR, fraction=fraction)
    detector = TheftDetector(grid, interval=60.0, bucket_seconds=900.0)
    # Baseline: hour 0-1 (pre-theft); detection window: hour 1-2.
    baseline = fleet.readings_window(0.0, 1 * HOUR)
    window = fleet.readings_window(1 * HOUR, 2 * HOUR)
    transformer_measurements = fleet.transformer_window(1 * HOUR, 2 * HOUR)
    return grid, fleet, detector, baseline, window, transformer_measurements


class TestDetection:
    def test_clean_grid_not_flagged(self):
        _grid, _fleet, detector, baseline, window, measured = make_world()
        report = detector.detect(window, measured, baseline)
        assert report.flagged_transformers == []
        assert report.suspect_meters() == set()

    def test_theft_flags_right_transformer(self):
        _grid, _fleet, detector, baseline, window, measured = make_world(
            theft_meter="meter-0-1-02"
        )
        report = detector.detect(window, measured, baseline)
        assert report.flagged_transformers == ["tx-0-1"]

    def test_suspect_is_the_thief(self):
        _grid, fleet, detector, baseline, window, measured = make_world(
            theft_meter="meter-0-1-02"
        )
        report = detector.detect(window, measured, baseline)
        assert report.suspects["tx-0-1"] == "meter-0-1-02"
        precision, recall = report.score(fleet.theft_ground_truth)
        assert precision == 1.0
        assert recall == 1.0

    def test_loss_fraction_tracks_theft_size(self):
        _grid, _fleet, detector, baseline, window, measured = make_world(
            theft_meter="meter-0-1-02", fraction=0.45
        )
        report = detector.detect(window, measured, baseline)
        # One of five similar meters hides 45%: expect roughly 5-15% loss.
        assert 0.03 < report.loss_fraction["tx-0-1"] < 0.35

    def test_small_theft_below_threshold_not_flagged(self):
        _grid, _fleet, detector, baseline, window, measured = make_world(
            theft_meter="meter-0-1-02", fraction=0.05
        )
        report = detector.detect(window, measured, baseline)
        assert "tx-0-1" not in report.flagged_transformers

    def test_empty_readings_rejected(self):
        _grid, _fleet, detector, _baseline, _window, measured = make_world()
        with pytest.raises(ConfigurationError):
            detector.detect([], measured)

    def test_score_with_no_ground_truth(self):
        _grid, _fleet, detector, baseline, window, measured = make_world()
        report = detector.detect(window, measured, baseline)
        assert report.score(set()) == (1.0, 1.0)

    def test_without_baseline_only_transformer_flags(self):
        _grid, _fleet, detector, _baseline, window, measured = make_world(
            theft_meter="meter-0-1-02"
        )
        report = detector.detect(window, measured)
        assert report.flagged_transformers == ["tx-0-1"]
        assert report.suspects == {}


class TestSecureExecution:
    def test_secure_mapreduce_path_matches_plain(self):
        grid, fleet, _d, baseline, window, measured = make_world(
            theft_meter="meter-0-1-02"
        )
        plain_detector = TheftDetector(grid, interval=60.0)
        platform = SgxPlatform(seed=19, quoting_key_bits=512)
        secure_detector = TheftDetector(
            grid, interval=60.0, platform=platform, mappers=3, reducers=2
        )
        plain_report = plain_detector.detect(window, measured, baseline)
        secure_report = secure_detector.detect(window, measured, baseline)
        assert (
            secure_report.flagged_transformers
            == plain_report.flagged_transformers
        )
        assert secure_report.suspects == plain_report.suspects
        for transformer, loss in plain_report.loss_fraction.items():
            assert secure_report.loss_fraction[transformer] == pytest.approx(loss)
