"""End-to-end tests for the multi-tenant secure front door."""

import pytest

from repro.errors import ConfigurationError, IntegrityError
from repro.service import (
    FrontDoorConfig,
    SecureFrontDoor,
    TenantQuota,
)
from repro.sim.events import Environment

from tests.service.oracle import FrontDoorOracle


def _door(seed=11, **config):
    env = Environment()
    door = SecureFrontDoor(
        env, seed=seed, config=FrontDoorConfig(**config)
    )
    return env, door


def _records(count=24):
    return [("row-%03d" % i).encode() for i in range(count)]


def _map(record):
    return [(record.split("-")[0], 1)]


def _reduce(key, values):
    return sum(values)


class TestResourceModel:
    def test_register_is_idempotent(self):
        _env, door = _door()
        door.register_tenant("acme")
        count_before, head_before = door.audit_head("acme")
        door.register_tenant("acme")
        assert door.audit_head("acme") == (count_before, head_before)
        assert door.tenants == ["acme"]

    def test_unregistered_tenant_is_refused(self):
        _env, door = _door()
        with pytest.raises(ConfigurationError):
            door.upload_dataset("ghost", "d", [b"x"])
        with pytest.raises(ConfigurationError):
            door.stats("ghost")

    def test_dataset_round_trip(self):
        env, door = _door()
        door.register_tenant("acme", rate=100.0, burst=50.0)
        receipt = door.upload_dataset("acme", "sales", _records())
        assert receipt.ok
        assert receipt.detail["records"] == 24
        assert receipt.virtual_ms > 0
        env.run(until=env.now + 0.1)
        assert door.open_dataset("acme", "sales") == _records()
        with pytest.raises(ConfigurationError):
            door.open_dataset("acme", "missing")

    def test_job_runs_over_a_sealed_dataset(self):
        env, door = _door()
        door.register_tenant("acme", rate=100.0, burst=50.0)
        door.upload_dataset("acme", "sales", _records())
        env.run(until=env.now + 0.1)
        receipt = door.submit_job(
            "acme", "wordcount", "sales", _map, _reduce
        )
        assert receipt.ok
        assert receipt.detail["keys"] == 1
        assert door.jobs["acme"]["wordcount"]["result"] == {"'row'": 24}

    def test_job_against_missing_dataset_is_an_audited_error(self):
        env, door = _door()
        door.register_tenant("acme", rate=100.0, burst=50.0)
        receipt = door.submit_job(
            "acme", "wordcount", "missing", _map, _reduce
        )
        assert receipt.outcome == "error"
        assert door.failed["acme"] == 1
        # The failed job's quota charge was rolled back.
        assert door.quota.usage["acme"]["jobs"] == 0
        entries = FrontDoorOracle(
            door._root_key.key_bytes
        ).verify_tenant(door, "acme")
        assert entries[-1].outcome == "error"
        assert entries[-1].detail == "ConfigurationError"

    def test_subscribe_and_publish_route_through_scbr(self):
        env, door = _door()
        door.register_tenant("pub", rate=100.0, burst=50.0)
        door.register_tenant("sub", rate=100.0, burst=50.0)
        receipt = door.subscribe("sub", "s-1", [("price", ">", 10)])
        assert receipt.ok
        hit = door.publish("pub", {"price": 20})
        miss = door.publish("pub", {"price": 5})
        assert hit.detail["notifications"] == 1
        assert miss.detail["notifications"] == 0

    def test_streams_commit_windows(self):
        from repro.smartgrid.meters import SmartMeterFleet
        from repro.smartgrid.topology import GridTopology

        env, door = _door(stream_window={
            "kind": "tumbling", "size": 60.0, "lateness": 30.0,
        })
        door.register_tenant("acme", rate=100.0, burst=50.0)
        grid = GridTopology.build(2, 2, 3)
        fleet = SmartMeterFleet(grid, seed=7)
        assert door.attach_stream("acme", "m", fleet, grid.meters).ok
        receipt = door.stream_round("acme", "m", 0.0, 120.0)
        assert receipt.ok
        assert receipt.detail["committed"] > 0
        missing = door.stream_round("acme", "nope", 0.0, 60.0)
        assert missing.outcome == "error"


class TestAdmissionAndQuota:
    def test_overload_is_shed_and_audited(self):
        env, door = _door()
        door.register_tenant("acme", rate=1.0, burst=2.0)
        outcomes = [
            door.upload_dataset("acme", "d%d" % i, [b"x"]).outcome
            for i in range(6)
        ]
        assert outcomes.count("ok") == 2
        assert outcomes.count("shed") == 4
        oracle = FrontDoorOracle(door._root_key.key_bytes)
        entries = oracle.verify_tenant(door, "acme")
        assert [e.outcome for e in entries[1:]] == outcomes
        oracle.assert_books_balance(door)

    def test_quota_exhaustion_is_counted_not_silent(self):
        env, door = _door()
        door.register_tenant(
            "acme", quota=TenantQuota(sealed_bytes=40),
            rate=100.0, burst=50.0,
        )
        assert door.upload_dataset("acme", "a", [b"x" * 30]).ok
        rejected = door.upload_dataset("acme", "b", [b"x" * 30])
        assert rejected.outcome == "quota"
        assert door.stats("acme")["quota_rejected"] == 1
        oracle = FrontDoorOracle(door._root_key.key_bytes)
        entries = oracle.verify_tenant(door, "acme")
        assert entries[-1].outcome == "quota"
        oracle.assert_books_balance(door)

    def test_books_balance_across_mixed_outcomes(self):
        env, door = _door()
        door.register_tenant(
            "acme", quota=TenantQuota(jobs=1), rate=3.0, burst=3.0,
        )
        door.upload_dataset("acme", "d", _records(8))
        env.run(until=env.now + 1.0)
        # Failed jobs release their quota charge, so the error first...
        door.submit_job("acme", "j0", "missing", _map, _reduce)
        door.submit_job("acme", "j1", "d", _map, _reduce)
        # ...and only the held job counts against the jobs=1 quota.
        door.submit_job("acme", "j2", "d", _map, _reduce)   # quota
        for i in range(5):
            door.publish("acme", {"price": i})   # some shed
        totals = FrontDoorOracle(
            door._root_key.key_bytes
        ).assert_books_balance(door)
        assert totals["offered"] == 9
        assert totals["quota_rejected"] == 1
        assert totals["failed"] == 1
        assert totals["shed"] > 0


class TestAuditSurface:
    def test_in_enclave_verification_matches_oracle(self):
        env, door = _door()
        door.register_tenant("acme", rate=100.0, burst=50.0)
        door.upload_dataset("acme", "d", [b"x"])
        assert door.verify_audit("acme") == 2
        oracle = FrontDoorOracle(door._root_key.key_bytes)
        assert len(oracle.verify_tenant(door, "acme")) == 2

    def test_host_tampering_fails_in_enclave_verification(self):
        env, door = _door()
        door.register_tenant("acme", rate=100.0, burst=50.0)
        door.upload_dataset("acme", "d", [b"x"])
        blob = door.audit_blobs["acme"][1]
        door.audit_blobs["acme"][1] = blob[:-1] + bytes(
            [blob[-1] ^ 0x01]
        )
        with pytest.raises(IntegrityError):
            door.verify_audit("acme")

    def test_host_truncation_fails_in_enclave_verification(self):
        env, door = _door()
        door.register_tenant("acme", rate=100.0, burst=50.0)
        door.upload_dataset("acme", "d", [b"x"])
        door.audit_blobs["acme"].pop()
        with pytest.raises(IntegrityError):
            door.verify_audit("acme")

    def test_key_fingerprints_differ_per_tenant(self):
        _env, door = _door()
        door.register_tenant("a")
        door.register_tenant("b")
        fp_a = door.gateway.ecall("key_fingerprints", "a")
        fp_b = door.gateway.ecall("key_fingerprints", "b")
        assert fp_a["audit"] != fp_b["audit"]
        assert fp_a["dataset"] != fp_b["dataset"]
        assert fp_a["audit"] != fp_a["dataset"]

    def test_billing_matches_completed_requests(self):
        env, door = _door()
        door.register_tenant("acme", rate=100.0, burst=50.0)
        for i in range(4):
            door.upload_dataset("acme", "d%d" % i, [b"x"])
        oracle = FrontDoorOracle(door._root_key.key_bytes)
        report = oracle.assert_billing_consistent(door)
        assert "acme" in report.lines
