"""The operator-side conformance oracle for the secure front door.

Models what an auditor with the service root key -- but *no* access to
the gateway enclave -- can verify offline from the host-visible
artifacts alone: exported sealed audit chains, attested heads, sealed
dataset blobs, and the door's plaintext books.

The oracle re-derives every tenant key independently through the
public derivation schedule (:mod:`repro.service.gateway`), so a bug
that made the enclave derive keys differently from the spec -- or
leak one tenant's material into another's hierarchy -- shows up as a
verification failure here even if the door is self-consistent.

Reused by the isolation conformance suite, the chaos robustness suite,
and the E10 benchmark's audit-verification scenario.
"""

from repro.errors import IntegrityError
from repro.crypto.aead import SealedBatch
from repro.service.audit import chain_digest, verify_chain
from repro.service.gateway import (
    AUDIT_KEY_LABEL,
    DATASET_KEY_LABEL,
    dataset_aad,
    derive_purpose_key,
    derive_tenant_root,
)


class FrontDoorOracle:
    """Independent verification against a front door's exported state."""

    def __init__(self, root_key_bytes):
        self.root_key_bytes = bytes(root_key_bytes)

    # -- independent key derivation ------------------------------------

    def tenant_root(self, tenant_id):
        return derive_tenant_root(self.root_key_bytes, tenant_id)

    def audit_key(self, tenant_id):
        return derive_purpose_key(
            self.tenant_root(tenant_id), AUDIT_KEY_LABEL
        )

    def dataset_key(self, tenant_id):
        return derive_purpose_key(
            self.tenant_root(tenant_id), DATASET_KEY_LABEL
        )

    # -- audit chain verification --------------------------------------

    def verify_tenant(self, door, tenant_id):
        """Verify one tenant's exported chain against its attested head.

        Uses only host-visible state plus independently derived keys;
        returns the decoded entries.
        """
        blobs = door.export_audit(tenant_id)
        count, head_hex = door.audit_head(tenant_id)
        return verify_chain(
            self.audit_key(tenant_id), tenant_id, blobs,
            count, bytes.fromhex(head_hex),
        )

    def audit_digest(self, door, tenant_id):
        """Hex digest over the sealed chain bytes (determinism diffs)."""
        return chain_digest(door.export_audit(tenant_id))

    # -- cross-tenant isolation ----------------------------------------

    def assert_tenant_isolated(self, door, victim, attacker):
        """No artifact sealed for ``victim`` opens under ``attacker``.

        Tries the attacker's independently derived keys against every
        sealed audit blob and dataset blob of the victim, at the exact
        position each was sealed for; every attempt must fail the AEAD
        tag.  Raises ``AssertionError`` on the first decryption that
        succeeds where the isolation argument says it cannot.
        """
        victim_blobs = door.export_audit(victim)
        count, head_hex = door.audit_head(victim)
        # Whole-chain: the attacker's audit key must not verify the
        # victim's chain even with the victim's own attested head.
        try:
            verify_chain(
                self.audit_key(attacker), victim, victim_blobs,
                count, bytes.fromhex(head_hex),
            )
        except IntegrityError:
            pass
        else:
            raise AssertionError(
                "tenant %r's audit chain verified under %r's key"
                % (victim, attacker)
            )
        # Per-blob: no single entry opens under the attacker's key,
        # even when presented as the attacker's own chain.
        try:
            verify_chain(
                self.audit_key(attacker), attacker, victim_blobs,
                count, bytes.fromhex(head_hex),
            )
        except IntegrityError:
            pass
        else:
            raise AssertionError(
                "tenant %r's audit chain spliced into %r's identity"
                % (victim, attacker)
            )
        # Datasets: every sealed dataset of the victim must refuse the
        # attacker's dataset key (and the attacker's AAD identity).
        for name, blob in door.datasets[victim].items():
            for aad_owner in (victim, attacker):
                try:
                    self.dataset_key(attacker).decrypt_batch(
                        SealedBatch.from_bytes(blob),
                        aad=dataset_aad(aad_owner, name),
                    )
                except IntegrityError:
                    continue
                raise AssertionError(
                    "dataset %r of tenant %r opened under %r's key"
                    % (name, victim, attacker)
                )

    def assert_all_isolated(self, door, tenants=None):
        """Pairwise isolation across every ordered tenant pair."""
        tenants = list(tenants if tenants is not None else door.tenants)
        for victim in tenants:
            for attacker in tenants:
                if victim != attacker:
                    self.assert_tenant_isolated(door, victim, attacker)

    # -- books ----------------------------------------------------------

    def assert_books_balance(self, door):
        """The door-wide and per-tenant accounting identities.

        Every offered request terminates as exactly one of completed,
        shed, quota-rejected, or failed; every terminal outcome (plus
        the registration) is one verified audit entry.  Returns the
        door totals.
        """
        totals = door.check_identity()
        for tenant_id in door.tenants:
            stats = door.stats(tenant_id)
            entries = self.verify_tenant(door, tenant_id)
            assert len(entries) == stats["offered"] + 1, (
                "tenant %r: %d audit entries but %d requests offered"
                % (tenant_id, len(entries), stats["offered"])
            )
            outcomes = {}
            for entry in entries[1:]:
                outcomes[entry.outcome] = outcomes.get(entry.outcome, 0) + 1
            assert outcomes.get("ok", 0) == stats["completed"]
            assert outcomes.get("shed", 0) == stats["shed"]
            assert outcomes.get("quota", 0) == stats["quota_rejected"]
            assert outcomes.get("error", 0) == stats["failed"]
        return totals

    def assert_billing_consistent(self, door):
        """Ledger == QoS counters == billing lines, exactly."""
        report = door.billing.report()
        for tenant_id in door.tenants:
            metrics = door.monitor.metrics[tenant_id]
            assert metrics.events_handled == door.completed[tenant_id], (
                "tenant %r: qos handled %d but door completed %d"
                % (tenant_id, metrics.events_handled,
                   door.completed[tenant_id])
            )
            if door.completed[tenant_id]:
                assert tenant_id in report.lines
        return report
