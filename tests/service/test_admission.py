"""Token-bucket admission control: determinism and accounting."""

import pytest

from repro.errors import ConfigurationError
from repro.service.admission import AdmissionController, TokenBucket
from repro import telemetry


class TestTokenBucket:
    def test_burst_then_starvation(self):
        bucket = TokenBucket(rate=1.0, burst=3.0)
        assert [bucket.take(0.0) for _ in range(4)] == [
            True, True, True, False
        ]

    def test_refill_is_continuous(self):
        bucket = TokenBucket(rate=2.0, burst=2.0)
        assert bucket.take(0.0) and bucket.take(0.0)
        assert not bucket.take(0.0)
        assert not bucket.take(0.25)   # only 0.5 tokens back
        assert bucket.take(0.5)        # 1.0 token back
        assert bucket.available(10.0) == 2.0   # capped at burst

    def test_fractional_cost(self):
        bucket = TokenBucket(rate=1.0, burst=1.0)
        assert bucket.take(0.0, cost=0.5)
        assert bucket.take(0.0, cost=0.5)
        assert not bucket.take(0.0, cost=0.5)

    def test_time_going_backwards_is_a_config_error(self):
        bucket = TokenBucket(rate=1.0, burst=1.0)
        bucket.take(5.0)
        with pytest.raises(ConfigurationError):
            bucket.take(4.0)

    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            TokenBucket(rate=0.0, burst=1.0)
        with pytest.raises(ConfigurationError):
            TokenBucket(rate=1.0, burst=-1.0)
        bucket = TokenBucket(rate=1.0, burst=1.0)
        with pytest.raises(ConfigurationError):
            bucket.take(0.0, cost=-1.0)


def _drive(controller, times):
    controller.register("acme", rate=2.0, burst=2.0)
    return [controller.admit("acme", t) for t in times]


class TestAdmissionController:
    def test_accounting_identity(self):
        controller = AdmissionController()
        decisions = _drive(controller, [0.0, 0.0, 0.0, 1.0, 1.0, 1.0])
        counts = controller.counts("acme")
        assert counts["offered"] == 6
        assert counts["admitted"] == sum(decisions)
        assert counts["shed"] == 6 - sum(decisions)
        totals = controller.check_identity()
        assert totals["offered"] == totals["admitted"] + totals["shed"]

    def test_decisions_are_deterministic(self):
        times = [0.1 * i for i in range(40)]
        first = _drive(AdmissionController(), times)
        second = _drive(AdmissionController(), times)
        assert first == second
        assert True in first and False in first

    def test_register_is_idempotent(self):
        controller = AdmissionController()
        bucket = controller.register("acme", rate=5.0, burst=1.0)
        assert controller.register("acme", rate=99.0) is bucket
        assert bucket.rate == 5.0

    def test_unknown_tenant_rejected(self):
        controller = AdmissionController()
        with pytest.raises(ConfigurationError):
            controller.admit("ghost", 0.0)

    def test_per_tenant_buckets_are_independent(self):
        controller = AdmissionController(
            default_rate=1.0, default_burst=1.0
        )
        controller.register("a", now=0.0)
        controller.register("b", now=0.0)
        assert controller.admit("a", 0.0)
        assert not controller.admit("a", 0.0)
        assert controller.admit("b", 0.0)   # b's bucket untouched by a

    def test_identity_counts_identical_with_telemetry_on(self):
        times = [0.05 * i for i in range(30)]
        off = AdmissionController()
        _drive(off, times)
        with telemetry.enabled():
            on = AdmissionController()
            _drive(on, times)
            snapshot = telemetry.default_registry().snapshot()
        assert on.counts("acme") == off.counts("acme")
        counters = snapshot["counters"]
        assert counters["service.offered{tenant=acme}"] == 30
        assert (counters["service.admitted{tenant=acme}"]
                == on.counts("acme")["admitted"])
        assert (counters["service.shed{tenant=acme}"]
                == on.counts("acme")["shed"])

    def test_imbalanced_books_raise(self):
        controller = AdmissionController()
        controller.register("acme")
        controller.admit("acme", 0.0)
        controller.offered["acme"] += 1   # simulate a lost decision
        with pytest.raises(ConfigurationError):
            controller.check_identity()
