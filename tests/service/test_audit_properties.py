"""Property tests for the sealed audit hash chain.

The chain's whole job is to fail closed under a hostile host: any
mutation, reorder, truncation, or cross-tenant splice of the stored
blobs must surface as :class:`~repro.errors.IntegrityError` when the
chain is verified against its attested head.  Hypothesis drives those
four tamper families over randomly shaped chains, plus the round-trip
and determinism properties the benchmarks lean on.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigurationError, IntegrityError
from repro.crypto.aead import AeadKey
from repro.service.audit import (
    MAX_DETAIL_BYTES,
    AuditChain,
    AuditEntry,
    chain_digest,
    genesis_hash,
    open_entry,
    seal_entry,
    verify_chain,
)

_KEY_A = AeadKey(b"\xa1" * 32)
_KEY_B = AeadKey(b"\xb2" * 32)

_actions = st.sampled_from(
    ["dataset.upload", "job.submit", "scbr.subscribe", "stream.round"]
)
_outcomes = st.sampled_from(["ok", "shed", "quota", "error"])
_details = st.text(max_size=64)

_entries = st.builds(
    lambda vtime, action, outcome, detail: (vtime, action, outcome, detail),
    st.floats(min_value=0.0, max_value=1e6, allow_nan=False,
              allow_infinity=False),
    _actions,
    _outcomes,
    _details,
)


def _build_chain(key, tenant_id, specs):
    chain = AuditChain(key, tenant_id)
    blobs = [
        chain.append(vtime, action, "res-%d" % i, outcome, detail)
        for i, (vtime, action, outcome, detail) in enumerate(specs)
    ]
    return chain, blobs


class TestChainProperties:
    @settings(max_examples=30)
    @given(st.lists(_entries, min_size=1, max_size=8))
    def test_round_trip(self, specs):
        chain, blobs = _build_chain(_KEY_A, "acme", specs)
        entries = verify_chain(
            _KEY_A, "acme", blobs, chain.count, chain.head
        )
        assert [e.action for e in entries] == [s[1] for s in specs]
        assert [e.outcome for e in entries] == [s[2] for s in specs]
        assert [e.seq for e in entries] == list(range(len(specs)))

    @settings(max_examples=30)
    @given(
        st.lists(_entries, min_size=1, max_size=8),
        st.data(),
    )
    def test_single_byte_mutation_fails_closed(self, specs, data):
        chain, blobs = _build_chain(_KEY_A, "acme", specs)
        index = data.draw(
            st.integers(min_value=0, max_value=len(blobs) - 1)
        )
        offset = data.draw(
            st.integers(min_value=0, max_value=len(blobs[index]) - 1)
        )
        tampered = list(blobs)
        tampered[index] = (
            tampered[index][:offset]
            + bytes([tampered[index][offset] ^ 0x01])
            + tampered[index][offset + 1:]
        )
        with pytest.raises(IntegrityError):
            verify_chain(_KEY_A, "acme", tampered, chain.count, chain.head)

    @settings(max_examples=30)
    @given(st.lists(_entries, min_size=2, max_size=8), st.data())
    def test_reorder_fails_closed(self, specs, data):
        chain, blobs = _build_chain(_KEY_A, "acme", specs)
        i = data.draw(st.integers(min_value=0, max_value=len(blobs) - 2))
        j = data.draw(
            st.integers(min_value=i + 1, max_value=len(blobs) - 1)
        )
        swapped = list(blobs)
        swapped[i], swapped[j] = swapped[j], swapped[i]
        with pytest.raises(IntegrityError):
            verify_chain(_KEY_A, "acme", swapped, chain.count, chain.head)

    @settings(max_examples=30)
    @given(st.lists(_entries, min_size=1, max_size=8), st.data())
    def test_truncation_fails_closed(self, specs, data):
        """Dropping any suffix is caught by the attested head, even
        though every surviving blob still verifies individually."""
        chain, blobs = _build_chain(_KEY_A, "acme", specs)
        keep = data.draw(
            st.integers(min_value=0, max_value=len(blobs) - 1)
        )
        truncated = blobs[:keep]
        with pytest.raises(IntegrityError):
            verify_chain(
                _KEY_A, "acme", truncated, chain.count, chain.head
            )
        # A host lying about the count to match its truncation is
        # still caught: the head hash covers the dropped suffix.
        if keep:
            with pytest.raises(IntegrityError):
                verify_chain(_KEY_A, "acme", truncated, keep, chain.head)

    @settings(max_examples=20)
    @given(
        st.lists(_entries, min_size=1, max_size=6),
        st.lists(_entries, min_size=1, max_size=6),
        st.data(),
    )
    def test_cross_tenant_splice_fails_closed(self, specs_a, specs_b,
                                              data):
        """Grafting tenant B's entries into tenant A's chain fails even
        when both chains are sealed under the *same* key -- the AAD
        (tenant id, position, prefix hash) alone refuses the splice."""
        chain_a, blobs_a = _build_chain(_KEY_A, "acme", specs_a)
        _chain_b, blobs_b = _build_chain(_KEY_A, "globex", specs_b)
        index = data.draw(
            st.integers(min_value=0, max_value=len(blobs_a) - 1)
        )
        donor = data.draw(
            st.integers(min_value=0, max_value=len(blobs_b) - 1)
        )
        spliced = list(blobs_a)
        spliced[index] = blobs_b[donor]
        with pytest.raises(IntegrityError):
            verify_chain(
                _KEY_A, "acme", spliced, chain_a.count, chain_a.head
            )

    @settings(max_examples=20)
    @given(st.lists(_entries, min_size=1, max_size=6))
    def test_foreign_key_fails_closed(self, specs):
        chain, blobs = _build_chain(_KEY_A, "acme", specs)
        with pytest.raises(IntegrityError):
            verify_chain(_KEY_B, "acme", blobs, chain.count, chain.head)

    @settings(max_examples=20)
    @given(st.lists(_entries, min_size=1, max_size=8))
    def test_deterministic_blobs(self, specs):
        """Same workload, same key -> byte-identical chains (what the
        chaos determinism gate relies on)."""
        _, blobs_1 = _build_chain(_KEY_A, "acme", specs)
        _, blobs_2 = _build_chain(_KEY_A, "acme", specs)
        assert blobs_1 == blobs_2
        assert chain_digest(blobs_1) == chain_digest(blobs_2)

    @settings(max_examples=20)
    @given(st.lists(_entries, min_size=1, max_size=8))
    def test_distinct_nonces(self, specs):
        """No two entries in a chain ever share a nonce (keystream
        reuse would break confidentiality outright)."""
        from repro.crypto.aead import Ciphertext

        _, blobs = _build_chain(_KEY_A, "acme", specs)
        nonces = [Ciphertext.from_bytes(b).nonce for b in blobs]
        assert len(set(nonces)) == len(nonces)


class TestEntryEdges:
    def test_empty_entry_round_trips(self):
        entry = AuditEntry(
            seq=0, vtime=0.0, action="", resource="", outcome="",
            detail="",
        )
        prev = genesis_hash("t")
        blob, head = seal_entry(_KEY_A, "t", entry, prev)
        opened, head_2 = open_entry(_KEY_A, "t", 0, prev, blob)
        assert opened == entry
        assert head == head_2

    def test_max_size_detail_round_trips(self):
        detail = "x" * MAX_DETAIL_BYTES
        entry = AuditEntry(
            seq=0, vtime=1.5, action="a", resource="r", outcome="ok",
            detail=detail,
        )
        prev = genesis_hash("t")
        blob, _head = seal_entry(_KEY_A, "t", entry, prev)
        opened, _ = open_entry(_KEY_A, "t", 0, prev, blob)
        assert opened.detail == detail

    def test_oversize_detail_rejected(self):
        entry = AuditEntry(
            seq=0, vtime=0.0, action="a", resource="r", outcome="ok",
            detail="x" * (MAX_DETAIL_BYTES + 1),
        )
        with pytest.raises(ConfigurationError):
            entry.canonical()

    def test_wrong_position_fails(self):
        entry = AuditEntry(
            seq=0, vtime=0.0, action="a", resource="r", outcome="ok"
        )
        prev = genesis_hash("t")
        blob, _ = seal_entry(_KEY_A, "t", entry, prev)
        with pytest.raises(IntegrityError):
            open_entry(_KEY_A, "t", 1, prev, blob)

    def test_malformed_canonical_fails_closed(self):
        with pytest.raises(IntegrityError):
            AuditEntry.from_canonical(b"not json at all")
        with pytest.raises(IntegrityError):
            AuditEntry.from_canonical(b'{"seq": 0}')

    def test_head_state_round_trip(self):
        chain = AuditChain(_KEY_A, "acme")
        chain.append(0.0, "a", "r", "ok")
        chain.seen.add("req-1")
        state = chain.head_state()
        restored = AuditChain(_KEY_A, "acme")
        restored.restore_head(state)
        assert restored.count == chain.count
        assert restored.head == chain.head
        assert restored.seen == {"req-1"}

    def test_empty_chain_verifies(self):
        chain = AuditChain(_KEY_A, "acme")
        assert verify_chain(
            _KEY_A, "acme", [], chain.count, chain.head
        ) == []
