"""Quota ledger and tenant billing: counted rejections, exact books."""

import pytest

from repro.errors import (
    CapacityError,
    ConfigurationError,
    QuotaExceededError,
)
from repro.microservices.qos import QosMonitor
from repro.service.quota import (
    QUOTA_KINDS,
    QuotaLedger,
    TenantBilling,
    TenantQuota,
)
from repro.sim.events import Environment
from repro import telemetry


class TestTenantQuota:
    def test_limits_by_kind(self):
        quota = TenantQuota(sealed_bytes=100, jobs=2)
        assert quota.limit("sealed_bytes") == 100
        assert quota.limit("jobs") == 2
        with pytest.raises(ConfigurationError):
            quota.limit("gpus")


class TestQuotaLedger:
    def test_charge_release_cycle(self):
        ledger = QuotaLedger(TenantQuota(jobs=2))
        ledger.register("acme")
        assert ledger.charge("acme", "jobs") == 1
        assert ledger.charge("acme", "jobs") == 2
        with pytest.raises(QuotaExceededError):
            ledger.charge("acme", "jobs")
        assert ledger.release("acme", "jobs") == 1
        assert ledger.charge("acme", "jobs") == 2

    def test_quota_error_is_transient_capacity(self):
        """Retry machinery must classify quota pressure as capacity,
        never as evidence of attack."""
        assert issubclass(QuotaExceededError, CapacityError)

    def test_rejections_are_counted(self):
        ledger = QuotaLedger(TenantQuota(jobs=1, streams=1))
        ledger.register("acme")
        ledger.charge("acme", "jobs")
        for _ in range(3):
            with pytest.raises(QuotaExceededError):
                ledger.charge("acme", "jobs")
        ledger.charge("acme", "streams")
        with pytest.raises(QuotaExceededError):
            ledger.charge("acme", "streams")
        assert ledger.rejected["acme"]["jobs"] == 3
        assert ledger.rejected["acme"]["streams"] == 1
        assert ledger.rejected_total("acme") == 4

    def test_per_tenant_quotas_override_default(self):
        ledger = QuotaLedger(TenantQuota(jobs=1))
        ledger.register("small")
        ledger.register("big", TenantQuota(jobs=100))
        ledger.charge("small", "jobs")
        with pytest.raises(QuotaExceededError):
            ledger.charge("small", "jobs")
        for _ in range(50):
            ledger.charge("big", "jobs")

    def test_release_never_goes_negative(self):
        ledger = QuotaLedger()
        ledger.register("acme")
        assert ledger.release("acme", "jobs", 5) == 0

    def test_unknown_tenant_and_negative_charge(self):
        ledger = QuotaLedger()
        with pytest.raises(ConfigurationError):
            ledger.charge("ghost", "jobs")
        ledger.register("acme")
        with pytest.raises(ConfigurationError):
            ledger.charge("acme", "jobs", -1)

    def test_register_is_idempotent(self):
        ledger = QuotaLedger()
        ledger.register("acme", TenantQuota(jobs=7))
        ledger.charge("acme", "jobs")
        assert ledger.register("acme").jobs == 7
        assert ledger.usage["acme"]["jobs"] == 1

    def test_counts_identical_with_telemetry_on(self):
        def scenario():
            ledger = QuotaLedger(TenantQuota(jobs=1))
            ledger.register("acme")
            ledger.charge("acme", "jobs")
            for _ in range(2):
                with pytest.raises(QuotaExceededError):
                    ledger.charge("acme", "jobs")
            return ledger

        off = scenario()
        with telemetry.enabled():
            on = scenario()
            snapshot = telemetry.default_registry().snapshot()
        assert on.rejected["acme"] == off.rejected["acme"]
        assert on.usage["acme"] == off.usage["acme"]
        counters = snapshot["counters"]
        assert (
            counters["service.quota_rejected{kind=jobs,tenant=acme}"] == 2
        )
        gauges = snapshot["gauges"]
        assert gauges["service.quota_used{kind=jobs,tenant=acme}"] == 1


class TestTenantBilling:
    def _billing(self):
        env = Environment()
        monitor = QosMonitor(env)
        return env, monitor, TenantBilling(monitor)

    def test_observed_requests_price_into_the_report(self):
        _env, monitor, billing = self._billing()
        billing.register("acme")
        billing.register("globex")
        for _ in range(10):
            billing.observe("acme", 0.002)
        for _ in range(5):
            billing.observe("globex", 0.004)
        assert monitor.metrics["acme"].events_handled == 10
        assert monitor.metrics["globex"].events_handled == 5
        report = billing.report(cpu_second_price=1.0)
        assert report.lines["acme"] == pytest.approx(0.020)
        assert report.lines["globex"] == pytest.approx(0.020)
        assert report.total == pytest.approx(0.040)

    def test_tenants_share_the_qos_billing_path(self):
        """Tenants are line items in the same report that prices
        microservices -- one metering code path, not two."""
        from repro.microservices.qos import ServiceMetrics

        _env, monitor, billing = self._billing()
        billing.register("acme")
        billing.observe("acme", 0.001)
        svc = monitor.metrics.setdefault("svc", ServiceMetrics("svc"))
        svc.observe(0.002, 0.0)
        report = billing.report()
        assert set(report.lines) == {"acme", "svc"}

    def test_counts_identical_with_telemetry_on(self):
        def scenario():
            _env, monitor, billing = self._billing()
            billing.register("acme")
            for _ in range(7):
                billing.observe("acme", 0.001)
            return monitor

        off = scenario()
        with telemetry.enabled():
            on = scenario()
            snapshot = telemetry.default_registry().snapshot()
        assert (on.metrics["acme"].events_handled
                == off.metrics["acme"].events_handled)
        assert (snapshot["counters"]["qos.events_handled{service=acme}"]
                == 7)


def test_quota_kinds_cover_the_resource_model():
    assert set(QUOTA_KINDS) == {
        "sealed_bytes", "jobs", "subscriptions", "streams"
    }
