"""Chaos robustness: crash-mid-request replay with exactly-once audit.

The gateway enclave is killed by seeded chaos before and after the
audit append; every request must still terminate in exactly one
audited outcome, the restored chains must verify against their
attested heads, and two same-seed chaos runs must produce
byte-identical sealed trails and telemetry snapshots (the E10 slice of
the chaos determinism gate).
"""

import json

import pytest

from repro.chaos.injector import ChaosConfig, ChaosInjector
from repro.errors import IntegrityError
from repro.service import FrontDoorConfig, SecureFrontDoor
from repro.service.gateway import GATEWAY_CODE
from repro.sim.events import Environment
from repro import telemetry

from tests.service.oracle import FrontDoorOracle


def _chaos_session(seed, crash_rate=0.2, requests=24):
    """A two-tenant session under seeded gateway crashes."""
    env = Environment()
    chaos = ChaosInjector(
        ChaosConfig(seed=seed, shard_crash_rate=crash_rate)
    )
    door = SecureFrontDoor(env, seed=33, chaos=chaos)
    for tenant in ("acme", "globex"):
        door.register_tenant(tenant, rate=1000.0, burst=1000.0)
    for index in range(requests):
        tenant = ("acme", "globex")[index % 2]
        door.upload_dataset(
            tenant, "d-%d" % index, [b"x" * (8 + index)]
        )
        env.run(until=env.now + 0.01)
    return door


class TestCrashReplay:
    def test_every_request_lands_exactly_once(self):
        door = _chaos_session(seed=3)
        assert door.gateway_recoveries > 0, (
            "chaos rate produced no crashes; test is vacuous"
        )
        oracle = FrontDoorOracle(door._root_key.key_bytes)
        totals = oracle.assert_books_balance(door)
        assert totals["completed"] == 24
        assert totals["failed"] == 0
        for tenant in ("acme", "globex"):
            count, _head = door.audit_head(tenant)
            # 12 requests + 1 registration, despite every replay.
            assert count == 13
            assert door.verify_audit(tenant) == 13

    def test_recovered_chains_stay_isolated(self):
        door = _chaos_session(seed=4)
        assert door.gateway_recoveries > 0
        FrontDoorOracle(door._root_key.key_bytes).assert_all_isolated(
            door
        )

    def test_chaos_runs_are_deterministic(self):
        """Same seed, same crashes, same sealed bytes -- the property
        the repo-wide chaos-smoke gate diffs for E10."""
        with telemetry.enabled():
            door_1 = _chaos_session(seed=5)
            snap_1 = telemetry.default_registry().snapshot()
        with telemetry.enabled():
            door_2 = _chaos_session(seed=5)
            snap_2 = telemetry.default_registry().snapshot()
        assert door_1.gateway_recoveries == door_2.gateway_recoveries
        oracle = FrontDoorOracle(door_1._root_key.key_bytes)
        for tenant in ("acme", "globex"):
            assert (
                oracle.audit_digest(door_1, tenant)
                == oracle.audit_digest(door_2, tenant)
            )
        assert json.dumps(snap_1, sort_keys=True) == json.dumps(
            snap_2, sort_keys=True
        )

    def test_different_chaos_seeds_diverge(self):
        door_1 = _chaos_session(seed=6)
        door_2 = _chaos_session(seed=7)
        assert (
            door_1.gateway_recoveries != door_2.gateway_recoveries
            or door_1.stats("acme") == door_2.stats("acme")
        )
        # Whatever the crash schedule, the books always balance.
        for door in (door_1, door_2):
            FrontDoorOracle(
                door._root_key.key_bytes
            ).assert_books_balance(door)

    def test_recovery_reattests_the_gateway(self):
        door = _chaos_session(seed=8)
        assert door.gateway_recoveries > 0
        # Bring-up plus one verification per recovery, all through the
        # PR 8 cached-verification plane.
        assert (door.verifier.hits + door.verifier.misses
                >= 1 + door.gateway_recoveries)


class TestRestoreHardening:
    def test_swapped_sealed_heads_fail_closed(self):
        """A host feeding tenant A's sealed head as tenant B's is
        caught inside the enclave at restore time."""
        env = Environment()
        door = SecureFrontDoor(env, seed=44)
        door.register_tenant("acme")
        door.register_tenant("globex")
        door.upload_dataset("acme", "d", [b"x"])
        fresh = door.platform.load_enclave(GATEWAY_CODE, name="evil")
        swapped = {
            "acme": door.audit_heads["globex"],
            "globex": door.audit_heads["acme"],
        }
        with pytest.raises(IntegrityError):
            fresh.ecall("restore", door.sealed_root, swapped)

    def test_foreign_sealed_root_fails_closed(self):
        env = Environment()
        door = SecureFrontDoor(env, seed=45)
        door.register_tenant("acme")
        fresh = door.platform.load_enclave(GATEWAY_CODE, name="fresh")
        with pytest.raises(IntegrityError):
            fresh.ecall(
                "restore", door.audit_heads["acme"], {}
            )

    def test_restore_resumes_every_chain(self):
        env = Environment()
        door = SecureFrontDoor(env, seed=46)
        door.register_tenant("acme", rate=100.0, burst=50.0)
        door.upload_dataset("acme", "d", [b"x"])
        head_before = door.audit_head("acme")
        door.gateway.destroy()
        door._recover_gateway()
        assert door.audit_head("acme") == head_before
        assert door.upload_dataset("acme", "d2", [b"y"]).ok
        assert door.verify_audit("acme") == head_before[0] + 1
