"""Cross-tenant isolation conformance: fuzzed tenants vs the oracle.

Drives N tenants through a seeded mixed workload and then lets the
operator oracle audit everything the host can see: every chain must
verify under its own tenant's independently derived key and *only*
that key, no sealed dataset may open under a foreign key, the books
must balance to the request, and the QoS/billing counters must agree
with the door's ledgers exactly -- with telemetry on or off.
"""

import pytest

from repro.crypto.primitives import DeterministicRandomSource
from repro.service import FrontDoorConfig, SecureFrontDoor, TenantQuota
from repro.sim.events import Environment
from repro import telemetry

from tests.service.oracle import FrontDoorOracle

TENANTS = ["acme", "globex", "initech", "umbrella"]


def _mixed_workload(seed, requests=40, door_seed=21):
    """One seeded multi-tenant session; returns the door."""
    env = Environment()
    door = SecureFrontDoor(
        env, seed=door_seed,
        config=FrontDoorConfig(
            default_quota=TenantQuota(sealed_bytes=512, jobs=4),
        ),
    )
    rng = DeterministicRandomSource(seed)
    for tenant in TENANTS:
        door.register_tenant(tenant, rate=5.0, burst=2.0)
    for index in range(requests):
        tenant = TENANTS[
            int.from_bytes(rng.bytes(2), "big") % len(TENANTS)
        ]
        kind = int.from_bytes(rng.bytes(2), "big") % 4
        if kind == 0:
            size = 1 + int.from_bytes(rng.bytes(1), "big") % 64
            door.upload_dataset(
                tenant, "d-%d" % index, [b"r" * size, b"s" * size]
            )
        elif kind == 1:
            door.subscribe(
                tenant, "s-%d" % index,
                [("load", ">", index % 7)],
            )
        elif kind == 2:
            door.publish(tenant, {"load": index % 11})
        else:
            door.upload_dataset(tenant, "big-%d" % index, [b"z" * 96])
        env.run(until=env.now + 0.03)
    return door


class TestIsolationConformance:
    def test_every_chain_verifies_and_no_key_crosses_tenants(self):
        door = _mixed_workload(seed=5)
        oracle = FrontDoorOracle(door._root_key.key_bytes)
        for tenant in TENANTS:
            entries = oracle.verify_tenant(door, tenant)
            assert entries[0].action == "tenant.register"
        oracle.assert_all_isolated(door)

    def test_books_balance_for_every_tenant(self):
        door = _mixed_workload(seed=6)
        oracle = FrontDoorOracle(door._root_key.key_bytes)
        totals = oracle.assert_books_balance(door)
        assert totals["offered"] == 40
        # The workload is tuned to exercise more than one outcome.
        assert totals["completed"] > 0
        assert totals["shed"] + totals["quota_rejected"] > 0

    def test_billing_totals_match_qos_counters_exactly(self):
        with telemetry.enabled():
            door = _mixed_workload(seed=7)
            snapshot = telemetry.default_registry().snapshot()
        oracle = FrontDoorOracle(door._root_key.key_bytes)
        oracle.assert_billing_consistent(door)
        counters = snapshot["counters"]
        for tenant in TENANTS:
            stats = door.stats(tenant)
            assert counters.get(
                "service.offered{tenant=%s}" % tenant, 0
            ) == stats["offered"]
            assert counters.get(
                "service.admitted{tenant=%s}" % tenant, 0
            ) == stats["admitted"]
            assert counters.get(
                "service.shed{tenant=%s}" % tenant, 0
            ) == stats["shed"]
            assert counters.get(
                "qos.events_handled{service=%s}" % tenant, 0
            ) == stats["completed"]
        assert (
            counters["service.audit_entries"]
            == sum(len(door.audit_blobs[t]) for t in TENANTS)
        )

    def test_telemetry_on_and_off_are_identical(self):
        """The counter-migration invariant extended to the front door:
        enabling telemetry must not change a single decision, count,
        or sealed audit byte."""
        door_off = _mixed_workload(seed=8)
        with telemetry.enabled():
            door_on = _mixed_workload(seed=8)
        oracle = FrontDoorOracle(door_off._root_key.key_bytes)
        for tenant in TENANTS:
            assert door_on.stats(tenant) == door_off.stats(tenant)
            assert (
                oracle.audit_digest(door_on, tenant)
                == oracle.audit_digest(door_off, tenant)
            )

    def test_same_seed_sessions_are_byte_identical(self):
        door_1 = _mixed_workload(seed=9)
        door_2 = _mixed_workload(seed=9)
        oracle = FrontDoorOracle(door_1._root_key.key_bytes)
        for tenant in TENANTS:
            assert (
                oracle.audit_digest(door_1, tenant)
                == oracle.audit_digest(door_2, tenant)
            )
            assert door_1.stats(tenant) == door_2.stats(tenant)
        assert door_1.audit_head(
            TENANTS[0]
        ) == door_2.audit_head(TENANTS[0])

    def test_different_roots_produce_disjoint_key_universes(self):
        door = _mixed_workload(seed=10)
        foreign = FrontDoorOracle(b"\x42" * 32)
        with pytest.raises(Exception):
            foreign.verify_tenant(door, TENANTS[0])
