"""End-to-end: use case 1 as a *deployed* SecureCloud application.

Smart-meter telemetry flows as sealed events through attested
enclave-hosted services: an aggregator accumulates per-transformer
energy in enclave state, a comparator receives the utility's
transformer measurements and emits loss alerts.  The untrusted side
(bus, registry, hosts) sees ciphertext only; the theft nevertheless
surfaces, localised to the right transformer.
"""

import json

import pytest

from repro.core.application import ApplicationSpec, ServiceSpec
from repro.core.deployment import SecureCloudPlatform
from repro.smartgrid.meters import SmartMeterFleet
from repro.smartgrid.topology import GridTopology

HOUR = 3600.0
LOSS_THRESHOLD = 0.05


def aggregate(ctx, topic, plaintext):
    reading = json.loads(plaintext.decode())
    totals = ctx.state.setdefault("totals", {})
    totals[reading["tx"]] = totals.get(reading["tx"], 0.0) + reading["w"]
    return []


def compare(ctx, topic, plaintext):
    """Receives {'tx':..., 'measured':...} checkpoints and compares."""
    checkpoint = json.loads(plaintext.decode())
    totals = ctx.state.setdefault("reported", {})
    # The aggregator forwards its totals through this same service via
    # 'reported' records (flagged by kind).
    if checkpoint.get("kind") == "reported":
        totals[checkpoint["tx"]] = checkpoint["sum"]
        return []
    measured = checkpoint["measured"]
    reported = totals.get(checkpoint["tx"], 0.0)
    if measured > 0 and 1.0 - reported / measured > LOSS_THRESHOLD:
        alert = {"tx": checkpoint["tx"],
                 "loss": round(1.0 - reported / measured, 4)}
        return [("alerts", json.dumps(alert).encode())]
    return []


def flush(ctx, topic, plaintext):
    """Tick: emit the aggregator's totals as 'reported' records."""
    totals = ctx.state.get("totals", {})
    outputs = []
    for transformer, total in sorted(totals.items()):
        record = {"kind": "reported", "tx": transformer, "sum": total}
        outputs.append(("checkpoints", json.dumps(record).encode()))
    return outputs


@pytest.fixture()
def world():
    grid = GridTopology.build(feeders=1, transformers_per_feeder=3,
                              meters_per_transformer=5)
    fleet = SmartMeterFleet(grid, seed=77, interval=300.0)
    fleet.inject_theft("meter-0-1-03", start=0.0, fraction=0.45)

    application = ApplicationSpec(
        "theft-pipeline",
        [
            ServiceSpec("aggregator", {"readings": aggregate,
                                       "flush": flush},
                        output_topics=("checkpoints",)),
            ServiceSpec("comparator", {"checkpoints": compare},
                        output_topics=("alerts",)),
        ],
    )
    platform = SecureCloudPlatform(hosts=2, seed=91)
    deployment = platform.deploy(application)
    return grid, fleet, platform, deployment


class TestDeployedTheftPipeline:
    def test_theft_alert_emitted_for_right_transformer(self, world):
        grid, fleet, platform, deployment = world
        alerts = deployment.collect("alerts")

        # One hour of telemetry.
        for reading in fleet.readings_window(0.0, 1 * HOUR):
            record = {
                "tx": grid.transformer_of(reading.meter_id),
                "w": reading.watts,
            }
            deployment.ingest("readings", json.dumps(record).encode())
        deployment.run()

        # Aggregator publishes its per-transformer totals.
        deployment.ingest("flush", b"{}")
        deployment.run()

        # The utility's transformer measurements arrive.
        measured_totals = {}
        for transformer, _t, watts in fleet.transformer_window(0.0, 1 * HOUR):
            measured_totals[transformer] = (
                measured_totals.get(transformer, 0.0) + watts
            )
        for transformer, measured in sorted(measured_totals.items()):
            record = {"tx": transformer, "measured": measured}
            deployment.ingest("checkpoints", json.dumps(record).encode())
        deployment.run()

        parsed = [json.loads(alert.decode()) for alert in alerts]
        assert [alert["tx"] for alert in parsed] == ["tx-0-1"]
        assert parsed[0]["loss"] > LOSS_THRESHOLD

    def test_untrusted_side_sees_no_readings(self, world):
        grid, fleet, platform, deployment = world
        snooped = []
        for topic in ("readings", "checkpoints", "alerts"):
            platform.bus.subscribe(topic, lambda e: snooped.append(e.blob))
        for reading in fleet.readings_window(0.0, 0.25 * HOUR):
            record = {
                "tx": grid.transformer_of(reading.meter_id),
                "w": reading.watts,
            }
            deployment.ingest("readings", json.dumps(record).encode())
        deployment.run()
        assert snooped
        for blob in snooped:
            assert b"tx-0-" not in blob
            assert b'"w"' not in blob

    def test_aggregation_state_stays_in_enclave(self, world):
        _grid, fleet, _platform, deployment = world
        for reading in fleet.readings_window(0.0, 0.25 * HOUR):
            record = {"tx": "tx-0-0", "w": reading.watts}
            deployment.ingest("readings", json.dumps(record).encode())
        deployment.run()
        aggregator = deployment.services["aggregator"]
        # State lives in the enclave object, not in any runtime field.
        assert "totals" in aggregator.enclave._state
        runtime_fields = vars(aggregator)
        assert "totals" not in runtime_fields
