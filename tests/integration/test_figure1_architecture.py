"""Integration scenario for the paper's Figure 1.

A smart-grid application of three micro-services connected by the event
bus runs on SecureCloud: meter readings are ingested, validated,
aggregated, and alerted on.  The assertions check the architectural
properties Figure 1 promises:

- application logic runs inside enclaves (attested via the CAS);
- the runtime/bus outside only ever sees ciphertext;
- services interact only through the event bus;
- QoS metrics and billing are collected without seeing content.
"""

import json

import pytest

from repro.core.application import ApplicationSpec, ServiceSpec
from repro.core.deployment import SecureCloudPlatform
from repro.smartgrid.meters import SmartMeterFleet
from repro.smartgrid.topology import GridTopology


def validate(ctx, topic, plaintext):
    reading = json.loads(plaintext.decode())
    if reading["w"] < 0 or reading["v"] <= 0:
        return []
    return [("validated", plaintext)]


def aggregate(ctx, topic, plaintext):
    reading = json.loads(plaintext.decode())
    totals = ctx.state.setdefault("totals", {})
    totals[reading["meter"]] = totals.get(reading["meter"], 0.0) + reading["w"]
    if totals[reading["meter"]] > 5000.0:
        totals[reading["meter"]] = 0.0
        return [("hotspots", json.dumps({"meter": reading["meter"]}).encode())]
    return []


def alert(ctx, topic, plaintext):
    hotspot = json.loads(plaintext.decode())
    return [("alerts", ("ALERT meter %s" % hotspot["meter"]).encode())]


@pytest.fixture()
def deployment():
    application = ApplicationSpec(
        "figure1-demo",
        [
            ServiceSpec("validator", {"readings": validate},
                        output_topics=("validated",)),
            ServiceSpec("aggregator", {"validated": aggregate},
                        output_topics=("hotspots",)),
            ServiceSpec("alerter", {"hotspots": alert},
                        output_topics=("alerts",)),
        ],
    )
    platform = SecureCloudPlatform(hosts=3, seed=71)
    return platform.deploy(application)


def feed_readings(deployment, count=40):
    grid = GridTopology.build(feeders=1, transformers_per_feeder=1,
                              meters_per_transformer=2)
    fleet = SmartMeterFleet(grid, seed=3, industrial_fraction=1.0)
    for index in range(count):
        reading = fleet.reading(grid.meters[index % 2], 43200.0 + 30.0 * index)
        deployment.ingest(
            "readings", json.dumps(reading.to_record()).encode()
        )


class TestFigure1:
    def test_pipeline_produces_alerts(self, deployment):
        alerts = deployment.collect("alerts")
        feed_readings(deployment)
        deployment.run()
        assert alerts
        assert all(blob.startswith(b"ALERT meter ") for blob in alerts)

    def test_every_service_attested_before_boot(self, deployment):
        platform = deployment.platform
        assert platform.cas.delivered >= 3
        for service in deployment.services.values():
            assert platform.cas.has_scf(service.measurement)

    def test_no_plaintext_crosses_the_bus(self, deployment):
        platform = deployment.platform
        snooped = []
        for topic in ("readings", "validated", "hotspots", "alerts"):
            platform.bus.subscribe(topic, lambda e: snooped.append(e.blob))
        feed_readings(deployment)
        deployment.run()
        assert snooped
        for blob in snooped:
            assert b"meter" not in blob
            assert b"ALERT" not in blob

    def test_services_chain_through_bus_only(self, deployment):
        feed_readings(deployment)
        deployment.run()
        stats = deployment.stats()
        assert stats["validator"] == 40
        assert stats["aggregator"] == 40
        assert stats["alerter"] >= 1

    def test_qos_and_billing_collected(self, deployment):
        feed_readings(deployment)
        deployment.run()
        qos = deployment.platform.qos
        assert qos.of("validator").events_handled == 40
        report = qos.billing_report()
        assert report.total > 0
        assert set(report.lines) == {"validator", "aggregator", "alerter"}

    def test_enclave_state_isolated_per_service(self, deployment):
        feed_readings(deployment)
        deployment.run()
        aggregator = deployment.services["aggregator"]
        validator = deployment.services["validator"]
        assert aggregator.enclave._state is not validator.enclave._state
        assert "totals" not in validator.enclave._state
