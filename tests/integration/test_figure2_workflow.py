"""Integration scenario for the paper's Figure 2.

The full secure-container workflow against a *hostile* distribution
chain: trusted build -> untrusted registry -> customisation -> SGX host
-> attested boot -> SCF delivery -> execution, with attacks at every
untrusted step.
"""

import pytest

from repro.errors import AttestationError, IntegrityError
from repro.crypto.keys import KeyHierarchy
from repro.crypto.primitives import DeterministicRandomSource
from repro.containers.client import SconeClient
from repro.containers.engine import ContainerEngine, Host
from repro.containers.image import FSPF_PATH
from repro.containers.registry import Registry
from repro.scone.cas import ConfigurationService
from repro.sgx.attestation import AttestationService


def analytics_main(ctx, env):
    model = env.fs.read_all("/opt/model.bin")
    config = env.fs.read_all("/opt/config.json")
    env.stdout.write(b"loaded %d model bytes" % len(model))
    return (len(model), config)


ENTRY_POINTS = {"main": analytics_main}
MODEL = b"\x07\x13" * 4000  # 8 KB of "weights"


@pytest.fixture()
def world():
    registry = Registry()
    attestation = AttestationService()
    cas = ConfigurationService(attestation, key_bits=512)
    client = SconeClient(
        registry, cas,
        key_hierarchy=KeyHierarchy.generate(DeterministicRandomSource(83)),
    )
    host = Host("sgx-node", seed=97)
    attestation.register_platform(
        host.platform.platform_id, host.platform.quoting_enclave.public_key
    )
    engine = ContainerEngine(cas=cas)
    return registry, attestation, cas, client, host, engine


class TestFigure2Workflow:
    def test_happy_path(self, world):
        _registry, _att, _cas, client, host, engine = world
        client.build_and_publish(
            "analytics", ENTRY_POINTS,
            protected_files={
                "/opt/model.bin": MODEL,
                "/opt/config.json": b'{"mode": "prod"}',
            },
        )
        image = client.pull_verified("analytics:latest")
        container = engine.create(image, host)
        size, config = container.run()
        assert size == len(MODEL)
        assert config == b'{"mode": "prod"}'

    def test_registry_never_sees_secrets(self, world):
        registry, _att, _cas, client, _host, _engine = world
        client.build_and_publish(
            "analytics", ENTRY_POINTS, protected_files={"/opt/model.bin": MODEL}
        )
        stored = registry.pull("analytics:latest")
        for blob in stored.flatten().values():
            assert MODEL[:64] not in blob

    def test_tampered_model_chunk_detected_at_runtime(self, world):
        registry, _att, _cas, client, host, engine = world
        client.build_and_publish(
            "analytics", ENTRY_POINTS, protected_files={"/opt/model.bin": MODEL}
        )
        image = registry.pull("analytics:latest")
        chunk_paths = [
            path for path in image.layers[0].files
            if "model.bin" in path
        ]
        corrupted = dict(image.layers[0].files)
        target = chunk_paths[0]
        corrupted_blob = bytearray(corrupted[target])
        corrupted_blob[20] ^= 0x01
        registry.tamper_layer(
            "analytics:latest", 0, target, bytes(corrupted_blob)
        )
        # Signature check catches it first (client-side)...
        with pytest.raises(IntegrityError):
            client.pull_verified("analytics:latest")
        # ...and even a careless operator that skips verification is
        # stopped by the FS shield inside the enclave.
        careless_image = registry.pull("analytics:latest")
        container = engine.create(careless_image, host)
        with pytest.raises(IntegrityError):
            container.run()

    def test_forged_fspf_detected(self, world):
        registry, _att, _cas, client, host, engine = world
        client.build_and_publish(
            "analytics", ENTRY_POINTS, protected_files={"/opt/model.bin": MODEL}
        )
        registry.tamper_layer("analytics:latest", 0, FSPF_PATH, b"forged")
        careless_image = registry.pull("analytics:latest")
        with pytest.raises(IntegrityError):
            engine.create(careless_image, host)

    def test_swapped_enclave_code_denied_scf(self, world):
        _registry, _att, cas, client, host, engine = world
        client.build_and_publish(
            "analytics", ENTRY_POINTS, protected_files={"/opt/model.bin": MODEL}
        )
        image = client.pull_verified("analytics:latest")

        def exfiltrate_main(ctx, env):
            return env.fs.read_all("/opt/model.bin")

        from repro.sgx.enclave import EnclaveCode
        from repro.containers.image import Image

        evil = Image(
            image.name, image.tag, image.layers, image.config,
            enclave_code=EnclaveCode("analytics", {"main": exfiltrate_main}),
        )
        with pytest.raises(AttestationError):
            engine.create(evil, host)
        assert cas.denied >= 1

    def test_rogue_host_denied(self, world):
        _registry, _att, _cas, client, _host, engine = world
        client.build_and_publish(
            "analytics", ENTRY_POINTS, protected_files={"/opt/model.bin": MODEL}
        )
        image = client.pull_verified("analytics:latest")
        rogue = Host("rogue-node", seed=123)  # platform not registered
        with pytest.raises(AttestationError):
            engine.create(image, rogue)

    def test_customisation_keeps_base_protected(self, world):
        _registry, _att, _cas, client, host, engine = world
        client.build_and_publish(
            "analytics", ENTRY_POINTS,
            protected_files={
                "/opt/model.bin": MODEL,
                "/opt/config.json": b'{"mode": "prod"}',
            },
        )
        customised = client.customize(
            "analytics:latest", {"/etc/region": b"eu-west"}, new_tag="eu"
        )
        image = client.pull_verified("analytics:eu")
        container = engine.create(image, host)
        size, config = container.run()
        assert size == len(MODEL)
        assert config == b'{"mode": "prod"}'
        assert image.flatten()["/etc/region"] == b"eu-west"
        assert customised.digest == image.digest

    def test_stdout_of_container_is_shielded(self, world):
        _registry, _att, cas, client, host, engine = world
        result = client.build_and_publish(
            "analytics", ENTRY_POINTS,
            protected_files={
                "/opt/model.bin": MODEL,
                "/opt/config.json": b"{}",
            },
        )
        image = client.pull_verified("analytics:latest")
        container = engine.create(image, host)
        container.run()
        transport = container.process.stdout_transport
        assert transport
        assert all(b"model bytes" not in record for record in transport)
        # The legitimate consumer (holding the SCF keys) can read it.
        from repro.scone.stream_shield import ShieldedStreamReader

        reader = ShieldedStreamReader(
            result.scf.stdout_key, "stdout", list(transport)
        )
        assert b"loaded 8000 model bytes" == reader.drain()
