"""Tests for the containment index vs. the linear baseline."""

from hypothesis import given, settings, strategies as st

from repro.scbr.filters import Constraint, Operator, Publication, Subscription
from repro.scbr.index import ContainmentIndex
from repro.scbr.naive import LinearIndex
from repro.scbr.workload import ScbrWorkload
from repro.sgx.costs import DEFAULT_COSTS
from repro.sgx.memory import EpcModel, SimulatedMemory
from repro.sim.clock import CycleClock


def c(attribute, op, value):
    return Constraint(attribute, op, value)


def chain_subscriptions():
    """general ⊒ mid ⊒ tight chain on one attribute."""
    general = Subscription("general", [c("x", Operator.LE, 100)])
    mid = Subscription("mid", [c("x", Operator.LE, 50)])
    tight = Subscription("tight", [c("x", Operator.LE, 10)])
    return general, mid, tight


class TestInsertStructure:
    def test_chain_forms_single_root(self):
        index = ContainmentIndex()
        general, mid, tight = chain_subscriptions()
        for sub in (general, mid, tight):
            index.insert(sub)
        assert len(index._roots) == 1
        assert index.depth() == 3
        index.check_invariants()

    def test_reverse_insertion_reparents(self):
        index = ContainmentIndex()
        general, mid, tight = chain_subscriptions()
        for sub in (tight, mid, general):
            index.insert(sub)
        assert len(index._roots) == 1
        assert index._roots[0].subscription.subscription_id == "general"
        index.check_invariants()

    def test_incomparable_subscriptions_are_roots(self):
        index = ContainmentIndex()
        index.insert(Subscription("a", [c("x", Operator.LE, 5)]))
        index.insert(Subscription("b", [c("y", Operator.GE, 5)]))
        assert len(index._roots) == 2

    def test_len_and_database_bytes(self):
        index = ContainmentIndex(record_bytes=256)
        for sub in chain_subscriptions():
            index.insert(sub)
        assert len(index) == 3
        assert index.database_bytes == 768


class TestMatching:
    def test_pruning_skips_subtree(self):
        index = ContainmentIndex()
        general, mid, tight = chain_subscriptions()
        for sub in (general, mid, tight):
            index.insert(sub)
        # x=200 fails the root: only 1 visit despite 3 subscriptions.
        assert index.match(Publication({"x": 200})) == set()
        assert index.visits_last_match == 1

    def test_matching_descends(self):
        index = ContainmentIndex()
        general, mid, tight = chain_subscriptions()
        for sub in (general, mid, tight):
            index.insert(sub)
        assert index.match(Publication({"x": 5})) == {"general", "mid", "tight"}
        assert index.match(Publication({"x": 30})) == {"general", "mid"}
        assert index.match(Publication({"x": 70})) == {"general"}

    def test_empty_index(self):
        assert ContainmentIndex().match(Publication({"x": 1})) == set()

    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 2**32 - 1), st.integers(20, 120), st.integers(1, 8))
    def test_index_equals_naive_property(self, seed, num_subs, num_events):
        """The core correctness property: pruning never changes results."""
        workload = ScbrWorkload(seed=seed, num_attributes=8,
                                containment_fraction=0.5)
        index = ContainmentIndex()
        naive = LinearIndex()
        for subscription in workload.subscriptions(num_subs):
            index.insert(subscription)
            naive.insert(subscription)
        index.check_invariants()
        for publication in workload.publications(num_events):
            assert index.match(publication) == naive.match(publication)

    def test_index_visits_fewer_with_containment_structure(self):
        workload = ScbrWorkload(seed=7, num_attributes=6,
                                containment_fraction=0.7)
        index = ContainmentIndex()
        naive = LinearIndex()
        for subscription in workload.subscriptions(400):
            index.insert(subscription)
            naive.insert(subscription)
        index_visits = naive_visits = 0
        for publication in workload.publications(30):
            index.match(publication)
            naive.match(publication)
            index_visits += index.visits_last_match
            naive_visits += naive.visits_last_match
        assert index_visits < naive_visits


class TestMemoryAccounting:
    def _enclave_memory(self):
        costs = DEFAULT_COSTS.scaled(epc_capacity=1 << 20, llc_capacity=1 << 14)
        return SimulatedMemory(
            CycleClock(), costs, enclave=True, epc=EpcModel(costs), name="scbr"
        )

    def test_insert_allocates_contiguously(self):
        memory = self._enclave_memory()
        index = ContainmentIndex(memory=memory, record_bytes=512)
        for sub in chain_subscriptions():
            index.insert(sub)
        assert memory.allocated_bytes == 3 * 512

    def test_match_charges_cycles(self):
        memory = self._enclave_memory()
        index = ContainmentIndex(memory=memory)
        for sub in chain_subscriptions():
            index.insert(sub)
        before = memory.clock.now
        index.match(Publication({"x": 5}))
        assert memory.clock.now > before

    def test_enclave_slower_than_native_when_thrashing(self):
        """Miniature Figure 3: same index, two memories."""
        costs = DEFAULT_COSTS.scaled(
            epc_capacity=64 * 4096, llc_capacity=8 * 4096
        )
        clock_native = CycleClock()
        native = SimulatedMemory(clock_native, costs, name="native")
        clock_enclave = CycleClock()
        enclave = SimulatedMemory(
            clock_enclave, costs, enclave=True, epc=EpcModel(costs), name="enc"
        )

        def run(memory, clock):
            workload = ScbrWorkload(seed=3, num_attributes=10)
            index = LinearIndex(memory=memory, record_bytes=512)
            for subscription in workload.subscriptions(1500):  # ~768 KB >> EPC
                index.insert(subscription)
            start = clock.now
            for publication in workload.publications(5):
                index.match(publication)
            return clock.now - start

        native_cycles = run(native, clock_native)
        enclave_cycles = run(enclave, clock_enclave)
        assert enclave_cycles > 5 * native_cycles
