"""Tests for the multi-broker SCBR network."""

import pytest

from repro.errors import ConfigurationError
from repro.scbr.filters import Constraint, Operator, Publication, Subscription
from repro.scbr.naive import LinearIndex
from repro.scbr.network import ScbrNetwork
from repro.scbr.workload import ScbrWorkload


def sub(sub_id, attribute="temp", op=Operator.GE, bound=50):
    return Subscription(sub_id, [Constraint(attribute, op, bound)])


def line_network(names=("a", "b", "c")):
    network = ScbrNetwork()
    for name in names:
        network.add_broker(name)
    for first, second in zip(names, names[1:]):
        network.connect(first, second)
    return network


class TestTopology:
    def test_duplicate_broker_rejected(self):
        network = ScbrNetwork()
        network.add_broker("a")
        with pytest.raises(ConfigurationError):
            network.add_broker("a")

    def test_cycle_rejected(self):
        network = line_network()
        with pytest.raises(ConfigurationError):
            network.connect("a", "c")

    def test_double_connect_rejected(self):
        network = line_network()
        with pytest.raises(ConfigurationError):
            network.connect("a", "b")


class TestRouting:
    def test_local_delivery(self):
        network = line_network()
        network.subscribe("a", sub("s1"), client="alice")
        delivered = network.publish("a", {"temp": 70})
        assert delivered == [("alice", "s1")]

    def test_multi_hop_delivery(self):
        network = line_network()
        network.subscribe("c", sub("s1"), client="carol")
        delivered = network.publish("a", {"temp": 70})
        assert delivered == [("carol", "s1")]

    def test_non_matching_not_delivered(self):
        network = line_network()
        network.subscribe("c", sub("s1", bound=90), client="carol")
        assert network.publish("a", {"temp": 70}) == []

    def test_publication_only_forwarded_toward_subscribers(self):
        network = line_network(("a", "b", "c", "d"))
        network.subscribe("b", sub("s1"), client="bob")
        network.publish("a", {"temp": 70})
        stats_cd = network.brokers["c"].links["d"]
        assert stats_cd.publications_forwarded == 0
        assert network.brokers["a"].links["b"].publications_forwarded == 1

    def test_fan_out_to_multiple_brokers(self):
        network = ScbrNetwork()
        for name in ("hub", "x", "y", "z"):
            network.add_broker(name)
        for leaf in ("x", "y", "z"):
            network.connect("hub", leaf)
        network.subscribe("x", sub("s1", bound=10), client="xavier")
        network.subscribe("y", sub("s2", bound=20), client="yvonne")
        delivered = network.publish("z", {"temp": 30})
        assert sorted(delivered) == [("xavier", "s1"), ("yvonne", "s2")]

    def test_no_echo_back_to_origin(self):
        network = line_network(("a", "b"))
        network.subscribe("a", sub("s1"), client="alice")
        network.subscribe("b", sub("s2"), client="bob")
        delivered = network.publish("a", {"temp": 70})
        assert sorted(delivered) == [("alice", "s1"), ("bob", "s2")]
        # a's publication crossed the a->b link exactly once.
        assert network.brokers["a"].links["b"].publications_forwarded == 1
        assert network.brokers["b"].links["a"].publications_forwarded == 0


class TestCoveringOptimisation:
    def test_covered_subscription_not_forwarded(self):
        network = line_network(("a", "b"))
        general = sub("general", bound=10)
        specific = sub("specific", bound=50)
        network.subscribe("b", general, client="bob")
        network.subscribe("b", specific, client="bob")
        link = network.brokers["b"].links["a"]
        assert link.subscriptions_forwarded == 1
        assert link.subscriptions_suppressed == 1

    def test_suppressed_subscription_still_served(self):
        """The covering invariant: suppression never loses deliveries."""
        network = line_network(("a", "b"))
        network.subscribe("b", sub("general", bound=10), client="bob")
        network.subscribe("b", sub("specific", bound=50), client="bob")
        delivered = network.publish("a", {"temp": 70})
        assert sorted(s for _c, s in delivered) == ["general", "specific"]

    def test_uncovered_subscriptions_all_forwarded(self):
        network = line_network(("a", "b"))
        network.subscribe("b", sub("s1", attribute="x"), client="bob")
        network.subscribe("b", sub("s2", attribute="y"), client="bob")
        assert network.brokers["b"].links["a"].subscriptions_forwarded == 2

    def test_forwarding_stats_aggregate(self):
        network = line_network(("a", "b"))
        network.subscribe("b", sub("general", bound=10), client="bob")
        network.subscribe("b", sub("specific", bound=50), client="bob")
        stats = network.forwarding_stats()
        assert stats["subscriptions_forwarded"] == 1
        assert stats["subscriptions_suppressed"] == 1


class TestEquivalenceWithSingleBroker:
    def test_network_matches_flat_reference(self):
        """Distribution must not change routing semantics."""
        workload = ScbrWorkload(seed=33, num_attributes=10,
                                containment_fraction=0.5)
        subscriptions = workload.subscriptions(120)
        publications = workload.publications(25)

        network = line_network(("a", "b", "c", "d"))
        reference = LinearIndex()
        brokers = ("a", "b", "c", "d")
        for position, subscription in enumerate(subscriptions):
            network.subscribe(
                brokers[position % 4], subscription,
                client="client-%d" % position,
            )
            reference.insert(subscription)

        for position, publication in enumerate(publications):
            origin = brokers[position % 4]
            delivered = network.brokers[origin].publish_local(publication)
            network_ids = sorted(s for _c, s in delivered)
            reference_ids = sorted(reference.match(publication))
            assert network_ids == reference_ids


class TestLinkConfidentiality:
    def test_interbroker_traffic_is_ciphertext(self):
        network = line_network(("a", "b"))
        captured = []
        link = network.brokers["a"].links["b"]
        original = link.seal_publication

        def capture(publication, serialized=None):
            envelope = original(publication, serialized)
            captured.append(envelope.blob)
            return envelope

        link.seal_publication = capture
        network.subscribe("b", sub("s1"), client="bob")
        network.publish("a", {"temp": 70}, payload=b"SECRET-PAYLOAD")
        assert captured
        for blob in captured:
            assert b"SECRET-PAYLOAD" not in blob
            assert b"temp" not in blob
