"""Tests for the hot/cold enclave-efficient matcher."""

import pytest

from repro.errors import ConfigurationError
from repro.scbr.compact import HotColdIndex
from repro.scbr.naive import LinearIndex
from repro.scbr.workload import ScbrWorkload
from repro.sgx.costs import DEFAULT_COSTS
from repro.sgx.memory import EpcModel, SimulatedMemory
from repro.sim.clock import CycleClock


def enclave_memory(costs=DEFAULT_COSTS, name="m"):
    clock = CycleClock()
    return SimulatedMemory(clock, costs, enclave=True, epc=EpcModel(costs),
                           name=name), clock


class TestCorrectness:
    def test_matches_equal_linear_index(self):
        workload = ScbrWorkload(seed=81, num_attributes=10)
        compact = HotColdIndex()
        linear = LinearIndex()
        for subscription in workload.subscriptions(300):
            compact.insert(subscription)
            linear.insert(subscription)
        for publication in workload.publications(30):
            assert compact.match(publication) == linear.match(publication)

    def test_remove(self):
        workload = ScbrWorkload(seed=82)
        index = HotColdIndex()
        subscriptions = workload.subscriptions(5)
        for subscription in subscriptions:
            index.insert(subscription)
        index.remove(subscriptions[2].subscription_id)
        assert len(index) == 4
        with pytest.raises(ConfigurationError):
            index.remove("ghost")

    def test_record_geometry_validated(self):
        with pytest.raises(ConfigurationError):
            HotColdIndex(record_bytes=32, hot_bytes=64)

    def test_footprint_accounting(self):
        index = HotColdIndex(record_bytes=512, hot_bytes=64)
        workload = ScbrWorkload(seed=83)
        for subscription in workload.subscriptions(100):
            index.insert(subscription)
        assert index.database_bytes == 100 * 512
        assert index.hot_bytes_total == 100 * 64


class TestArenaLayout:
    def test_hot_arena_blocks_page_aligned_and_dense(self):
        memory, _clock = enclave_memory()
        index = HotColdIndex(memory=memory)
        workload = ScbrWorkload(seed=84)
        for subscription in workload.subscriptions(130):
            index.insert(subscription)
        hot_regions = [entry[1] for entry in index._entries]
        # First slot of each 64-slot block is page aligned.
        assert hot_regions[0].base % DEFAULT_COSTS.page_size == 0
        assert hot_regions[64].base % DEFAULT_COSTS.page_size == 0
        # Slots within a block are contiguous.
        for first, second in zip(hot_regions, hot_regions[1:63]):
            assert second.base == first.base + 64

    def test_cold_read_only_on_match(self):
        memory, _clock = enclave_memory()
        index = HotColdIndex(memory=memory)
        workload = ScbrWorkload(seed=85, num_attributes=8)
        for subscription in workload.subscriptions(200):
            index.insert(subscription)
        publication = workload.publications(1)[0]
        matched = index.match(publication)
        assert index.cold_reads_last_match == len(matched)
        assert index.visits_last_match == 200


class TestPagingAvoidance:
    def test_no_thrashing_beyond_nominal_epc(self):
        """A logical DB over the EPC limit no longer pages."""
        costs = DEFAULT_COSTS
        total_records = 120 * 1024 * 1024 // 512  # 120 MB logical > EPC

        workload = ScbrWorkload(seed=86, num_attributes=30)
        pool = workload.subscriptions(2048)
        publications = workload.publications(3)

        def run(index_cls):
            memory, clock = enclave_memory(name=index_cls.__name__)
            index = index_cls(memory=memory, record_bytes=512)
            for i in range(total_records):
                index.insert(pool[i % len(pool)])
            index.match(publications[0])  # warm up
            faults_before = memory.epc.faults
            start = clock.now
            for publication in publications[1:]:
                index.match(publication)
            return clock.now - start, memory.epc.faults - faults_before

        baseline_cycles, baseline_faults = run(LinearIndex)
        compact_cycles, compact_faults = run(HotColdIndex)
        assert baseline_faults > 10_000          # the baseline thrashes
        # Remaining compact faults are cold reads for actual matches
        # (one per matching record), not scan thrashing.
        assert compact_faults < baseline_faults / 20
        assert compact_cycles < baseline_cycles / 3
