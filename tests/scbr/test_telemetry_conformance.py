"""Randomised churn conformance with telemetry-backed accounting.

Interleaves subscribe / unsubscribe / *publish* (not publish-at-the-end
like the recovery churn tests) with seeded shard kills, and checks two
things at once against the single-index oracle:

- every publication's delivered match set equals the oracle's for the
  subscription set live *at that moment*, despite shards dying and
  healing mid-stream;
- the plane's coverage-wait histogram recorded exactly one observation
  per coverage-tracked fan-out -- every publication that parked in the
  coordinator waiting for its slowest partition is accounted for,
  including the re-matches a healed shard triggers.
"""

import random

import pytest

from repro import telemetry
from repro.scbr.filters import Publication, Subscription
from repro.scbr.messages import EncryptedEnvelope, serialize_publication
from repro.scbr.router import ScbrClient
from repro.scbr.sharding import ShardedScbrRouter
from repro.scbr.workload import ScbrWorkload
from repro.sgx.attestation import AttestationService
from repro.sgx.platform import SgxPlatform

from tests.scbr.oracle import oracle_match_sets


def _make_plane(seed, shards=3, **kwargs):
    platform = SgxPlatform(seed=seed, quoting_key_bits=512)
    attestation = AttestationService()
    attestation.register_platform(
        platform.platform_id, platform.quoting_enclave.public_key
    )
    router = ShardedScbrRouter(
        platform,
        lambda i: SgxPlatform(seed=100 * seed + i, quoting_key_bits=512),
        attestation_service=attestation,
        shards=shards,
        **kwargs,
    )
    attestation.trust_measurement(router.measurement)
    return router, attestation


def _matched_ids(alice, routed):
    matched = []
    for _subscriber, envelope in routed:
        _pub, ids = alice.open_notification_detail(envelope)
        matched.extend(ids)
    return sorted(matched)


def _interleaved_churn(seed, steps=36, kills=3):
    """Subscribe/unsubscribe/publish interleaved, with shard kills.

    Runs inside an enabled registry so the plane's host-side
    instruments are live.  Returns (deliveries, oracle expectations,
    router, registry).
    """
    rng = random.Random(seed)
    with telemetry.enabled() as registry:
        router, attestation = _make_plane(seed=61 + seed % 7, shards=3)
        alice = ScbrClient("alice", router, attestation)
        publisher = ScbrClient("publisher", router, attestation)
        workload = ScbrWorkload(seed=seed, num_attributes=6,
                                containment_fraction=0.5,
                                num_subscribers=1)
        subscriptions = iter(workload.subscriptions(steps))
        publications = iter(workload.publications(steps))
        kill_steps = set(rng.sample(range(steps), kills))
        live = {}
        deliveries, expected = [], []
        for step in range(steps):
            action = rng.random()
            if action < 0.55 or not live:
                subscription = next(subscriptions)
                subscription = Subscription(
                    subscription.subscription_id,
                    list(subscription.constraints.values()),
                    "alice",
                )
                alice.subscribe(subscription)
                live[subscription.subscription_id] = subscription
            elif action < 0.70 and len(live) > 1:
                victim = rng.choice(sorted(live))
                alice.unsubscribe(victim)
                del live[victim]
            else:
                publication = next(publications)
                routed = router.publish_routed(EncryptedEnvelope.seal(
                    publisher.key, publisher.client_id, "publish",
                    serialize_publication(
                        Publication(publication.attributes)
                    ),
                ))
                deliveries.append(_matched_ids(alice, routed))
                expected.append(oracle_match_sets(
                    list(live.values()), [publication]
                )[0])
            if step in kill_steps:
                victims = [shard for shard in router.shards
                           if not shard.enclave.destroyed]
                if victims:
                    router.fail_shard(rng.choice(victims).shard_id)
        router.check_invariants()
    return deliveries, expected, router, registry


class TestInterleavedChurnConformance:
    @pytest.mark.parametrize("seed", [2, 11, 29])
    def test_match_sets_equal_oracle_at_each_step(self, seed):
        deliveries, expected, router, _registry = _interleaved_churn(seed)
        assert deliveries == expected
        assert len(deliveries) > 0
        assert router.shard_failures >= 3

    @pytest.mark.parametrize("seed", [2, 11])
    def test_coverage_wait_histogram_counts_every_fanout(self, seed):
        """One parked-publication observation per coverage-tracked
        fan-out: retries after a dead shard re-observe, so the count is
        the plane's own publications_routed, and publications are never
        silently missing from the latency record."""
        _deliveries, _expected, router, registry = _interleaved_churn(seed)
        histograms = registry.snapshot()["histograms"]
        coverage = histograms["scbr.coverage_wait_cycles"]
        assert coverage["count"] == router.publications_routed
        assert coverage["count"] > 0
        publish = histograms["scbr.publish_cycles"]
        assert publish["count"] == router.publications_routed
        # Dead shards forced at least one healing re-match, so the
        # fan-out count exceeds the number of client publish calls.
        counters = registry.snapshot()["counters"]
        assert counters["scbr.shard_failures"] >= 3

    def test_same_seed_same_telemetry(self):
        *_x, registry_a = _interleaved_churn(11)
        *_y, registry_b = _interleaved_churn(11)
        assert registry_a.to_json() == registry_b.to_json()
