"""Tests for interval (RANGE) constraints."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import ConfigurationError
from repro.scbr.filters import Constraint, Operator, Publication, Subscription
from repro.scbr.index import ContainmentIndex
from repro.scbr.messages import deserialize_subscription, serialize_subscription
from repro.scbr.naive import LinearIndex
from repro.scbr.workload import ScbrWorkload


def rng(attribute, low, high):
    return Constraint.range_between(attribute, low, high)


class TestRangeMatching:
    def test_inclusive_bounds(self):
        constraint = rng("x", 10, 20)
        assert constraint.matches(10)
        assert constraint.matches(20)
        assert constraint.matches(15)
        assert not constraint.matches(9.999)
        assert not constraint.matches(20.001)

    def test_degenerate_point_range(self):
        constraint = rng("x", 5, 5)
        assert constraint.matches(5)
        assert not constraint.matches(5.1)

    def test_inverted_bounds_rejected(self):
        with pytest.raises(ConfigurationError):
            rng("x", 10, 5)


class TestRangeCovering:
    def test_range_covers_nested_range(self):
        assert rng("x", 0, 100).covers(rng("x", 10, 90))
        assert rng("x", 0, 100).covers(rng("x", 0, 100))
        assert not rng("x", 10, 90).covers(rng("x", 0, 100))
        assert not rng("x", 0, 50).covers(rng("x", 40, 60))

    def test_range_covers_inner_eq(self):
        assert rng("x", 0, 10).covers(Constraint("x", Operator.EQ, 5))
        assert not rng("x", 0, 10).covers(Constraint("x", Operator.EQ, 11))

    def test_range_never_covers_one_sided(self):
        assert not rng("x", 0, 10).covers(Constraint("x", Operator.LE, 5))
        assert not rng("x", 0, 10).covers(Constraint("x", Operator.GT, 5))

    def test_one_sided_covers_range(self):
        assert Constraint("x", Operator.LE, 100).covers(rng("x", 0, 100))
        assert not Constraint("x", Operator.LT, 100).covers(rng("x", 0, 100))
        assert Constraint("x", Operator.LT, 100).covers(rng("x", 0, 99))
        assert Constraint("x", Operator.GE, 0).covers(rng("x", 0, 10))
        assert not Constraint("x", Operator.GT, 0).covers(rng("x", 0, 10))

    def test_eq_covers_point_range(self):
        assert Constraint("x", Operator.EQ, 5).covers(rng("x", 5, 5))
        assert not Constraint("x", Operator.EQ, 5).covers(rng("x", 5, 6))

    @given(
        st.integers(-20, 20), st.integers(0, 20),
        st.integers(-20, 20), st.integers(0, 20),
        st.integers(-25, 25),
    )
    def test_range_covering_soundness(self, low_a, span_a, low_b, span_b,
                                      probe):
        a = rng("x", low_a, low_a + span_a)
        b = rng("x", low_b, low_b + span_b)
        if a.covers(b) and b.matches(probe):
            assert a.matches(probe)

    @given(
        st.sampled_from([Operator.LE, Operator.LT, Operator.GE, Operator.GT,
                         Operator.EQ]),
        st.integers(-20, 20),
        st.integers(-20, 20), st.integers(0, 20),
        st.integers(-30, 30),
    )
    def test_mixed_covering_soundness(self, op, bound, low, span, probe):
        one_sided = Constraint("x", op, bound)
        interval = rng("x", low, low + span)
        for a, b in ((one_sided, interval), (interval, one_sided)):
            if a.covers(b) and b.matches(probe):
                assert a.matches(probe)


class TestRangeIntegration:
    def test_subscription_with_range(self):
        subscription = Subscription(
            "s", [rng("watts", 100, 500), Constraint("zone", Operator.EQ, 2)]
        )
        assert subscription.matches(Publication({"watts": 300, "zone": 2}))
        assert not subscription.matches(Publication({"watts": 600, "zone": 2}))

    def test_serialisation_round_trip(self):
        subscription = Subscription("s", [rng("watts", 100, 500)], "alice")
        restored = deserialize_subscription(
            serialize_subscription(subscription)
        )
        constraint = restored.constraints["watts"]
        assert constraint.operator is Operator.RANGE
        assert tuple(constraint.value) == (100, 500)
        assert restored.matches(Publication({"watts": 200}))

    def test_index_equals_naive_with_ranges(self):
        workload = ScbrWorkload(seed=71, num_attributes=8,
                                containment_fraction=0.5,
                                range_fraction=0.5)
        index = ContainmentIndex()
        naive = LinearIndex()
        for subscription in workload.subscriptions(200):
            index.insert(subscription)
            naive.insert(subscription)
        index.check_invariants()
        for publication in workload.publications(25):
            assert index.match(publication) == naive.match(publication)

    def test_workload_generates_ranges(self):
        workload = ScbrWorkload(seed=72, range_fraction=1.0, eq_fraction=0.0)
        subscription = workload.subscription()
        assert all(
            constraint.operator is Operator.RANGE
            for constraint in subscription.constraints.values()
        )

    def test_specialised_range_is_covered(self):
        workload = ScbrWorkload(seed=73, range_fraction=1.0, eq_fraction=0.0,
                                containment_fraction=1.0)
        parent = workload.subscription()
        child = workload.subscription()
        assert parent.covers(child)
