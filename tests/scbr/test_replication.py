"""Tests for replicated-broker failover and exactly-once delivery."""

import pytest

from repro.chaos import ChaosInjector, FaultSchedule
from repro.microservices.orchestrator import Orchestrator
from repro.microservices.qos import QosMonitor
from repro.microservices.registry import ServiceRegistry
from repro.scbr import (
    Constraint,
    FailoverClient,
    Operator,
    Publication,
    ReplicatedBroker,
    Subscription,
)
from repro.sgx.attestation import AttestationService
from repro.sgx.platform import SgxPlatform
from repro.sim.events import Environment


@pytest.fixture()
def world():
    env = Environment()
    platform = SgxPlatform(seed=59, quoting_key_bits=512)
    attestation = AttestationService()
    attestation.register_platform(
        platform.platform_id, platform.quoting_enclave.public_key
    )
    return env, platform, attestation


def match_all(subscriber):
    return Subscription(
        "s-%s" % subscriber, [Constraint("t", Operator.GE, 0)], subscriber
    )


class TestFailover:
    def test_standby_restores_subscriptions_from_sealed_checkpoint(self, world):
        env, platform, attestation = world
        broker = ReplicatedBroker(platform, env=env)
        publisher = FailoverClient("alice", broker, attestation)
        subscriber = FailoverClient("bob", broker, attestation)
        subscriber.subscribe(match_all("bob"))

        broker.fail_active()
        notified = publisher.publish(
            Publication(attributes={"t": 1}, payload=b"after")
        )
        assert broker.failovers == 1
        assert notified == ["bob"]
        assert [p.payload for p in subscriber.inbox] == [b"after"]

    def test_clients_reattest_with_fresh_keys(self, world):
        env, platform, attestation = world
        broker = ReplicatedBroker(platform, env=env)
        publisher = FailoverClient("alice", broker, attestation)
        subscriber = FailoverClient("bob", broker, attestation)
        subscriber.subscribe(match_all("bob"))
        old_key = subscriber.key
        broker.fail_active()
        publisher.publish(Publication(attributes={"t": 1}, payload=b"x"))
        assert subscriber.reattachments == 1
        assert subscriber.key is not old_key
        assert len(subscriber._keys) == 2

    def test_measurement_stable_across_failover(self, world):
        env, platform, attestation = world
        broker = ReplicatedBroker(platform, env=env)
        FailoverClient("alice", broker, attestation)
        before = broker.measurement
        broker.fail_active()
        broker._failover()
        assert broker.measurement == before

    def test_failover_reported_to_orchestrator(self, world):
        env, platform, attestation = world
        orchestrator = Orchestrator(env, QosMonitor(env), ServiceRegistry())
        broker = ReplicatedBroker(platform, env=env,
                                  orchestrator=orchestrator)
        publisher = FailoverClient("alice", broker, attestation)
        FaultSchedule(env).fail_broker_at(0.010, broker)
        env.call_at(0.020, lambda: publisher.publish(
            Publication(attributes={"t": 1}, payload=b"x")
        ))
        env.run()
        kinds = [(d.service_name, d.kind) for d in orchestrator.detections]
        assert ("scbr-broker", "broker-failover") in kinds
        latencies = orchestrator.detection_latencies()
        assert latencies and latencies[0] == pytest.approx(0.010)


class TestExactlyOnce:
    def test_dropped_notifications_replayed_once(self, world):
        env, platform, attestation = world
        chaos = ChaosInjector(seed=7, notification_drop_rate=0.4)
        broker = ReplicatedBroker(platform, env=env, chaos=chaos)
        publisher = FailoverClient("alice", broker, attestation)
        subscriber = FailoverClient("bob", broker, attestation)
        subscriber.subscribe(match_all("bob"))
        for index in range(20):
            publisher.publish(
                Publication(attributes={"t": index}, payload=b"p%d" % index)
            )
        assert broker.notifications_dropped > 0
        assert len(subscriber.inbox) < 20
        subscriber.sync()
        assert sorted(
            p.attributes["_pub_seq"] for p in subscriber.inbox
        ) == list(range(20))
        # A full unfiltered replay redelivers everything; sequence
        # dedup keeps the inbox exactly-once.
        broker.replay("bob")
        assert len(subscriber.inbox) == 20
        assert subscriber.duplicates_discarded > 0

    def test_exactly_once_across_failover(self, world):
        env, platform, attestation = world
        chaos = ChaosInjector(seed=7, notification_drop_rate=0.25)
        broker = ReplicatedBroker(platform, env=env, chaos=chaos)
        publisher = FailoverClient("alice", broker, attestation)
        subscriber = FailoverClient("bob", broker, attestation)
        subscriber.subscribe(match_all("bob"))
        for index in range(20):
            if index == 10:
                broker.fail_active()
            publisher.publish(
                Publication(attributes={"t": index}, payload=b"p%d" % index)
            )
        subscriber.sync()
        assert sorted(
            p.attributes["_pub_seq"] for p in subscriber.inbox
        ) == list(range(20))
        # Pre-failover notifications replay sealed under the old key;
        # the key history opens them.
        assert subscriber.reattachments == 1

    def test_two_subscribers_isolated_logs(self, world):
        env, platform, attestation = world
        broker = ReplicatedBroker(platform, env=env)
        publisher = FailoverClient("alice", broker, attestation)
        bob = FailoverClient("bob", broker, attestation)
        carol = FailoverClient("carol", broker, attestation)
        bob.subscribe(match_all("bob"))
        carol.subscribe(
            Subscription("s-carol",
                         [Constraint("t", Operator.GE, 5)], "carol")
        )
        for index in range(10):
            publisher.publish(
                Publication(attributes={"t": index}, payload=b"p%d" % index)
            )
        bob.sync()
        carol.sync()
        assert len(bob.inbox) == 10
        assert len(carol.inbox) == 5
        assert all(p.attributes["t"] >= 5 for p in carol.inbox)
