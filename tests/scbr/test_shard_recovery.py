"""Fault tolerance of the sharded matching plane.

Shard enclaves die (chaos, fault schedules, direct kills); the plane
must detect, respawn from plane-sealed snapshots + mutation logs, and
never let a publication's match set shrink silently.  The referee for
every recovery is the single-index oracle (``tests.scbr.oracle``).
"""

import random

import pytest

from repro.chaos import ChaosInjector, ChaosShardPlane, FaultSchedule
from repro.errors import ConfigurationError, RetryExhaustedError
from repro.microservices import Orchestrator, QosMonitor, ServiceRegistry
from repro.scbr.filters import Constraint, Operator, Publication, Subscription
from repro.scbr.health import ShardHealthPolicy
from repro.scbr.messages import EncryptedEnvelope, serialize_publication
from repro.scbr.router import ScbrClient
from repro.scbr.sharding import PartialCoverage, ShardedScbrRouter
from repro.scbr.workload import ScbrWorkload
from repro.sgx.attestation import AttestationService
from repro.sim.events import Environment

from tests.scbr.oracle import oracle_match_sets


def sub(sub_id, bound, subscriber="alice", attribute="x"):
    return Subscription(
        sub_id, [Constraint(attribute, Operator.LE, bound)], subscriber
    )


def _publication(publisher, attributes):
    return EncryptedEnvelope.seal(
        publisher.key, publisher.client_id, "publish",
        serialize_publication(Publication(attributes)),
    )


def make_plane(seed=41, shards=2, **kwargs):
    from repro.sgx.platform import SgxPlatform

    platform = SgxPlatform(seed=seed, quoting_key_bits=512)
    attestation = AttestationService()
    attestation.register_platform(
        platform.platform_id, platform.quoting_enclave.public_key
    )
    router = ShardedScbrRouter(
        platform,
        lambda i: SgxPlatform(seed=100 * seed + i, quoting_key_bits=512),
        attestation_service=attestation,
        shards=shards,
        **kwargs,
    )
    attestation.trust_measurement(router.measurement)
    return router, attestation


def _matched_ids(alice, routed):
    """Union of matched subscription ids across routed envelopes."""
    matched = []
    for _subscriber, envelope in routed:
        _pub, ids = alice.open_notification_detail(envelope)
        matched.extend(ids)
    return sorted(matched)


class TestSnapshotRecovery:
    def test_recovered_shard_matches_like_before(self):
        router, attestation = make_plane(seed=47)
        alice = ScbrClient("alice", router, attestation)
        publisher = ScbrClient("publisher", router, attestation)
        for position in range(6):
            alice.subscribe(sub("s%d" % position, 10 * position))
        victim = router.shards[0].shard_id
        assert router.fail_shard(victim)
        assert not router.fail_shard(victim)  # already dead
        router.recover_shard(victim)
        routed = router.publish_routed(_publication(publisher, {"x": 25}))
        assert _matched_ids(alice, routed) == ["s3", "s4", "s5"]
        (episode,) = router.recovery_episodes
        assert episode["shard_id"] == victim
        assert episode["recovery_seconds"] > 0
        router.check_invariants()

    def test_mutations_after_snapshot_replay_from_log(self):
        # A tiny snapshot interval would hide log replay; a huge one
        # exercises it: every mutation since bring-up is in the log.
        router, attestation = make_plane(seed=48, snapshot_interval=1000)
        alice = ScbrClient("alice", router, attestation)
        publisher = ScbrClient("publisher", router, attestation)
        for position in range(8):
            alice.subscribe(sub("s%d" % position, 10 * position))
        alice.unsubscribe("s7")
        for shard in list(router.shards):
            router.fail_shard(shard.shard_id)
            router.recover_shard(shard.shard_id)
        assert sum(e["replayed"] for e in router.recovery_episodes) > 0
        # Only s7 (bound 70) could match x=65, and its removal was in
        # the replayed log -- a lost remove would resurrect it here.
        routed = router.publish_routed(_publication(publisher, {"x": 65}))
        assert _matched_ids(alice, routed) == []
        routed = router.publish_routed(_publication(publisher, {"x": 55}))
        assert _matched_ids(alice, routed) == ["s6"]
        router.check_invariants()

    def test_dead_shard_releases_its_memory(self):
        router, attestation = make_plane(seed=49)
        alice = ScbrClient("alice", router, attestation)
        for position in range(6):
            alice.subscribe(sub("s%d" % position, 10 * position))
        victim = router.shards[0]
        assert victim.enclave.memory.resident_bytes > 0
        router.fail_shard(victim.shard_id)
        assert victim.enclave.memory.resident_bytes == 0
        assert victim.enclave.memory.released
        # Nothing of the dead enclave lingers in its platform's EPC.
        owner = victim.enclave.memory.name
        assert all(
            key[0] != owner
            for key in victim.platform.epc.resident_page_keys()
        )
        router.recover_shard(victim.shard_id)
        router.check_invariants()

    def test_unsubscribe_during_outage_recovers_first(self):
        router, attestation = make_plane(seed=50)
        alice = ScbrClient("alice", router, attestation)
        publisher = ScbrClient("publisher", router, attestation)
        alice.subscribe(sub("gone", 50))
        home = router._home["gone"]
        router.fail_shard(home.shard_id)
        alice.unsubscribe("gone")
        routed = router.publish_routed(_publication(publisher, {"x": 10}))
        assert routed == []
        router.check_invariants()


class TestCoverageGuarantees:
    def test_report_mode_names_missing_partitions(self):
        router, attestation = make_plane(seed=51, on_partial="report")
        alice = ScbrClient("alice", router, attestation)
        publisher = ScbrClient("publisher", router, attestation)
        alice.subscribe(sub("ax", 50, attribute="x"))
        alice.subscribe(sub("ay", 50, attribute="y"))
        victim = router._home["ay"].shard_id
        router.fail_shard(victim)
        result = router.publish_routed(
            _publication(publisher, {"x": 10, "y": 10})
        )
        assert isinstance(result, PartialCoverage)
        assert result.missing == (victim,)
        assert not result.complete
        # The answering partition's matches are still delivered, and
        # "ay" is exactly what the report says is unknown.
        assert _matched_ids(alice, result.routed) == ["ax"]
        assert router.partial_publishes == 1
        # After healing, the same publication is complete again.
        router.recover_shard(victim)
        routed = router.publish_routed(
            _publication(publisher, {"x": 10, "y": 10})
        )
        assert _matched_ids(alice, routed) == ["ax", "ay"]

    def test_retry_mode_heals_and_delivers_in_full(self):
        router, attestation = make_plane(seed=52)  # on_partial="retry"
        alice = ScbrClient("alice", router, attestation)
        publisher = ScbrClient("publisher", router, attestation)
        alice.subscribe(sub("ax", 50, attribute="x"))
        alice.subscribe(sub("ay", 50, attribute="y"))
        router.fail_shard(router._home["ay"].shard_id)
        routed = router.publish_routed(
            _publication(publisher, {"x": 10, "y": 10})
        )
        assert _matched_ids(alice, routed) == ["ax", "ay"]
        assert router.partial_publishes == 1
        assert len(router.recovery_episodes) == 1
        router.check_invariants()

    def test_invalid_on_partial_rejected(self):
        with pytest.raises(ConfigurationError):
            make_plane(seed=53, on_partial="ignore")


class TestHeartbeatDetection:
    def test_scheduled_crash_is_detected_and_healed(self):
        env = Environment()
        injector = ChaosInjector(seed=7)
        monitor = QosMonitor(env)
        orchestrator = Orchestrator(env, monitor, ServiceRegistry())
        router, attestation = make_plane(
            seed=54, env=env, chaos=injector, orchestrator=orchestrator,
        )
        alice = ScbrClient("alice", router, attestation)
        publisher = ScbrClient("publisher", router, attestation)
        for position in range(6):
            alice.subscribe(sub("s%d" % position, 10 * position))
        schedule = FaultSchedule(env, injector)
        schedule.crash_shard_at(0.0032, router, 1)
        router.start_health(0.05)
        env.run(until=0.05)
        # The scripted fault fired and was logged under the plane name.
        assert any(
            name == "scbr-plane/shard-1" and kind == "shard-crash"
            for _t, kind, name in schedule.fired
        )
        # Detected once, with a finite onset-to-detection latency.
        (detection,) = router.monitor.detections
        assert detection.shard_id == 1
        assert detection.onset == pytest.approx(0.0032)
        assert 0 < detection.detection_latency < 0.05
        # Recovered: one episode, reported to the orchestrator too.
        (episode,) = router.recovery_episodes
        assert episode["shard_id"] == 1
        assert orchestrator.recovery_latencies() == [
            episode["recovery_seconds"]
        ]
        assert [d.kind for d in orchestrator.detections] == ["shard-liveness"]
        # And the healed plane still matches in full.
        routed = router.publish_routed(_publication(publisher, {"x": 25}))
        assert _matched_ids(alice, routed) == ["s3", "s4", "s5"]
        router.check_invariants()

    def test_lost_heartbeats_cause_harmless_false_positive(self):
        env = Environment()
        # Every beat is eaten: the detector must eventually suspect a
        # perfectly healthy shard -- and recovery must be idempotent.
        injector = ChaosInjector(seed=3, heartbeat_loss_rate=1.0)
        router, attestation = make_plane(
            seed=55, env=env, chaos=injector,
            health_policy=ShardHealthPolicy(startup_timeout=0.003),
        )
        alice = ScbrClient("alice", router, attestation)
        publisher = ScbrClient("publisher", router, attestation)
        for position in range(4):
            alice.subscribe(sub("s%d" % position, 10 * position))
        router.start_health(0.005)
        env.run(until=0.005)
        assert len(router.monitor.detections) >= 1
        assert len(router.recovery_episodes) >= 1
        assert injector.counts().get("heartbeat-loss", 0) > 0
        routed = router.publish_routed(_publication(publisher, {"x": 15}))
        assert _matched_ids(alice, routed) == ["s2", "s3"]
        router.check_invariants()

    def test_probing_without_env_rejected(self):
        router, _attestation = make_plane(seed=56)
        with pytest.raises(ConfigurationError):
            router.probe_heartbeats()
        with pytest.raises(ConfigurationError):
            router.start_health(0.01)


def _churn_scenario(seed, subscriptions=36, publications=6, crashes=3):
    """Randomised insert/remove churn with crashes at seeded points.

    Returns (per-publication delivered match sets, fault log, plane).
    The oracle gets the same live subscription set; the plane must
    deliver exactly the oracle's match sets despite losing shards
    mid-churn.
    """
    rng = random.Random(seed)
    router, attestation = make_plane(
        seed=57 + seed % 13, shards=3, snapshot_interval=4
    )
    alice = ScbrClient("alice", router, attestation)
    publisher = ScbrClient("publisher", router, attestation)
    workload = ScbrWorkload(seed=seed, num_attributes=6,
                            containment_fraction=0.5, num_subscribers=1)
    live = {}
    crash_steps = sorted(rng.sample(range(subscriptions), crashes))
    for position, subscription in enumerate(
        workload.subscriptions(subscriptions)
    ):
        subscription = Subscription(
            subscription.subscription_id,
            list(subscription.constraints.values()),
            "alice",
        )
        alice.subscribe(subscription)
        live[subscription.subscription_id] = subscription
        if position % 5 == 2 and len(live) > 1:
            victim_id = rng.choice(sorted(live))
            alice.unsubscribe(victim_id)
            del live[victim_id]
        if position in crash_steps:
            shard = rng.choice(router.shards)
            router.fail_shard(shard.shard_id)
            if rng.random() < 0.5:
                # Sometimes heal eagerly; otherwise the next publish
                # or mutation on that shard must self-heal.
                router.recover_shard(shard.shard_id)
    probe_publications = workload.publications(publications)
    deliveries = []
    for publication in probe_publications:
        routed = router.publish_routed(
            _publication(publisher, publication.attributes)
        )
        deliveries.append(_matched_ids(alice, routed))
    oracle = oracle_match_sets(live.values(), probe_publications)
    router.check_invariants()
    return deliveries, router, oracle


class TestChurnAgainstOracle:
    @pytest.mark.parametrize("seed", [1, 8, 23])
    def test_post_recovery_match_sets_equal_oracle(self, seed):
        deliveries, router, oracle = _churn_scenario(seed)
        assert deliveries == oracle
        assert router.shard_failures >= 3
        assert len(router.recovery_episodes) >= 1

    def test_same_seed_same_deliveries_and_faults(self):
        first, router_a, _ = _churn_scenario(5)
        second, router_b, _ = _churn_scenario(5)
        assert first == second
        assert router_a.shard_failures == router_b.shard_failures
        assert (
            [e["shard_id"] for e in router_a.recovery_episodes]
            == [e["shard_id"] for e in router_b.recovery_episodes]
        )


class TestChaosShardPlane:
    def test_wrapper_crashes_and_plane_heals(self):
        injector = ChaosInjector(seed=11, shard_crash_rate=0.35)
        router, attestation = make_plane(seed=58, shards=3)
        hostile = ChaosShardPlane(router, injector)
        alice = ScbrClient("alice", router, attestation)
        publisher = ScbrClient("publisher", router, attestation)
        for position in range(9):
            alice.subscribe(sub("s%d" % position, 10 * position))
        for _ in range(8):
            routed = hostile.publish_routed(
                _publication(publisher, {"x": 45})
            )
            assert _matched_ids(alice, routed) == [
                "s5", "s6", "s7", "s8"
            ]
        assert hostile.crashes_injected > 0
        assert len(router.recovery_episodes) == hostile.crashes_injected
        router.check_invariants()

    def test_retry_exhaustion_is_a_typed_failure(self):
        """If healing itself keeps losing shards, the publish fails
        with RetryExhaustedError -- never a silently partial result."""
        injector = ChaosInjector(seed=2, shard_crash_rate=1.0)
        router, attestation = make_plane(seed=59, shards=2)
        # Make every recovery immediately fatal again by crashing on
        # each publish attempt through the wrapper.
        hostile = ChaosShardPlane(router, injector)
        alice = ScbrClient("alice", router, attestation)
        publisher = ScbrClient("publisher", router, attestation)
        alice.subscribe(sub("s0", 50))

        original = router._publish_once

        def sabotaged(envelope):
            routed, missing = original(envelope)
            for shard in router.shards:
                if not shard.enclave.destroyed:
                    router.fail_shard(shard.shard_id)
            return routed, tuple(
                sorted(set(missing) | {s.shard_id for s in router.shards})
            )

        router._publish_once = sabotaged
        with pytest.raises(RetryExhaustedError):
            hostile.publish_routed(_publication(publisher, {"x": 10}))
