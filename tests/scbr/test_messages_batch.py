"""Tests for batched SCBR envelopes."""

import pytest

from repro.errors import IntegrityError
from repro.crypto.aead import AeadKey
from repro.crypto.primitives import DeterministicRandomSource
from repro.scbr.messages import EncryptedEnvelope


def key(seed=0):
    source = DeterministicRandomSource(seed)
    return AeadKey(source.bytes(32), random_source=source)


class TestBatchEnvelopes:
    def test_round_trip(self):
        k = key()
        messages = [b"pub-1", b"pub-2", b"pub-3"]
        envelope = EncryptedEnvelope.seal_batch(k, "client-a", "pub", messages)
        assert envelope.open_batch(k) == messages

    def test_bound_to_sender(self):
        k = key()
        envelope = EncryptedEnvelope.seal_batch(k, "client-a", "pub", [b"m"])
        forged = EncryptedEnvelope("client-b", "pub", envelope.blob)
        with pytest.raises(IntegrityError):
            forged.open_batch(k)

    def test_bound_to_kind(self):
        k = key()
        envelope = EncryptedEnvelope.seal_batch(k, "client-a", "pub", [b"m"])
        forged = EncryptedEnvelope("client-a", "sub", envelope.blob)
        with pytest.raises(IntegrityError):
            forged.open_batch(k)

    def test_wrong_key_rejected(self):
        envelope = EncryptedEnvelope.seal_batch(key(1), "c", "pub", [b"m"])
        with pytest.raises(IntegrityError):
            envelope.open_batch(key(2))

    def test_plaintext_not_on_wire(self):
        envelope = EncryptedEnvelope.seal_batch(
            key(), "c", "pub", [b"TOP-SECRET-PAYLOAD"]
        )
        assert b"TOP-SECRET-PAYLOAD" not in envelope.blob

    def test_batch_framing_amortised(self):
        k = key()
        messages = [b"m" * 32] * 50
        batch = EncryptedEnvelope.seal_batch(k, "c", "pub", messages)
        singles = [EncryptedEnvelope.seal(k, "c", "pub", m) for m in messages]
        assert len(batch.blob) < sum(len(e.blob) for e in singles)

    def test_aad_matches_single_envelope_binding(self):
        """Batch and single envelopes share the (sender, kind) AAD scheme."""
        k = key()
        single = EncryptedEnvelope.seal(k, "c", "pub", b"m")
        assert single.open(k) == b"m"
        batch = EncryptedEnvelope.seal_batch(k, "c", "pub", [b"m"])
        assert batch.open_batch(k) == [b"m"]
        # A batch blob cannot be opened as a single envelope.
        with pytest.raises(IntegrityError):
            EncryptedEnvelope("c", "pub", batch.blob).open(k)
