"""Tests for subscription removal (index, naive, router)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigurationError, IntegrityError
from repro.scbr.filters import Constraint, Operator, Publication, Subscription
from repro.scbr.index import ContainmentIndex
from repro.scbr.naive import LinearIndex
from repro.scbr.workload import ScbrWorkload


def sub(sub_id, bound):
    return Subscription(sub_id, [Constraint("x", Operator.LE, bound)])


class TestIndexRemoval:
    def test_remove_leaf(self):
        index = ContainmentIndex()
        index.insert(sub("a", 100))
        index.insert(sub("b", 50))
        index.remove("b")
        assert len(index) == 1
        assert "b" not in index
        assert index.match(Publication({"x": 10})) == {"a"}

    def test_remove_middle_of_chain_hoists_children(self):
        index = ContainmentIndex()
        index.insert(sub("a", 100))
        index.insert(sub("b", 50))
        index.insert(sub("c", 10))
        index.remove("b")
        index.check_invariants()
        assert index.match(Publication({"x": 5})) == {"a", "c"}
        assert index.depth() == 2

    def test_remove_root_promotes_children_to_roots(self):
        index = ContainmentIndex()
        index.insert(sub("a", 100))
        index.insert(sub("b", 50))
        index.remove("a")
        index.check_invariants()
        assert index.match(Publication({"x": 40})) == {"b"}
        assert len(index._roots) == 1

    def test_remove_unknown_rejected(self):
        with pytest.raises(ConfigurationError):
            ContainmentIndex().remove("ghost")

    def test_duplicate_insert_rejected(self):
        index = ContainmentIndex()
        index.insert(sub("a", 100))
        with pytest.raises(ConfigurationError):
            index.insert(sub("a", 50))

    def test_reinsert_after_remove(self):
        index = ContainmentIndex()
        index.insert(sub("a", 100))
        index.remove("a")
        index.insert(sub("a", 30))
        assert index.match(Publication({"x": 20})) == {"a"}

    @settings(max_examples=15, deadline=None)
    @given(st.integers(0, 2**32 - 1), st.data())
    def test_removal_preserves_equivalence_property(self, seed, data):
        workload = ScbrWorkload(seed=seed, num_attributes=8,
                                containment_fraction=0.6)
        subscriptions = workload.subscriptions(60)
        index = ContainmentIndex()
        naive = LinearIndex()
        for subscription in subscriptions:
            index.insert(subscription)
            naive.insert(subscription)
        doomed = data.draw(
            st.lists(
                st.sampled_from([s.subscription_id for s in subscriptions]),
                unique=True, max_size=30,
            )
        )
        for subscription_id in doomed:
            index.remove(subscription_id)
            naive.remove(subscription_id)
        index.check_invariants()
        for publication in workload.publications(8):
            assert index.match(publication) == naive.match(publication)

    @settings(max_examples=15, deadline=None)
    @given(st.integers(0, 2**32 - 1), st.data())
    def test_interleaved_churn_preserves_equivalence(self, seed, data):
        """Randomly interleaved inserts and removes: the forest must
        stay invariant-clean *throughout*, not just at the end --
        re-parenting on remove happens while later inserts still
        descend through the affected chains."""
        workload = ScbrWorkload(seed=seed, num_attributes=8,
                                containment_fraction=0.6)
        subscriptions = workload.subscriptions(50)
        publications = workload.publications(6)
        index = ContainmentIndex()
        naive = LinearIndex()
        live = []
        for subscription in subscriptions:
            index.insert(subscription)
            naive.insert(subscription)
            live.append(subscription.subscription_id)
            if len(live) > 1 and data.draw(st.booleans()):
                victim = live.pop(
                    data.draw(st.integers(0, len(live) - 1))
                )
                index.remove(victim)
                naive.remove(victim)
                index.check_invariants()
        index.check_invariants()
        assert len(index) == len(live)
        for publication in publications:
            assert index.match(publication) == naive.match(publication)


class TestIndexMemoryRelease:
    def _enclave_memory(self):
        from repro.sgx.costs import DEFAULT_COSTS
        from repro.sgx.memory import EpcModel, SimulatedMemory
        from repro.sim.clock import CycleClock

        costs = DEFAULT_COSTS
        return SimulatedMemory(
            CycleClock(), costs, enclave=True, epc=EpcModel(costs),
            name="scbr",
        )

    def test_remove_releases_enclave_memory(self):
        memory = self._enclave_memory()
        index = ContainmentIndex(memory=memory, record_bytes=4096)
        for position in range(8):
            index.insert(sub("s%d" % position, 100 - position))
        assert memory.resident_bytes == 8 * 4096
        index.remove("s3")
        index.remove("s7")
        assert memory.resident_bytes == 6 * 4096
        # Allocation is bump-only: the high-water mark is unchanged.
        assert memory.allocated_bytes == 8 * 4096

    def test_reinsert_allocates_a_fresh_region(self):
        memory = self._enclave_memory()
        index = ContainmentIndex(memory=memory, record_bytes=4096)
        index.insert(sub("a", 100))
        index.remove("a")
        index.insert(sub("a", 50))
        assert memory.resident_bytes == 4096
        assert memory.allocated_bytes == 2 * 4096


class TestLinearRemoval:
    def test_remove(self):
        naive = LinearIndex()
        naive.insert(sub("a", 100))
        removed = naive.remove("a")
        assert removed.subscription_id == "a"
        assert len(naive) == 0

    def test_remove_unknown(self):
        with pytest.raises(ConfigurationError):
            LinearIndex().remove("ghost")


class TestRouterUnsubscribe:
    @pytest.fixture()
    def world(self):
        from repro.scbr.router import ScbrClient, ScbrRouter
        from repro.sgx.attestation import AttestationService
        from repro.sgx.platform import SgxPlatform

        platform = SgxPlatform(seed=37, quoting_key_bits=512)
        attestation = AttestationService()
        attestation.register_platform(
            platform.platform_id, platform.quoting_enclave.public_key
        )
        router = ScbrRouter(platform)
        attestation.trust_measurement(router.measurement)
        alice = ScbrClient("alice", router, attestation)
        bob = ScbrClient("bob", router, attestation)
        return router, alice, bob

    def test_owner_can_unsubscribe(self, world):
        router, alice, bob = world
        alice.subscribe(
            Subscription("s1", [Constraint("t", Operator.GE, 10)], "alice")
        )
        assert router.stats()["subscriptions"] == 1
        alice.unsubscribe("s1")
        assert router.stats()["subscriptions"] == 0
        assert bob.publish(Publication({"t": 50})) == []

    def test_non_owner_rejected(self, world):
        router, alice, bob = world
        alice.subscribe(
            Subscription("s1", [Constraint("t", Operator.GE, 10)], "alice")
        )
        with pytest.raises(IntegrityError):
            bob.unsubscribe("s1")
        assert router.stats()["subscriptions"] == 1
