"""The single-index oracle: ground truth for distributed matching.

Routing -- across a broker overlay (A5) or across the sharded matching
plane's partitions (E6, the recovery tests) -- changes *where* matching
happens, never *what* is delivered.  One all-knowing
:class:`~repro.scbr.index.ContainmentIndex` holding every live
subscription is therefore the exact delivery oracle every distributed
or fault-injected configuration must reproduce.

Shared between ``tests/`` and ``benchmarks/`` (both import it as
``tests.scbr.oracle``) so the A5 overlay check, the shard-recovery
tests, and the E6 failover bench all judge against the same referee.
"""

from repro.scbr.index import ContainmentIndex
from repro.scbr.workload import ScbrWorkload


def oracle_match_sets(subscriptions, publications):
    """Per-publication sorted match sets from a single all-knowing index.

    ``subscriptions`` is the set live at match time (insert churn minus
    removals already applied); the result is what any correct routing
    of ``publications`` must deliver, in publication order.
    """
    index = ContainmentIndex()
    for subscription in subscriptions:
        index.insert(subscription)
    return [sorted(index.match(p)) for p in publications]


def oracle_delivery_sets(subscriptions, publications):
    """Like :func:`oracle_match_sets` but per-subscriber.

    Returns, per publication, a sorted list of ``(subscriber, sorted
    subscription ids)`` pairs -- the notification fan-out a
    deduplicating router must produce exactly.
    """
    by_id = {s.subscription_id: s.subscriber for s in subscriptions}
    deliveries = []
    for matched in oracle_match_sets(subscriptions, publications):
        fanout = {}
        for subscription_id in matched:
            fanout.setdefault(by_id[subscription_id], []).append(
                subscription_id
            )
        deliveries.append(
            sorted((who, sorted(ids)) for who, ids in fanout.items())
        )
    return deliveries


def oracle_workload_deliveries(seed, num_attributes, containment_fraction,
                               num_subscriptions, num_publications):
    """A5's original convenience: oracle match sets for a seeded workload."""
    workload = ScbrWorkload(seed=seed, num_attributes=num_attributes,
                            containment_fraction=containment_fraction)
    return oracle_match_sets(
        workload.subscriptions(num_subscriptions),
        workload.publications(num_publications),
    )
