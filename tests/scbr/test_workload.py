"""Tests for the SCBR workload generator."""

from repro.scbr.index import ContainmentIndex
from repro.scbr.naive import LinearIndex
from repro.scbr.workload import ScbrWorkload


class TestWorkload:
    def test_deterministic(self):
        a = ScbrWorkload(seed=5).subscriptions(20)
        b = ScbrWorkload(seed=5).subscriptions(20)
        assert [s.subscription_id for s in a] == [s.subscription_id for s in b]
        assert [list(s.constraints) for s in a] == [list(s.constraints) for s in b]

    def test_seed_sensitivity(self):
        a = ScbrWorkload(seed=1).subscription()
        b = ScbrWorkload(seed=2).subscription()
        assert (
            list(a.constraints) != list(b.constraints)
            or [c.value for c in a.constraints.values()]
            != [c.value for c in b.constraints.values()]
        )

    def test_constraint_count_in_range(self):
        workload = ScbrWorkload(seed=3, constraints_per_sub=(2, 4))
        for subscription in workload.subscriptions(100):
            assert 2 <= len(subscription.constraints) <= 4

    def test_specialised_subscriptions_are_covered(self):
        workload = ScbrWorkload(seed=7, containment_fraction=1.0)
        first = workload.subscription()
        second = workload.subscription()
        assert first.covers(second)

    def test_zero_containment_gives_flat_index(self):
        workload = ScbrWorkload(seed=7, num_attributes=200,
                                containment_fraction=0.0)
        index = ContainmentIndex()
        for subscription in workload.subscriptions(100):
            index.insert(subscription)
        # Random wide-attribute subscriptions rarely cover each other.
        assert index.depth() <= 3

    def test_fill_index_reaches_target_bytes(self):
        workload = ScbrWorkload(seed=1)
        index = LinearIndex(record_bytes=512)
        workload.fill_index(index, 512 * 100)
        assert len(index) == 100
        assert index.database_bytes == 512 * 100

    def test_publications_have_bounded_attributes(self):
        workload = ScbrWorkload(seed=9)
        for publication in workload.publications(50):
            assert 3 <= len(publication.attributes) <= 8
            for value in publication.attributes.values():
                assert 0.0 <= value <= 1000.0

    def test_some_publications_match_database(self):
        workload = ScbrWorkload(seed=11, num_attributes=10)
        index = LinearIndex()
        for subscription in workload.subscriptions(300):
            index.insert(subscription)
        total_matches = sum(
            len(index.match(publication))
            for publication in workload.publications(30)
        )
        assert total_matches > 0
