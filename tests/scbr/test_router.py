"""Tests for the enclave-hosted router, key exchange, and envelopes."""

import pytest

from repro.errors import AttestationError, IntegrityError
from repro.crypto.aead import AeadKey
from repro.scbr.filters import Constraint, Operator, Publication, Subscription
from repro.scbr.messages import (
    EncryptedEnvelope,
    deserialize_publication,
    deserialize_subscription,
    serialize_publication,
    serialize_subscription,
)
from repro.scbr.router import ROUTER_CODE, ScbrClient, ScbrRouter
from repro.sgx.attestation import AttestationService
from repro.sgx.platform import SgxPlatform


@pytest.fixture()
def setup():
    platform = SgxPlatform(seed=31, quoting_key_bits=512)
    attestation = AttestationService()
    attestation.register_platform(
        platform.platform_id, platform.quoting_enclave.public_key
    )
    router = ScbrRouter(platform)
    attestation.trust_measurement(router.measurement)
    return platform, attestation, router


def sub(sub_id, subscriber, attribute="temp", bound=50):
    return Subscription(
        sub_id, [Constraint(attribute, Operator.GE, bound)], subscriber
    )


class TestSerialisation:
    def test_subscription_round_trip(self):
        original = sub("s1", "alice")
        restored = deserialize_subscription(serialize_subscription(original))
        assert restored.subscription_id == "s1"
        assert restored.subscriber == "alice"
        assert restored.covers(original) and original.covers(restored)

    def test_publication_round_trip(self):
        original = Publication({"temp": 61.5}, b"\x01\x02")
        restored = deserialize_publication(serialize_publication(original))
        assert restored == original

    def test_malformed_rejected(self):
        with pytest.raises(IntegrityError):
            deserialize_subscription(b"junk")
        with pytest.raises(IntegrityError):
            deserialize_publication(b"junk")


class TestEnvelopes:
    def test_seal_open_round_trip(self):
        key = AeadKey(b"\x07" * 32)
        envelope = EncryptedEnvelope.seal(key, "alice", "publish", b"data")
        assert envelope.open(key) == b"data"

    def test_kind_binding(self):
        key = AeadKey(b"\x07" * 32)
        envelope = EncryptedEnvelope.seal(key, "alice", "publish", b"data")
        envelope.kind = "subscribe"
        with pytest.raises(IntegrityError):
            envelope.open(key)

    def test_sender_binding(self):
        key = AeadKey(b"\x07" * 32)
        envelope = EncryptedEnvelope.seal(key, "alice", "publish", b"data")
        envelope.sender = "mallory"
        with pytest.raises(IntegrityError):
            envelope.open(key)


class TestEndToEnd:
    def test_publish_reaches_matching_subscriber(self, setup):
        _platform, attestation, router = setup
        alice = ScbrClient("alice", router, attestation)
        bob = ScbrClient("bob", router, attestation)
        alice.subscribe(sub("s1", "alice", bound=50))
        notifications = bob.publish(Publication({"temp": 75}, b"hot"))
        assert len(notifications) == 1
        received = alice.open_notification(notifications[0])
        assert received.attributes == {"temp": 75}
        assert received.payload == b"hot"

    def test_non_matching_publication_produces_nothing(self, setup):
        _platform, attestation, router = setup
        alice = ScbrClient("alice", router, attestation)
        bob = ScbrClient("bob", router, attestation)
        alice.subscribe(sub("s1", "alice", bound=50))
        assert bob.publish(Publication({"temp": 20})) == []

    def test_notification_unreadable_by_others(self, setup):
        _platform, attestation, router = setup
        alice = ScbrClient("alice", router, attestation)
        bob = ScbrClient("bob", router, attestation)
        alice.subscribe(sub("s1", "alice"))
        notifications = bob.publish(Publication({"temp": 75}))
        with pytest.raises(IntegrityError):
            bob.open_notification(notifications[0])

    def test_multiple_subscribers_each_get_own_copy(self, setup):
        _platform, attestation, router = setup
        alice = ScbrClient("alice", router, attestation)
        carol = ScbrClient("carol", router, attestation)
        bob = ScbrClient("bob", router, attestation)
        alice.subscribe(sub("s1", "alice", bound=10))
        carol.subscribe(sub("s2", "carol", bound=20))
        notifications = bob.publish(Publication({"temp": 30}))
        assert len(notifications) == 2
        opened = 0
        for envelope in notifications:
            for client in (alice, carol):
                try:
                    client.open_notification(envelope)
                    opened += 1
                except IntegrityError:
                    pass
        assert opened == 2

    def test_stats_counts_subscriptions(self, setup):
        _platform, attestation, router = setup
        alice = ScbrClient("alice", router, attestation)
        alice.subscribe(sub("s1", "alice"))
        alice.subscribe(sub("s2", "alice", attribute="volt"))
        assert router.stats()["subscriptions"] == 2


class TestSecurity:
    def test_unkeyed_client_rejected(self, setup):
        _platform, _attestation, router = setup
        key = AeadKey(b"\x01" * 32)
        envelope = EncryptedEnvelope.seal(
            key, "stranger", "publish",
            serialize_publication(Publication({"temp": 1})),
        )
        with pytest.raises(AttestationError):
            router.publish(envelope)

    def test_subscription_spoofing_rejected(self, setup):
        """Mallory cannot register a subscription delivered to Alice."""
        _platform, attestation, router = setup
        ScbrClient("alice", router, attestation)
        mallory = ScbrClient("mallory", router, attestation)
        forged = sub("s1", "alice")  # claims alice as subscriber
        with pytest.raises(IntegrityError):
            mallory.subscribe(forged)

    def test_tampered_envelope_rejected(self, setup):
        _platform, attestation, router = setup
        bob = ScbrClient("bob", router, attestation)
        envelope = EncryptedEnvelope.seal(
            bob.key, "bob", "publish",
            serialize_publication(Publication({"temp": 99})),
        )
        envelope.blob = envelope.blob[:-1] + bytes([envelope.blob[-1] ^ 1])
        with pytest.raises(IntegrityError):
            router.publish(envelope)

    def test_mitm_on_key_exchange_detected(self, setup):
        from repro.crypto.dh import DhKeyPair
        from repro.scbr.keyexchange import RouterKeyExchange

        _platform, attestation, router = setup
        mallory_dh = DhKeyPair.generate()
        exchange = RouterKeyExchange(router, attestation)
        with pytest.raises(AttestationError):
            exchange.establish(
                "victim",
                expected_measurement=router.measurement,
                tamper_dh_value=mallory_dh.public_value,
            )

    def test_untrusted_router_code_rejected_by_client(self):
        platform = SgxPlatform(seed=55, quoting_key_bits=512)
        attestation = AttestationService()
        attestation.register_platform(
            platform.platform_id, platform.quoting_enclave.public_key
        )
        router = ScbrRouter(platform)
        # Client pins a different expected measurement.
        with pytest.raises(AttestationError):
            ScbrClient("alice", router, attestation,
                       expected_measurement="0" * 64)

    def test_untrusted_platform_rejected_by_client(self):
        rogue_platform = SgxPlatform(seed=56, quoting_key_bits=512)
        attestation = AttestationService()  # platform never registered
        router = ScbrRouter(rogue_platform)
        with pytest.raises(AttestationError):
            ScbrClient("alice", router, attestation)
