"""Tests for the phi-accrual shard failure detector."""

import pytest

from repro.errors import ConfigurationError
from repro.scbr.health import (
    ShardDetection,
    ShardHealthMonitor,
    ShardHealthPolicy,
)
from repro.sim.events import Environment


def warmed_monitor(env, shard_id=0, beats=8, policy=None):
    """A monitor whose interval window is past the startup phase."""
    monitor = ShardHealthMonitor(env, policy)
    monitor.register(shard_id)
    period = monitor.policy.heartbeat_period
    for _ in range(beats):
        env._now += period  # advance the virtual clock directly
        monitor.beat(shard_id)
    return monitor


class TestShardHealthPolicy:
    def test_defaults_validate(self):
        policy = ShardHealthPolicy()
        assert policy.heartbeat_period > 0
        assert policy.phi_threshold > 0

    @pytest.mark.parametrize("field,value", [
        ("heartbeat_period", 0.0),
        ("phi_threshold", -1.0),
        ("window", 0),
        ("min_samples", 0),
        ("startup_timeout", 0.0),
    ])
    def test_invalid_parameters_rejected(self, field, value):
        with pytest.raises(ConfigurationError):
            ShardHealthPolicy(**{field: value})


class TestShardHealthMonitor:
    def test_steady_heartbeats_keep_phi_low(self):
        env = Environment()
        monitor = warmed_monitor(env)
        assert monitor.phi(0) == 0.0
        # One period late: suspicion is ~log10(e), far below threshold.
        env._now += monitor.policy.heartbeat_period
        assert 0.0 < monitor.phi(0) < monitor.policy.phi_threshold
        assert not monitor.suspects(0)
        assert monitor.poll() == []

    def test_silence_crosses_the_threshold_once(self):
        env = Environment()
        monitor = warmed_monitor(env)
        periods_needed = monitor.policy.phi_threshold / 0.4342944819
        env._now += (periods_needed + 1) * monitor.policy.heartbeat_period
        assert monitor.suspects(0)
        assert monitor.poll() == [0]
        # The episode is latched: further polls stay quiet.
        env._now += monitor.policy.heartbeat_period
        assert monitor.poll() == []
        assert monitor.down() == [0]
        assert len(monitor.detections) == 1

    def test_register_resets_the_episode(self):
        env = Environment()
        monitor = warmed_monitor(env)
        env._now += 20 * monitor.policy.heartbeat_period
        assert monitor.poll() == [0]
        monitor.register(0)  # the replacement came up
        assert monitor.down() == []
        assert monitor.phi(0) == 0.0

    def test_startup_uses_fixed_timeout(self):
        env = Environment()
        monitor = ShardHealthMonitor(env)
        monitor.register(0)
        # Below min_samples the exponential model has no mean interval;
        # suspicion stays zero until the fixed startup timeout elapses.
        env._now += monitor.policy.startup_timeout * 0.9
        assert monitor.phi(0) == 0.0
        env._now += monitor.policy.startup_timeout * 0.2
        assert monitor.suspects(0)

    def test_detection_latency_from_recorded_onset(self):
        env = Environment()
        monitor = warmed_monitor(env)
        onset = env.now
        monitor.record_onset(0)
        env._now += 15 * monitor.policy.heartbeat_period
        assert monitor.poll() == [0]
        (detection,) = monitor.detections
        assert isinstance(detection, ShardDetection)
        assert detection.onset == onset
        assert detection.detection_latency == pytest.approx(env.now - onset)
        assert monitor.detection_latencies() == [detection.detection_latency]

    def test_unknown_shard_rejected_and_forget(self):
        env = Environment()
        monitor = ShardHealthMonitor(env)
        with pytest.raises(ConfigurationError):
            monitor.phi(7)
        monitor.register(7)
        assert monitor.tracked() == [7]
        monitor.forget(7)
        assert monitor.tracked() == []

    def test_unregistered_beat_registers(self):
        env = Environment()
        monitor = ShardHealthMonitor(env)
        monitor.beat(3)
        assert monitor.tracked() == [3]


class TestForgetMidSuspicion:
    """forget() during an outage episode must fully clear the slate."""

    def test_forget_clears_latched_detection_and_history(self):
        env = Environment()
        monitor = warmed_monitor(env)
        monitor.record_onset(0, env.now)
        periods_needed = monitor.policy.phi_threshold / 0.4342944819
        env._now += (periods_needed + 1) * monitor.policy.heartbeat_period
        assert monitor.poll() == [0]
        assert monitor.down() == [0]
        assert [d.shard_id for d in monitor.detections] == [0]

        monitor.forget(0)
        assert monitor.tracked() == []
        assert monitor.down() == []
        assert monitor.detections == [], "latched verdicts must be purged"
        assert monitor.detection_latencies() == []

    def test_reregistered_id_starts_with_clean_phi(self):
        env = Environment()
        monitor = warmed_monitor(env)
        periods_needed = monitor.policy.phi_threshold / 0.4342944819
        env._now += (periods_needed + 1) * monitor.policy.heartbeat_period
        assert monitor.poll() == [0]
        monitor.forget(0)

        # The same id returns as a brand-new shard: empty interval
        # window (startup-timeout regime), zero suspicion, and poll()
        # may latch a *fresh* episode later -- not replay the old one.
        monitor.register(0)
        assert monitor.phi(0) == 0.0
        assert len(monitor._intervals[0]) == 0
        assert monitor.poll() == []
        env._now += monitor.policy.startup_timeout * 1.01
        assert monitor.poll() == [0], "a fresh episode can latch anew"
        assert len(monitor.detections) == 1
        assert monitor.detections[0].onset is None, (
            "the old episode's onset must not leak into the new one"
        )

    def test_forget_keeps_other_shards_detections(self):
        env = Environment()
        monitor = warmed_monitor(env, shard_id=0)
        monitor.register(1)
        periods_needed = monitor.policy.phi_threshold / 0.4342944819
        env._now += max(
            (periods_needed + 1) * monitor.policy.heartbeat_period,
            monitor.policy.startup_timeout,
        )
        assert monitor.poll() == [0, 1]
        monitor.forget(0)
        assert [d.shard_id for d in monitor.detections] == [1]
        assert monitor.down() == [1]
