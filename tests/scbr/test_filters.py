"""Tests for constraints, subscriptions, and the covering relation."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import ConfigurationError
from repro.scbr.filters import Constraint, Operator, Publication, Subscription


def c(attribute, op, value):
    return Constraint(attribute, op, value)


class TestConstraintMatching:
    @pytest.mark.parametrize(
        "op,value,candidate,expected",
        [
            (Operator.EQ, 5, 5, True),
            (Operator.EQ, 5, 6, False),
            (Operator.LT, 5, 4, True),
            (Operator.LT, 5, 5, False),
            (Operator.LE, 5, 5, True),
            (Operator.LE, 5, 6, False),
            (Operator.GT, 5, 6, True),
            (Operator.GT, 5, 5, False),
            (Operator.GE, 5, 5, True),
            (Operator.GE, 5, 4, False),
        ],
    )
    def test_operators(self, op, value, candidate, expected):
        assert c("a", op, value).matches(candidate) is expected


class TestConstraintCovering:
    def test_eq_covers_only_same_eq(self):
        assert c("a", Operator.EQ, 5).covers(c("a", Operator.EQ, 5))
        assert not c("a", Operator.EQ, 5).covers(c("a", Operator.EQ, 6))
        assert not c("a", Operator.EQ, 5).covers(c("a", Operator.LE, 5))

    def test_le_covering(self):
        le10 = c("a", Operator.LE, 10)
        assert le10.covers(c("a", Operator.LE, 10))
        assert le10.covers(c("a", Operator.LE, 7))
        assert le10.covers(c("a", Operator.LT, 10))
        assert le10.covers(c("a", Operator.EQ, 10))
        assert not le10.covers(c("a", Operator.LE, 11))
        assert not le10.covers(c("a", Operator.GE, 0))

    def test_lt_covering(self):
        lt10 = c("a", Operator.LT, 10)
        assert lt10.covers(c("a", Operator.LT, 10))
        assert lt10.covers(c("a", Operator.LE, 9))
        assert lt10.covers(c("a", Operator.EQ, 9))
        assert not lt10.covers(c("a", Operator.LE, 10))
        assert not lt10.covers(c("a", Operator.EQ, 10))

    def test_ge_gt_covering(self):
        ge5 = c("a", Operator.GE, 5)
        assert ge5.covers(c("a", Operator.GE, 6))
        assert ge5.covers(c("a", Operator.GT, 5))
        assert ge5.covers(c("a", Operator.EQ, 5))
        assert not ge5.covers(c("a", Operator.GE, 4))
        gt5 = c("a", Operator.GT, 5)
        assert gt5.covers(c("a", Operator.GT, 5))
        assert gt5.covers(c("a", Operator.GE, 6))
        assert not gt5.covers(c("a", Operator.GE, 5))

    def test_different_attributes_incomparable(self):
        assert not c("a", Operator.LE, 10).covers(c("b", Operator.LE, 5))

    @given(
        st.sampled_from([op for op in Operator if op is not Operator.RANGE]),
        st.sampled_from([op for op in Operator if op is not Operator.RANGE]),
        st.integers(-20, 20),
        st.integers(-20, 20),
        st.integers(-25, 25),
    )
    def test_covering_soundness_property(self, op_a, op_b, value_a, value_b, probe):
        """If A covers B, every value matching B must match A."""
        a = c("x", op_a, value_a)
        b = c("x", op_b, value_b)
        if a.covers(b) and b.matches(probe):
            assert a.matches(probe)


class TestSubscription:
    def test_conjunction_semantics(self):
        sub = Subscription(
            "s1",
            [c("temp", Operator.GE, 20), c("zone", Operator.EQ, 3)],
        )
        assert sub.matches(Publication({"temp": 25, "zone": 3}))
        assert not sub.matches(Publication({"temp": 25, "zone": 4}))
        assert not sub.matches(Publication({"temp": 10, "zone": 3}))

    def test_missing_attribute_fails(self):
        sub = Subscription("s1", [c("temp", Operator.GE, 20)])
        assert not sub.matches(Publication({"humidity": 40}))

    def test_extra_attributes_ignored(self):
        sub = Subscription("s1", [c("temp", Operator.GE, 20)])
        assert sub.matches(Publication({"temp": 30, "noise": 1}))

    def test_duplicate_attribute_rejected(self):
        with pytest.raises(ConfigurationError):
            Subscription(
                "s1", [c("a", Operator.LE, 1), c("a", Operator.GE, 0)]
            )

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            Subscription("s1", [])

    def test_covering_requires_subset_of_attributes(self):
        general = Subscription("g", [c("temp", Operator.GE, 0)])
        specific = Subscription(
            "s", [c("temp", Operator.GE, 10), c("zone", Operator.EQ, 1)]
        )
        assert general.covers(specific)
        assert not specific.covers(general)

    def test_covering_reflexive(self):
        sub = Subscription("s", [c("a", Operator.LE, 5)])
        assert sub.covers(sub)

    @given(st.integers(-20, 20), st.integers(-20, 20), st.integers(-30, 30))
    def test_subscription_covering_soundness(self, bound_a, bound_b, probe):
        a = Subscription("a", [c("x", Operator.LE, bound_a)])
        b = Subscription(
            "b", [c("x", Operator.LE, bound_b), c("y", Operator.GE, 0)]
        )
        publication = Publication({"x": probe, "y": 1})
        if a.covers(b) and b.matches(publication):
            assert a.matches(publication)

    def test_footprint_scales_with_constraints(self):
        small = Subscription("s", [c("a", Operator.LE, 1)])
        large = Subscription(
            "l",
            [c("a", Operator.LE, 1), c("b", Operator.GE, 0), c("d", Operator.EQ, 2)],
        )
        assert large.footprint_estimate() > small.footprint_estimate()


class TestPublication:
    def test_canonical_bytes_stable(self):
        first = Publication({"b": 2, "a": 1}, b"pay")
        second = Publication({"a": 1, "b": 2}, b"pay")
        assert first.canonical_bytes() == second.canonical_bytes()

    def test_canonical_bytes_distinguish_values(self):
        assert (
            Publication({"a": 1}).canonical_bytes()
            != Publication({"a": 2}).canonical_bytes()
        )
