"""Tests for router state persistence via SGX sealing."""

import pytest

from repro.errors import IntegrityError
from repro.scbr.filters import Constraint, Operator, Publication, Subscription
from repro.scbr.router import ScbrClient, ScbrRouter
from repro.sgx.attestation import AttestationService
from repro.sgx.platform import SgxPlatform


@pytest.fixture()
def world():
    platform = SgxPlatform(seed=59, quoting_key_bits=512)
    attestation = AttestationService()
    attestation.register_platform(
        platform.platform_id, platform.quoting_enclave.public_key
    )
    router = ScbrRouter(platform)
    attestation.trust_measurement(router.measurement)
    return platform, attestation, router


def sub(sub_id, subscriber, bound=50):
    return Subscription(
        sub_id, [Constraint("temp", Operator.GE, bound)], subscriber
    )


class TestCheckpointRestore:
    def test_restart_recovers_subscriptions(self, world):
        platform, attestation, router = world
        alice = ScbrClient("alice", router, attestation)
        alice.subscribe(sub("s1", "alice"))
        alice.subscribe(sub("s2", "alice", bound=80))
        blob = router.checkpoint()

        # Router crashes; a fresh instance of the same code restores.
        router.enclave.destroy()
        revived = ScbrRouter(platform)
        assert revived.restore(blob) == 2
        assert revived.stats()["subscriptions"] == 2

        # Clients re-attest and traffic flows to the restored state.
        alice2 = ScbrClient("alice", revived, attestation)
        bob = ScbrClient("bob", revived, attestation)
        notifications = bob.publish(Publication({"temp": 90}))
        # Both subscriptions matched, but alice receives one deduplicated
        # envelope carrying both matched ids.
        assert len(notifications) == 1
        publication, matched = alice2.open_notification_detail(
            notifications[0]
        )
        assert publication.attributes == {"temp": 90}
        assert matched == ["s1", "s2"]

    def test_checkpoint_is_opaque_to_host(self, world):
        _platform, attestation, router = world
        alice = ScbrClient("alice", router, attestation)
        alice.subscribe(sub("secret-subscription-name", "alice"))
        blob = router.checkpoint()
        raw = blob.to_bytes()
        assert b"secret-subscription-name" not in raw
        assert b"temp" not in raw

    def test_foreign_platform_cannot_restore(self, world):
        _platform, attestation, router = world
        ScbrClient("alice", router, attestation).subscribe(sub("s1", "alice"))
        blob = router.checkpoint()
        other_platform = SgxPlatform(seed=60, quoting_key_bits=512)
        foreign_router = ScbrRouter(other_platform)
        with pytest.raises(IntegrityError):
            foreign_router.restore(blob)

    def test_tampered_checkpoint_rejected(self, world):
        platform, attestation, router = world
        ScbrClient("alice", router, attestation).subscribe(sub("s1", "alice"))
        blob = router.checkpoint()
        from repro.sgx.sealing import SealedBlob

        raw = bytearray(blob.to_bytes())
        raw[-1] ^= 1
        tampered = SealedBlob.from_bytes(bytes(raw))
        revived = ScbrRouter(platform)
        with pytest.raises(IntegrityError):
            revived.restore(tampered)

    def test_old_client_keys_do_not_survive_restart(self, world):
        """Channel keys are ephemeral: pre-crash clients must
        re-attest; stale envelopes are rejected."""
        from repro.errors import AttestationError

        platform, attestation, router = world
        alice = ScbrClient("alice", router, attestation)
        alice.subscribe(sub("s1", "alice"))
        blob = router.checkpoint()
        revived = ScbrRouter(platform)
        revived.restore(blob)
        stale = alice  # still holds the old channel key
        with pytest.raises(AttestationError):
            stale.router = revived
            stale.publish(Publication({"temp": 90}))
