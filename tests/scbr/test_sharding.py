"""Tests for the EPC-aware sharded matching plane (index + enclave level)."""

import pytest

from hypothesis import given, settings, strategies as st

from repro.errors import AttestationError, ConfigurationError, IntegrityError
from repro.scbr.filters import Constraint, Operator, Publication, Subscription
from repro.scbr.naive import LinearIndex
from repro.scbr.sharding import (
    EpcWatermarkPolicy,
    ShardPlanner,
    ShardedMatchingPlane,
    ShardedScbrRouter,
)
from repro.scbr.router import ScbrClient
from repro.scbr.workload import ScbrWorkload
from repro.sgx.attestation import AttestationService
from repro.sgx.costs import DEFAULT_COSTS
from repro.sgx.platform import SgxPlatform


def sub(sub_id, bound, subscriber="alice", attribute="x"):
    return Subscription(
        sub_id, [Constraint(attribute, Operator.LE, bound)], subscriber
    )


class TestEpcWatermarkPolicy:
    def test_llc_bound_wins_for_default_records(self):
        """512 B records touching 64 B of hot state fit 2^17 LLC lines:
        the LLC cliff (64 MiB of database) comes before the EPC cliff."""
        policy = EpcWatermarkPolicy(watermark=0.85)
        llc_records = DEFAULT_COSTS.llc_capacity // DEFAULT_COSTS.line_size
        assert policy.max_shard_bytes == int(0.85 * llc_records * 512)
        assert policy.max_shard_bytes < 0.85 * DEFAULT_COSTS.epc_usable

    def test_epc_only_mode(self):
        policy = EpcWatermarkPolicy(watermark=0.85, llc_aware=False)
        assert policy.max_shard_bytes == int(0.85 * DEFAULT_COSTS.epc_usable)

    def test_needs_split_triggers_before_the_mark(self):
        policy = EpcWatermarkPolicy()
        limit = policy.max_shard_bytes
        assert not policy.needs_split(limit - policy.record_bytes)
        assert policy.needs_split(limit)  # next record would cross
        assert policy.needs_split(0, incoming_bytes=limit + 1)

    def test_shards_for_is_a_ceiling(self):
        policy = EpcWatermarkPolicy()
        assert policy.shards_for(0) == 1
        assert policy.shards_for(policy.max_shard_bytes) == 1
        assert policy.shards_for(policy.max_shard_bytes + 1) == 2
        assert policy.shards_for(200 * (1 << 20)) >= 3

    def test_invalid_watermark_rejected(self):
        with pytest.raises(ConfigurationError):
            EpcWatermarkPolicy(watermark=0.0)
        with pytest.raises(ConfigurationError):
            EpcWatermarkPolicy(watermark=1.5)


class TestShardPlanner:
    def test_covering_shard_wins(self):
        assert ShardPlanner.choose([False, True], [0, 4096]) == 1

    def test_first_covering_shard_wins(self):
        assert ShardPlanner.choose([True, True], [4096, 0]) == 0

    def test_no_cover_falls_back_to_least_loaded(self):
        assert ShardPlanner.choose([False, False, False], [512, 0, 512]) == 1

    def test_ties_break_by_position(self):
        assert ShardPlanner.choose([False, False], [512, 512]) == 0

    def test_overloaded_covering_shard_skipped(self):
        slack = 2 * 512
        heavy = [10 * 512, 0]
        assert ShardPlanner.choose([True, False], heavy,
                                   balance_slack=slack) == 1
        light = [slack, 0]
        assert ShardPlanner.choose([True, False], light,
                                   balance_slack=slack) == 0

    def test_misaligned_inputs_rejected(self):
        with pytest.raises(ConfigurationError):
            ShardPlanner.choose([True], [0, 0])
        with pytest.raises(ConfigurationError):
            ShardPlanner.choose([], [])


def tiny_plane(max_records=8, **kwargs):
    """A plane whose shards overflow after ``max_records`` records."""
    policy = EpcWatermarkPolicy(record_bytes=512)
    policy.max_shard_bytes = max_records * 512
    kwargs.setdefault("enclave", False)
    return ShardedMatchingPlane(record_bytes=512, policy=policy, **kwargs)


class TestShardedMatchingPlane:
    def test_starts_with_one_shard(self):
        plane = ShardedMatchingPlane()
        assert plane.shard_count == 1
        assert len(plane) == 0

    def test_split_triggers_at_the_watermark(self):
        plane = tiny_plane(max_records=8)
        for position in range(8):
            plane.insert(sub("s%d" % position, position))
        assert plane.shard_count == 1
        plane.insert(sub("s8", 100))
        assert plane.shard_count == 2
        assert plane.splits == 1
        assert plane.migrated > 0
        plane.check_invariants()

    def test_no_shard_exceeds_the_watermark(self):
        # Containment-free workload: every subtree is one record, so
        # splits can always divide a shard below the watermark.
        plane = tiny_plane(max_records=8)
        workload = ScbrWorkload(seed=5, num_attributes=6,
                                containment_fraction=0.0)
        for subscription in workload.subscriptions(100):
            plane.insert(subscription)
        assert plane.shard_count > 1
        limit = plane.policy.max_shard_bytes
        assert all(size <= limit for size in plane.shard_sizes())
        plane.check_invariants()

    def test_single_chain_overshoots_rather_than_breaking(self):
        """A covering chain longer than the watermark stays whole:
        splits move complete subtrees only, so colocation (pruning) is
        preserved even past the limit rather than serialising the chain
        across shards."""
        plane = tiny_plane(max_records=4)
        for position in range(12):
            plane.insert(sub("chain-%d" % position, 100 - position))
        sizes = plane.shard_sizes()
        assert max(sizes) == 12 * 512  # the chain never broke
        plane.check_invariants()
        matched = plane.match(Publication({"x": 0}))
        assert len(matched) == 12

    def test_covering_chain_stays_colocated(self):
        plane = tiny_plane(max_records=32)
        plane.insert(sub("general", 100))
        home = plane._home["general"]
        for position in range(5):
            tighter = sub("tight-%d" % position, 10 + position)
            plane.insert(tighter)
            assert plane._home[tighter.subscription_id] is home

    def test_remove_then_unknown_rejected(self):
        plane = tiny_plane()
        plane.insert(sub("s1", 10))
        plane.remove("s1")
        assert len(plane) == 0
        with pytest.raises(ConfigurationError):
            plane.remove("s1")

    def test_match_latency_is_slowest_shard(self):
        plane = tiny_plane(max_records=4, enclave=True)
        workload = ScbrWorkload(seed=9, num_attributes=6)
        for subscription in workload.subscriptions(40):
            plane.insert(subscription)
        assert plane.shard_count > 1
        plane.match(workload.publications(1)[0])
        per_shard = [shard.clock.now for shard in plane.shards]
        # The plane's latency can never exceed any one shard's clock
        # advance since construction, and must be positive.
        assert 0 < plane.last_match_cycles <= max(per_shard)

    @settings(max_examples=15, deadline=None)
    @given(st.integers(0, 2**32 - 1), st.integers(30, 120))
    def test_rebalancing_matches_single_index_oracle(self, seed, count):
        """Splits and migrations never change what a publication matches."""
        workload = ScbrWorkload(seed=seed, num_attributes=8,
                                containment_fraction=0.6)
        plane = tiny_plane(max_records=12)
        oracle = LinearIndex()
        subscriptions = workload.subscriptions(count)
        removed = 0
        for position, subscription in enumerate(subscriptions):
            plane.insert(subscription)
            oracle.insert(subscription)
            # Interleave removals so migration happens around holes.
            if position % 7 == 3 and position > removed:
                victim = subscriptions[removed].subscription_id
                plane.remove(victim)
                oracle.remove(victim)
                removed += 1
        plane.check_invariants()
        for publication in workload.publications(10):
            assert plane.match(publication) == oracle.match(publication)


@pytest.fixture()
def plane_setup():
    platform = SgxPlatform(seed=41, quoting_key_bits=512)
    attestation = AttestationService()
    attestation.register_platform(
        platform.platform_id, platform.quoting_enclave.public_key
    )
    router = ShardedScbrRouter(
        platform,
        lambda i: SgxPlatform(seed=100 + i, quoting_key_bits=512),
        attestation_service=attestation,
        shards=2,
    )
    attestation.trust_measurement(router.measurement)
    return platform, attestation, router


class TestShardedScbrRouter:
    def test_publish_reaches_matching_subscribers_once(self, plane_setup):
        _platform, attestation, router = plane_setup
        alice = ScbrClient("alice", router, attestation)
        bob = ScbrClient("bob", router, attestation)
        publisher = ScbrClient("publisher", router, attestation)
        alice.subscribe(sub("a1", 50, "alice"))
        alice.subscribe(sub("a2", 80, "alice"))
        bob.subscribe(sub("b1", 60, "bob"))
        routed = router.publish_routed(_publication(publisher, {"x": 40}))
        # One envelope per subscriber, even though alice matched twice.
        assert [subscriber for subscriber, _ in routed] == ["alice", "bob"]
        for subscriber, envelope in routed:
            client = alice if subscriber == "alice" else bob
            publication, matched = client.open_notification_detail(envelope)
            assert publication.attributes == {"x": 40}
            if subscriber == "alice":
                assert sorted(matched) == ["a1", "a2"]
            else:
                assert matched == ["b1"]

    def test_cross_shard_dedup(self, plane_setup):
        """A subscriber whose subscriptions live on different shards
        still receives exactly one envelope."""
        _platform, attestation, router = plane_setup
        alice = ScbrClient("alice", router, attestation)
        publisher = ScbrClient("publisher", router, attestation)
        # Incomparable filters land on different shards (least-loaded).
        alice.subscribe(sub("ax", 50, "alice", attribute="x"))
        alice.subscribe(sub("ay", 50, "alice", attribute="y"))
        homes = {router._home["ax"].shard_id, router._home["ay"].shard_id}
        assert len(homes) == 2
        routed = router.publish_routed(
            _publication(publisher, {"x": 10, "y": 10})
        )
        assert len(routed) == 1
        _pub, matched = alice.open_notification_detail(routed[0][1])
        assert sorted(matched) == ["ax", "ay"]

    def test_unsubscribe_requires_ownership(self, plane_setup):
        _platform, attestation, router = plane_setup
        alice = ScbrClient("alice", router, attestation)
        mallory = ScbrClient("mallory", router, attestation)
        publisher = ScbrClient("publisher", router, attestation)
        alice.subscribe(sub("a1", 50, "alice"))
        with pytest.raises(IntegrityError):
            mallory.unsubscribe("a1")
        alice.unsubscribe("a1")
        assert router.publish_routed(_publication(publisher, {"x": 10})) == []

    def test_auto_split_migrates_and_keeps_matching(self):
        platform = SgxPlatform(seed=43, quoting_key_bits=512)
        attestation = AttestationService()
        attestation.register_platform(
            platform.platform_id, platform.quoting_enclave.public_key
        )
        policy = EpcWatermarkPolicy(record_bytes=512)
        policy.max_shard_bytes = 10 * 512
        router = ShardedScbrRouter(
            platform,
            lambda i: SgxPlatform(seed=200 + i, quoting_key_bits=512),
            attestation_service=attestation,
            shards=1,
            policy=policy,
        )
        attestation.trust_measurement(router.measurement)
        alice = ScbrClient("alice", router, attestation)
        publisher = ScbrClient("publisher", router, attestation)
        workload = ScbrWorkload(seed=13, num_attributes=6,
                                containment_fraction=0.5,
                                num_subscribers=1)
        oracle = LinearIndex()
        for subscription in workload.subscriptions(30):
            subscription = Subscription(
                subscription.subscription_id,
                list(subscription.constraints.values()),
                "alice",
            )
            alice.subscribe(subscription)
            oracle.insert(subscription)
        assert router.shard_count > 1
        assert router.splits >= 1
        assert router.migrated > 0
        stats = router.stats()
        assert stats["subscriptions"] == 30
        assert stats["database_bytes"] == 30 * 512
        # Runtime-spawned shards hold the same plane key: matching
        # still returns exactly the oracle's match set.
        for publication in workload.publications(5):
            expected = oracle.match(publication)
            routed = router.publish_routed(
                _publication(publisher, publication.attributes)
            )
            if not expected:
                assert routed == []
                continue
            _pub, matched = alice.open_notification_detail(routed[0][1])
            assert set(matched) == expected

    def test_forged_join_offer_rejected(self, plane_setup):
        """A quote over one DH value cannot enrol a different one: the
        host cannot splice its own key into the plane join."""
        platform, _attestation, router = plane_setup
        shard = router.shards[0]
        offer = shard.enclave.ecall("join_offer")
        quote = shard.platform.quoting_enclave.quote(offer["report"])
        from repro.crypto.dh import DhKeyPair

        mallory = DhKeyPair.generate()
        with pytest.raises(AttestationError):
            router.coordinator.ecall(
                "enroll_shard", 99, mallory.public_value, quote
            )

    def test_wrong_measurement_rejected(self, plane_setup):
        """The coordinator's own (correctly quoted) offer cannot join as
        a shard: the pinned shard measurement does not match."""
        platform, _attestation, router = plane_setup
        offer = router.coordinator.ecall("channel_offer", "probe")
        quote = platform.quoting_enclave.quote(offer["report"])
        with pytest.raises(AttestationError):
            router.coordinator.ecall(
                "enroll_shard", 99, offer["dh_public"], quote
            )


def _publication(publisher, attributes):
    from repro.scbr.messages import EncryptedEnvelope, serialize_publication

    return EncryptedEnvelope.seal(
        publisher.key, publisher.client_id, "publish",
        serialize_publication(Publication(attributes)),
    )
