"""Tests for the fleet-scale attestation/provisioning plane."""

import pytest

from repro.errors import AttestationError, ConfigurationError, IntegrityError
from repro.crypto.dh import DhKeyPair
from repro.scbr.filters import Constraint, Operator, Publication, Subscription
from repro.scbr.keyexchange import dh_commitment
from repro.scbr.messages import EncryptedEnvelope, serialize_publication
from repro.scbr.provisioning import (
    CachedAttestationVerifier,
    batch_join_commitment,
    platform_fingerprint,
)
from repro.scbr.router import ScbrClient
from repro.scbr.sharding import ShardedScbrRouter
from repro.sgx.attestation import AttestationService
from repro.sgx.platform import SgxPlatform


def _quoted(platform, value=7):
    """A platform-signed quote over a DH commitment for ``value``."""
    enclave = platform.quoting_enclave
    from repro.sgx.attestation import Quote

    unsigned = Quote(
        platform_id=platform.platform_id,
        measurement="m" * 64,
        report_data=dh_commitment(value),
        signature=0,
    )
    signature = enclave._keypair.sign(unsigned.signed_payload())
    return Quote(
        platform_id=platform.platform_id,
        measurement="m" * 64,
        report_data=dh_commitment(value),
        signature=signature,
    )


@pytest.fixture()
def verified_setup():
    platform = SgxPlatform(seed=61, quoting_key_bits=512)
    service = AttestationService()
    service.register_platform(
        platform.platform_id, platform.quoting_enclave.public_key
    )
    service.trust_measurement("m" * 64)
    verifier = CachedAttestationVerifier(service)
    return platform, service, verifier


class TestCachedAttestationVerifier:
    def test_second_verification_is_a_hit(self, verified_setup):
        platform, _service, verifier = verified_setup
        quote = _quoted(platform)
        verifier.verify(quote)
        assert (verifier.hits, verifier.misses) == (0, 1)
        verifier.verify(quote)
        assert (verifier.hits, verifier.misses) == (1, 1)

    def test_hit_charges_less_than_miss(self, verified_setup):
        platform, _service, verifier = verified_setup
        quote = _quoted(platform)
        charged = []
        verifier.verify(quote, compute=charged.append)
        verifier.verify(quote, compute=charged.append)
        assert charged[1] < charged[0] // 100

    def test_failure_is_never_cached(self, verified_setup):
        platform, _service, verifier = verified_setup
        quote = _quoted(platform)
        with pytest.raises(AttestationError):
            verifier.verify(quote, expected_report_data=b"something else")
        # The same quote still needs (and passes) a full verification:
        # the failure cached nothing.
        verifier.verify(quote)
        assert (verifier.hits, verifier.misses) == (0, 1)

    def test_forged_signature_cannot_ride_a_hit(self, verified_setup):
        platform, _service, verifier = verified_setup
        quote = _quoted(platform)
        verifier.verify(quote)
        from repro.sgx.attestation import Quote

        forged = Quote(
            platform_id=quote.platform_id,
            measurement=quote.measurement,
            report_data=quote.report_data,
            signature=quote.signature ^ 1,
        )
        # Different signature -> different cache key -> full
        # verification, which the bad signature fails.
        with pytest.raises(AttestationError):
            verifier.verify(forged)

    def test_revocation_flushes_and_fails_closed(self, verified_setup):
        platform, _service, verifier = verified_setup
        quote = _quoted(platform)
        verifier.verify(quote)
        epoch = verifier.epoch
        verifier.revoke_measurement(quote.measurement)
        assert verifier.epoch == epoch + 1
        assert verifier.invalidations == 1
        with pytest.raises(AttestationError):
            verifier.verify(quote)
        # Pinning the measurement by expectation does not bypass an
        # explicit revocation either.
        with pytest.raises(AttestationError):
            verifier.verify(quote, expected_measurement=quote.measurement)

    def test_deregistration_flushes_and_fails_closed(self, verified_setup):
        platform, _service, verifier = verified_setup
        quote = _quoted(platform)
        verifier.verify(quote)
        verifier.deregister_platform(platform.platform_id)
        assert not verifier.platform_registered(platform.platform_id)
        assert verifier.invalidations == 1
        with pytest.raises(AttestationError):
            verifier.verify(quote)

    def test_no_stale_verdict_across_epoch_bump(self, verified_setup):
        """An epoch bump stales *every* entry, not just the flushed
        ones: an unrelated platform's cached verdict re-earns a full
        verification after any revocation event."""
        platform, service, verifier = verified_setup
        other = SgxPlatform(seed=62, quoting_key_bits=512)
        service.register_platform(
            other.platform_id, other.quoting_enclave.public_key
        )
        quote = _quoted(platform)
        other_quote = _quoted(other)
        verifier.verify(quote)
        verifier.verify(other_quote)
        assert verifier.misses == 2
        verifier.deregister_platform(platform.platform_id)
        verifier.verify(other_quote)  # unaffected platform...
        assert verifier.hits == 0     # ...still re-verifies in full
        assert verifier.misses == 3

    def test_behind_the_back_revocation_still_fails_closed(
        self, verified_setup
    ):
        """Policy applied directly to the wrapped service (not through
        the cache) is honoured on a hit: the hit path re-runs the
        service's policy checks."""
        platform, service, verifier = verified_setup
        quote = _quoted(platform)
        verifier.verify(quote)
        service.revoke_measurement(quote.measurement)  # not via verifier
        with pytest.raises(AttestationError):
            verifier.verify(quote)

    def test_disabled_cache_never_hits(self, verified_setup):
        platform, _service, verifier = verified_setup
        verifier.enabled = False
        quote = _quoted(platform)
        verifier.verify(quote)
        verifier.verify(quote)
        assert (verifier.hits, verifier.misses) == (0, 2)


class TestDhCommitmentEdge:
    def test_zero_public_value_has_nonempty_encoding(self):
        assert dh_commitment(0) != dh_commitment(1)
        # The guard: zero must encode as one byte, not the empty
        # string; the commitment is over b"scbr-dh|\x00".
        from repro.crypto.primitives import sha256

        assert dh_commitment(0) == sha256(b"scbr-dh|\x00")


class TestBatchJoinCommitment:
    def test_sensitive_to_every_field(self):
        offers = [(0, 11), (1, 22)]
        base = batch_join_commitment(5, offers)
        assert batch_join_commitment(6, offers) != base
        assert batch_join_commitment(5, [(0, 11)]) != base
        assert batch_join_commitment(5, [(1, 22), (0, 11)]) != base
        assert batch_join_commitment(5, [(0, 11), (1, 23)]) != base
        assert batch_join_commitment(5, offers) == base


def _plane(shards=3, seed=50, tickets=True, **kwargs):
    platform = SgxPlatform(seed=seed, quoting_key_bits=512)
    attestation = AttestationService()
    attestation.register_platform(
        platform.platform_id, platform.quoting_enclave.public_key
    )
    router = ShardedScbrRouter(
        platform,
        lambda i: SgxPlatform(seed=seed + 100 + i, quoting_key_bits=512),
        attestation_service=attestation,
        shards=shards,
        **kwargs,
    )
    if not tickets:
        router.provisioner.tickets = False
    attestation.trust_measurement(router.measurement)
    return platform, attestation, router


def _fail_all(router):
    for shard in list(router.shards):
        router.fail_shard(shard.shard_id)


def _publication(publisher, attributes):
    return EncryptedEnvelope.seal(
        publisher.key, publisher.client_id, "publish",
        serialize_publication(Publication(attributes)),
    )


def _sub(sub_id, bound, subscriber="alice"):
    return Subscription(
        sub_id, [Constraint("x", Operator.LE, bound)], subscriber
    )


class TestBatchEnrollment:
    def test_bring_up_uses_one_batch(self):
        _platform, _attestation, router = _plane(shards=4)
        assert router.provisioner.batches == 1
        assert router.provisioner.batched_joins == 4
        # One coordinator quote served all four shards: 1 miss + 3 hits
        # coordinator-side, plus 4 distinct shard-quote misses.
        assert router.verifier.hits == 3
        assert router.verifier.misses == 5

    def test_tampered_roster_rejected(self):
        """A host substituting a shard's DH value in the relayed batch
        fails the joining shard closed (MITM on the batched join)."""
        _platform, _attestation, router = _plane(shards=2)
        shard = router.shards[0]
        offer = shard.enclave.ecall("join_offer2", None)
        quote = shard.platform.quoting_enclave.quote(offer["report"])
        grant = router.coordinator.ecall(
            "enroll_batch", [(0, offer["dh_public"], quote)]
        )
        coordinator_quote = router.platform.quoting_enclave.quote(
            grant["report"]
        )
        mallory = DhKeyPair.generate()
        with pytest.raises(AttestationError):
            shard.enclave.ecall(
                "join_complete_batch", grant["dh_public"],
                coordinator_quote,
                [(0, mallory.public_value)],  # edited roster
                grant["grants"][0],
            )

    def test_quote_from_another_batch_rejected(self):
        """Replaying a coordinator quote over a *different* batch's
        commitment fails: the roster is bound into the report data."""
        _platform, _attestation, router = _plane(shards=2)
        shard = router.shards[0]
        offer = shard.enclave.ecall("join_offer2", None)
        quote = shard.platform.quoting_enclave.quote(offer["report"])
        grant = router.coordinator.ecall(
            "enroll_batch", [(0, offer["dh_public"], quote)]
        )
        # A second batch for a different roster yields a different
        # commitment; its quote cannot authenticate the first grant.
        other_offer = shard.enclave.ecall("join_offer2", None)
        other_quote = shard.platform.quoting_enclave.quote(
            other_offer["report"]
        )
        other_grant = router.coordinator.ecall(
            "enroll_batch", [(9, other_offer["dh_public"], other_quote)]
        )
        wrong_quote = router.platform.quoting_enclave.quote(
            other_grant["report"]
        )
        offer = shard.enclave.ecall("join_offer2", None)
        with pytest.raises(AttestationError):
            shard.enclave.ecall(
                "join_complete_batch", grant["dh_public"], wrong_quote,
                grant["offers"], grant["grants"][0],
            )

    def test_empty_batch_rejected(self):
        _platform, _attestation, router = _plane(shards=2)
        with pytest.raises(ConfigurationError):
            router.coordinator.ecall("enroll_batch", [])

    def test_matching_survives_batched_mass_recovery(self):
        _platform, attestation, router = _plane(shards=3)
        alice = ScbrClient("alice", router, attestation)
        publisher = ScbrClient("publisher", router, attestation)
        for i in range(9):
            alice.subscribe(_sub("a%d" % i, 10 * (i + 1)))
        _fail_all(router)
        router.recover_shards([s.shard_id for s in router.shards])
        routed = router.publish_routed(_publication(publisher, {"x": 35}))
        _pub, matched = alice.open_notification_detail(routed[0][1])
        assert sorted(matched) == sorted(
            "a%d" % i for i in range(9) if 35 <= 10 * (i + 1)
        )


class TestResumptionTickets:
    def test_recovery_resumes_via_ticket(self):
        """Seeded factory platforms share a fingerprint with their
        predecessors, so mass recovery re-joins on tickets alone --
        no quote verification at all."""
        _platform, _attestation, router = _plane(shards=3)
        hits, misses = router.verifier.hits, router.verifier.misses
        _fail_all(router)
        router.recover_shards([s.shard_id for s in router.shards])
        assert router.provisioner.resumed_joins == 3
        assert (router.verifier.hits, router.verifier.misses) == (
            hits, misses
        )

    def test_ticket_after_revocation_rejected(self):
        """Revoking the shard measurement kills outstanding tickets:
        the re-join falls back to the full handshake, which also fails
        -- the revoked code cannot re-enter the plane at all."""
        _platform, _attestation, router = _plane(shards=2)
        router.verifier.revoke_measurement(
            router.shards[0].enclave.code.measurement
        )
        _fail_all(router)
        with pytest.raises(AttestationError):
            router.recover_shards([s.shard_id for s in router.shards])
        assert router.provisioner.resumed_joins == 0
        assert router.provisioner.ticket_fallbacks == 2

    def test_ticket_after_deregistration_rejected(self):
        """Deregistering the *enrolled* platform invalidates its
        ticket; the fresh replacement platform re-enrolls in full."""
        _platform, attestation, router = _plane(shards=1)
        enrolled_platform = router.shards[0].platform
        router.verifier.deregister_platform(enrolled_platform.platform_id)
        router.fail_shard(0)
        router.recover_shard(0)
        # The ticket named the deregistered platform: resumption
        # refused, full handshake used instead (the factory respawn is
        # a new registration).
        assert router.provisioner.resumed_joins == 0
        assert router.provisioner.ticket_fallbacks == 1
        assert router.provisioner.cold_joins + \
            router.provisioner.batched_joins >= 2

    def test_foreign_machine_cannot_use_the_ticket(self):
        """The resumption secret is platform-sealed: a different
        machine presenting the stored blob falls back (fail closed at
        unseal, not at the coordinator)."""
        _platform, _attestation, router = _plane(shards=1)
        shard = router.shards[0]
        fingerprint = platform_fingerprint(shard.platform)
        _ticket, sealed = router.provisioner._resume[fingerprint]
        foreign = SgxPlatform(seed=999, quoting_key_bits=512)
        from repro.scbr.sharding import SHARD_CODE

        enclave = foreign.load_enclave(SHARD_CODE)
        enclave.ecall("setup", 0, 512, None, None, None)
        with pytest.raises(IntegrityError):
            enclave.ecall("resume_offer", sealed)

    def test_chaos_lost_ticket_falls_back(self):
        from repro.chaos import ChaosConfig, ChaosInjector

        chaos = ChaosInjector(ChaosConfig(seed=3, ticket_loss_rate=1.0))
        _platform, _attestation, router = _plane(shards=2, chaos=chaos)
        _fail_all(router)
        router.recover_shards([0, 1])
        assert router.provisioner.resumed_joins == 0
        assert router.provisioner.ticket_fallbacks == 2
        # Fallback is liveness-preserving: the plane healed anyway.
        assert all(not s.enclave.destroyed for s in router.shards)


class TestKeyRotation:
    def test_rotation_invalidates_tickets_and_composes_with_recovery(
        self,
    ):
        _platform, attestation, router = _plane(shards=2)
        alice = ScbrClient("alice", router, attestation)
        publisher = ScbrClient("publisher", router, attestation)
        alice.subscribe(_sub("a1", 50))
        epoch = router.rotate_plane_key()
        assert epoch == 2
        assert router.provisioner.rotations == 1
        # Live shards rolled forward without re-attestation; matching
        # still works under the new key.
        routed = router.publish_routed(_publication(publisher, {"x": 40}))
        _pub, matched = alice.open_notification_detail(routed[0][1])
        assert matched == ["a1"]
        # Pre-rotation tickets are dead: recovery after rotation falls
        # back to the full handshake (and earns epoch-2 tickets).
        resumed_before = router.provisioner.resumed_joins
        _fail_all(router)
        router.recover_shards([0, 1])
        assert router.provisioner.resumed_joins == resumed_before
        assert router.provisioner.ticket_fallbacks >= 2
        routed = router.publish_routed(_publication(publisher, {"x": 40}))
        _pub, matched = alice.open_notification_detail(routed[0][1])
        assert matched == ["a1"]
        # The re-earned epoch-2 tickets resume normally.
        _fail_all(router)
        router.recover_shards([0, 1])
        assert router.provisioner.resumed_joins == resumed_before + 2

    def test_second_rotation_bumps_epoch_again(self):
        _platform, _attestation, router = _plane(shards=1)
        assert router.rotate_plane_key() == 2
        assert router.rotate_plane_key() == 3

    def test_rekey_blob_is_epoch_bound_to_the_plane_key(self):
        """A shard outside the plane (no plane key) cannot process a
        rekey blob, and a tampered blob fails authentication."""
        _platform, _attestation, router = _plane(shards=1)
        shard = router.shards[0]
        result = router.coordinator.ecall("rotate")
        blob = result["rekey"][0]
        with pytest.raises(IntegrityError):
            shard.enclave.ecall("rekey", blob[:-1] + bytes([blob[-1] ^ 1]))


class TestPlatformFingerprint:
    def test_same_seed_same_fingerprint_new_platform_id(self):
        a = SgxPlatform(seed=7, quoting_key_bits=512)
        b = SgxPlatform(seed=7, quoting_key_bits=512)
        assert a.platform_id != b.platform_id
        assert platform_fingerprint(a) == platform_fingerprint(b)

    def test_different_seed_different_fingerprint(self):
        a = SgxPlatform(seed=7, quoting_key_bits=512)
        b = SgxPlatform(seed=8, quoting_key_bits=512)
        assert platform_fingerprint(a) != platform_fingerprint(b)
