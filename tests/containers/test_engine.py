"""Tests for hosts and the container engine (Figure 2, right half)."""

import pytest

from repro.errors import AttestationError, CapacityError, ConfigurationError
from repro.crypto.keys import KeyHierarchy
from repro.crypto.primitives import DeterministicRandomSource
from repro.scone.cas import ConfigurationService
from repro.sgx.attestation import AttestationService
from repro.containers.client import SconeClient
from repro.containers.engine import ContainerEngine, ContainerState, Host
from repro.containers.image import Image, ImageConfig, Layer
from repro.containers.registry import Registry


def service_main(ctx, env):
    env.stdout.write(b"serving")
    return env.fs.read_all("/data/cfg")


ENTRY_POINTS = {"main": service_main}


@pytest.fixture()
def stack():
    """Registry + CAS + client + attestation-registered SGX host."""
    registry = Registry()
    attestation = AttestationService()
    cas = ConfigurationService(attestation, key_bits=512)
    client = SconeClient(
        registry, cas,
        key_hierarchy=KeyHierarchy.generate(DeterministicRandomSource(3)),
    )
    host = Host("node-1", seed=21)
    attestation.register_platform(
        host.platform.platform_id, host.platform.quoting_enclave.public_key
    )
    engine = ContainerEngine(cas=cas)
    return registry, cas, client, host, engine


def plain_image(result=42):
    return Image(
        "plain-app",
        layers=[Layer({"/bin/app": b"#!"})],
        config=ImageConfig(labels={"plain-entrypoint": lambda: result}),
    )


class TestSecureContainers:
    def test_end_to_end_secure_run(self, stack):
        _registry, _cas, client, host, engine = stack
        client.build_and_publish(
            "svc", ENTRY_POINTS, protected_files={"/data/cfg": b"threshold=5"}
        )
        image = client.pull_verified("svc:latest")
        container = engine.create(image, host)
        assert container.is_secure
        assert container.run() == b"threshold=5"

    def test_secure_image_on_non_sgx_host_rejected(self, stack):
        _registry, _cas, client, _host, engine = stack
        client.build_and_publish("svc", ENTRY_POINTS,
                                 protected_files={"/data/cfg": b"x"})
        image = client.pull_verified("svc:latest")
        legacy = Host("legacy", sgx=False)
        with pytest.raises(ConfigurationError, match="SGX"):
            engine.create(image, legacy)

    def test_unattested_platform_rejected(self, stack):
        _registry, cas, client, _host, engine = stack
        client.build_and_publish("svc", ENTRY_POINTS,
                                 protected_files={"/data/cfg": b"x"})
        image = client.pull_verified("svc:latest")
        rogue_host = Host("rogue", seed=77)  # platform never registered
        with pytest.raises(AttestationError):
            engine.create(image, rogue_host)

    def test_engine_without_cas_rejects_secure_images(self, stack):
        _registry, _cas, client, host, _engine = stack
        client.build_and_publish("svc", ENTRY_POINTS,
                                 protected_files={"/data/cfg": b"x"})
        image = client.pull_verified("svc:latest")
        bare_engine = ContainerEngine()
        with pytest.raises(ConfigurationError, match="CAS"):
            bare_engine.create(image, host)

    def test_stop_tears_down_process(self, stack):
        _registry, _cas, client, host, engine = stack
        client.build_and_publish("svc", ENTRY_POINTS,
                                 protected_files={"/data/cfg": b"x"})
        container = engine.create(client.pull_verified("svc:latest"), host)
        container.run()
        container.stop(exit_value=0)
        assert container.state is ContainerState.EXITED
        with pytest.raises(ConfigurationError):
            container.run()


class TestUniformApi:
    def test_plain_and_secure_share_engine_api(self, stack):
        _registry, _cas, client, host, engine = stack
        client.build_and_publish("svc", ENTRY_POINTS,
                                 protected_files={"/data/cfg": b"x"})
        secure = engine.create(client.pull_verified("svc:latest"), host)
        plain = engine.create(plain_image(), host)
        # Same lifecycle, same calls -- the infrastructure cannot tell.
        assert plain.run() == 42
        assert secure.run() == b"x"
        for container in (secure, plain):
            container.stop()
            assert container.state is ContainerState.EXITED
        assert engine.launched == 2

    def test_plain_image_without_entrypoint(self, stack):
        _registry, _cas, _client, host, engine = stack
        image = Image("broken", layers=[Layer({"/a": b"1"})])
        container = engine.create(image, host)
        with pytest.raises(ConfigurationError):
            container.run()


class TestHostCapacity:
    def test_fits_accounting(self):
        host = Host("node", cpu_cores=4, memory_mb=1024, sgx=False)
        assert host.fits(4, 1024)
        assert not host.fits(5, 10)

    def test_engine_respects_capacity(self, stack):
        _registry, _cas, _client, _host, engine = stack
        small = Host("small", cpu_cores=2, memory_mb=1024, sgx=False)
        engine.create(plain_image(), small, cpu_cores=2, memory_mb=512)
        with pytest.raises(CapacityError):
            engine.create(plain_image(), small, cpu_cores=1, memory_mb=128)

    def test_exited_containers_release_capacity(self, stack):
        _registry, _cas, _client, _host, engine = stack
        small = Host("small", cpu_cores=2, memory_mb=1024, sgx=False)
        first = engine.create(plain_image(), small, cpu_cores=2)
        first.stop()
        engine.create(plain_image(), small, cpu_cores=2)
        assert small.cpu_allocated == 2
