"""Tests for layers and images."""

import pytest

from repro.errors import ConfigurationError
from repro.containers.image import (
    CHUNK_PREFIX,
    FSPF_PATH,
    Image,
    ImageConfig,
    Layer,
    chunk_path,
)


class TestLayer:
    def test_digest_deterministic(self):
        assert Layer({"/a": b"1"}).digest == Layer({"/a": b"1"}).digest

    def test_digest_content_sensitive(self):
        assert Layer({"/a": b"1"}).digest != Layer({"/a": b"2"}).digest

    def test_digest_path_sensitive(self):
        assert Layer({"/a": b"1"}).digest != Layer({"/b": b"1"}).digest

    def test_digest_unambiguous_concatenation(self):
        assert Layer({"/a": b"bc"}).digest != Layer({"/ab": b"c"}).digest

    def test_size(self):
        assert Layer({"/a": b"12", "/b": b"345"}).size() == 5


class TestImage:
    def test_reference(self):
        assert Image("app", "v1").reference == "app:v1"

    def test_empty_name_rejected(self):
        with pytest.raises(ConfigurationError):
            Image("")

    def test_flatten_later_layers_win(self):
        image = Image(
            "app",
            layers=[Layer({"/a": b"base", "/b": b"keep"}), Layer({"/a": b"override"})],
        )
        assert image.flatten() == {"/a": b"override", "/b": b"keep"}

    def test_add_layer_returns_new_image(self):
        base = Image("app", layers=[Layer({"/a": b"1"})])
        extended = base.add_layer({"/b": b"2"})
        assert len(base.layers) == 1
        assert len(extended.layers) == 2
        assert extended.flatten()["/b"] == b"2"

    def test_digest_changes_with_layers(self):
        base = Image("app", layers=[Layer({"/a": b"1"})])
        assert base.digest != base.add_layer({"/b": b"2"}).digest

    def test_digest_changes_with_config(self):
        layers = [Layer({"/a": b"1"})]
        assert (
            Image("app", layers=layers, config=ImageConfig(entrypoint="x")).digest
            != Image("app", layers=layers, config=ImageConfig(entrypoint="y")).digest
        )

    def test_plain_image_not_secure(self):
        assert not Image("app", layers=[Layer({"/a": b"1"})]).is_secure

    def test_fspf_missing_raises(self):
        with pytest.raises(ConfigurationError):
            Image("app", layers=[Layer({"/a": b"1"})]).fspf_blob()

    def test_protected_chunks_parsing(self):
        image = Image(
            "app",
            layers=[
                Layer(
                    {
                        chunk_path("/data/f.txt", 0): b"chunk0",
                        chunk_path("/data/f.txt", 1): b"chunk1",
                        "/plain.txt": b"plain",
                    }
                )
            ],
        )
        chunks = image.protected_chunks()
        assert chunks[("/data/f.txt", 0)] == b"chunk0"
        assert chunks[("/data/f.txt", 1)] == b"chunk1"
        assert len(chunks) == 2

    def test_chunk_path_round_trip_with_hash_in_name(self):
        path = chunk_path("/a#b/file", 3)
        assert path.startswith(CHUNK_PREFIX)
        image = Image("app", layers=[Layer({path: b"x"})])
        assert ("/a#b/file", 3) in image.protected_chunks()

    def test_size_sums_layers(self):
        image = Image("app", layers=[Layer({"/a": b"12"}), Layer({"/b": b"3456"})])
        assert image.size() == 6

    def test_fspf_path_constant_is_reserved(self):
        assert FSPF_PATH.startswith("/.scone/")
