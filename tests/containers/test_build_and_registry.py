"""Tests for the secure build pipeline, registry, and SCONE client."""

import pytest

from repro.errors import ConfigurationError, IntegrityError
from repro.crypto.keys import KeyHierarchy
from repro.crypto.primitives import DeterministicRandomSource
from repro.crypto.rsa import RsaKeyPair
from repro.scone.cas import ConfigurationService
from repro.scone.fs_shield import FsProtectionFile, ProtectedVolume, UntrustedStore
from repro.sgx.attestation import AttestationService
from repro.containers.build import SecureImageBuilder
from repro.containers.client import SconeClient
from repro.containers.image import FSPF_PATH
from repro.containers.registry import Registry


def service_main(ctx, env):
    return env.fs.read_all("/data/model.bin")


ENTRY_POINTS = {"main": service_main}
SECRET = b"proprietary-model-weights" * 10


def make_builder(seed=0):
    return SecureImageBuilder(
        key_hierarchy=KeyHierarchy.generate(DeterministicRandomSource(seed)),
        chunk_size=64,
    )


def make_client(seed=0):
    registry = Registry()
    cas = ConfigurationService(AttestationService(), key_bits=512)
    signing_key = RsaKeyPair.generate(
        bits=512, random_source=DeterministicRandomSource(seed + 100)
    )
    client = SconeClient(
        registry, cas, signing_key=signing_key,
        key_hierarchy=KeyHierarchy.generate(DeterministicRandomSource(seed)),
    )
    return client, registry, cas


class TestBuilder:
    def test_build_produces_secure_image(self):
        result = make_builder().build(
            "svc", ENTRY_POINTS, protected_files={"/data/model.bin": SECRET}
        )
        assert result.image.is_secure
        assert result.image.enclave_code.measurement == result.measurement

    def test_protected_files_not_in_plaintext(self):
        result = make_builder().build(
            "svc", ENTRY_POINTS, protected_files={"/data/model.bin": SECRET}
        )
        for blob in result.image.flatten().values():
            assert b"proprietary" not in blob

    def test_public_files_shipped_as_is(self):
        result = make_builder().build(
            "svc",
            ENTRY_POINTS,
            protected_files={"/data/model.bin": SECRET},
            public_files={"/README": b"public notes"},
        )
        assert result.image.flatten()["/README"] == b"public notes"

    def test_fspf_decryptable_with_builder_key(self):
        builder = make_builder()
        result = builder.build(
            "svc", ENTRY_POINTS, protected_files={"/data/model.bin": SECRET}
        )
        manifest = FsProtectionFile.decrypt(
            result.image.fspf_blob(),
            builder.keys.aead_key("fspf"),
            expected_hash=result.fspf_hash,
        )
        assert manifest.paths() == ["/data/model.bin"]

    def test_chunks_reconstruct_protected_volume(self):
        builder = make_builder()
        result = builder.build(
            "svc", ENTRY_POINTS, protected_files={"/data/model.bin": SECRET}
        )
        store = UntrustedStore()
        for (path, index), blob in result.image.protected_chunks().items():
            store.put(path, index, blob)
        manifest = FsProtectionFile.decrypt(
            result.image.fspf_blob(), builder.keys.aead_key("fspf")
        )
        volume = ProtectedVolume(store, protection=manifest)
        assert volume.read_all("/data/model.bin") == SECRET

    def test_scf_binds_fspf_hash(self):
        result = make_builder().build(
            "svc", ENTRY_POINTS, protected_files={"/f": b"x"}
        )
        assert result.scf.fspf_hash == result.fspf_hash

    def test_arguments_and_environment_in_scf(self):
        result = make_builder().build(
            "svc", ENTRY_POINTS, arguments=("--fast",), environment={"A": "1"}
        )
        assert result.scf.arguments == ("--fast",)
        assert result.scf.environment == {"A": "1"}


class TestRegistry:
    def test_push_pull_round_trip(self):
        client, registry, _cas = make_client()
        result = client.build_and_publish("svc", ENTRY_POINTS)
        assert registry.pull("svc:latest").digest == result.image.digest

    def test_pull_unknown_reference(self):
        with pytest.raises(ConfigurationError):
            Registry().pull("ghost:latest")

    def test_references_listing(self):
        client, registry, _cas = make_client()
        client.build_and_publish("svc-a", ENTRY_POINTS)
        client.build_and_publish("svc-b", ENTRY_POINTS)
        assert registry.references() == ["svc-a:latest", "svc-b:latest"]


class TestSconeClient:
    def test_publish_registers_scf(self):
        client, _registry, cas = make_client()
        result = client.build_and_publish(
            "svc", ENTRY_POINTS, protected_files={"/f": b"secret"}
        )
        assert cas.has_scf(result.measurement)

    def test_pull_verified_accepts_untampered(self):
        client, _registry, _cas = make_client()
        client.build_and_publish("svc", ENTRY_POINTS)
        image = client.pull_verified("svc:latest")
        assert image.reference == "svc:latest"

    def test_tampered_layer_detected(self):
        client, registry, _cas = make_client()
        client.build_and_publish(
            "svc", ENTRY_POINTS, protected_files={"/f": b"secret" * 20}
        )
        registry.tamper_layer("svc:latest", 0, FSPF_PATH, b"forged-manifest")
        with pytest.raises(IntegrityError, match="signature"):
            client.pull_verified("svc:latest")

    def test_unsigned_image_rejected(self):
        client, registry, _cas = make_client()
        result = client.builder.build("svc", ENTRY_POINTS)
        registry.push(result.image)  # no signature
        with pytest.raises(IntegrityError, match="unsigned"):
            client.pull_verified("svc:latest")

    def test_wrong_signer_rejected(self):
        client, registry, _cas = make_client()
        client.build_and_publish("svc", ENTRY_POINTS)
        other_key = RsaKeyPair.generate(
            bits=512, random_source=DeterministicRandomSource(999)
        )
        with pytest.raises(IntegrityError):
            client.pull_verified("svc:latest", trusted_signer=other_key.public_key)

    def test_replaced_image_detected_with_pinned_signer(self):
        client, registry, _cas = make_client()
        client.build_and_publish("svc", ENTRY_POINTS)
        attacker, _attacker_registry, _attacker_cas = make_client(seed=7)
        evil = attacker.builder.build("svc", ENTRY_POINTS).image
        evil_signature = attacker.signing_key.sign(evil.digest.encode("ascii"))
        registry.replace_image("svc:latest", evil)
        registry._signatures["svc:latest"] = (
            evil_signature, attacker.signing_key.public_key,
        )
        with pytest.raises(IntegrityError):
            client.pull_verified(
                "svc:latest", trusted_signer=client.signing_key.public_key
            )

    def test_customize_adds_layer_and_resigns(self):
        client, registry, _cas = make_client()
        client.build_and_publish(
            "svc", ENTRY_POINTS, protected_files={"/f": b"secret" * 20}
        )
        custom = client.customize(
            "svc:latest", {"/etc/app.conf": b"region=eu"}, new_tag="eu"
        )
        pulled = client.pull_verified("svc:eu")
        assert pulled.flatten()["/etc/app.conf"] == b"region=eu"
        assert pulled.digest == custom.digest
        # Base protected content still present and still ciphertext.
        assert FSPF_PATH in pulled.flatten()
