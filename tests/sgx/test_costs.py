"""Tests for the cost model."""

from repro.sgx.costs import DEFAULT_COSTS, MIB, MemoryCosts


class TestMemoryCosts:
    def test_epc_usable_below_nominal(self):
        assert DEFAULT_COSTS.epc_usable < DEFAULT_COSTS.epc_capacity

    def test_epc_usable_matches_published_figure(self):
        # ~93.4 MiB usable of 128 MiB, the widely reported figure.
        usable_mib = DEFAULT_COSTS.epc_usable / MIB
        assert 90 <= usable_mib <= 96

    def test_cost_ordering(self):
        costs = DEFAULT_COSTS
        assert (
            costs.llc_hit_cycles
            < costs.dram_cycles
            < costs.mee_read_cycles
            < costs.page_fault_cycles
        )

    def test_scaled_overrides_one_field(self):
        scaled = DEFAULT_COSTS.scaled(page_fault_cycles=1)
        assert scaled.page_fault_cycles == 1
        assert scaled.dram_cycles == DEFAULT_COSTS.dram_cycles

    def test_scaled_returns_new_object(self):
        assert DEFAULT_COSTS.scaled() is not DEFAULT_COSTS

    def test_frozen(self):
        import dataclasses

        assert dataclasses.fields(MemoryCosts)
        try:
            DEFAULT_COSTS.dram_cycles = 1
        except dataclasses.FrozenInstanceError:
            return
        raise AssertionError("MemoryCosts should be frozen")

    def test_mee_penalty_in_published_band(self):
        # SCONE reports 5.5-7.5x past-LLC read penalty inside enclaves.
        ratio = DEFAULT_COSTS.mee_read_cycles / DEFAULT_COSTS.dram_cycles
        assert 5.0 <= ratio <= 8.0
