"""Tests for the LLC/EPC memory hierarchy."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import CapacityError
from repro.sgx.costs import MemoryCosts
from repro.sgx.memory import EpcModel, LlcModel, SimulatedMemory, _LruSet
from repro.sim.clock import CycleClock


def tiny_costs(**overrides):
    """Small geometry so cache effects are testable directly."""
    defaults = dict(
        llc_hit_cycles=1,
        dram_cycles=10,
        mee_read_cycles=60,
        page_fault_cycles=1000,
        transition_cycles=100,
        line_size=64,
        page_size=256,
        llc_capacity=4 * 64,       # 4 lines
        epc_capacity=4 * 256,      # 4 raw pages
        epc_metadata_fraction=0.25,  # -> 3 usable pages
    )
    defaults.update(overrides)
    return MemoryCosts(**defaults)


def native_memory(costs=None):
    return SimulatedMemory(CycleClock(), costs or tiny_costs(), enclave=False)


def enclave_memory(costs=None):
    costs = costs or tiny_costs()
    return SimulatedMemory(
        CycleClock(), costs, enclave=True, epc=EpcModel(costs), name="e"
    )


class TestLruSet:
    def test_hit_and_miss(self):
        lru = _LruSet(2)
        assert not lru.touch("a")
        assert lru.touch("a")

    def test_eviction_order(self):
        lru = _LruSet(2)
        lru.touch("a")
        lru.touch("b")
        lru.touch("a")      # refresh a; b is now LRU
        lru.touch("c")      # evicts b
        assert "a" in lru
        assert "b" not in lru
        assert "c" in lru

    def test_capacity_bound(self):
        lru = _LruSet(3)
        for key in range(100):
            lru.touch(key)
        assert len(lru) == 3

    def test_invalid_capacity(self):
        with pytest.raises(CapacityError):
            _LruSet(0)

    @given(st.lists(st.integers(0, 20), max_size=200), st.integers(1, 8))
    def test_size_never_exceeds_capacity(self, keys, capacity):
        lru = _LruSet(capacity)
        for key in keys:
            lru.touch(key)
            assert len(lru) <= capacity

    @given(st.lists(st.integers(0, 5), max_size=100))
    def test_working_set_within_capacity_always_hits_after_warmup(self, keys):
        lru = _LruSet(6)
        for key in range(6):
            lru.touch(key)
        for key in keys:
            assert lru.touch(key)


class TestAllocation:
    def test_bump_allocation_contiguous(self):
        mem = native_memory()
        a = mem.allocate(100, "a")
        b = mem.allocate(50, "b")
        assert a.base == 0
        assert b.base == 100
        assert mem.allocated_bytes == 150

    def test_aligned_allocation(self):
        costs = tiny_costs()
        mem = native_memory(costs)
        mem.allocate(10)
        region = mem.allocate_aligned(10)
        assert region.base % costs.page_size == 0

    def test_zero_allocation_rejected(self):
        with pytest.raises(CapacityError):
            native_memory().allocate(0)

    def test_region_slice(self):
        mem = native_memory()
        region = mem.allocate(100)
        sub = region.slice(10, 20)
        assert sub.base == 10
        assert sub.size == 20

    def test_region_slice_bounds(self):
        region = native_memory().allocate(100)
        with pytest.raises(CapacityError):
            region.slice(90, 20)


class TestNativeAccess:
    def test_first_access_misses_then_hits(self):
        costs = tiny_costs()
        mem = native_memory(costs)
        region = mem.allocate(costs.line_size)
        first = mem.access(region)
        second = mem.access(region)
        assert first == costs.dram_cycles
        assert second == costs.llc_hit_cycles
        assert mem.stats.llc_misses == 1
        assert mem.stats.llc_hits == 1

    def test_multi_line_access_cost(self):
        costs = tiny_costs()
        mem = native_memory(costs)
        region = mem.allocate(costs.line_size * 3)
        assert mem.access(region) == 3 * costs.dram_cycles

    def test_clock_charged(self):
        costs = tiny_costs()
        mem = native_memory(costs)
        region = mem.allocate(costs.line_size)
        mem.access(region)
        assert mem.clock.now == costs.dram_cycles

    def test_out_of_bounds_access(self):
        mem = native_memory()
        region = mem.allocate(10)
        with pytest.raises(CapacityError):
            mem.access(region, offset=5, size=10)

    def test_zero_size_access_free(self):
        mem = native_memory()
        region = mem.allocate(10)
        assert mem.access(region, size=0) == 0

    def test_no_page_faults_outside_enclave(self):
        costs = tiny_costs()
        mem = native_memory(costs)
        big = mem.allocate(costs.epc_capacity * 4)
        mem.access(big)
        assert mem.stats.page_faults == 0

    def test_compute_charges_clock_only(self):
        mem = native_memory()
        mem.compute(500)
        assert mem.clock.now == 500
        assert mem.stats.cycles_compute == 500
        assert mem.stats.cycles_memory == 0


class TestEnclaveAccess:
    def test_requires_epc(self):
        with pytest.raises(CapacityError):
            SimulatedMemory(CycleClock(), tiny_costs(), enclave=True)

    def test_llc_miss_pays_mee(self):
        costs = tiny_costs()
        mem = enclave_memory(costs)
        region = mem.allocate(costs.line_size)
        first = mem.access(region)
        # page fault + MEE line fill
        assert first == costs.page_fault_cycles + costs.mee_read_cycles
        second = mem.access(region)
        assert second == costs.llc_hit_cycles

    def test_working_set_within_epc_faults_once_per_page(self):
        costs = tiny_costs()
        mem = enclave_memory(costs)
        # 3 usable pages; allocate exactly 3 pages.
        region = mem.allocate(3 * costs.page_size)
        for _ in range(5):
            mem.access(region)
        assert mem.stats.page_faults == 3

    def test_working_set_beyond_epc_thrashes(self):
        costs = tiny_costs()
        mem = enclave_memory(costs)
        # 4 pages > 3 usable: cyclic sweep + LRU = fault every page, every pass.
        region = mem.allocate(4 * costs.page_size)
        passes = 4
        for _ in range(passes):
            for page in range(4):
                mem.access(region, offset=page * costs.page_size, size=8)
        assert mem.stats.page_faults == 4 * passes

    def test_epc_shared_between_memories(self):
        costs = tiny_costs()
        epc = EpcModel(costs)
        clock = CycleClock()
        mem_a = SimulatedMemory(clock, costs, enclave=True, epc=epc, name="a")
        mem_b = SimulatedMemory(clock, costs, enclave=True, epc=epc, name="b")
        region_a = mem_a.allocate(2 * costs.page_size)
        region_b = mem_b.allocate(2 * costs.page_size)
        mem_a.access(region_a)
        mem_b.access(region_b)   # 4 pages into 3 slots: evicts one of a's
        mem_a.access(region_a)
        assert epc.faults >= 5

    def test_resident_pages_never_exceed_capacity(self):
        costs = tiny_costs()
        mem = enclave_memory(costs)
        region = mem.allocate(20 * costs.page_size)
        mem.access(region)
        assert mem.epc.resident_pages <= mem.epc.capacity_pages

    @settings(max_examples=25)
    @given(st.lists(st.tuples(st.integers(0, 19), st.integers(1, 64)), max_size=60))
    def test_epc_capacity_invariant_property(self, accesses):
        costs = tiny_costs()
        mem = enclave_memory(costs)
        region = mem.allocate(20 * costs.page_size)
        for page, size in accesses:
            mem.access(region, offset=page * costs.page_size, size=size)
            assert mem.epc.resident_pages <= mem.epc.capacity_pages

    def test_enclave_dearer_than_native_for_same_workload(self):
        costs = tiny_costs()
        native = native_memory(costs)
        enclave = enclave_memory(costs)
        for mem in (native, enclave):
            region = mem.allocate(8 * costs.page_size)
            for _ in range(3):
                mem.access(region)
        assert enclave.clock.now > native.clock.now


class TestStats:
    def test_snapshot_delta(self):
        costs = tiny_costs()
        mem = native_memory(costs)
        region = mem.allocate(costs.line_size)
        mem.access(region)
        before = mem.stats.snapshot()
        mem.access(region)
        delta = mem.stats.delta(before)
        assert delta.accesses == 1
        assert delta.llc_hits == 1
        assert delta.llc_misses == 0

    def test_copy_touches_both_regions(self):
        costs = tiny_costs()
        mem = native_memory(costs)
        src = mem.allocate(costs.line_size)
        dst = mem.allocate(costs.line_size)
        mem.copy(src, dst)
        assert mem.stats.accesses == 2


class TestLlcModel:
    def test_flush_forgets_lines(self):
        costs = tiny_costs()
        llc = LlcModel(costs)
        assert not llc.touch_line(("m", 1))
        assert llc.touch_line(("m", 1))
        llc.flush()
        assert not llc.touch_line(("m", 1))

    def test_namespaced_lines_do_not_collide(self):
        costs = tiny_costs()
        clock = CycleClock()
        llc = LlcModel(costs)
        mem_a = SimulatedMemory(clock, costs, llc=llc, name="a")
        mem_b = SimulatedMemory(clock, costs, llc=llc, name="b")
        region_a = mem_a.allocate(costs.line_size)
        region_b = mem_b.allocate(costs.line_size)
        mem_a.access(region_a)
        mem_b.access(region_b)  # same address range, different namespace
        assert mem_b.stats.llc_misses == 1


class TestFree:
    def test_free_reduces_resident_not_allocated(self):
        mem = enclave_memory()
        region = mem.allocate(512)
        assert mem.free(region) == 512
        assert mem.resident_bytes == 0
        assert mem.allocated_bytes == 512

    def test_free_none_is_a_noop(self):
        assert enclave_memory().free(None) == 0

    def test_double_free_rejected(self):
        mem = enclave_memory()
        region = mem.allocate(512)
        mem.free(region)
        with pytest.raises(CapacityError):
            mem.free(region)

    def test_unallocated_region_rejected(self):
        from repro.sgx.memory import MemoryRegion

        mem = enclave_memory()
        with pytest.raises(CapacityError):
            mem.free(MemoryRegion(0, 4096, "ghost"))

    def test_freed_pages_leave_the_epc(self):
        costs = tiny_costs()
        mem = enclave_memory(costs)
        region = mem.allocate_aligned(costs.page_size)
        mem.access(region, size=costs.page_size)
        faults = mem.stats.page_faults
        mem.access(region, size=costs.page_size)
        assert mem.stats.page_faults == faults  # resident: no new fault
        mem.free(region)
        fresh = mem.allocate_aligned(costs.page_size)
        mem.access(fresh, size=costs.page_size)
        # The freed page was EREMOVEd, so the fresh page fits without
        # evicting anything -- and re-touching the freed range would
        # have to fault again.
        assert mem.stats.page_faults == faults + 1

    def test_straddling_page_stays_resident(self):
        costs = tiny_costs()
        mem = enclave_memory(costs)
        whole = mem.allocate_aligned(costs.page_size)
        mem.access(whole, size=costs.page_size)
        faults = mem.stats.page_faults
        # Free only half the page: the page holds live neighbours and
        # must stay in the EPC.
        from repro.sgx.memory import MemoryRegion

        half = MemoryRegion(whole.base, costs.page_size // 2, "half")
        mem.free(half)
        mem.access(whole, offset=costs.page_size // 2,
                   size=costs.page_size // 2)
        assert mem.stats.page_faults == faults

    def test_watermark_clears_after_free(self):
        costs = tiny_costs()
        mem = enclave_memory(costs)
        regions = [mem.allocate(costs.page_size) for _ in range(2)]
        assert mem.watermark_exceeded(0.5)
        mem.free(regions[0])
        assert not mem.watermark_exceeded(0.5)

    def test_native_memory_never_trips_the_watermark(self):
        mem = native_memory()
        mem.allocate(1 << 20)
        assert not mem.watermark_exceeded(0.01)


class TestReleaseAll:
    def test_release_all_zeroes_the_resident_set(self):
        costs = tiny_costs()
        mem = enclave_memory(costs)
        region = mem.allocate(2 * costs.page_size)
        mem.access(region)
        assert mem.resident_bytes > 0
        assert mem.epc.resident_pages > 0
        released = mem.release_all()
        assert released == 2 * costs.page_size
        assert mem.resident_bytes == 0
        assert mem.released
        # Nothing of this memory survives in the shared EPC or LLC.
        assert all(
            key[0] != mem.name for key in mem.epc.resident_page_keys()
        )

    def test_release_all_is_idempotent_and_disarms_free(self):
        mem = enclave_memory()
        region = mem.allocate(128)
        assert mem.release_all() == 128
        assert mem.release_all() == 0
        # A straggler free after teardown is a no-op, not an error.
        assert mem.free(region) == 0

    def test_release_owner_spares_other_tenants(self):
        costs = tiny_costs()
        epc = EpcModel(costs)
        clock = CycleClock()
        dying = SimulatedMemory(clock, costs, enclave=True, epc=epc,
                                name="dying")
        survivor = SimulatedMemory(clock, costs, enclave=True, epc=epc,
                                   name="survivor")
        dying.access(dying.allocate(costs.page_size))
        survivor.access(survivor.allocate(costs.page_size))
        assert dying.release_all() == costs.page_size
        keys = epc.resident_page_keys()
        assert keys and all(key[0] == "survivor" for key in keys)
        assert survivor.resident_bytes == costs.page_size
