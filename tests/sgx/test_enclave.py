"""Tests for enclaves, measurement, and ECALL/OCALL transitions."""

import pytest

from repro.errors import EnclaveError
from repro.sgx.costs import MemoryCosts
from repro.sgx.enclave import EnclaveCode, measure_code
from repro.sgx.platform import SgxPlatform


def echo(ctx, value):
    return value


def store(ctx, key, value):
    ctx.state[key] = value


def load(ctx, key):
    return ctx.state.get(key)


def crunch(ctx, cycles):
    ctx.compute(cycles)
    return ctx.clock.now


def call_out(ctx, fn):
    return ctx.ocall(fn)


ENTRY_POINTS = {
    "echo": echo,
    "store": store,
    "load": load,
    "crunch": crunch,
    "call_out": call_out,
}


@pytest.fixture()
def platform():
    return SgxPlatform(seed=7, quoting_key_bits=512)


@pytest.fixture()
def enclave(platform):
    return platform.load_enclave(EnclaveCode("svc", ENTRY_POINTS))


class TestMeasurement:
    def test_same_code_same_measurement(self):
        a = EnclaveCode("svc", ENTRY_POINTS)
        b = EnclaveCode("svc", ENTRY_POINTS)
        assert a.measurement == b.measurement

    def test_different_entry_points_differ(self):
        a = EnclaveCode("svc", {"echo": echo})
        b = EnclaveCode("svc", {"echo": echo, "load": load})
        assert a.measurement != b.measurement

    def test_config_changes_measurement(self):
        base = EnclaveCode("svc", ENTRY_POINTS)
        configured = base.with_config(b"mode=strict")
        assert base.measurement != configured.measurement

    def test_name_changes_measurement(self):
        a = EnclaveCode("svc-a", {"echo": echo})
        b = EnclaveCode("svc-b", {"echo": echo})
        assert a.measurement != b.measurement

    def test_version_changes_measurement(self):
        a = EnclaveCode("svc", {"echo": echo}, version=1)
        b = EnclaveCode("svc", {"echo": echo}, version=2)
        assert a.measurement != b.measurement

    def test_code_body_changes_measurement(self):
        def echo_tampered(ctx, value):
            return (value, "leaked")

        a = EnclaveCode("svc", {"echo": echo})
        b = EnclaveCode("svc", {"echo": echo_tampered})
        assert a.measurement != b.measurement

    def test_measure_code_helper(self):
        assert measure_code({"echo": echo}, name="svc") == EnclaveCode(
            "svc", {"echo": echo}
        ).measurement

    def test_empty_entry_points_rejected(self):
        with pytest.raises(EnclaveError):
            EnclaveCode("svc", {})


class TestEcalls:
    def test_ecall_runs_entry_point(self, enclave):
        assert enclave.ecall("echo", 42) == 42

    def test_unknown_entry_point(self, enclave):
        with pytest.raises(EnclaveError):
            enclave.ecall("missing")

    def test_state_persists_across_ecalls(self, enclave):
        enclave.ecall("store", "k", "v")
        assert enclave.ecall("load", "k") == "v"

    def test_transition_cost_charged(self, platform, enclave):
        before = platform.clock.now
        enclave.ecall("echo", 1)
        elapsed = platform.clock.now - before
        assert elapsed == 2 * platform.costs.transition_cycles

    def test_ocall_charges_two_more_transitions(self, platform, enclave):
        before = platform.clock.now
        enclave.ecall("call_out", lambda: "outside")
        elapsed = platform.clock.now - before
        assert elapsed == 4 * platform.costs.transition_cycles

    def test_ocall_returns_value(self, enclave):
        assert enclave.ecall("call_out", lambda: "outside") == "outside"

    def test_compute_charged_inside(self, platform, enclave):
        now = enclave.ecall("crunch", 1234)
        assert now >= 1234

    def test_destroyed_enclave_rejects_ecalls(self, enclave):
        enclave.destroy()
        with pytest.raises(EnclaveError):
            enclave.ecall("echo", 1)

    def test_destroy_clears_state(self, enclave):
        enclave.ecall("store", "secret", "x")
        enclave.destroy()
        assert enclave._state == {}

    def test_ecall_count(self, enclave):
        enclave.ecall("echo", 1)
        enclave.ecall("echo", 2)
        assert enclave.ecall_count == 2

    def test_identity_summary_has_no_state(self, enclave):
        enclave.ecall("store", "secret", "x")
        summary = enclave.identity_summary()
        assert "secret" not in str(summary)
        assert summary["measurement"] == enclave.measurement


class TestEnclaveMemoryIsolation:
    def test_each_enclave_gets_own_memory_namespace(self, platform):
        first = platform.load_enclave(EnclaveCode("a", {"echo": echo}))
        second = platform.load_enclave(EnclaveCode("b", {"echo": echo}))
        assert first.memory.name != second.memory.name

    def test_enclaves_share_platform_epc(self, platform):
        first = platform.load_enclave(EnclaveCode("a", {"echo": echo}))
        second = platform.load_enclave(EnclaveCode("b", {"echo": echo}))
        assert first.memory.epc is second.memory.epc

    def test_costs_flow_from_platform(self, enclave, platform):
        assert enclave.memory.costs is platform.costs


class TestCustomCosts:
    def test_platform_accepts_cost_overrides(self):
        costs = MemoryCosts(transition_cycles=5)
        platform = SgxPlatform(costs=costs, seed=1, quoting_key_bits=512)
        enclave = platform.load_enclave(EnclaveCode("svc", {"echo": echo}))
        before = platform.clock.now
        enclave.ecall("echo", 0)
        assert platform.clock.now - before == 10
