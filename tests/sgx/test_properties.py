"""Property tests on SGX-layer invariants."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import IntegrityError
from repro.sgx.attestation import Quote
from repro.sgx.sealing import (
    SealedBlob,
    SealingPolicy,
    derive_sealing_key,
    seal,
    unseal,
)


class TestSealingProperties:
    @given(
        st.binary(max_size=512),
        st.sampled_from(list(SealingPolicy)),
    )
    def test_seal_unseal_round_trip(self, data, policy):
        blob = seal(b"\x01" * 32, "m" * 64, "signer", data, policy=policy)
        assert unseal(b"\x01" * 32, "m" * 64, "signer", blob) == data

    @given(st.binary(min_size=32, max_size=32), st.binary(min_size=32, max_size=32))
    def test_different_platforms_never_share_keys(self, secret_a, secret_b):
        if secret_a == secret_b:
            return
        key_a = derive_sealing_key(secret_a, "m", SealingPolicy.MRENCLAVE)
        key_b = derive_sealing_key(secret_b, "m", SealingPolicy.MRENCLAVE)
        assert key_a != key_b

    @given(st.binary(max_size=128))
    def test_policy_confusion_rejected(self, data):
        """A blob sealed under MRENCLAVE cannot be opened as MRSIGNER
        even when measurement and signer strings collide."""
        identity = "same-string"
        blob = seal(b"\x02" * 32, identity, identity, data,
                    policy=SealingPolicy.MRENCLAVE)
        relabeled = SealedBlob(policy=SealingPolicy.MRSIGNER,
                               ciphertext=blob.ciphertext)
        with pytest.raises(IntegrityError):
            unseal(b"\x02" * 32, identity, identity, relabeled)

    @given(st.binary(max_size=256), st.sampled_from(list(SealingPolicy)))
    def test_blob_serialisation_round_trip(self, data, policy):
        blob = seal(b"\x03" * 32, "m" * 64, "s", data, policy=policy)
        parsed = SealedBlob.from_bytes(blob.to_bytes())
        assert unseal(b"\x03" * 32, "m" * 64, "s", parsed) == data


class TestQuoteProperties:
    @settings(max_examples=40)
    @given(
        st.text(
            alphabet=st.characters(min_codepoint=33, max_codepoint=126),
            min_size=1, max_size=40,
        ),
        st.text(alphabet="0123456789abcdef", min_size=64, max_size=64),
        st.binary(max_size=128),
        st.integers(min_value=0, max_value=2**256),
    )
    def test_quote_serialisation_round_trip(self, platform_id, measurement,
                                            report_data, signature):
        quote = Quote(
            platform_id=platform_id,
            measurement=measurement,
            report_data=report_data,
            signature=signature,
        )
        assert Quote.from_bytes(quote.to_bytes()) == quote

    @given(st.binary(max_size=64), st.integers(0, 63))
    def test_truncated_quotes_never_parse_silently(self, junk, cut):
        quote = Quote("p", "m" * 64, junk, 12345)
        raw = quote.to_bytes()
        if cut >= len(raw):
            return
        try:
            parsed = Quote.from_bytes(raw[:cut])
        except IntegrityError:
            return
        # If it parsed, it must not equal the original (no ambiguity).
        assert parsed != quote
