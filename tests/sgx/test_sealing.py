"""Tests for sealing policies."""

import pytest

from repro.errors import IntegrityError
from repro.sgx.enclave import EnclaveCode
from repro.sgx.platform import SgxPlatform
from repro.sgx.sealing import SealedBlob, SealingPolicy


def seal_secret(ctx, secret, policy=None):
    return ctx.seal(secret, policy=policy)


def unseal_secret(ctx, blob):
    return ctx.unseal(blob)


CODE_V1 = EnclaveCode("sealer", {"seal": seal_secret, "unseal": unseal_secret})
CODE_V2 = EnclaveCode(
    "sealer", {"seal": seal_secret, "unseal": unseal_secret}, version=2
)
FOREIGN_CODE = EnclaveCode(
    "other-app", {"seal": seal_secret, "unseal": unseal_secret}
)


@pytest.fixture()
def platform():
    return SgxPlatform(seed=11, quoting_key_bits=512)


class TestMrEnclavePolicy:
    def test_round_trip_same_enclave(self, platform):
        enclave = platform.load_enclave(CODE_V1)
        blob = enclave.ecall("seal", b"secret")
        assert enclave.ecall("unseal", blob) == b"secret"

    def test_same_code_new_instance_can_unseal(self, platform):
        first = platform.load_enclave(CODE_V1)
        blob = first.ecall("seal", b"secret")
        first.destroy()
        second = platform.load_enclave(CODE_V1)
        assert second.ecall("unseal", blob) == b"secret"

    def test_different_code_cannot_unseal(self, platform):
        sealer = platform.load_enclave(CODE_V1)
        blob = sealer.ecall("seal", b"secret")
        upgraded = platform.load_enclave(CODE_V2)
        with pytest.raises(IntegrityError):
            upgraded.ecall("unseal", blob)

    def test_different_platform_cannot_unseal(self, platform):
        enclave = platform.load_enclave(CODE_V1)
        blob = enclave.ecall("seal", b"secret")
        other = SgxPlatform(seed=12, quoting_key_bits=512)
        foreign = other.load_enclave(CODE_V1)
        with pytest.raises(IntegrityError):
            foreign.ecall("unseal", blob)


class TestMrSignerPolicy:
    def test_upgraded_code_same_signer_can_unseal(self, platform):
        sealer = platform.load_enclave(CODE_V1)
        blob = sealer.ecall("seal", b"secret", SealingPolicy.MRSIGNER)
        upgraded = platform.load_enclave(CODE_V2)
        assert upgraded.ecall("unseal", blob) == b"secret"

    def test_different_signer_cannot_unseal(self, platform):
        sealer = platform.load_enclave(CODE_V1)
        blob = sealer.ecall("seal", b"secret", SealingPolicy.MRSIGNER)
        foreign = platform.load_enclave(FOREIGN_CODE)
        with pytest.raises(IntegrityError):
            foreign.ecall("unseal", blob)


class TestSerialisation:
    def test_blob_round_trip(self, platform):
        enclave = platform.load_enclave(CODE_V1)
        blob = enclave.ecall("seal", b"secret")
        parsed = SealedBlob.from_bytes(blob.to_bytes())
        assert enclave.ecall("unseal", parsed) == b"secret"

    def test_truncated_blob_rejected(self):
        with pytest.raises(IntegrityError):
            SealedBlob.from_bytes(b"\xff")

    def test_unknown_policy_rejected(self):
        with pytest.raises(IntegrityError):
            SealedBlob.from_bytes(b"\x00\x04haxx" + b"\x00" * 50)

    def test_tampered_ciphertext_rejected(self, platform):
        enclave = platform.load_enclave(CODE_V1)
        blob = enclave.ecall("seal", b"secret")
        raw = bytearray(blob.to_bytes())
        raw[-1] ^= 0x01
        tampered = SealedBlob.from_bytes(bytes(raw))
        with pytest.raises(IntegrityError):
            enclave.ecall("unseal", tampered)
