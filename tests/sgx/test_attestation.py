"""Tests for quotes and the attestation service."""

import pytest

from hypothesis import given, settings, strategies as st

from repro.errors import AttestationError, IntegrityError
from repro.sgx.attestation import AttestationService, Quote
from repro.sgx.enclave import EnclaveCode
from repro.sgx.platform import SgxPlatform


def noop(ctx):
    return None


def make_report(ctx, data):
    return ctx.report(data)


CODE = EnclaveCode("attested-svc", {"noop": noop, "make_report": make_report})


@pytest.fixture()
def platform():
    return SgxPlatform(seed=3, quoting_key_bits=512)


@pytest.fixture()
def enclave(platform):
    return platform.load_enclave(CODE)


@pytest.fixture()
def service(platform):
    service = AttestationService()
    service.register_platform(
        platform.platform_id, platform.quoting_enclave.public_key
    )
    return service


class TestQuotes:
    def test_quote_verifies_when_trusted(self, platform, enclave, service):
        service.trust_measurement(enclave.measurement)
        quote = platform.quote(enclave, b"channel-binding")
        assert service.verify(quote)

    def test_quote_from_inside_enclave(self, platform, enclave, service):
        service.trust_measurement(enclave.measurement)
        report = enclave.ecall("make_report", b"data")
        quote = platform.quoting_enclave.quote(report)
        assert service.verify(quote, expected_report_data=b"data")

    def test_untrusted_measurement_rejected(self, platform, enclave, service):
        quote = platform.quote(enclave)
        with pytest.raises(AttestationError, match="not trusted"):
            service.verify(quote)

    def test_expected_measurement_overrides_allowlist(
        self, platform, enclave, service
    ):
        quote = platform.quote(enclave)
        assert service.verify(quote, expected_measurement=enclave.measurement)

    def test_wrong_expected_measurement_rejected(self, platform, enclave, service):
        quote = platform.quote(enclave)
        with pytest.raises(AttestationError, match="measurement mismatch"):
            service.verify(quote, expected_measurement="0" * 64)

    def test_unregistered_platform_rejected(self, platform, enclave):
        empty_service = AttestationService()
        quote = platform.quote(enclave)
        with pytest.raises(AttestationError, match="not registered"):
            empty_service.verify(quote)

    def test_forged_signature_rejected(self, platform, enclave, service):
        service.trust_measurement(enclave.measurement)
        quote = platform.quote(enclave)
        forged = Quote(
            platform_id=quote.platform_id,
            measurement=quote.measurement,
            report_data=quote.report_data,
            signature=quote.signature ^ 1,
        )
        with pytest.raises(AttestationError, match="signature invalid"):
            service.verify(forged)

    def test_tampered_measurement_rejected(self, platform, enclave, service):
        tampered_measurement = "f" * 64
        service.trust_measurement(tampered_measurement)
        quote = platform.quote(enclave)
        tampered = Quote(
            platform_id=quote.platform_id,
            measurement=tampered_measurement,
            report_data=quote.report_data,
            signature=quote.signature,
        )
        with pytest.raises(AttestationError, match="signature invalid"):
            service.verify(tampered)

    def test_report_data_binding(self, platform, enclave, service):
        service.trust_measurement(enclave.measurement)
        quote = platform.quote(enclave, b"expected")
        with pytest.raises(AttestationError, match="report data"):
            service.verify(quote, expected_report_data=b"other")

    def test_quote_from_wrong_platform_key(self, enclave, platform):
        other_platform = SgxPlatform(seed=99, quoting_key_bits=512)
        service = AttestationService()
        # Register the *other* platform's key under this platform's id.
        service.register_platform(
            platform.platform_id, other_platform.quoting_enclave.public_key
        )
        service.trust_measurement(enclave.measurement)
        quote = platform.quote(enclave)
        with pytest.raises(AttestationError, match="signature invalid"):
            service.verify(quote)


class TestQuoteSerialisation:
    def test_round_trip(self, platform, enclave):
        quote = platform.quote(enclave, b"payload")
        parsed = Quote.from_bytes(quote.to_bytes())
        assert parsed == quote

    def test_truncated_rejected(self, platform, enclave):
        raw = platform.quote(enclave).to_bytes()
        with pytest.raises(IntegrityError):
            Quote.from_bytes(raw[:10])

    def test_malformed_rejected(self):
        with pytest.raises(IntegrityError):
            Quote.from_bytes(b"\x00\x00\x00\x02ab")

    @given(
        platform_id=st.text(min_size=1, max_size=40),
        measurement=st.text(
            alphabet="0123456789abcdef", min_size=0, max_size=64
        ),
        report_data=st.binary(min_size=0, max_size=256),
        signature=st.integers(min_value=0, max_value=2 ** 512 - 1),
    )
    @settings(max_examples=60, deadline=None)
    def test_round_trip_property(self, platform_id, measurement,
                                 report_data, signature):
        """Any quote -- including one with empty report data or a
        zero signature -- survives to_bytes/from_bytes unchanged."""
        quote = Quote(
            platform_id=platform_id,
            measurement=measurement,
            report_data=report_data,
            signature=signature,
        )
        assert Quote.from_bytes(quote.to_bytes()) == quote

    def test_round_trip_empty_report_data(self, platform, enclave):
        quote = platform.quote(enclave, b"")
        assert quote.report_data == b""
        assert Quote.from_bytes(quote.to_bytes()) == quote


class TestMeasurementPolicy:
    def test_revocation(self, platform, enclave, service):
        service.trust_measurement(enclave.measurement)
        quote = platform.quote(enclave)
        assert service.verify(quote)
        service.revoke_measurement(enclave.measurement)
        with pytest.raises(AttestationError):
            service.verify(quote)

    def test_trusted_measurements_copy(self, service):
        service.trust_measurement("abc")
        snapshot = service.trusted_measurements
        snapshot.clear()
        assert service.trusted_measurements == {"abc"}

    def test_deregistered_platform_rejected(self, platform, enclave,
                                            service):
        service.trust_measurement(enclave.measurement)
        quote = platform.quote(enclave)
        assert service.verify(quote)
        assert service.platform_registered(platform.platform_id)
        service.deregister_platform(platform.platform_id)
        assert not service.platform_registered(platform.platform_id)
        with pytest.raises(AttestationError, match="not registered"):
            service.verify(quote)
        # Idempotent: deregistering twice is not an error.
        service.deregister_platform(platform.platform_id)

    def test_check_policy_skips_only_the_signature(self, platform,
                                                   enclave, service):
        service.trust_measurement(enclave.measurement)
        good = platform.quote(enclave, b"data")
        forged = Quote(
            platform_id=good.platform_id,
            measurement=good.measurement,
            report_data=good.report_data,
            signature=good.signature ^ 1,
        )
        # check_policy passes a bad signature (that is verify's job)...
        assert service.check_policy(forged, expected_report_data=b"data")
        # ...but still applies registry, measurement, and report-data
        # policy.
        with pytest.raises(AttestationError):
            service.check_policy(good, expected_report_data=b"other")
        with pytest.raises(AttestationError):
            service.check_policy(good, expected_measurement="f" * 64)
        service.revoke_measurement(enclave.measurement)
        with pytest.raises(AttestationError):
            service.check_policy(good)
