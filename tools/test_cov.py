"""Tier-1 tests under line coverage, with enforced floors.

Runs the tier-1 suite (``pytest -x -q``) while collecting line coverage
over ``src/repro`` and fails the build if coverage drops below the
checked-in floors:

- ``src/repro/telemetry/`` must stay at or above 90% (the telemetry
  plane is the observability substrate; untested metrics lie silently);
- ``src/repro/crypto/`` must stay at or above 90% (the sealing plane
  is the security substrate; an untested crypto branch is a hole in
  the trust argument);
- ``src/repro/scbr/provisioning.py`` must stay at or above 90% (the
  attestation/key-provisioning plane decides who may join the fleet;
  an untested path there is an enrollment hole);
- the repository overall must stay at or above the measured baseline,
  so coverage can only ratchet up.

Uses the ``coverage`` package when it is installed; otherwise falls
back to a built-in ``sys.settrace`` collector (the container image does
not ship ``coverage``, and installing dependencies is out of scope).
The denominator is the set of *executable* lines, computed by compiling
each source file and walking every code object's ``co_lines`` table --
the same definition the tracer reports against, so 100% is reachable.

Usage: ``PYTHONPATH=src python tools/test_cov.py [pytest args...]``
(default pytest args: ``-x -q``; ``make test-cov``).
"""

import os
import sys
import threading

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
PACKAGE_DIR = os.path.join(ROOT, "src", "repro")

# (path prefix relative to ROOT, minimum percent covered)
FLOORS = (
    ("src/repro/telemetry/", 90.0),
    ("src/repro/crypto/", 90.0),
    ("src/repro/scbr/provisioning.py", 90.0),
    ("src/repro/streams/", 90.0),
    ("src/repro/service/", 90.0),
)
# Whole-package ratchet: measured 95.3% at introduction; the floor sits
# a little below that so unrelated refactors don't flake, but a real
# coverage regression (a new untested subsystem) fails.
REPO_FLOOR = 93.0

try:
    import coverage as _coverage
except ImportError:
    _coverage = None


def executable_lines(path):
    """Line numbers carrying executable code, per the compiled file."""
    with open(path, "r", encoding="utf-8") as handle:
        source = handle.read()
    lines = set()
    stack = [compile(source, path, "exec")]
    while stack:
        code = stack.pop()
        lines.update(
            line for _start, _end, line in code.co_lines()
            if line is not None and line > 0
        )
        for const in code.co_consts:
            if hasattr(const, "co_lines"):
                stack.append(const)
    return lines


def package_files():
    found = []
    for directory, _subdirs, names in os.walk(PACKAGE_DIR):
        for name in sorted(names):
            if name.endswith(".py"):
                found.append(os.path.join(directory, name))
    return sorted(found)


class SettraceCollector:
    """Fallback line collector: a global trace function that installs a
    local tracer only in frames whose code lives under ``src/repro``,
    so the rest of the suite runs untraced-per-line.  Thread-safe under
    the GIL (set.add / dict.setdefault are atomic enough); pool threads
    are covered through ``threading.settrace``."""

    def __init__(self, prefix):
        self.prefix = prefix
        self.hits = {}

    def _local(self, frame, event, _arg):
        if event == "line":
            hits = self.hits.get(frame.f_code.co_filename)
            if hits is None:
                hits = self.hits.setdefault(
                    frame.f_code.co_filename, set()
                )
            hits.add(frame.f_lineno)
        return self._local

    def _global(self, frame, event, _arg):
        if event == "call" and frame.f_code.co_filename.startswith(
                self.prefix):
            # Module-level frames hit their first line before the local
            # tracer sees a "line" event for it; record it here.
            hits = self.hits.setdefault(frame.f_code.co_filename, set())
            hits.add(frame.f_lineno)
            return self._local
        return None

    def start(self):
        threading.settrace(self._global)
        sys.settrace(self._global)

    def stop(self):
        sys.settrace(None)
        threading.settrace(None)

    def lines_for(self, path):
        return self.hits.get(path, set())


class CoveragePackageCollector:
    """The real ``coverage`` package, when available."""

    def __init__(self, prefix):
        self._cov = _coverage.Coverage(
            source=[prefix], data_file=None, branch=False
        )

    def start(self):
        self._cov.start()

    def stop(self):
        self._cov.stop()

    def lines_for(self, path):
        try:
            _name, executed, _missing, _text = self._cov.analysis(path)
        except Exception:
            return set()
        return set(executed)


def run(pytest_args):
    collector = (
        CoveragePackageCollector(PACKAGE_DIR)
        if _coverage is not None
        else SettraceCollector(PACKAGE_DIR + os.sep)
    )
    collector.start()
    try:
        import pytest

        status = pytest.main(list(pytest_args))
    finally:
        collector.stop()
    if status != 0:
        print("test-cov: test run failed (exit %s); coverage not judged"
              % status)
        return int(status)

    per_file = {}
    for path in package_files():
        wanted = executable_lines(path)
        if not wanted:
            continue
        covered = collector.lines_for(path) & wanted
        per_file[os.path.relpath(path, ROOT)] = (len(covered), len(wanted))

    def percent(pairs):
        covered = sum(hit for hit, _total in pairs)
        total = sum(total for _hit, total in pairs)
        return 100.0 * covered / total if total else 100.0

    width = max(len(name) for name in per_file)
    for name in sorted(per_file):
        hit, total = per_file[name]
        print("%-*s %5.1f%% (%d/%d)"
              % (width, name, 100.0 * hit / total, hit, total))

    failures = []
    for prefix, floor in FLOORS:
        pairs = [value for name, value in per_file.items()
                 if name.startswith(prefix)]
        scoped = percent(pairs)
        print("coverage %-24s %5.1f%% (floor %.0f%%)"
              % (prefix, scoped, floor))
        if scoped < floor:
            failures.append(
                "%s at %.1f%% is below its %.0f%% floor"
                % (prefix, scoped, floor)
            )
    overall = percent(list(per_file.values()))
    print("coverage %-24s %5.1f%% (floor %.0f%%)"
          % ("src/repro (total)", overall, REPO_FLOOR))
    if overall < REPO_FLOOR:
        failures.append(
            "src/repro at %.1f%% is below the %.0f%% repository floor"
            % (overall, REPO_FLOOR)
        )
    if failures:
        print("test-cov FAILED:")
        for failure in failures:
            print("  " + failure)
        return 1
    print("test-cov passed")
    return 0


if __name__ == "__main__":
    sys.exit(run(sys.argv[1:] or ["-x", "-q"]))
