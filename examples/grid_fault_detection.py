"""Use case 2 (paper Section VI): fault detection with millisecond
orchestration.

Two experiments in one script:

1. **Grid-side**: a transformer fault blacks out a subtree of meters;
   the fault detector localises it within one telemetry interval.
2. **Cloud-side**: the micro-service application processing the
   telemetry is itself degraded (CPU starvation of one service); the
   orchestrator detects the QoS anomaly within milliseconds of virtual
   time and restores the service.

Run:  python examples/grid_fault_detection.py
"""

import json

from repro.core.application import ApplicationSpec, ServiceSpec
from repro.core.deployment import SecureCloudPlatform
from repro.microservices.orchestrator import Orchestrator, OrchestratorPolicy
from repro.smartgrid.faults import FaultDetector
from repro.smartgrid.meters import SmartMeterFleet
from repro.smartgrid.topology import GridTopology


def passthrough(ctx, topic, plaintext):
    reading = json.loads(plaintext.decode())
    if reading["v"] == 0.0:
        return [("outages", plaintext)]
    return []


def notify(ctx, topic, plaintext):
    return [("notifications", b"outage:" + plaintext)]


def main():
    print("== Grid fault detection + millisecond orchestration ==")

    # ---- 1. grid-side fault localisation ----
    grid = GridTopology.build(
        feeders=2, transformers_per_feeder=2, meters_per_transformer=5
    )
    fleet = SmartMeterFleet(grid, seed=7, interval=30.0)
    fleet.inject_fault("tx-1-0", start=247.0, end=1800.0)

    detector = FaultDetector(grid)
    events = detector.scan_window(fleet, 0.0, 900.0)
    for event in events:
        delay = event.detected_at - 247.0
        print(
            "fault localised at %-8s (%s level), detection delay %.0f s "
            "of telemetry" % (event.element, event.kind, delay)
        )

    # ---- 2. cloud-side QoS anomaly ----
    application = ApplicationSpec(
        "outage-pipeline",
        [
            ServiceSpec("filter", {"telemetry": passthrough},
                        output_topics=("outages",)),
            ServiceSpec("notifier", {"outages": notify},
                        output_topics=("notifications",)),
        ],
    )
    platform = SecureCloudPlatform(hosts=2, seed=11)
    deployment = platform.deploy(application)
    notifications = deployment.collect("notifications")

    env = platform.env
    # No heartbeat stream in this demo, so disable liveness detection
    # by setting a very lenient timeout; we focus on latency anomalies.
    policy = OrchestratorPolicy(heartbeat_timeout=10.0)
    orchestrator = Orchestrator(env, platform.qos, platform.service_registry,
                                policy)
    orchestrator.start(duration=0.5)

    filter_service = deployment.services["filter"]

    # Telemetry stream: one reading every 2 ms of virtual time.
    for index in range(100):
        def ingest(_fired, i=index):
            meter = grid.meters[i % len(grid.meters)]
            reading = fleet.reading(meter, 300.0 + 30.0 * i)
            deployment.ingest("telemetry",
                              json.dumps(reading.to_record()).encode())
        env.timeout(index * 0.002).callbacks.append(ingest)

    # At t=50 ms a noisy neighbour starves the filter service.
    def starve(_fired):
        filter_service.slowdown = 25.0
        orchestrator.record_onset("filter")
        print("anomaly injected at t=%.1f ms" % (env.now * 1e3))

    env.timeout(0.050).callbacks.append(starve)
    deployment.run()

    for detection in orchestrator.detections:
        print(
            "orchestrator detected %s anomaly on %r after %.2f ms; reacted"
            % (
                detection.kind,
                detection.service_name,
                detection.detection_latency * 1e3,
            )
        )
    print("service speed restored:", filter_service.slowdown == 1.0)
    print("outage notifications delivered:", len(notifications))
    print("done.")


if __name__ == "__main__":
    main()
