"""Use case 1 (paper Section VI): smart-meter analytics in the cloud.

Simulates a distribution grid with sub-minute smart-meter readings, a
tampered meter hiding 40% of its consumption, and runs power-theft
detection whose aggregation executes on the *secure map/reduce engine*
(enclave mappers and reducers, sealed shuffle) -- the cloud never sees
a single plaintext reading.

Run:  python examples/smart_meter_analytics.py
"""

from repro.sgx.platform import SgxPlatform
from repro.smartgrid.meters import SmartMeterFleet
from repro.smartgrid.quality import PowerQualityMonitor
from repro.smartgrid.theft import TheftDetector
from repro.smartgrid.topology import GridTopology

HOUR = 3600.0


def main():
    print("== Smart-meter analytics (power theft + power quality) ==")

    grid = GridTopology.build(
        feeders=2, transformers_per_feeder=3, meters_per_transformer=6
    )
    fleet = SmartMeterFleet(grid, seed=2024, interval=60.0)
    print(
        "grid: %d feeders, %d transformers, %d meters, 60 s sampling"
        % (len(grid.feeders), len(grid.transformers), len(grid.meters))
    )

    # A thief tampers with one meter at hour 1; a voltage sag hits
    # another transformer.
    thief = "meter-1-0-03"
    fleet.inject_theft(thief, start=1 * HOUR, fraction=0.4)
    fleet.inject_voltage_event("tx-0-2", 1.4 * HOUR, 1.5 * HOUR, per_unit=0.82)

    baseline = fleet.readings_window(0.0, 1 * HOUR)
    window = fleet.readings_window(1 * HOUR, 2 * HOUR)
    transformer_measurements = fleet.transformer_window(1 * HOUR, 2 * HOUR)
    print("collected %d readings for the detection window" % len(window))

    # --- theft detection with enclave-backed map/reduce ---
    platform = SgxPlatform()
    detector = TheftDetector(
        grid, interval=60.0, platform=platform, mappers=4, reducers=2
    )
    report = detector.detect(window, transformer_measurements, baseline)

    print("\n-- theft detection --")
    for transformer in grid.transformers:
        loss = report.loss_fraction.get(transformer, 0.0)
        flag = "FLAGGED" if transformer in report.flagged_transformers else ""
        print("  %-8s loss %5.1f%%  %s" % (transformer, loss * 100.0, flag))
    for transformer, meter in report.suspects.items():
        print("  suspect under %s: %s" % (transformer, meter))
    precision, recall = report.score(fleet.theft_ground_truth)
    print("  precision %.2f  recall %.2f (ground truth: %s)"
          % (precision, recall, sorted(fleet.theft_ground_truth)))

    # --- power quality over the same window ---
    print("\n-- power quality --")
    monitor = PowerQualityMonitor(grid, interval=60.0)
    events = monitor.detect(window)
    for event in events:
        print(
            "  %s %s for %.0f s (%d meters affected)"
            % (event.transformer, event.kind.upper(), event.duration,
               len(event.affected_meters))
        )
    if not events:
        print("  no events")
    print("\ndone.")


if __name__ == "__main__":
    main()
