"""GenPack: generational container scheduling (paper Section VI).

Replays one day of a typical data-center container trace under four
schedulers on identical 40-server clusters and reports energy,
average powered-on servers, and GenPack's savings -- the experiment
behind the paper's "up to 23% energy savings" statement.

Run:  python examples/genpack_cluster.py
"""

from repro.genpack.baselines import (
    FirstFitScheduler,
    RandomScheduler,
    SpreadScheduler,
)
from repro.genpack.cluster import Cluster
from repro.genpack.scheduler import GenPackScheduler
from repro.genpack.simulation import compare_schedulers
from repro.genpack.workload import ContainerWorkload

HOUR = 3600.0


def main():
    print("== GenPack vs. baseline schedulers (24 h, 40 servers) ==")
    workload = ContainerWorkload(
        seed=7, duration=24 * HOUR, arrival_rate_per_hour=60.0
    )
    trace = workload.generate()
    batch = sum(1 for spec in trace if spec.workload_class == "batch")
    print(
        "trace: %d containers (%d batch, %d service/system), requests "
        "inflated %.1fx over true usage"
        % (len(trace), batch, len(trace) - batch, workload.request_inflation)
    )

    results = compare_schedulers(
        make_cluster=lambda: Cluster.homogeneous(40),
        make_schedulers=[
            lambda cluster, monitor: SpreadScheduler(cluster),
            lambda cluster, monitor: RandomScheduler(cluster, seed=7),
            lambda cluster, monitor: FirstFitScheduler(cluster),
            lambda cluster, monitor: GenPackScheduler(cluster, monitor),
        ],
        workload=workload,
        trace=trace,
    )

    genpack = results["genpack"]
    print("\n%-10s %12s %8s %11s %10s %9s"
          % ("scheduler", "energy_kWh", "avg_on", "migrations", "completed",
             "saving"))
    for name in ("spread", "random", "first-fit", "genpack"):
        outcome = results[name]
        saving = genpack.energy_savings_vs(outcome)
        print(
            "%-10s %12.1f %8.1f %11d %10d %8.1f%%"
            % (
                name,
                outcome.energy_kwh,
                outcome.average_servers_on,
                outcome.migrations,
                outcome.completed,
                saving * 100.0,
            )
        )
    print(
        "\nGenPack saves %.1f%% vs. the spread default "
        "(paper: 'up to 23%%')."
        % (genpack.energy_savings_vs(results["spread"]) * 100.0)
    )
    print("done.")


if __name__ == "__main__":
    main()
