"""A distributed SCBR overlay: edge brokers, core broker, covering.

Three edge brokers (city districts) connect to a core broker.  Smart
meters publish at their district's edge; the utility's analytics
subscribe wherever they run.  Subscriptions propagate with the covering
optimisation; publications travel only toward interested brokers, and
every inter-broker hop carries ciphertext.

Run:  python examples/broker_overlay.py
"""

from repro.scbr.filters import Constraint, Operator, Subscription
from repro.scbr.network import ScbrNetwork


def main():
    print("== Distributed SCBR overlay ==")

    network = ScbrNetwork()
    for name in ("core", "district-north", "district-south", "district-east"):
        network.add_broker(name)
    for edge in ("district-north", "district-south", "district-east"):
        network.connect("core", edge)

    # Analytics at the core subscribe broadly; a field team in the
    # north subscribes to a *covered* (more specific) filter.
    network.subscribe(
        "core",
        Subscription("all-high-load",
                     [Constraint("watts", Operator.GE, 5000.0)],
                     subscriber="core-analytics"),
        client="core-analytics",
    )
    network.subscribe(
        "district-north",
        Subscription("north-overload",
                     [Constraint("watts", Operator.GE, 8000.0)],
                     subscriber="north-crew"),
        client="north-crew",
    )

    stats = network.forwarding_stats()
    print("subscription propagation: %d forwarded, %d suppressed by covering"
          % (stats["subscriptions_forwarded"],
             stats["subscriptions_suppressed"]))

    scenarios = (
        ("district-north", {"watts": 9500.0}, "north overload"),
        ("district-south", {"watts": 6000.0}, "south high load"),
        ("district-east", {"watts": 900.0}, "east normal"),
    )
    for origin, attributes, label in scenarios:
        delivered = network.publish(origin, attributes, payload=b"telemetry")
        receivers = sorted({client for client, _sid in delivered})
        print("%-18s (%s) -> %s"
              % (label, origin, ", ".join(receivers) or "no deliveries"))

    stats = network.forwarding_stats()
    print("publications forwarded between brokers:",
          stats["publications_forwarded"])
    total_deliveries = sum(
        len(broker.deliveries) for broker in network.brokers.values()
    )
    print("total local deliveries:", total_deliveries)
    print("done.")


if __name__ == "__main__":
    main()
