"""Quickstart: your first secure container on SecureCloud.

Builds a micro-service image in a trusted environment, publishes it
through an *untrusted* registry, runs it on an SGX host after remote
attestation, and demonstrates that tampering anywhere in the untrusted
chain is detected.

Run:  python examples/quickstart.py
"""

from repro.containers.client import SconeClient
from repro.containers.engine import ContainerEngine, Host
from repro.containers.image import FSPF_PATH
from repro.containers.registry import Registry
from repro.scone.cas import ConfigurationService
from repro.sgx.attestation import AttestationService


def greet_main(ctx, env):
    """The application logic -- this function runs inside the enclave."""
    secret = env.fs.read_all("/opt/greeting.txt")
    env.stdout.write(b"[service] " + secret)
    return secret.decode()


def main():
    print("== SecureCloud quickstart ==")

    # --- infrastructure: registry, attestation, CAS, one SGX host ---
    registry = Registry()
    attestation = AttestationService()
    cas = ConfigurationService(attestation)
    host = Host("sgx-host-0")
    attestation.register_platform(
        host.platform.platform_id, host.platform.quoting_enclave.public_key
    )
    engine = ContainerEngine(cas=cas)

    # --- trusted side: build, sign, publish ---
    client = SconeClient(registry, cas)
    result = client.build_and_publish(
        "hello-secure",
        {"main": greet_main},
        protected_files={"/opt/greeting.txt": b"hello from inside the enclave"},
    )
    print("built image, enclave measurement:", result.measurement[:16], "...")
    print("registry now holds:", registry.references())

    # --- untrusted side: pull (verifying the signature) and run ---
    image = client.pull_verified("hello-secure:latest")
    container = engine.create(image, host)  # attests + fetches the SCF
    print("container booted, secure:", container.is_secure)
    print("service returned:", repr(container.run()))

    # The host saw only ciphertext.
    stored_blobs = image.flatten()
    leaked = any(b"hello from inside" in blob for blob in stored_blobs.values())
    print("plaintext visible in the image the registry stored:", leaked)

    # --- attack: tamper with the published image ---
    registry.tamper_layer("hello-secure:latest", 0, FSPF_PATH, b"forged")
    try:
        client.pull_verified("hello-secure:latest")
    except Exception as error:
        print("tampered image rejected:", type(error).__name__)

    container.stop()
    print("done.")


if __name__ == "__main__":
    main()
