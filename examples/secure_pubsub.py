"""SCBR: secure content-based routing (paper Section V-B).

Publishers and subscribers establish keys with the router enclave via
attested Diffie-Hellman, then exchange encrypted publications and
subscriptions; the matching happens on plaintext *inside* the enclave
only.  The script ends with a miniature of the paper's Figure 3:
matching cost inside vs. outside the enclave as the subscription
database grows past the (scaled-down) EPC.

Run:  python examples/secure_pubsub.py
"""

from repro.scbr.filters import Constraint, Operator, Publication, Subscription
from repro.scbr.naive import LinearIndex
from repro.scbr.router import ScbrClient, ScbrRouter
from repro.scbr.workload import ScbrWorkload
from repro.sgx.attestation import AttestationService
from repro.sgx.costs import DEFAULT_COSTS, MIB
from repro.sgx.memory import EpcModel, SimulatedMemory
from repro.sgx.platform import SgxPlatform
from repro.sim.clock import CycleClock


def main():
    print("== SCBR: secure content-based routing ==")

    platform = SgxPlatform()
    attestation = AttestationService()
    attestation.register_platform(
        platform.platform_id, platform.quoting_enclave.public_key
    )
    router = ScbrRouter(platform)
    attestation.trust_measurement(router.measurement)
    print("router enclave measurement:", router.measurement[:16], "...")

    # Clients attest the router before sending anything.
    utility = ScbrClient("utility-ops", router, attestation)
    analyst = ScbrClient("grid-analyst", router, attestation)
    meter_gw = ScbrClient("meter-gateway", router, attestation)

    utility.subscribe(
        Subscription(
            "high-load",
            [Constraint("watts", Operator.GE, 5000.0)],
            subscriber="utility-ops",
        )
    )
    analyst.subscribe(
        Subscription(
            "north-region",
            [
                Constraint("watts", Operator.GE, 1000.0),
                Constraint("region", Operator.EQ, 1.0),
            ],
            subscriber="grid-analyst",
        )
    )
    print("2 encrypted subscriptions indexed;",
          router.stats()["subscriptions"], "stored in-enclave")

    for watts, region in ((7500.0, 1.0), (1200.0, 1.0), (800.0, 2.0)):
        publication = Publication({"watts": watts, "region": region},
                                  payload=b"reading")
        notifications = meter_gw.publish(publication)
        receivers = []
        for envelope in notifications:
            for client in (utility, analyst):
                try:
                    client.open_notification(envelope)
                    receivers.append(client.client_id)
                except Exception:
                    pass
        print("publication watts=%-6.0f region=%.0f -> delivered to %s"
              % (watts, region, receivers or ["nobody"]))

    # --- miniature Figure 3 (EPC scaled to 8 MB so it runs instantly) ---
    print("\nminiature Figure 3 (EPC scaled to 8 MB, records 512 B):")
    costs = DEFAULT_COSTS.scaled(epc_capacity=8 * MIB, llc_capacity=MIB)
    workload = ScbrWorkload(seed=5)
    pool = workload.subscriptions(2048)
    publications = workload.publications(3)
    print("  db_mb  native_ms  enclave_ms  slowdown")
    for db_mb in (1, 4, 8, 12, 16):
        times = {}
        for enclave in (False, True):
            clock = CycleClock()
            if enclave:
                memory = SimulatedMemory(clock, costs, enclave=True,
                                         epc=EpcModel(costs), name="x")
            else:
                memory = SimulatedMemory(clock, costs, name="x")
            index = LinearIndex(memory=memory, record_bytes=512)
            for i in range(db_mb * MIB // 512):
                index.insert(pool[i % len(pool)])
            index.match(publications[0])  # warm up
            start = clock.now
            for publication in publications[1:]:
                index.match(publication)
            times[enclave] = (clock.now - start) / 2 / 2.6e6
        print("  %5d  %9.3f  %10.3f  %8.1f"
              % (db_mb, times[False], times[True],
                 times[True] / times[False]))
    print("done.")


if __name__ == "__main__":
    main()
