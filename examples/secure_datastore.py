"""The secure structured store and windowed analytics, together.

Meter readings land in a :class:`SecureRecordStore` (every row encrypted
and authenticated by the FS shield on an untrusted disk), get queried
like a small database, and stream through an in-enclave tumbling window
for per-meter quarter-hour averages.

Run:  python examples/secure_datastore.py
"""

from repro.bigdata.query import SecureRecordStore
from repro.bigdata.streaming import TumblingWindow
from repro.scone.fs_shield import ProtectedVolume, UntrustedStore
from repro.smartgrid.meters import SmartMeterFleet
from repro.smartgrid.topology import GridTopology

HOUR = 3600.0


def main():
    print("== Secure datastore + windowed analytics ==")

    grid = GridTopology.build(feeders=1, transformers_per_feeder=2,
                              meters_per_transformer=3)
    fleet = SmartMeterFleet(grid, seed=99, interval=60.0)

    untrusted_disk = UntrustedStore()
    volume = ProtectedVolume(untrusted_disk)
    store = SecureRecordStore(volume, "readings")

    readings = fleet.readings_window(12 * HOUR, 13 * HOUR)
    for index, reading in enumerate(readings):
        store.insert("r%05d" % index, {
            "meter": reading.meter_id,
            "tx": grid.transformer_of(reading.meter_id),
            "t": reading.timestamp,
            "w": round(reading.watts, 1),
        })
    print("stored %d readings; untrusted disk holds %d ciphertext chunks"
          % (len(store), len(untrusted_disk._chunks)))

    # --- queries on verified plaintext ---
    heavy = store.query(where=[("w", ">", 250.0)], order_by="w",
                        descending=True, limit=3, project=["meter", "w"])
    print("\ntop readings above 250 W:")
    for key, row in heavy:
        print("  %-8s %-14s %8.1f W" % (key, row["meter"], row["w"]))

    by_transformer = store.aggregate("w", "mean", group_by="tx")
    print("\nmean load per transformer:")
    for transformer in sorted(by_transformer):
        print("  %-8s %8.1f W" % (transformer, by_transformer[transformer]))

    # --- windowed stream analytics over the same data ---
    window = TumblingWindow(
        900.0,
        lambda rows: sum(r["w"] for r in rows) / len(rows),
        key_fn=lambda r: r["meter"],
    )
    closed = []
    for _key, row in store.query(order_by="t"):
        closed.extend(window.ingest(row["t"], row))
    closed.extend(window.flush())
    meter = grid.meters[0]
    print("\nquarter-hour averages for %s:" % meter)
    for start, end, key, mean_watts in closed:
        if key == meter:
            print("  [%5.0f s - %5.0f s) %8.1f W"
                  % (start - 12 * HOUR, end - 12 * HOUR, mean_watts))

    # --- the disk never sees a value ---
    leaked = any(
        b"meter-" in untrusted_disk.get(path, index)
        for path, index in list(untrusted_disk._chunks)
    )
    print("\nplaintext on the untrusted disk:", leaked)
    print("done.")


if __name__ == "__main__":
    main()
