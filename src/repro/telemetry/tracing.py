"""Span-based tracing across enclave boundaries.

A :class:`SpanRecorder` buffers :class:`Span` records for one *clock
domain* -- the host driver, the coordinator enclave, one shard enclave.
Each domain has its own virtual clock, so spans carry the domain name
next to their start/end cycle stamps and are never compared across
domains by raw timestamps; the tree is joined by *context*, not time.

Context propagation: a span's identity is ``(trace_id, span_id)``.
Crossing an enclave boundary, the caller passes that pair as an
ordinary ECALL argument; the enclave-side recorder parents its spans
under it.  Span and trace ids are small per-recorder counters --
deterministic across same-seed runs, unlike random ids.

The trust boundary: a recorder living *inside* an enclave is part of
the enclave's state; its spans leave only through
:mod:`repro.telemetry.sealed` (AEAD under the telemetry key), so the
untrusted host relays opaque blobs and plaintext timings of in-enclave
work are visible only to the operator holding the key.  Host-side
recorders (driver loops, benchmark harnesses) hold plaintext spans --
they time work the host could observe anyway.
"""

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Optional


@dataclass
class Span:
    """One timed operation in one clock domain."""

    name: str
    span_id: str
    trace_id: str
    parent_id: Optional[str]
    domain: str
    start: int
    end: int
    attrs: dict = field(default_factory=dict)

    @property
    def duration(self):
        return self.end - self.start

    def to_dict(self):
        return {
            "name": self.name,
            "span_id": self.span_id,
            "trace_id": self.trace_id,
            "parent_id": self.parent_id,
            "domain": self.domain,
            "start": self.start,
            "end": self.end,
            "attrs": dict(self.attrs),
        }

    @classmethod
    def from_dict(cls, raw):
        return cls(
            name=raw["name"],
            span_id=raw["span_id"],
            trace_id=raw["trace_id"],
            parent_id=raw.get("parent_id"),
            domain=raw["domain"],
            start=raw["start"],
            end=raw["end"],
            attrs=dict(raw.get("attrs", {})),
        )


class SpanRecorder:
    """Buffers spans for one clock domain.

    Not thread-safe by design: a recorder belongs to one domain (one
    enclave, or the single driver thread), and the sharded plane's
    worker threads each talk to their *own* shard's recorder.  Ids are
    sequential, so two same-seed runs emit identical span tables.
    """

    enabled = True

    def __init__(self, domain):
        self.domain = domain
        self.spans = []
        self._next_span = 0
        self._next_trace = 0
        self._stack = []

    def _span_id(self):
        span_id = "%s:%d" % (self.domain, self._next_span)
        self._next_span += 1
        return span_id

    def new_trace(self):
        """Mint a trace id; the root caller owns it."""
        trace_id = "%s/t%d" % (self.domain, self._next_trace)
        self._next_trace += 1
        return trace_id

    def _parentage(self, trace):
        if trace is not None:
            return trace[0], trace[1]
        if self._stack:
            parent = self._stack[-1]
            return parent.trace_id, parent.span_id
        return self.new_trace(), None

    @contextmanager
    def span(self, name, clock, trace=None, **attrs):
        """Record a span around the block; yields it for attrs.

        ``clock`` supplies virtual time (``.now``); ``trace`` is an
        optional ``(trace_id, parent_span_id)`` pair from across a
        boundary.  Nested ``span`` calls on the same recorder parent
        implicitly.
        """
        trace_id, parent_id = self._parentage(trace)
        record = Span(
            name=name,
            span_id=self._span_id(),
            trace_id=trace_id,
            parent_id=parent_id,
            domain=self.domain,
            start=clock.now,
            end=clock.now,
            attrs=dict(attrs),
        )
        self._stack.append(record)
        try:
            yield record
        finally:
            self._stack.pop()
            record.end = clock.now
            self.spans.append(record)

    def record(self, name, start, end, trace=None, parent_id=None,
               **attrs):
        """Record a completed span with explicit timestamps.

        For spans whose duration is *computed* rather than measured in
        one place -- e.g. the sharded plane's publish latency, which is
        coordinator cycles plus the slowest shard's cycles.  With
        ``trace`` the span joins that trace under ``parent_id``
        (``trace[1]`` when omitted); without it, it roots a new trace.
        """
        if trace is not None:
            trace_id = trace[0]
            parent_id = parent_id if parent_id is not None else trace[1]
        else:
            trace_id = self.new_trace()
        record = Span(
            name=name,
            span_id=self._span_id(),
            trace_id=trace_id,
            parent_id=parent_id,
            domain=self.domain,
            start=start,
            end=end,
            attrs=dict(attrs),
        )
        self.spans.append(record)
        return record

    def reserve(self):
        """Pre-allocate ``(trace_id, span_id)`` for a root span whose
        duration is only known after its children ran; finish it with
        :meth:`record_reserved`.  The pair doubles as the ``trace``
        argument child spans parent under.
        """
        return self.new_trace(), self._span_id()

    def record_reserved(self, reservation, name, start, end, **attrs):
        """Record the root span for a :meth:`reserve` reservation."""
        trace_id, span_id = reservation
        record = Span(
            name=name,
            span_id=span_id,
            trace_id=trace_id,
            parent_id=None,
            domain=self.domain,
            start=start,
            end=end,
            attrs=dict(attrs),
        )
        self.spans.append(record)
        return record

    def export(self):
        """Spans as plain dicts (what the sealed snapshot carries)."""
        return [span.to_dict() for span in self.spans]


class _NullSpan:
    __slots__ = ()

    @property
    def attrs(self):
        # A fresh throwaway dict per access: callers may write
        # ``span.attrs["k"] = v`` without mutating shared state.
        return {}

    def __setattr__(self, name, value):
        pass


class NullRecorder:
    """Disabled tracing: every operation is a no-op."""

    enabled = False
    spans = ()
    domain = "null"

    _SPAN = _NullSpan()

    @contextmanager
    def span(self, name, clock, trace=None, **attrs):
        yield self._SPAN

    def new_trace(self):
        return "null/t0"

    def record(self, name, start, end, trace=None, parent_id=None,
               **attrs):
        return self._SPAN

    def reserve(self):
        return "null/t0", "null:0"

    def record_reserved(self, reservation, name, start, end, **attrs):
        return self._SPAN

    def export(self):
        return []


NULL_RECORDER = NullRecorder()


def build_span_tree(spans, trace_id=None):
    """Join spans (possibly from several domains) into parent trees.

    Returns the list of root ``(span, children)`` nodes -- children are
    nested ``(span, children)`` pairs ordered by start stamp then id,
    so the shape is deterministic.  ``trace_id`` filters to one trace.
    """
    if trace_id is not None:
        spans = [span for span in spans if span.trace_id == trace_id]
    spans = sorted(spans, key=lambda s: (s.start, s.span_id))
    by_parent = {}
    ids = {span.span_id for span in spans}
    roots = []
    for span in spans:
        if span.parent_id is not None and span.parent_id in ids:
            by_parent.setdefault(span.parent_id, []).append(span)
        else:
            roots.append(span)

    def attach(span):
        return (span, [attach(child)
                       for child in by_parent.get(span.span_id, [])])

    return [attach(root) for root in roots]


def render_flame(tree, frequency_hz=2_600_000_000.0):
    """Indented text flame view of a span tree.

    Cycle stamps convert to virtual milliseconds at ``frequency_hz``;
    each line shows the span's own domain, so cross-domain children
    read as "measured on that enclave's clock".
    """
    lines = []

    def walk(node, depth):
        span, children = node
        cycles = span.duration
        detail = " ".join(
            "%s=%s" % (key, span.attrs[key]) for key in sorted(span.attrs)
        )
        lines.append("%s%-24s %10d cyc  %8.4f ms  [%s]%s" % (
            "  " * depth,
            span.name,
            cycles,
            cycles / frequency_hz * 1e3,
            span.domain,
            ("  " + detail) if detail else "",
        ))
        for child in children:
            walk(child, depth + 1)

    for root in tree:
        walk(root, 0)
    return "\n".join(lines)
