"""The virtual-clock-native metrics registry.

Counters, gauges, and histograms for a *simulated* system: every value
is a pure function of the simulation's deterministic state (virtual
cycle counts, event-clock timestamps, record sizes), never of wall
time.  Two same-seed runs must produce byte-identical snapshots -- the
chaos determinism gate asserts exactly that -- so the registry bans the
usual sources of snapshot noise:

- histogram buckets are *fixed at creation* (deterministic bucketing;
  no adaptive resizing whose shape depends on arrival order);
- snapshots are emitted with sorted keys and canonical JSON;
- counter/histogram updates take the registry lock, so concurrent
  updates from the data plane's thread pools cannot lose increments
  (a lost increment is a nondeterministic count).

Zero-cost-when-disabled: the process-wide default registry is
:data:`NULL_REGISTRY`, whose instruments are shared no-op singletons.
Instrumented subsystems resolve their handles once at construction, so
with telemetry off the hot path pays one attribute load and one no-op
method call.  Enable collection with :func:`enabled` (a context
manager) or :func:`set_default_registry`.
"""

import json
import threading
from contextlib import contextmanager

from repro.errors import ConfigurationError


def exponential_buckets(start, factor, count):
    """``count`` ascending bucket upper bounds: start, start*factor, ...

    The workhorse for cycle-valued histograms: deterministic, fixed at
    creation, covering many orders of magnitude with few buckets.
    """
    if start <= 0 or factor <= 1 or count < 1:
        raise ConfigurationError(
            "need start > 0, factor > 1, count >= 1"
        )
    bounds = []
    upper = start
    for _ in range(count):
        bounds.append(upper)
        upper *= factor
    return tuple(bounds)


# Default for cycle-valued histograms: 1k cycles to ~4.3G cycles
# (~0.4 us to ~1.7 s at 2.6 GHz), factor-4 resolution.
DEFAULT_CYCLE_BUCKETS = exponential_buckets(1_000, 4, 12)
# Default for (virtual) seconds-valued histograms: 1 us to ~4.3 s.
DEFAULT_SECONDS_BUCKETS = exponential_buckets(1e-6, 4, 12)


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("value", "_lock")

    def __init__(self, lock):
        self.value = 0
        self._lock = lock

    def inc(self, amount=1):
        with self._lock:
            self.value += amount


class Gauge:
    """A point-in-time value, last write wins."""

    __slots__ = ("value", "_lock")

    def __init__(self, lock):
        self.value = 0
        self._lock = lock

    def set(self, value):
        with self._lock:
            self.value = value


class Histogram:
    """Deterministically bucketed distribution of observed values.

    ``buckets`` are ascending upper bounds; values above the last bound
    land in an implicit overflow bucket.  The shape is fixed at
    creation, so the bucket a value lands in depends only on the value
    -- never on what was observed before it or on which thread observed
    it -- which keeps snapshots order-independent and bit-stable.
    """

    __slots__ = ("buckets", "bucket_counts", "count", "total", "_lock")

    def __init__(self, lock, buckets=DEFAULT_CYCLE_BUCKETS):
        buckets = tuple(buckets)
        if not buckets or list(buckets) != sorted(buckets):
            raise ConfigurationError(
                "histogram buckets must be non-empty and ascending"
            )
        self.buckets = buckets
        self.bucket_counts = [0] * (len(buckets) + 1)
        self.count = 0
        self.total = 0
        self._lock = lock

    def _bucket_index(self, value):
        low, high = 0, len(self.buckets)
        while low < high:
            mid = (low + high) // 2
            if value <= self.buckets[mid]:
                high = mid
            else:
                low = mid + 1
        return low

    def observe(self, value):
        with self._lock:
            self.bucket_counts[self._bucket_index(value)] += 1
            self.count += 1
            self.total += value

    def resolution(self, value):
        """Width of the bucket ``value`` falls in (the measurement's
        granularity -- differences below this are not distinguishable
        from this histogram's snapshot)."""
        index = self._bucket_index(value)
        if index >= len(self.buckets):
            return float("inf")
        lower = self.buckets[index - 1] if index else 0
        return self.buckets[index] - lower

    def mean(self):
        return self.total / self.count if self.count else 0


def _label_suffix(labels):
    if not labels:
        return ""
    return "{%s}" % ",".join(
        "%s=%s" % (key, labels[key]) for key in sorted(labels)
    )


class MetricsRegistry:
    """A live registry: creates, memoizes, and snapshots instruments.

    Instruments are keyed by ``(kind, name, sorted labels)``; asking
    twice returns the same handle.  ``gauge_fn`` registers a callable
    sampled at snapshot time -- the zero-hot-path-cost way to expose a
    subsystem's existing counters (EPC fault totals, queue depths)
    without touching its fast path.
    """

    active = True

    def __init__(self):
        self._lock = threading.Lock()
        self._instruments = {}
        self._gauge_fns = {}
        self._indexes = {}

    def _get(self, kind, name, labels, factory):
        key = (kind, name, tuple(sorted(labels.items())))
        with self._lock:
            instrument = self._instruments.get(key)
            if instrument is None:
                instrument = factory()
                self._instruments[key] = instrument
            return instrument

    def counter(self, name, **labels):
        return self._get("counter", name, labels,
                         lambda: Counter(self._lock))

    def gauge(self, name, **labels):
        return self._get("gauge", name, labels, lambda: Gauge(self._lock))

    def histogram(self, name, buckets=None, **labels):
        return self._get(
            "histogram", name, labels,
            lambda: Histogram(self._lock, buckets or DEFAULT_CYCLE_BUCKETS),
        )

    def next_index(self, name):
        """A deterministic per-name ordinal (label for anonymous
        instances -- e.g. the Nth platform created under this registry,
        which is stable across same-seed runs where raw object ids and
        global instance counters are not)."""
        with self._lock:
            index = self._indexes.get(name, 0)
            self._indexes[name] = index + 1
            return index

    def gauge_fn(self, name, fn, **labels):
        """Register ``fn()`` to be sampled at snapshot time."""
        key = (name, tuple(sorted(labels.items())))
        with self._lock:
            self._gauge_fns[key] = fn

    def snapshot(self):
        """All instruments as a plain, sorted, JSON-able dict."""
        with self._lock:
            items = list(self._instruments.items())
            gauge_fns = list(self._gauge_fns.items())
        counters, gauges, histograms = {}, {}, {}
        for (kind, name, labels), instrument in items:
            full_name = name + _label_suffix(dict(labels))
            if kind == "counter":
                counters[full_name] = instrument.value
            elif kind == "gauge":
                gauges[full_name] = instrument.value
            else:
                histograms[full_name] = {
                    "buckets": list(instrument.buckets),
                    "bucket_counts": list(instrument.bucket_counts),
                    "count": instrument.count,
                    "total": instrument.total,
                }
        for (name, labels), fn in gauge_fns:
            gauges[name + _label_suffix(dict(labels))] = fn()
        snapshot = {}
        if counters:
            snapshot["counters"] = dict(sorted(counters.items()))
        if gauges:
            snapshot["gauges"] = dict(sorted(gauges.items()))
        if histograms:
            snapshot["histograms"] = dict(sorted(histograms.items()))
        return snapshot

    def to_json(self):
        """Canonical snapshot bytes (the determinism gate compares
        these byte-for-byte across same-seed runs)."""
        return json.dumps(
            self.snapshot(), sort_keys=True, separators=(",", ":")
        ).encode("utf-8")


class _NullCounter:
    __slots__ = ()
    value = 0

    def inc(self, amount=1):
        pass


class _NullGauge:
    __slots__ = ()
    value = 0

    def set(self, value):
        pass


class _NullHistogram:
    __slots__ = ()
    buckets = DEFAULT_CYCLE_BUCKETS
    count = 0
    total = 0

    def observe(self, value):
        pass

    def resolution(self, value):
        return float("inf")

    def mean(self):
        return 0


class NullRegistry:
    """The disabled registry: every instrument is a shared no-op.

    This is the process default, so instrumented hot paths cost one
    no-op method call when telemetry is off and snapshots stay empty.
    """

    active = False

    _COUNTER = _NullCounter()
    _GAUGE = _NullGauge()
    _HISTOGRAM = _NullHistogram()

    def counter(self, name, **labels):
        return self._COUNTER

    def gauge(self, name, **labels):
        return self._GAUGE

    def histogram(self, name, buckets=None, **labels):
        return self._HISTOGRAM

    def next_index(self, name):
        return 0

    def gauge_fn(self, name, fn, **labels):
        # Deliberately drops ``fn``: a disabled registry must not keep
        # subsystems alive through sampling closures.
        pass

    def snapshot(self):
        return {}

    def to_json(self):
        return b"{}"


NULL_REGISTRY = NullRegistry()

_default_registry = NULL_REGISTRY


def default_registry():
    """The registry instrumented subsystems resolve at construction."""
    return _default_registry


def set_default_registry(registry):
    """Install ``registry`` as the process default; returns the old one."""
    global _default_registry
    previous = _default_registry
    _default_registry = registry
    return previous


@contextmanager
def enabled(registry=None):
    """Collect metrics for the duration of the block.

    Installs ``registry`` (default: a fresh :class:`MetricsRegistry`)
    as the process default and restores the previous one on exit.
    Components constructed *inside* the block record into it; anything
    constructed before keeps its no-op handles.
    """
    registry = registry if registry is not None else MetricsRegistry()
    previous = set_default_registry(registry)
    try:
        yield registry
    finally:
        set_default_registry(previous)
