"""Enclave-aware telemetry: metrics, tracing, sealed snapshots.

Three pieces:

- :mod:`repro.telemetry.registry` -- the virtual-clock-native metrics
  registry (counters, gauges, deterministic-bucket histograms) with a
  no-op default, so instrumentation is zero-cost until enabled;
- :mod:`repro.telemetry.tracing` -- span recorders with context
  propagation across enclave boundaries, plus span-tree/flame-view
  reconstruction;
- :mod:`repro.telemetry.sealed` -- AEAD-sealed snapshot export for
  telemetry recorded *inside* enclaves, so in-enclave timings reach
  only the operator holding the telemetry key.
"""

from repro.telemetry.registry import (
    Counter,
    DEFAULT_CYCLE_BUCKETS,
    DEFAULT_SECONDS_BUCKETS,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_REGISTRY,
    NullRegistry,
    default_registry,
    enabled,
    exponential_buckets,
    set_default_registry,
)
from repro.telemetry.tracing import (
    NULL_RECORDER,
    NullRecorder,
    Span,
    SpanRecorder,
    build_span_tree,
    render_flame,
)
from repro.telemetry.sealed import (
    EnclaveTelemetry,
    TELEMETRY_AAD,
    open_snapshot,
    seal_snapshot,
    spans_from_snapshot,
)

__all__ = [
    "Counter",
    "DEFAULT_CYCLE_BUCKETS",
    "DEFAULT_SECONDS_BUCKETS",
    "EnclaveTelemetry",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_RECORDER",
    "NULL_REGISTRY",
    "NullRecorder",
    "NullRegistry",
    "Span",
    "SpanRecorder",
    "TELEMETRY_AAD",
    "build_span_tree",
    "default_registry",
    "enabled",
    "exponential_buckets",
    "open_snapshot",
    "render_flame",
    "seal_snapshot",
    "set_default_registry",
    "spans_from_snapshot",
]
