"""Sealed telemetry snapshots: the enclave side of the trust boundary.

The paper's model allows the untrusted host to observe *that* an
enclave was entered, but not what it computed -- and fine-grained
in-enclave timings are a well-known side channel (they reveal match
counts, key-dependent work, data skew).  So telemetry recorded inside
an enclave (an :class:`EnclaveTelemetry` living in the enclave's state)
never leaves as plaintext: :meth:`EnclaveTelemetry.export_sealed`
serialises the metric snapshot and span table canonically and seals
them with AEAD under the *telemetry key*, provisioned at enclave setup
over the same attested channel as the other plane secrets.  The host
stores and forwards opaque blobs; only the operator holding the
telemetry key (``repro.cli trace`` / ``repro.cli metrics`` model that
operator) can open them with :func:`open_snapshot`.

Tampering, truncating, or splicing a sealed snapshot fails closed on
the AEAD tag -- an observability channel must not become an integrity
hole.
"""

import json

from repro.errors import IntegrityError
from repro.crypto.aead import SealedBatch

from repro.telemetry.registry import MetricsRegistry
from repro.telemetry.tracing import Span, SpanRecorder

# Domain-separates telemetry snapshots from every other sealed payload
# in the system (plane messages, checkpoints, snapshots).
TELEMETRY_AAD = b"telemetry|snapshot|v1"


def seal_snapshot(key, payload):
    """Seal a JSON-able telemetry payload under the telemetry key."""
    raw = json.dumps(payload, sort_keys=True,
                     separators=(",", ":")).encode("utf-8")
    return key.encrypt_batch([raw], aad=TELEMETRY_AAD).to_bytes()


def open_snapshot(key, blob):
    """Open a sealed telemetry blob; fails closed on any tampering."""
    try:
        records = key.decrypt_batch(
            SealedBatch.from_bytes(blob), aad=TELEMETRY_AAD
        )
    except IntegrityError as exc:
        raise IntegrityError(
            "sealed telemetry snapshot failed authentication"
        ) from exc
    return json.loads(records[0].decode("utf-8"))


def spans_from_snapshot(payload):
    """Rehydrate :class:`Span` objects from an opened snapshot."""
    return [Span.from_dict(raw) for raw in payload.get("spans", [])]


class EnclaveTelemetry:
    """Metrics + spans buffered inside one enclave.

    Created by an enclave's ``setup`` entry point when a telemetry key
    is provisioned, and kept in ``ctx.state`` -- enclave state the host
    cannot read.  The registry here is always live (the enclave decided
    to record by accepting the key); the host-global on/off switch
    governs only *host-side* instruments.
    """

    def __init__(self, key, domain):
        self.key = key
        self.domain = domain
        self.registry = MetricsRegistry()
        self.recorder = SpanRecorder(domain)

    def export_sealed(self):
        """The sealed snapshot the host may relay to the operator."""
        return seal_snapshot(self.key, {
            "domain": self.domain,
            "metrics": self.registry.snapshot(),
            "spans": self.recorder.export(),
        })
