"""Shielded standard I/O streams.

SCONE transparently encrypts data flowing through stdin/stdout/stderr so
the host OS sees only ciphertext.  Each stream direction has its own key
(carried in the SCF) and a record counter, so the untrusted side cannot
read, modify, reorder, replay, or drop records without detection.

High-throughput writers can coalesce many chunks into one sealed record
with :meth:`ShieldedStreamWriter.write_batch`: the chunks travel as one
:class:`~repro.crypto.aead.SealedBatch` frame (one nonce, one tag, one
keystream pass) under a single sequence number.  The reader recognises
the batch framing transparently and yields the concatenated bytes, so
stream semantics are unchanged.
"""

from repro.errors import IntegrityError
from repro.crypto.aead import Ciphertext, SealedBatch


class ShieldedStreamWriter:
    """The in-enclave writing end of a shielded stream."""

    def __init__(self, key, stream_name="stdout", transport=None):
        self.key = key
        self.stream_name = stream_name
        self.transport = transport if transport is not None else []
        self._sequence = 0

    @property
    def records_written(self):
        """Number of records emitted so far."""
        return self._sequence

    def _aad(self):
        return b"%s|%d" % (self.stream_name.encode("utf-8"), self._sequence)

    def write(self, data):
        """Encrypt ``data`` as the next record and hand it to the host."""
        record = self.key.encrypt(data, aad=self._aad()).to_bytes()
        self._sequence += 1
        self.transport.append(record)
        return record

    def write_batch(self, chunks):
        """Seal many chunks as one record (one nonce+tag for the batch).

        Consumes a single sequence number: the batch is one record on
        the wire, ordered and replay-protected like any other.
        """
        record = self.key.encrypt_batch(list(chunks), aad=self._aad()).to_bytes()
        self._sequence += 1
        self.transport.append(record)
        return record

    def close(self):
        """Emit an authenticated end-of-stream marker.

        Without it, the untrusted host could silently truncate the
        stream; the reader treats missing closure as an error.
        """
        record = self.key.encrypt(b"", aad=b"%s|eof|%d" % (
            self.stream_name.encode("utf-8"), self._sequence
        )).to_bytes()
        self.transport.append(record)
        return record


class ShieldedStreamReader:
    """The consuming end: verifies order, integrity, and closure."""

    def __init__(self, key, stream_name="stdout", transport=None):
        self.key = key
        self.stream_name = stream_name
        self.transport = transport if transport is not None else []
        self._sequence = 0
        self._closed = False

    @property
    def closed(self):
        """True once the end-of-stream marker has been verified."""
        return self._closed

    def read_record(self, record):
        """Verify and decrypt one record (raises on any tampering)."""
        if self._closed:
            raise IntegrityError("records after authenticated end of stream")
        name = self.stream_name.encode("utf-8")
        data_aad = b"%s|%d" % (name, self._sequence)
        if SealedBatch.is_batch(record):
            try:
                chunks = self.key.decrypt_batch(
                    SealedBatch.from_bytes(record), aad=data_aad
                )
            except IntegrityError:
                raise IntegrityError(
                    "stream %s record %d failed authentication (tampered, "
                    "reordered, replayed, or dropped)"
                    % (self.stream_name, self._sequence)
                ) from None
            self._sequence += 1
            return b"".join(chunks)
        ciphertext = Ciphertext.from_bytes(record)
        try:
            plaintext = self.key.decrypt(ciphertext, aad=data_aad)
        except IntegrityError:
            eof_aad = b"%s|eof|%d" % (name, self._sequence)
            try:
                self.key.decrypt(ciphertext, aad=eof_aad)
            except IntegrityError:
                raise IntegrityError(
                    "stream %s record %d failed authentication (tampered, "
                    "reordered, replayed, or dropped)"
                    % (self.stream_name, self._sequence)
                ) from None
            self._closed = True
            return b""
        self._sequence += 1
        return plaintext

    def drain(self):
        """Read every record queued on the transport, in order."""
        chunks = []
        while self.transport:
            record = self.transport.pop(0)
            chunk = self.read_record(record)
            if self._closed:
                break
            chunks.append(chunk)
        return b"".join(chunks)
