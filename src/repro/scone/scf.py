"""The startup configuration file (SCF).

Section V-A: *"The SCF contains keys to encrypt standard I/O streams,
the hash and encryption key of the FS protection file, application
arguments, as well as environment variables. Only an enclave whose
identity has been verified can access the SCF, which is received
through a TLS-protected connection established during enclave
startup."*

:class:`StartupConfiguration` is that object; delivery is implemented by
:mod:`repro.scone.cas`.
"""

import json

from repro.errors import IntegrityError
from repro.crypto.aead import AeadKey


class StartupConfiguration:
    """Everything a secure container needs to boot."""

    def __init__(self, stdin_key, stdout_key, stderr_key,
                 fspf_key, fspf_hash, arguments=(), environment=None):
        self.stdin_key = stdin_key
        self.stdout_key = stdout_key
        self.stderr_key = stderr_key
        self.fspf_key = fspf_key
        self.fspf_hash = bytes(fspf_hash)
        self.arguments = tuple(arguments)
        self.environment = dict(environment or {})

    @classmethod
    def create(cls, key_hierarchy, fspf_hash, arguments=(), environment=None):
        """Derive all stream keys from an image-creator key hierarchy."""
        return cls(
            stdin_key=key_hierarchy.aead_key("stream", "stdin"),
            stdout_key=key_hierarchy.aead_key("stream", "stdout"),
            stderr_key=key_hierarchy.aead_key("stream", "stderr"),
            fspf_key=key_hierarchy.aead_key("fspf"),
            fspf_hash=fspf_hash,
            arguments=arguments,
            environment=environment,
        )

    def to_bytes(self):
        """Serialise for transmission over the attested channel."""
        payload = {
            "stdin_key": self.stdin_key.key_bytes.hex(),
            "stdout_key": self.stdout_key.key_bytes.hex(),
            "stderr_key": self.stderr_key.key_bytes.hex(),
            "fspf_key": self.fspf_key.key_bytes.hex(),
            "fspf_hash": self.fspf_hash.hex(),
            "arguments": list(self.arguments),
            "environment": self.environment,
        }
        return json.dumps(payload, sort_keys=True).encode("utf-8")

    @classmethod
    def from_bytes(cls, raw):
        """Parse a serialised SCF."""
        try:
            payload = json.loads(raw.decode("utf-8"))
            return cls(
                stdin_key=AeadKey(bytes.fromhex(payload["stdin_key"])),
                stdout_key=AeadKey(bytes.fromhex(payload["stdout_key"])),
                stderr_key=AeadKey(bytes.fromhex(payload["stderr_key"])),
                fspf_key=AeadKey(bytes.fromhex(payload["fspf_key"])),
                fspf_hash=bytes.fromhex(payload["fspf_hash"]),
                arguments=payload["arguments"],
                environment=payload["environment"],
            )
        except (KeyError, ValueError, UnicodeDecodeError) as exc:
            raise IntegrityError("malformed SCF: %s" % exc) from exc

    def __eq__(self, other):
        return (
            isinstance(other, StartupConfiguration)
            and self.to_bytes() == other.to_bytes()
        )
