"""The configuration and attestation service (CAS).

Image creators register an SCF under the *measurement* of the enclave
allowed to receive it.  At container startup, the enclave generates an
ephemeral identity key inside the enclave, obtains a quote binding that
key's fingerprint, and opens a TLS-like channel to the CAS with the
quote embedded in the handshake.  The CAS releases the SCF over that
channel only if:

1. the quote's signature chains to a registered SGX platform;
2. the quoted measurement has an SCF registered;
3. the quote's report data equals the handshake key's fingerprint
   (so the channel terminates *inside* the attested enclave).
"""

from repro.errors import AttestationError
from repro.crypto.rsa import RsaKeyPair
from repro.crypto.tls import establish_channel
from repro.scone.scf import StartupConfiguration
from repro.sgx.attestation import Quote


class ConfigurationService:
    """Stores SCFs and releases them to attested enclaves only."""

    def __init__(self, attestation_service, identity=None, key_bits=1024):
        self.attestation_service = attestation_service
        self.identity = identity or RsaKeyPair.generate(bits=key_bits)
        self._configurations = {}
        self.delivered = 0
        self.denied = 0

    def register_scf(self, measurement, scf):
        """Bind an SCF to the enclave measurement allowed to read it."""
        self._configurations[measurement] = scf
        self.attestation_service.trust_measurement(measurement)

    def has_scf(self, measurement):
        """Whether a configuration is registered for ``measurement``."""
        return measurement in self._configurations

    def provision(self, platform, enclave, enclave_identity=None):
        """Run the startup protocol; returns the SCF to the enclave.

        ``enclave_identity`` is the ephemeral RSA key generated inside
        the enclave for this boot (a fresh one is created when omitted;
        callers pass their own to model key reuse attacks in tests).
        """
        if enclave_identity is None:
            enclave_identity = RsaKeyPair.generate(bits=512)

        # Quote binds the ephemeral channel key to the enclave identity.
        binding = enclave_identity.public_key.fingerprint().encode("ascii")
        quote = platform.quote(enclave, report_data=binding)

        delivered = {}

        def cas_verifies(payload):
            parsed = Quote.from_bytes(payload)
            try:
                self.attestation_service.verify(
                    parsed, expected_report_data=binding
                )
            except AttestationError:
                self.denied += 1
                raise
            if parsed.measurement not in self._configurations:
                self.denied += 1
                raise AttestationError(
                    "no SCF registered for measurement %s..."
                    % parsed.measurement[:16]
                )
            delivered["measurement"] = parsed.measurement

        # The enclave is the TLS *server* (it presented the quote); the
        # CAS is the client verifying it before sending secrets.
        cas_channel, enclave_channel = establish_channel(
            client_identity=self.identity,
            server_identity=enclave_identity,
            server_attestation_payload=quote.to_bytes(),
            verify_server_payload=cas_verifies,
        )

        scf = self._configurations[delivered["measurement"]]
        record = cas_channel.seal(scf.to_bytes(), record_type=b"scf")
        self.delivered += 1

        raw = enclave_channel.open(record, record_type=b"scf")
        return StartupConfiguration.from_bytes(raw)
