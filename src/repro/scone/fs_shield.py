"""The SCONE file-system shield.

Files are split into fixed-size chunks.  Each chunk is encrypted with a
per-file key; its nonce and ciphertext live in the *untrusted* store,
while the authentication tag is recorded in the *FS protection file*
together with the per-file keys -- exactly the split Section V-A of the
paper describes.  Consequences the tests verify:

- the untrusted store holds only ciphertext;
- modifying, swapping, or rolling back any chunk is detected, because
  tags are keyed per (file, chunk index, version) and kept in the
  protection file, not next to the data;
- the protection file itself is sealed with its own key and identified
  by hash inside the SCF, so the whole tree of trust hangs off enclave
  attestation.
"""

from dataclasses import dataclass, field

from repro.errors import ConfigurationError, IntegrityError
from repro.crypto.aead import AeadKey, Ciphertext
from repro.crypto.primitives import sha256
from repro.telemetry import default_registry

DEFAULT_CHUNK_SIZE = 4096


class UntrustedStore:
    """The cloud provider's disk: holds only encrypted chunks.

    Keys are ``(path, chunk_index)``; values are opaque blobs.  The
    ``tamper``/``rollback`` helpers simulate an attacker with full
    control of the store.
    """

    def __init__(self):
        self._chunks = {}

    def put(self, path, index, blob):
        """Store a chunk blob (materialised only if not already bytes)."""
        self._chunks[(path, index)] = (
            blob if type(blob) is bytes else bytes(blob)
        )

    def get(self, path, index):
        """Fetch a chunk blob; raises if absent (attacker deleted it)."""
        try:
            return self._chunks[(path, index)]
        except KeyError:
            raise IntegrityError(
                "chunk %d of %r missing from store" % (index, path)
            ) from None

    def delete_file(self, path):
        """Drop all chunks of ``path``."""
        doomed = [key for key in self._chunks if key[0] == path]
        for key in doomed:
            del self._chunks[key]

    def paths(self):
        """Distinct paths present in the store."""
        return sorted({path for path, _index in self._chunks})

    def chunk_count(self, path):
        """Number of stored chunks for ``path``."""
        return sum(1 for stored_path, _i in self._chunks if stored_path == path)

    # --- attacker's toolbox (tests only) ---

    def tamper(self, path, index, offset=0, xor=0x01):
        """Flip a byte inside a stored chunk."""
        blob = bytearray(self.get(path, index))
        blob[offset % len(blob)] ^= xor
        self._chunks[(path, index)] = bytes(blob)

    def swap(self, path, index_a, index_b):
        """Swap two chunks of the same file."""
        a, b = self.get(path, index_a), self.get(path, index_b)
        self._chunks[(path, index_a)] = b
        self._chunks[(path, index_b)] = a

    def snapshot_chunk(self, path, index):
        """Save a chunk for a later rollback attack."""
        return self.get(path, index)

    def rollback(self, path, index, old_blob):
        """Replace a chunk with a previously valid version."""
        self._chunks[(path, index)] = bytes(old_blob)


@dataclass
class FileEntry:
    """Protection metadata for one file."""

    key_bytes: bytes
    size: int = 0
    chunk_size: int = DEFAULT_CHUNK_SIZE
    chunk_tags: list = field(default_factory=list)
    version: int = 0

    def chunk_count(self):
        """Number of chunks covering :attr:`size` bytes."""
        if self.size == 0:
            return 0
        return (self.size + self.chunk_size - 1) // self.chunk_size


class FsProtectionFile:
    """The MAC-and-key manifest for a protected volume.

    Serialisable; encrypted as a whole with the *protection key* whose
    hash and key material travel in the SCF.
    """

    def __init__(self):
        self._entries = {}

    def entries(self):
        """Mapping of path to :class:`FileEntry` (live references)."""
        return self._entries

    def paths(self):
        """Sorted protected paths."""
        return sorted(self._entries)

    def entry(self, path):
        """The entry for ``path``; raises if unknown."""
        try:
            return self._entries[path]
        except KeyError:
            raise ConfigurationError("no protected file %r" % path) from None

    def add(self, path, entry):
        """Register a file's protection metadata."""
        self._entries[path] = entry

    def remove(self, path):
        """Forget a file."""
        self._entries.pop(path, None)

    def serialize(self):
        """Canonical bytes of the manifest."""
        pieces = [b"fspf-v1"]
        for path in self.paths():
            entry = self._entries[path]
            encoded_path = path.encode("utf-8")
            pieces.append(len(encoded_path).to_bytes(2, "big") + encoded_path)
            pieces.append(len(entry.key_bytes).to_bytes(2, "big") + entry.key_bytes)
            pieces.append(entry.size.to_bytes(8, "big"))
            pieces.append(entry.chunk_size.to_bytes(4, "big"))
            pieces.append(entry.version.to_bytes(8, "big"))
            pieces.append(len(entry.chunk_tags).to_bytes(4, "big"))
            for tag in entry.chunk_tags:
                pieces.append(tag)
        return b"".join(pieces)

    @classmethod
    def deserialize(cls, raw):
        """Parse bytes produced by :meth:`serialize`."""
        view = memoryview(raw)
        magic = bytes(view[:7])
        if magic != b"fspf-v1":
            raise IntegrityError("bad FS protection file magic")
        view = view[7:]
        manifest = cls()

        def take(n):
            nonlocal view
            if len(view) < n:
                raise IntegrityError("truncated FS protection file")
            piece, view = bytes(view[:n]), view[n:]
            return piece

        while view:
            path_length = int.from_bytes(take(2), "big")
            path = take(path_length).decode("utf-8")
            key_length = int.from_bytes(take(2), "big")
            key_bytes = take(key_length)
            size = int.from_bytes(take(8), "big")
            chunk_size = int.from_bytes(take(4), "big")
            version = int.from_bytes(take(8), "big")
            tag_count = int.from_bytes(take(4), "big")
            tags = [take(32) for _ in range(tag_count)]
            manifest.add(
                path,
                FileEntry(
                    key_bytes=key_bytes,
                    size=size,
                    chunk_size=chunk_size,
                    chunk_tags=tags,
                    version=version,
                ),
            )
        return manifest

    def content_hash(self):
        """Hash binding the exact manifest state (goes into the SCF)."""
        return sha256(self.serialize())

    def encrypt(self, protection_key):
        """Seal the manifest with the volume protection key."""
        return protection_key.encrypt(self.serialize(), aad=b"fspf").to_bytes()

    @classmethod
    def decrypt(cls, blob, protection_key, expected_hash=None):
        """Open a sealed manifest; optionally check the SCF-bound hash."""
        plaintext = protection_key.decrypt(Ciphertext.from_bytes(blob), aad=b"fspf")
        if expected_hash is not None and sha256(plaintext) != expected_hash:
            raise IntegrityError("FS protection file hash mismatch")
        return cls.deserialize(plaintext)


class ProtectedVolume:
    """Authenticated-encrypted file operations over an untrusted store.

    All methods run logically *inside* the enclave: plaintext exists
    only in return values handed to enclave code.  ``memory`` (optional,
    a :class:`~repro.sgx.memory.SimulatedMemory`) is charged for crypto
    work so the FS shield shows up in the cost model.
    """

    # Cycles per byte for the AEAD pass (AES-GCM-class throughput).
    _CRYPTO_CYCLES_PER_BYTE = 1.5

    def __init__(self, store, protection=None, chunk_size=DEFAULT_CHUNK_SIZE,
                 memory=None):
        self.store = store
        self.protection = protection if protection is not None else FsProtectionFile()
        self.chunk_size = chunk_size
        self.memory = memory
        # Constructing an AeadKey derives two subkeys and a MAC context;
        # per-file keys are stable, so pay that once per file, not per
        # chunk operation.
        self._key_cache = {}
        registry = default_registry()
        self._tel_chunk_reads = registry.counter("scone.fs.chunk_reads")
        self._tel_chunk_writes = registry.counter("scone.fs.chunk_writes")
        self._tel_bytes_read = registry.counter("scone.fs.bytes_read")
        self._tel_bytes_written = registry.counter("scone.fs.bytes_written")

    def _charge(self, nbytes):
        if self.memory is not None:
            self.memory.compute(int(nbytes * self._CRYPTO_CYCLES_PER_BYTE))

    def _chunk_key(self, entry):
        key = self._key_cache.get(entry.key_bytes)
        if key is None:
            key = AeadKey(entry.key_bytes)
            self._key_cache[entry.key_bytes] = key
        return key

    def _chunk_aad(self, path, index):
        # Binds each chunk to its (file, position); rollback needs no
        # version in the AAD because the authoritative tag lives in the
        # protection file, so an old-but-valid blob fails against the
        # current tag.
        return b"%s|%d" % (path.encode("utf-8"), index)

    def exists(self, path):
        """Whether the volume protects ``path``."""
        return path in self.protection.entries()

    def file_size(self, path):
        """Authenticated size of ``path``."""
        return self.protection.entry(path).size

    def create(self, path, key_bytes=None):
        """Start protecting an (empty) file."""
        if self.exists(path):
            raise ConfigurationError("file %r already exists" % path)
        if key_bytes is None:
            key_bytes = AeadKey.generate().key_bytes
        entry = FileEntry(key_bytes=key_bytes, chunk_size=self.chunk_size)
        self.protection.add(path, entry)
        return entry

    def delete(self, path):
        """Remove a file and its chunks."""
        self.protection.remove(path)
        self.store.delete_file(path)

    def write(self, path, data, offset=0):
        """Write ``data`` at ``offset``, creating the file if needed.

        Writes beyond the current end first fill the gap with zeros so
        every chunk of the file stays authenticated.
        """
        if offset < 0:
            raise ConfigurationError("negative write offset")
        if not self.exists(path):
            self.create(path)
        entry = self.protection.entry(path)
        if offset > entry.size:
            self.write(path, b"\x00" * (offset - entry.size), offset=entry.size)
        if not len(data):
            return
        key = self._chunk_key(entry)
        chunk_size = entry.chunk_size
        # One view over the caller's buffer: every per-chunk slice below
        # is zero-copy; a chunk-aligned whole-chunk write reaches the
        # AEAD pass without ever being materialised.
        data = memoryview(data)
        end = offset + len(data)
        entry.version += 1

        first_chunk = offset // chunk_size
        last_chunk = (end - 1) // chunk_size
        new_size = max(entry.size, end)
        for index in range(first_chunk, last_chunk + 1):
            chunk_start = index * chunk_size
            chunk_end = chunk_start + chunk_size
            copy_from = max(offset, chunk_start)
            copy_to = min(end, chunk_end)
            logical_chunk_end = min(chunk_end, new_size)
            if (
                copy_from == chunk_start
                and copy_to == logical_chunk_end
            ):
                # The write covers the chunk's entire logical extent:
                # seal the caller's slice directly, no read-modify-write
                # buffer and no copy.
                plaintext = data[copy_from - offset : copy_to - offset]
            else:
                if chunk_start < entry.size:
                    existing = self._read_chunk(path, entry, key, index)
                else:
                    existing = b""
                buffer = bytearray(existing.ljust(chunk_size, b"\x00"))
                buffer[copy_from - chunk_start : copy_to - chunk_start] = data[
                    copy_from - offset : copy_to - offset
                ]
                plaintext = memoryview(buffer)[: logical_chunk_end - chunk_start]
            self._write_chunk(path, entry, key, index, plaintext)
        entry.size = new_size

    def _write_chunk(self, path, entry, key, index, plaintext):
        self._tel_chunk_writes.inc()
        self._tel_bytes_written.inc(len(plaintext))
        self._charge(len(plaintext))
        aad = self._chunk_aad(path, index)
        ciphertext = key.encrypt(plaintext, aad=aad)
        # Tag goes to the protection file, nonce+body to the store.
        while len(entry.chunk_tags) <= index:
            entry.chunk_tags.append(b"\x00" * 32)
        entry.chunk_tags[index] = ciphertext.tag
        self.store.put(path, index, ciphertext.nonce + ciphertext.body)

    def _read_chunk(self, path, entry, key, index):
        blob = self.store.get(path, index)
        if index >= len(entry.chunk_tags):
            raise IntegrityError("chunk %d of %r has no recorded tag" % (index, path))
        # Slice the stored blob as views: the ciphertext body reaches
        # the keystream XOR without being copied out of the store blob.
        view = memoryview(blob)
        nonce, body = bytes(view[:16]), view[16:]
        ciphertext = Ciphertext(nonce=nonce, body=body, tag=entry.chunk_tags[index])
        aad = self._chunk_aad(path, index)
        self._tel_chunk_reads.inc()
        self._tel_bytes_read.inc(len(body))
        self._charge(len(body))
        try:
            return key.decrypt(ciphertext, aad=aad)
        except IntegrityError as exc:
            raise IntegrityError(
                "chunk %d of %r failed authentication (tampered, swapped, "
                "or rolled back)" % (index, path)
            ) from exc

    def read(self, path, offset=0, length=None):
        """Read and authenticate ``length`` bytes at ``offset``."""
        entry = self.protection.entry(path)
        if length is None:
            length = entry.size - offset
        if offset < 0 or length < 0 or offset + length > entry.size:
            raise ConfigurationError(
                "read [%d, %d) outside file of size %d"
                % (offset, offset + length, entry.size)
            )
        if length == 0:
            return b""
        key = self._chunk_key(entry)
        chunk_size = entry.chunk_size
        first_chunk = offset // chunk_size
        last_chunk = (offset + length - 1) // chunk_size
        start = offset - first_chunk * chunk_size
        if first_chunk == last_chunk:
            # Single-chunk read: slice the decrypted chunk once instead
            # of join-then-slice (two copies on the seed path).
            chunk = self._read_chunk(path, entry, key, first_chunk)
            if start == 0 and length == len(chunk):
                return chunk
            return chunk[start : start + length]
        # Multi-chunk read: trim the edge chunks as views before the
        # single join -- the join is the one copy the read path pays.
        pieces = [
            self._read_chunk(path, entry, key, index)
            for index in range(first_chunk, last_chunk + 1)
        ]
        if start:
            pieces[0] = memoryview(pieces[0])[start:]
        overshoot = sum(len(piece) for piece in pieces) - length
        if overshoot:
            pieces[-1] = memoryview(pieces[-1])[:-overshoot]
        return b"".join(pieces)

    def read_all(self, path):
        """The full authenticated contents of ``path``."""
        return self.read(path, 0, self.file_size(path))

    def verify_all(self):
        """Authenticate every chunk of every file; raises on any tamper."""
        for path in self.protection.paths():
            self.read_all(path)
        return True
