"""The shielded external system-call interface.

SCONE's syscall story (Section IV) has three parts, all modelled here:

1. **Shielding** -- results coming back from the untrusted OS are sanity
   checked and memory-based return values are copied into the enclave
   before use (:class:`SyscallShield`); a malicious kernel returning an
   oversized buffer or a bogus count is caught.
2. **Synchronous execution** -- the naive path pays an enclave exit and
   re-entry per call (:class:`SyncSyscallExecutor`).
3. **Asynchronous execution** -- calls are placed in a shared queue and
   executed by untrusted worker threads running on other cores, so the
   enclave never exits; it pays only a queue operation and, if it must
   wait, the remaining service time (:class:`AsyncSyscallExecutor`).
   Combined with user-level threading (:mod:`repro.scone.threads`) this
   is what gives SCONE "acceptable performance".
"""

from dataclasses import dataclass, field
from typing import Optional

from repro.errors import ConfigurationError, IntegrityError
from repro.telemetry import default_registry

# Cycles a worker needs to execute each syscall in the host kernel.
SYSCALL_DURATIONS = {
    "open": 3_000,
    "close": 1_000,
    "read": 2_000,
    "write": 2_500,
    "stat": 1_200,
    "unlink": 2_000,
    "socket": 2_500,
    "send": 4_000,
    "recv": 4_000,
    "fsync": 10_000,
    "nanosleep": 1_500,
}
DEFAULT_SYSCALL_DURATION = 2_000

# Lock-free queue operation on the enclave side (SCONE's hot path).
QUEUE_SUBMIT_CYCLES = 300
# Copying a returned buffer into protected memory, per byte.
COPY_CYCLES_PER_BYTE = 0.5


@dataclass(frozen=True)
class SyscallRequest:
    """One syscall: name plus positional arguments."""

    name: str
    args: tuple = ()

    @property
    def duration_cycles(self):
        """Kernel-side service time."""
        return SYSCALL_DURATIONS.get(self.name, DEFAULT_SYSCALL_DURATION)


class SimulatedKernel:
    """The untrusted host kernel: a file table plus syscall handlers.

    ``hostile=True`` makes it misbehave in ways a compromised OS could
    (oversized read results, inflated write counts) so tests can verify
    the shield rejects them.
    """

    def __init__(self, hostile=False):
        self.hostile = hostile
        self._files = {}
        self._descriptors = {}
        self._sockets = {}
        self._next_fd = 3  # 0-2 are the (shielded) standard streams
        self.calls_served = 0

    def execute(self, request):
        """Run one syscall and return its raw (untrusted) result."""
        handler = getattr(self, "_sys_" + request.name, None)
        if handler is None:
            raise ConfigurationError("unknown syscall %r" % request.name)
        self.calls_served += 1
        return handler(*request.args)

    # --- handlers ---

    def _sys_open(self, path):
        fd = self._next_fd
        self._next_fd += 1
        self._files.setdefault(path, bytearray())
        self._descriptors[fd] = [path, 0]
        return fd

    def _sys_close(self, fd):
        self._descriptors.pop(fd, None)
        return 0

    def _resolve(self, fd):
        try:
            return self._descriptors[fd]
        except KeyError:
            raise ConfigurationError("bad file descriptor %d" % fd) from None

    def _sys_read(self, fd, length):
        descriptor = self._resolve(fd)
        path, position = descriptor
        data = bytes(self._files[path][position : position + length])
        descriptor[1] = position + len(data)
        if self.hostile:
            # A malicious kernel hands back more bytes than asked for,
            # hoping the enclave overruns its buffer.
            data = data + b"\xee" * (length + 16)
        return data

    def _sys_write(self, fd, data):
        descriptor = self._resolve(fd)
        path, position = descriptor
        buffer = self._files[path]
        if len(buffer) < position:
            buffer.extend(b"\x00" * (position - len(buffer)))
        buffer[position : position + len(data)] = data
        descriptor[1] = position + len(data)
        if self.hostile:
            return len(data) + 1_000_000  # inflated byte count
        return len(data)

    def _sys_fsync(self, fd):
        self._resolve(fd)
        return 0

    def _sys_stat(self, path):
        if path not in self._files:
            raise ConfigurationError("no such file %r" % path)
        size = len(self._files[path])
        if self.hostile:
            size = -1  # nonsense metadata
        return {"size": size}

    def _sys_unlink(self, path):
        if path not in self._files:
            raise ConfigurationError("no such file %r" % path)
        del self._files[path]
        return 0

    def _sys_socket(self, address):
        """A loopback datagram socket bound to ``address``."""
        fd = self._next_fd
        self._next_fd += 1
        self._sockets.setdefault(address, [])
        self._descriptors[fd] = ["socket:" + address, 0]
        return fd

    def _socket_address(self, fd):
        path, _position = self._resolve(fd)
        if not path.startswith("socket:"):
            raise ConfigurationError("descriptor %d is not a socket" % fd)
        return path[len("socket:"):]

    def _sys_send(self, fd, destination, data):
        self._socket_address(fd)
        if destination not in self._sockets:
            raise ConfigurationError("no socket bound at %r" % destination)
        self._sockets[destination].append(bytes(data))
        if self.hostile:
            return len(data) * 2
        return len(data)

    def _sys_recv(self, fd, max_bytes):
        address = self._socket_address(fd)
        queue = self._sockets[address]
        if not queue:
            return b""
        datagram = queue.pop(0)
        if self.hostile:
            return datagram + b"\xee" * (max_bytes + 16)
        return datagram[:max_bytes]

    def _sys_nanosleep(self, _duration):
        return 0

    def file_contents(self, path):
        """Test helper: raw bytes the host sees for ``path``."""
        return bytes(self._files.get(path, b""))


class SyscallShield:
    """Validates untrusted results and charges the copy-in cost."""

    def __init__(self, memory=None):
        self.memory = memory
        self.rejected = 0
        self._tel_rejected = default_registry().counter(
            "scone.shield.rejections"
        )

    def _reject(self):
        self.rejected += 1
        self._tel_rejected.inc()

    def _charge_copy(self, nbytes):
        if self.memory is not None and nbytes:
            self.memory.compute(int(nbytes * COPY_CYCLES_PER_BYTE))

    def validate(self, request, result):
        """Check ``result`` against what ``request`` permits.

        Returns the (copied-in) result; raises
        :class:`~repro.errors.IntegrityError` on violations.
        """
        if request.name in ("read", "recv"):
            requested = request.args[1]
            if not isinstance(result, bytes) or len(result) > requested:
                self._reject()
                raise IntegrityError(
                    "kernel returned %s bytes for a %d-byte %s"
                    % (
                        len(result) if isinstance(result, bytes) else "?",
                        requested,
                        request.name,
                    )
                )
            self._charge_copy(len(result))
            return bytes(result)  # copy into enclave memory
        if request.name in ("write", "send"):
            payload = request.args[1] if request.name == "write" else request.args[2]
            written = len(payload)
            if not isinstance(result, int) or not 0 <= result <= written:
                self._reject()
                raise IntegrityError(
                    "kernel claims %r bytes written of %d" % (result, written)
                )
            return result
        if request.name in ("open", "socket"):
            if not isinstance(result, int) or result < 0:
                self._reject()
                raise IntegrityError("kernel returned invalid descriptor %r" % result)
            return result
        if request.name == "stat":
            if (
                not isinstance(result, dict)
                or not isinstance(result.get("size"), int)
                or result["size"] < 0
            ):
                self._reject()
                raise IntegrityError("kernel returned invalid stat %r" % result)
            return dict(result)
        if isinstance(result, bytes):
            self._charge_copy(len(result))
            return bytes(result)
        return result


class SyncSyscallExecutor:
    """One enclave exit + re-entry per system call."""

    def __init__(self, clock, kernel, costs, shield=None):
        self.clock = clock
        self.kernel = kernel
        self.costs = costs
        self.shield = shield or SyscallShield()
        self.calls = 0
        self._tel_calls = default_registry().counter(
            "scone.syscalls", mode="sync"
        )

    def call(self, name, *args):
        """Execute a syscall synchronously; blocks the enclave thread."""
        request = SyscallRequest(name, args)
        self.clock.charge(self.costs.transition_cycles)  # EEXIT
        result = self.kernel.execute(request)
        self.clock.charge(request.duration_cycles)
        self.clock.charge(self.costs.transition_cycles)  # EENTER
        self.calls += 1
        self._tel_calls.inc()
        return self.shield.validate(request, result)


@dataclass
class PendingSyscall:
    """An in-flight asynchronous syscall."""

    request: SyscallRequest
    completion_time: int
    result: Optional[object] = None
    validated: bool = field(default=False, repr=False)

    def done_at(self, now):
        """Whether the worker has finished by virtual time ``now``."""
        return now >= self.completion_time


class AsyncSyscallExecutor:
    """SCONE's shared-queue syscall path.

    Untrusted worker threads (``workers``) run on other cores, so their
    service time overlaps enclave execution: submitting charges only a
    lock-free queue operation.  :meth:`wait` advances the clock to the
    completion time only if the result is not ready yet -- the time a
    user-level thread would actually stall.
    """

    def __init__(self, clock, kernel, costs, shield=None, workers=2):
        if workers < 1:
            raise ConfigurationError("need at least one syscall worker")
        self.clock = clock
        self.kernel = kernel
        self.costs = costs
        self.shield = shield or SyscallShield()
        self._worker_busy_until = [0] * workers
        self.calls = 0
        registry = default_registry()
        self._tel_calls = registry.counter("scone.syscalls", mode="async")
        # Queue depth at submit time: how many workers are still busy
        # when a new call arrives.  Virtual-clock-derived, so the
        # distribution is identical across same-seed runs.
        self._tel_depth = registry.histogram(
            "scone.syscall_queue_depth",
            buckets=(0, 1, 2, 4, 8, 16, 32, 64),
        )

    def submit(self, name, *args):
        """Queue a syscall; returns a :class:`PendingSyscall`."""
        request = SyscallRequest(name, args)
        self.clock.charge(QUEUE_SUBMIT_CYCLES)
        now = self.clock.now
        self._tel_depth.observe(
            sum(1 for busy in self._worker_busy_until if busy > now)
        )
        worker = min(range(len(self._worker_busy_until)),
                     key=self._worker_busy_until.__getitem__)
        start = max(self.clock.now, self._worker_busy_until[worker])
        completion = start + request.duration_cycles
        self._worker_busy_until[worker] = completion
        # The kernel-side effect happens at submission order; its timing
        # is captured by completion_time.
        result = self.kernel.execute(request)
        self.calls += 1
        self._tel_calls.inc()
        return PendingSyscall(request=request, completion_time=completion,
                              result=result)

    def poll(self, pending):
        """Non-blocking check; returns the validated result or ``None``."""
        if not pending.done_at(self.clock.now):
            return None
        return self._finish(pending)

    def wait(self, pending):
        """Block (advance virtual time) until ``pending`` completes."""
        if not pending.done_at(self.clock.now):
            self.clock.charge(pending.completion_time - self.clock.now)
        return self._finish(pending)

    def _finish(self, pending):
        if not pending.validated:
            pending.result = self.shield.validate(pending.request, pending.result)
            pending.validated = True
        return pending.result

    def call(self, name, *args):
        """Submit-and-wait convenience (still avoids enclave exits)."""
        return self.wait(self.submit(name, *args))
