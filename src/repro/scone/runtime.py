"""The SCONE process runtime: boots an enclave application.

Boot sequence (paper Section V-A):

1. load the measured enclave code on the SGX platform;
2. obtain the SCF from the CAS over an attested channel -- fails hard
   if the enclave measurement is not registered;
3. open the FS protection file with the SCF's key and verify its hash;
4. wire the shielded standard streams with the SCF's stream keys;
5. hand the application an in-enclave environment exposing the
   protected file system, shielded stdio, arguments, environment
   variables, and the (sync or async) shielded syscall interface.
"""

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.scone.fs_shield import FsProtectionFile, ProtectedVolume, UntrustedStore
from repro.scone.stream_shield import ShieldedStreamReader, ShieldedStreamWriter
from repro.scone.syscalls import (
    AsyncSyscallExecutor,
    SimulatedKernel,
    SyncSyscallExecutor,
    SyscallShield,
)


@dataclass
class SconeRuntimeConfig:
    """Tunables of the runtime."""

    syscall_mode: str = "async"   # "async" (shared queue) or "sync"
    syscall_workers: int = 2

    def __post_init__(self):
        if self.syscall_mode not in ("async", "sync"):
            raise ConfigurationError(
                "syscall_mode must be 'async' or 'sync', not %r"
                % self.syscall_mode
            )


class SconeEnvironment:
    """What the application sees inside the enclave."""

    def __init__(self, scf, volume, stdout, stderr, stdin, syscalls, clock):
        self.arguments = list(scf.arguments)
        self.environment = dict(scf.environment)
        self.fs = volume
        self.stdout = stdout
        self.stderr = stderr
        self.stdin = stdin
        self.syscalls = syscalls
        self.clock = clock

    def read_stdin(self):
        """All input queued on the shielded stdin (authenticated)."""
        return self.stdin.drain()


class SconeProcess:
    """One secure container process on one SGX platform."""

    def __init__(self, platform, enclave_code, cas, store=None, fspf_blob=None,
                 kernel=None, config=None, stdin_transport=None):
        self.platform = platform
        self.enclave_code = enclave_code
        self.cas = cas
        self.store = store if store is not None else UntrustedStore()
        self.fspf_blob = fspf_blob
        self.kernel = kernel or SimulatedKernel()
        self.config = config or SconeRuntimeConfig()
        self.enclave = None
        self.scf = None
        self.env = None
        self.stdout_transport = []
        self.stderr_transport = []
        # Records sealed with the SCF's stdin key by the trusted data
        # source; the host only ever relays ciphertext.
        self.stdin_transport = stdin_transport if stdin_transport is not None else []

    @property
    def started(self):
        """Whether :meth:`start` completed successfully."""
        return self.env is not None

    def start(self):
        """Boot: load, attest, fetch SCF, open shields."""
        self.enclave = self.platform.load_enclave(self.enclave_code)
        # Attested SCF delivery; raises AttestationError when the CAS
        # does not recognise this enclave's measurement.
        self.scf = self.cas.provision(self.platform, self.enclave)

        if self.fspf_blob is not None:
            protection = FsProtectionFile.decrypt(
                self.fspf_blob, self.scf.fspf_key, expected_hash=self.scf.fspf_hash
            )
        else:
            protection = FsProtectionFile()
        volume = ProtectedVolume(
            self.store, protection=protection, memory=self.enclave.memory
        )

        stdout = ShieldedStreamWriter(
            self.scf.stdout_key, "stdout", self.stdout_transport
        )
        stderr = ShieldedStreamWriter(
            self.scf.stderr_key, "stderr", self.stderr_transport
        )
        stdin = ShieldedStreamReader(
            self.scf.stdin_key, "stdin", self.stdin_transport
        )

        shield = SyscallShield(memory=self.enclave.memory)
        if self.config.syscall_mode == "async":
            syscalls = AsyncSyscallExecutor(
                self.platform.clock, self.kernel, self.platform.costs,
                shield=shield, workers=self.config.syscall_workers,
            )
        else:
            syscalls = SyncSyscallExecutor(
                self.platform.clock, self.kernel, self.platform.costs,
                shield=shield,
            )

        self.env = SconeEnvironment(
            scf=self.scf, volume=volume, stdout=stdout, stderr=stderr,
            stdin=stdin, syscalls=syscalls, clock=self.platform.clock,
        )
        return self

    def run(self, entry_point="main", *args, **kwargs):
        """ECALL into the application with the SCONE environment."""
        if not self.started:
            raise ConfigurationError("process not started; call start() first")
        return self.enclave.ecall(entry_point, self.env, *args, **kwargs)

    def stop(self):
        """Close shielded streams and destroy the enclave."""
        if self.env is not None:
            self.env.stdout.close()
            self.env.stderr.close()
        if self.enclave is not None:
            self.enclave.destroy()
        self.env = None
