"""SCONE: the Secure Linux Container Environment (simulated).

Reproduces the runtime described in Section IV/V-A of the paper and in
SCONE (OSDI'16):

- :mod:`~repro.scone.fs_shield` -- transparent file encryption and
  authentication; chunk MACs and keys live in the *FS protection file*.
- :mod:`~repro.scone.stream_shield` -- encrypted, replay-protected
  standard I/O streams.
- :mod:`~repro.scone.syscalls` -- the shielded external system-call
  interface: sanity checks, copy-in of memory-based results, and both
  the synchronous (exit per call) and asynchronous (shared queue,
  user-level threading) execution modes.
- :mod:`~repro.scone.threads` -- the M:N user-level thread scheduler
  that overlaps enclave compute with in-flight async syscalls.
- :mod:`~repro.scone.scf` -- the startup configuration file: stream
  keys, FS protection file hash and key, arguments, environment.
- :mod:`~repro.scone.cas` -- the configuration and attestation service
  that releases an SCF only to an attested enclave.
- :mod:`~repro.scone.runtime` -- ties everything into a runnable SCONE
  process.
"""

from repro.scone.cas import ConfigurationService
from repro.scone.fs_shield import (
    FileEntry,
    FsProtectionFile,
    ProtectedVolume,
    UntrustedStore,
)
from repro.scone.scf import StartupConfiguration
from repro.scone.stream_shield import ShieldedStreamReader, ShieldedStreamWriter
from repro.scone.syscalls import (
    AsyncSyscallExecutor,
    SimulatedKernel,
    SyncSyscallExecutor,
    SyscallRequest,
)
from repro.scone.threads import UserThreadScheduler
from repro.scone.runtime import SconeProcess, SconeRuntimeConfig

__all__ = [
    "AsyncSyscallExecutor",
    "ConfigurationService",
    "FileEntry",
    "FsProtectionFile",
    "ProtectedVolume",
    "SconeProcess",
    "SconeRuntimeConfig",
    "ShieldedStreamReader",
    "ShieldedStreamWriter",
    "SimulatedKernel",
    "StartupConfiguration",
    "SyncSyscallExecutor",
    "SyscallRequest",
    "UntrustedStore",
    "UserThreadScheduler",
]
