"""SCONE's M:N user-level threading.

Application threads are scheduled *inside* the enclave by a cooperative
scheduler, so a thread that issues an asynchronous system call yields to
a runnable sibling instead of exiting the enclave.  The enclave thread
only stalls when every user thread is blocked on an in-flight syscall.

Threads are generators that yield:

- :class:`~repro.scone.syscalls.SyscallRequest` -- the scheduler submits
  it to the async executor and resumes the thread with the validated
  result once it completes;
- ``("compute", cycles)`` -- charge computation and stay runnable.

The A2 ablation benchmark runs the same thread mix against the sync
executor (each call pays two enclave transitions and full service time
inline) and this scheduler, reproducing SCONE's async-syscall win.
"""

from collections import deque

from repro.errors import ConfigurationError
from repro.scone.syscalls import SyscallRequest

SWITCH_CYCLES = 60  # user-level context switch: register save/restore


class _UserThread:
    def __init__(self, thread_id, generator):
        self.thread_id = thread_id
        self.generator = generator
        self.pending = None
        self.result = None
        self.finished = False
        self.value = None


class UserThreadScheduler:
    """Cooperative round-robin scheduler over async syscalls."""

    def __init__(self, clock, async_executor, switch_cycles=SWITCH_CYCLES):
        self.clock = clock
        self.executor = async_executor
        self.switch_cycles = switch_cycles
        self._threads = []
        self._next_id = 0
        self.context_switches = 0

    def spawn(self, generator):
        """Register a user thread; returns its handle."""
        if not hasattr(generator, "send"):
            raise ConfigurationError("user threads must be generators")
        thread = _UserThread(self._next_id, generator)
        self._next_id += 1
        self._threads.append(thread)
        return thread

    def _step(self, thread, send_value):
        self.clock.charge(self.switch_cycles)
        self.context_switches += 1
        try:
            yielded = thread.generator.send(send_value)
        except StopIteration as stop:
            thread.finished = True
            thread.value = getattr(stop, "value", None)
            return
        if isinstance(yielded, SyscallRequest):
            thread.pending = self.executor.submit(yielded.name, *yielded.args)
        elif (
            isinstance(yielded, tuple)
            and len(yielded) == 2
            and yielded[0] == "compute"
        ):
            self.clock.charge(yielded[1])
        else:
            raise ConfigurationError(
                "user thread yielded %r; expected SyscallRequest or "
                "('compute', cycles)" % (yielded,)
            )

    def run(self):
        """Run until every thread finishes; returns their return values."""
        ready = deque()
        for thread in self._threads:
            ready.append((thread, None))
        blocked = []
        while ready or blocked:
            # Move completed syscalls back to the ready queue.
            still_blocked = []
            for thread in blocked:
                result = self.executor.poll(thread.pending)
                if thread.pending.done_at(self.clock.now):
                    thread.pending = None
                    ready.append((thread, result))
                else:
                    still_blocked.append(thread)
            blocked = still_blocked

            if not ready:
                # Everything is waiting on the kernel: stall until the
                # earliest completion.
                earliest = min(thread.pending.completion_time for thread in blocked)
                if earliest > self.clock.now:
                    self.clock.charge(earliest - self.clock.now)
                continue

            thread, send_value = ready.popleft()
            self._step(thread, send_value)
            if thread.finished:
                continue
            if thread.pending is not None:
                blocked.append(thread)
            else:
                ready.append((thread, None))
        return [thread.value for thread in self._threads]
