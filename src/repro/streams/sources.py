"""Head-end stream sources: meter fleets publishing sealed batches.

A :class:`MeterStreamSource` models one utility head-end collecting a
slice of a :class:`~repro.smartgrid.meters.SmartMeterFleet` and
publishing its readings into the plane as AEAD-sealed
:class:`~repro.crypto.aead.SealedBatch` frames, one frame per target
shard, routed by the public key-slot hash.

Backpressure is credit-based and end-to-end: a source releases a batch
only when the target shard's bounded queue has a free slot (a credit).
When credits run out the source *throttles* -- readings accumulate in
its backlog (the field network's buffer) instead of overrunning enclave
memory -- and its ``released_through`` event-time mark stops advancing,
which holds the plane's watermark back so a throttled reading can never
be judged late.  Release is strictly production-ordered: one blocked
target blocks the whole source (head-of-line), which is exactly what
keeps ``released_through`` monotonic.
"""

from collections import deque

from repro.crypto.aead import AeadKey
from repro.streams.shards import _AAD_BATCH, canonical_header


class MeterStreamSource:
    """One head-end publisher for a subset of the fleet's meters."""

    def __init__(self, source_id, fleet, meters, ingest_key_bytes,
                 batch_records=32):
        self.source_id = source_id
        self.fleet = fleet
        self.meters = list(meters)
        self.ingest_key = AeadKey(ingest_key_bytes)
        self.batch_records = batch_records
        self.backlog = deque()
        self.sequence = 0
        self.produced = 0
        self.released = 0
        self.throttle_events = 0
        # Highest event time actually handed to the plane; the plane's
        # watermark punctuation is the minimum of these across sources.
        self.released_through = float("-inf")

    def produce(self, start, end):
        """Generate readings for ``[start, end)`` into the backlog.

        Time-major order (all meters at t, then t+interval, ...), so
        event time is non-decreasing along the backlog and
        ``released_through`` stays monotonic.
        """
        count = 0
        timestamp = start
        while timestamp < end:
            for meter in self.meters:
                record = self.fleet.reading(meter, timestamp).to_record()
                self.backlog.append(record)
                count += 1
            timestamp += self.fleet.interval
        self.produced += count
        return count

    def _next_chunk(self):
        take = min(self.batch_records, len(self.backlog))
        return [self.backlog[index] for index in range(take)]

    def release(self, plane):
        """Publish backlogged readings while credits allow.

        Each chunk is partitioned by the plane's current routing table
        into one sealed batch per target shard; if *any* target lacks a
        credit the source stops for this round (order preservation) and
        counts a throttle event.  Returns records released.
        """
        sent = 0
        while self.backlog:
            chunk = self._next_chunk()
            groups = {}
            for record in chunk:
                groups.setdefault(
                    plane.owner_of(record["meter"]), []
                ).append(record)
            if any(
                plane.credits(shard_id) < 1 for shard_id in groups
            ):
                self.throttle_events += 1
                break
            for _record in chunk:
                self.backlog.popleft()
            for shard_id in sorted(groups):
                records = groups[shard_id]
                header = {
                    "source": self.source_id,
                    "seq": self.sequence,
                    "shard": shard_id,
                    "count": len(records),
                    "max_ts": max(record["t"] for record in records),
                }
                self.sequence += 1
                payloads = [
                    canonical_header(record) for record in records
                ]
                blob = self.ingest_key.encrypt_batch(
                    payloads, aad=_AAD_BATCH + canonical_header(header)
                ).to_bytes()
                plane.enqueue(shard_id, header, blob)
            self.released += len(chunk)
            self.released_through = max(
                self.released_through,
                max(record["t"] for record in chunk),
            )
            sent += len(chunk)
        return sent

    @property
    def backlog_depth(self):
        return len(self.backlog)
