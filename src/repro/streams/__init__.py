"""The sealed, self-stabilising streaming plane (E9).

Sources publish AEAD-sealed meter batches; attested ingest shards run
event-time window operators over them with credit-based backpressure,
deterministic load shedding, exactly-once window emission (sealed
checkpoints + replay + firing-id dedupe), and watermark-driven key-range
auto-scaling.  See DESIGN.md section 12 for the trust boundary.
"""

from repro.streams.plane import SecureStreamPlane, StreamConfig
from repro.streams.routing import KEY_SPACE, KeyRange, RoutingTable, key_slot
from repro.streams.shards import (
    STREAM_COORD_CODE,
    STREAM_SHARD_CODE,
    canonical_header,
    meter_window_aggregate,
)
from repro.streams.shedding import OldestPaneShedPolicy, meter_tenant
from repro.streams.sources import MeterStreamSource

__all__ = [
    "KEY_SPACE",
    "KeyRange",
    "MeterStreamSource",
    "OldestPaneShedPolicy",
    "RoutingTable",
    "STREAM_COORD_CODE",
    "STREAM_SHARD_CODE",
    "SecureStreamPlane",
    "StreamConfig",
    "canonical_header",
    "key_slot",
    "meter_tenant",
    "meter_window_aggregate",
]
