"""Key-range routing for the sealed streaming plane.

Stream keys (meter ids) hash into a fixed 16-bit slot space; ingest
shards own contiguous, disjoint slot ranges that together cover the
whole space.  The hash is public (the head-end routes by it), so the
untrusted driver learns only a pseudonymous slot per batch -- never a
reading.  Ranges split at their midpoint when a shard runs hot and
merge back with an adjacent sibling when load drains; the routing
table's epoch counts cutovers so sources and tests can tell when
ownership changed.
"""

import hashlib
from dataclasses import dataclass

from repro.errors import ConfigurationError

KEY_SPACE = 1 << 16


def key_slot(key):
    """The routing slot of a stream key (stable, public)."""
    digest = hashlib.sha256(str(key).encode("utf-8")).digest()
    return int.from_bytes(digest[:2], "big")


@dataclass(frozen=True)
class KeyRange:
    """A half-open slot interval ``[lo, hi)``."""

    lo: int
    hi: int

    def __post_init__(self):
        if not 0 <= self.lo < self.hi <= KEY_SPACE:
            raise ConfigurationError(
                "invalid key range [%r, %r)" % (self.lo, self.hi)
            )

    def contains(self, slot):
        return self.lo <= slot < self.hi

    def contains_key(self, key):
        return self.contains(key_slot(key))

    @property
    def width(self):
        return self.hi - self.lo

    def split(self):
        """Halve at the midpoint; returns ``(low, high)``."""
        if self.width < 2:
            raise ConfigurationError(
                "range [%d, %d) is a single slot; cannot split"
                % (self.lo, self.hi)
            )
        mid = self.lo + self.width // 2
        return KeyRange(self.lo, mid), KeyRange(mid, self.hi)

    def adjacent(self, other):
        return self.hi == other.lo or other.hi == self.lo

    def merge(self, other):
        if not self.adjacent(other):
            raise ConfigurationError(
                "ranges [%d, %d) and [%d, %d) are not adjacent"
                % (self.lo, self.hi, other.lo, other.hi)
            )
        return KeyRange(min(self.lo, other.lo), max(self.hi, other.hi))

    def to_json(self):
        return [self.lo, self.hi]

    @classmethod
    def from_json(cls, pair):
        return cls(int(pair[0]), int(pair[1]))


class RoutingTable:
    """shard id -> owned :class:`KeyRange`, covering the slot space.

    Invariant-checked on every mutation: ranges stay disjoint and their
    union stays exactly ``[0, KEY_SPACE)`` -- a record always has
    exactly one owner, so routing can lose nothing and duplicate
    nothing by construction.
    """

    def __init__(self, ranges):
        self._ranges = dict(ranges)
        self.epoch = 0
        self.check_invariants()

    @classmethod
    def even(cls, shard_ids):
        """Cover the slot space evenly across ``shard_ids`` (in order)."""
        shard_ids = list(shard_ids)
        if not shard_ids:
            raise ConfigurationError("a routing table needs shards")
        count = len(shard_ids)
        bounds = [KEY_SPACE * index // count for index in range(count + 1)]
        return cls({
            shard_id: KeyRange(bounds[index], bounds[index + 1])
            for index, shard_id in enumerate(shard_ids)
        })

    def __len__(self):
        return len(self._ranges)

    def __contains__(self, shard_id):
        return shard_id in self._ranges

    def shard_ids(self):
        return sorted(self._ranges)

    def range_of(self, shard_id):
        owned = self._ranges.get(shard_id)
        if owned is None:
            raise ConfigurationError(
                "shard %r owns no key range" % (shard_id,)
            )
        return owned

    def owner_of_slot(self, slot):
        for shard_id, owned in self._ranges.items():
            if owned.contains(slot):
                return shard_id
        raise ConfigurationError("slot %r has no owner" % (slot,))

    def owner(self, key):
        return self.owner_of_slot(key_slot(key))

    def split(self, shard_id, new_shard_id):
        """Split ``shard_id``'s range; the upper half moves to
        ``new_shard_id``.  Returns ``(kept, moved)``."""
        if new_shard_id in self._ranges:
            raise ConfigurationError(
                "shard %r already owns a range" % (new_shard_id,)
            )
        kept, moved = self.range_of(shard_id).split()
        self._ranges[shard_id] = kept
        self._ranges[new_shard_id] = moved
        self.epoch += 1
        self.check_invariants()
        return kept, moved

    def merge(self, into_shard_id, retired_shard_id):
        """Fold ``retired_shard_id``'s range into an adjacent sibling.

        Returns the merged range now owned by ``into_shard_id``.
        """
        keep = self.range_of(into_shard_id)
        gone = self.range_of(retired_shard_id)
        merged = keep.merge(gone)
        del self._ranges[retired_shard_id]
        self._ranges[into_shard_id] = merged
        self.epoch += 1
        self.check_invariants()
        return merged

    def neighbour(self, shard_id):
        """An adjacent shard (the merge partner), or None."""
        owned = self.range_of(shard_id)
        for other_id, other in sorted(self._ranges.items()):
            if other_id != shard_id and owned.adjacent(other):
                return other_id
        return None

    def check_invariants(self):
        spans = sorted(
            (owned.lo, owned.hi) for owned in self._ranges.values()
        )
        cursor = 0
        for lo, hi in spans:
            if lo != cursor:
                raise ConfigurationError(
                    "routing table has a gap or overlap at slot %d" % lo
                )
            cursor = hi
        if cursor != KEY_SPACE:
            raise ConfigurationError(
                "routing table covers only [0, %d) of [0, %d)"
                % (cursor, KEY_SPACE)
            )

    def to_json(self):
        return {
            str(shard_id): owned.to_json()
            for shard_id, owned in sorted(self._ranges.items())
        }
