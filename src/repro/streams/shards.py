"""Enclave code for the sealed streaming plane.

Two :class:`~repro.sgx.enclave.EnclaveCode` images:

- **stream shard** (:data:`STREAM_SHARD_CODE`): owns one key range of
  the meter stream.  Opens AEAD-sealed ingest batches, runs the window
  operator (``repro.bigdata.streaming``) over them, sheds panes under
  a deterministic policy when the pane budget is exceeded, and emits
  every closed window as a plane-key-sealed *firing* tagged with a
  deterministic firing id -- the exactly-once dedupe handle.  Pane
  state checkpoints as a plane-key-sealed blob the untrusted host can
  store but never read or forge; key ranges hand off between shards as
  sealed extract/load blobs (split, merge, and crash recovery all ride
  the same primitive).

- **stream coordinator** (:data:`STREAM_COORD_CODE`): mints the plane
  key and drives enrollment through the provisioning plane's batched /
  ticket ECALLs (``repro.scbr.provisioning``), wraps the head-end's
  ingest key to each shard, and acts as the egress gateway that opens
  sealed firings for the (trusted) analytics consumer.

Trust model, in one line: sources and enclaves see plaintext readings;
the driver, queues, checkpoints, and the firing log see only
ciphertext, counts, slots, and timestamps.

Firing ids are HKDF-derived from the plane key over the window
coordinates ``(start, end, key)`` -- deterministic within a plane (so
a replayed closing reproduces the id and the host-side committer can
dedupe) and pseudonymous to the host (the id reveals the key only to
plane members).
"""

import json

from repro.bigdata.streaming import SlidingWindow, TumblingWindow
from repro.crypto.aead import AeadKey, Ciphertext, SealedBatch
from repro.crypto.kdf import hkdf
from repro.errors import AttestationError, ConfigurationError, IntegrityError
from repro.scbr.provisioning import (
    coord_enroll_batch,
    coord_resume,
    coord_rotate,
    shard_join_complete_batch,
    shard_join_offer2,
    shard_rekey,
    shard_resume_complete,
    shard_resume_offer,
)
from repro.scbr.router import SEAL_CYCLES_PER_BYTE, SEAL_SETUP_CYCLES
from repro.scbr.sharding import plane_telemetry_export
from repro.sgx.enclave import EnclaveCode
from repro.streams.routing import KeyRange, key_slot
from repro.streams.shedding import OldestPaneShedPolicy, meter_tenant
from repro.telemetry import EnclaveTelemetry

# Cycle cost of parsing + windowing one reading (JSON decode, key hash,
# pane append); sealing costs ride the shared SEAL_* constants.
INGEST_CYCLES_PER_RECORD = 1_800

_AAD_BATCH = b"streams|batch|"
_AAD_FIRING = b"streams|firing|"
_AAD_CHECKPOINT = b"streams|checkpoint|"
_AAD_RANGE = b"streams|range|"
_AAD_INGEST_KEY = b"streams|ingest-key|"

_FIRING_ID_INFO = b"streams|firing-id"


def canonical_header(header):
    """The byte form of a batch header bound into its AAD."""
    return json.dumps(header, sort_keys=True).encode("utf-8")


def meter_window_aggregate(records):
    """The plane's window aggregate: reading count + summed watts.

    Shared with the pure-python oracle, so "oracle-equal" compares the
    full distributed machinery (sealing, shards, crashes, replay,
    handoff) against one in-process reduction of the same records.
    """
    return {
        "n": len(records),
        "w_sum": sum(record["w"] for record in records),
    }


def _plane_key(ctx):
    key = ctx.state.get("plane_key")
    if key is None:
        raise AttestationError("enclave has not joined the stream plane")
    return key


def _firing_id(plane_key, window_start, window_end, key):
    material = json.dumps(
        [window_start, window_end, key], sort_keys=True
    ).encode("utf-8")
    return hkdf(
        plane_key.key_bytes, _FIRING_ID_INFO + b"|" + material, length=16
    ).hex()


def _build_operator(config, registry=None):
    kind = config.get("kind", "tumbling")
    size = config["size"]
    lateness = config.get("lateness", 0.0)
    key_fn = lambda record: record["meter"]  # noqa: E731
    if kind == "tumbling":
        return TumblingWindow(
            size, meter_window_aggregate, key_fn=key_fn,
            lateness=lateness, registry=registry,
        )
    if kind == "sliding":
        return SlidingWindow(
            size, config["slide"], meter_window_aggregate, key_fn=key_fn,
            lateness=lateness, registry=registry,
        )
    raise ConfigurationError("unknown window kind %r" % (kind,))


# --- shard-side ECALLs -------------------------------------------------

def stream_setup(ctx, shard_id, window_config, key_range,
                 pane_budget=None, attestation=None,
                 coordinator_measurement=None, telemetry_key=None):
    """ECALL: initialise an empty stream shard owning ``key_range``.

    ``window_config`` is ``{"kind", "size", "slide"?, "lateness"?}``;
    ``pane_budget`` (optional) arms load shedding.  ``attestation`` /
    ``coordinator_measurement`` pin the coordinator for the join
    handshake, exactly as in the SCBR plane.
    """
    ctx.state["shard_id"] = shard_id
    ctx.state["attestation"] = attestation
    ctx.state["coordinator_measurement"] = coordinator_measurement
    if telemetry_key is not None:
        ctx.state["telemetry"] = EnclaveTelemetry(
            telemetry_key, "stream-shard-%d" % shard_id
        )
    telemetry = ctx.state.get("telemetry")
    registry = telemetry.registry if telemetry is not None else None
    ctx.state["window_config"] = dict(window_config)
    ctx.state["operator"] = _build_operator(window_config, registry)
    ctx.state["range"] = KeyRange.from_json(key_range).to_json()
    ctx.state["pane_budget"] = pane_budget
    ctx.state["shed_policy"] = OldestPaneShedPolicy(meter_tenant)
    ctx.state["version"] = 0
    ctx.state["entries"] = 0      # log entries applied since checkpoint
    return True


def stream_install_ingest_key(ctx, wrapped):
    """ECALL: install the head-end ingest key (plane-key-wrapped)."""
    aad = _AAD_INGEST_KEY + str(ctx.state["shard_id"]).encode("ascii")
    try:
        key_bytes = _plane_key(ctx).decrypt(
            Ciphertext.from_bytes(wrapped), aad=aad
        )
    except IntegrityError as exc:
        raise IntegrityError(
            "wrapped ingest key failed authentication"
        ) from exc
    ctx.state["ingest_key"] = AeadKey(key_bytes)
    return True


def _emit_firings(ctx, closed, operator):
    """Seal closed windows and shed tombstones into firing frames.

    Every frame's metadata carries the operator's cumulative shed/late
    counters -- shedding is visible in the output stream itself, not
    only in side-channel stats.
    """
    plane_key = _plane_key(ctx)
    firings = []
    frames = [
        ("window", start, end, key, result)
        for start, end, key, result in closed
    ] + [
        ("shed", start, end, key, {"dropped": dropped})
        for start, end, key, dropped in operator.drain_shed_tombstones()
    ]
    frames.sort(key=lambda frame: (frame[1], repr(frame[3]), frame[0]))
    for kind, start, end, key, result in frames:
        firing_id = _firing_id(plane_key, start, end, key)
        payload = json.dumps({
            "kind": kind,
            "window_start": start,
            "window_end": end,
            "key": key,
            "result": result,
            "meta": {
                "shard": ctx.state["shard_id"],
                "shed_records": operator.shed_records,
                "late_records": operator.late_records,
            },
        }, sort_keys=True).encode("utf-8")
        ctx.compute(SEAL_SETUP_CYCLES + SEAL_CYCLES_PER_BYTE * len(payload))
        blob = plane_key.encrypt(
            payload, aad=_AAD_FIRING + firing_id.encode("ascii")
        ).to_bytes()
        firings.append((firing_id, blob))
    return firings


def _ingest_result(ctx, firings, records):
    operator = ctx.state["operator"]
    return {
        "firings": firings,
        "records": records,
        "late_records": operator.late_records,
        "shed_records": operator.shed_records,
        "open_panes": operator.open_windows,
        "watermark": operator.watermark,
    }


def stream_ingest(ctx, header, blob):
    """ECALL: open one sealed batch and window its readings.

    The header rides as AAD, so the host cannot re-label a batch's
    source, sequence, count, or target shard without failing the AEAD
    open.  Records routed outside this shard's key range fail closed:
    a misrouting host cannot make a reading count twice or vanish.
    """
    ingest_key = ctx.state.get("ingest_key")
    if ingest_key is None:
        raise AttestationError("shard has no ingest key installed")
    if header["shard"] != ctx.state["shard_id"]:
        raise IntegrityError(
            "batch for shard %r delivered to shard %r"
            % (header["shard"], ctx.state["shard_id"])
        )
    aad = _AAD_BATCH + canonical_header(header)
    try:
        payloads = ingest_key.decrypt_batch(
            SealedBatch.from_bytes(blob), aad=aad
        )
    except IntegrityError as exc:
        raise IntegrityError("ingest batch failed authentication") from exc
    if len(payloads) != header["count"]:
        raise IntegrityError(
            "batch count mismatch: header says %d, body holds %d"
            % (header["count"], len(payloads))
        )
    operator = ctx.state["operator"]
    owned = KeyRange.from_json(ctx.state["range"])
    closed = []
    for payload in payloads:
        record = json.loads(payload.decode("utf-8"))
        if not owned.contains(key_slot(record["meter"])):
            raise IntegrityError(
                "record for slot %d is outside this shard's range [%d, %d)"
                % (key_slot(record["meter"]), owned.lo, owned.hi)
            )
        ctx.compute(INGEST_CYCLES_PER_RECORD)
        closed.extend(operator.ingest(record["t"], record))
    budget = ctx.state.get("pane_budget")
    if budget is not None and operator.open_windows > budget:
        ctx.state["shed_policy"].shed_to_budget(operator, budget)
    ctx.state["entries"] += 1
    firings = _emit_firings(ctx, closed, operator)
    return _ingest_result(ctx, firings, len(payloads))


def stream_punctuate(ctx, timestamp):
    """ECALL: advance the watermark without records (a punctuation).

    Closes -- and evicts -- every ripe pane, including panes of keys
    that went quiet; the plane punctuates each round with the minimum
    released-through time across sources, so backpressure holding
    batches upstream also holds the watermark (a throttled reading can
    never become late).
    """
    operator = ctx.state["operator"]
    closed = operator.advance_watermark(timestamp)
    ctx.state["entries"] += 1
    firings = _emit_firings(ctx, closed, operator)
    return _ingest_result(ctx, firings, 0)


def stream_checkpoint(ctx):
    """ECALL: seal the full pane state under the plane key.

    The blob binds the shard id, a monotonic version, and the owned
    range; a host replaying it into the wrong shard (or a shard whose
    range moved on) fails closed on restore.  Checkpoints truncate the
    replay log: recovery is restore-latest + replay-since.
    """
    ctx.state["version"] += 1
    operator = ctx.state["operator"]
    state = {
        "shard": ctx.state["shard_id"],
        "version": ctx.state["version"],
        "range": ctx.state["range"],
        "operator": operator.state_dict(),
    }
    payload = json.dumps(state, sort_keys=True).encode("utf-8")
    aad = _AAD_CHECKPOINT + str(ctx.state["shard_id"]).encode("ascii")
    ctx.compute(SEAL_SETUP_CYCLES + SEAL_CYCLES_PER_BYTE * len(payload))
    blob = _plane_key(ctx).encrypt(payload, aad=aad).to_bytes()
    ctx.state["entries"] = 0
    return {"version": ctx.state["version"], "blob": blob}


def stream_restore(ctx, blob):
    """ECALL: restore pane state from a sealed checkpoint.

    Only an empty shard restores (a live one would fork history), and
    only its own checkpoints open -- the AAD pins the shard id and the
    sealed payload repeats it, so a foreign or re-labelled blob fails
    closed.
    """
    operator = ctx.state["operator"]
    if operator.open_windows or ctx.state["entries"]:
        raise IntegrityError(
            "refusing to restore into a non-empty stream shard"
        )
    aad = _AAD_CHECKPOINT + str(ctx.state["shard_id"]).encode("ascii")
    try:
        payload = _plane_key(ctx).decrypt(
            Ciphertext.from_bytes(blob), aad=aad
        )
    except IntegrityError as exc:
        raise IntegrityError(
            "stream checkpoint failed authentication"
        ) from exc
    state = json.loads(payload.decode("utf-8"))
    if state["shard"] != ctx.state["shard_id"]:
        raise IntegrityError(
            "checkpoint for shard %r offered to shard %r"
            % (state["shard"], ctx.state["shard_id"])
        )
    operator.load_state_dict(state["operator"])
    ctx.state["range"] = state["range"]
    ctx.state["version"] = state["version"]
    ctx.state["entries"] = 0
    return {
        "version": state["version"],
        "watermark": operator.watermark,
        "open_panes": operator.open_windows,
    }


def stream_extract_range(ctx, move_range, to_shard):
    """ECALL: evacuate ``move_range``'s panes for a staged handoff.

    ``move_range`` must be a prefix/suffix slice of (or the whole of)
    the owned range; what remains stays owned here.  When the whole
    range moves (a merge retiring this shard), the cumulative shed and
    late counters ride along so plane-wide accounting stays exact.
    Returns the sealed handoff blob; the host stores and relays it but
    cannot read a single pane.
    """
    owned = KeyRange.from_json(ctx.state["range"])
    moved = KeyRange.from_json(move_range)
    if not (owned.lo <= moved.lo and moved.hi <= owned.hi):
        raise ConfigurationError(
            "cannot extract [%d, %d): shard owns [%d, %d)"
            % (moved.lo, moved.hi, owned.lo, owned.hi)
        )
    if moved.lo != owned.lo and moved.hi != owned.hi:
        raise ConfigurationError(
            "extracted range must align with an edge of the owned range"
        )
    operator = ctx.state["operator"]
    part = operator.extract(
        lambda key: moved.contains(key_slot(key))
    )
    retiring = moved.width == owned.width
    payload = {
        "from": ctx.state["shard_id"],
        "to": to_shard,
        "range": moved.to_json(),
        "part": part,
    }
    if retiring:
        payload["counters"] = {
            "shed_records": operator.shed_records,
            "late_records": operator.late_records,
        }
    else:
        if moved.lo == owned.lo:
            remainder = KeyRange(moved.hi, owned.hi)
        else:
            remainder = KeyRange(owned.lo, moved.lo)
        ctx.state["range"] = remainder.to_json()
    body = json.dumps(payload, sort_keys=True).encode("utf-8")
    aad = _AAD_RANGE + (
        "%d|%d" % (ctx.state["shard_id"], to_shard)
    ).encode("ascii")
    ctx.compute(SEAL_SETUP_CYCLES + SEAL_CYCLES_PER_BYTE * len(body))
    return _plane_key(ctx).encrypt(body, aad=aad).to_bytes()


def stream_load_range(ctx, from_shard, blob):
    """ECALL: adopt a sealed key-range handoff.

    The AAD pins donor and recipient, the payload repeats them, and the
    adopted range must either equal the configured range (a fresh split
    target) or extend the owned one edge-adjacently (a merge) -- a host
    replaying the blob elsewhere, or twice, fails closed (adopting
    duplicate panes raises).
    """
    aad = _AAD_RANGE + (
        "%d|%d" % (from_shard, ctx.state["shard_id"])
    ).encode("ascii")
    try:
        payload = _plane_key(ctx).decrypt(
            Ciphertext.from_bytes(blob), aad=aad
        )
    except IntegrityError as exc:
        raise IntegrityError(
            "range handoff failed authentication"
        ) from exc
    state = json.loads(payload.decode("utf-8"))
    if state["to"] != ctx.state["shard_id"] or state["from"] != from_shard:
        raise IntegrityError("range handoff addressed to another shard")
    owned = KeyRange.from_json(ctx.state["range"])
    moved = KeyRange.from_json(state["range"])
    if (moved.lo, moved.hi) != (owned.lo, owned.hi):
        ctx.state["range"] = owned.merge(moved).to_json()
    operator = ctx.state["operator"]
    operator.adopt(state["part"])
    counters = state.get("counters")
    if counters is not None:
        operator.shed_records += counters["shed_records"]
        operator.late_records += counters["late_records"]
    return {
        "range": ctx.state["range"],
        "open_panes": operator.open_windows,
        "watermark": operator.watermark,
    }


def stream_flush(ctx):
    """ECALL: close every open window (end of stream)."""
    operator = ctx.state["operator"]
    closed = operator.flush()
    ctx.state["entries"] += 1
    firings = _emit_firings(ctx, closed, operator)
    return _ingest_result(ctx, firings, 0)


def stream_stats(ctx):
    """ECALL: public health numbers (counts and slots only)."""
    operator = ctx.state["operator"]
    return {
        "shard": ctx.state["shard_id"],
        "range": ctx.state["range"],
        "open_panes": operator.open_windows,
        "buffered_records": sum(
            count for _start, _key, count in operator.open_panes()
        ),
        "watermark": operator.watermark,
        "late_records": operator.late_records,
        "shed_records": operator.shed_records,
        "version": ctx.state["version"],
        "entries": ctx.state["entries"],
        "resident_bytes": ctx.memory.resident_bytes,
    }


STREAM_SHARD_ENTRY_POINTS = {
    "setup": stream_setup,
    "join_offer2": shard_join_offer2,
    "join_complete_batch": shard_join_complete_batch,
    "resume_offer": shard_resume_offer,
    "resume_complete": shard_resume_complete,
    "rekey": shard_rekey,
    "install_ingest_key": stream_install_ingest_key,
    "ingest": stream_ingest,
    "punctuate": stream_punctuate,
    "checkpoint": stream_checkpoint,
    "restore": stream_restore,
    "extract_range": stream_extract_range,
    "load_range": stream_load_range,
    "flush": stream_flush,
    "stats": stream_stats,
    "telemetry_export": plane_telemetry_export,
}

STREAM_SHARD_CODE = EnclaveCode("stream-shard", STREAM_SHARD_ENTRY_POINTS)


# --- coordinator-side ECALLs ------------------------------------------

def stream_coord_setup(ctx, ingest_key_bytes, attestation=None,
                       shard_measurement=None, telemetry_key=None):
    """ECALL: initialise the stream coordinator.

    Mints the plane key in-enclave and installs the head-end's ingest
    key (provisioned out of band by the utility, which trusts its own
    metering gateway).  ``attestation`` + ``shard_measurement`` pin
    which shard code may join, exactly as in the SCBR plane.
    """
    ctx.state["plane_key"] = AeadKey.generate()
    ctx.state["ingest_key"] = AeadKey(ingest_key_bytes)
    ctx.state["attestation"] = attestation
    ctx.state["shard_measurement"] = shard_measurement
    ctx.state["enrolled"] = set()
    ctx.state["plane_epoch"] = 1
    ctx.state["ticket_key"] = AeadKey.generate()
    ctx.state["resumption"] = {}
    ctx.state["shard_platform"] = {}
    if telemetry_key is not None:
        ctx.state["telemetry"] = EnclaveTelemetry(
            telemetry_key, "stream-coord"
        )
    return True


def stream_coord_wrap_ingest_key(ctx, shard_id):
    """ECALL: wrap the ingest key for one enrolled shard."""
    aad = _AAD_INGEST_KEY + str(shard_id).encode("ascii")
    return _plane_key(ctx).encrypt(
        ctx.state["ingest_key"].key_bytes, aad=aad
    ).to_bytes()


def stream_coord_open_firing(ctx, firing_id, blob):
    """ECALL: open one sealed firing (the egress gateway).

    In a deployment this would re-seal to the analytics consumer's
    key; here it returns the plaintext frame so benchmarks and tests
    (standing in for that consumer) can check oracle equality.  The
    AAD binds the firing id, so a host swapping ids to confuse the
    dedupe ledger fails closed.
    """
    try:
        payload = _plane_key(ctx).decrypt(
            Ciphertext.from_bytes(blob),
            aad=_AAD_FIRING + firing_id.encode("ascii"),
        )
    except IntegrityError as exc:
        raise IntegrityError("firing failed authentication") from exc
    return json.loads(payload.decode("utf-8"))


STREAM_COORD_ENTRY_POINTS = {
    "setup": stream_coord_setup,
    "enroll_batch": coord_enroll_batch,
    "resume": coord_resume,
    "rotate": coord_rotate,
    "wrap_ingest_key": stream_coord_wrap_ingest_key,
    "open_firing": stream_coord_open_firing,
    "telemetry_export": plane_telemetry_export,
}

STREAM_COORD_CODE = EnclaveCode(
    "stream-coordinator", STREAM_COORD_ENTRY_POINTS
)
