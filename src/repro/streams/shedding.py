"""Deterministic load-shedding for window operators.

When a shard's open-pane budget (its stand-in for the EPC-resident
working set) is exceeded, degradation must be *explicit and fair*:

- **oldest pane first** -- staleness is the cheapest thing to give up;
  the freshest windows, the ones a grid operator is actually watching,
  survive;
- **per-tenant fairness** -- the victim is always drawn from the tenant
  holding the most open panes, so one noisy feeder sheds its own
  backlog before touching anyone else's.

The policy is a pure function of operator state, so the same overload
sheds the same panes on every run (the chaos determinism gate relies
on this) and on every *replay* (crash recovery re-sheds identically,
keeping the sealed counters exact).  Every shed record lands in the
operator's sealed ``shed_records`` counter and resurfaces as a
tombstone in the emitted window metadata -- never a silent drop.
"""

from repro.errors import ConfigurationError


def meter_tenant(key):
    """Tenant of a meter key: its feeder prefix (``meter-F-...``)."""
    parts = str(key).split("-")
    if len(parts) >= 2:
        return "-".join(parts[:2])
    return str(key)


class OldestPaneShedPolicy:
    """Pick shed victims: biggest tenant's oldest pane, deterministically.

    ``tenant_fn`` maps a pane key to its tenant (default: the key is
    its own tenant).  Ties on pane count break lexicographically on the
    tenant name; ties on window start break on the key's repr -- total
    order, no ambient state, no randomness.
    """

    def __init__(self, tenant_fn=None):
        self.tenant_fn = tenant_fn or (lambda key: str(key))

    def victim(self, panes):
        """The pane to shed next from ``(window_start, key, count)``."""
        if not panes:
            raise ConfigurationError("no open panes to shed")
        by_tenant = {}
        for window_start, key, count in panes:
            by_tenant.setdefault(self.tenant_fn(key), []).append(
                (window_start, key, count)
            )
        tenant = max(
            sorted(by_tenant),
            key=lambda name: (len(by_tenant[name]), name),
        )
        window_start, key, _count = min(
            by_tenant[tenant],
            key=lambda pane: (pane[0], repr(pane[1])),
        )
        return window_start, key

    def shed_to_budget(self, operator, budget):
        """Shed panes until the operator is at or under ``budget``.

        Returns ``[(window_start, key, records_dropped), ...]`` in shed
        order.  The dropped records are already counted in the
        operator's ``shed_records``; tombstones appear in its
        ``drain_shed_tombstones()`` stream once the windows close.
        """
        if budget < 1:
            raise ConfigurationError("shed budget must be at least 1")
        shed = []
        while operator.open_windows > budget:
            window_start, key = self.victim(operator.open_panes())
            dropped = operator.shed_pane(window_start, key)
            shed.append((window_start, key, dropped))
        return shed
