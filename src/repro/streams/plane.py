"""The self-stabilising sealed streaming plane.

:class:`SecureStreamPlane` runs event-time window operators over an
encrypted meter firehose, on ingest shards bound to cluster nodes
(``repro.cluster``), with plane keys provisioned through the attested
provisioning plane (``repro.scbr.provisioning``: batched enrollment on
bring-up, resumption tickets on every re-join).  Four robustness
mechanisms keep it correct and live under overload and churn:

**Credit-based backpressure.**  Every shard has a bounded host-side
queue; its free slots are the credits sources spend to release sealed
batches.  When a queue fills, credits hit zero and the *source*
throttles (readings wait in the field), so enclave memory is never the
overflow buffer.  The watermark punctuation is the minimum
released-through time across sources, so throttling also holds windows
open -- a reading delayed by backpressure can never be judged late.

**Explicit load shedding.**  Past the per-shard pane budget, the
deterministic shed policy (oldest pane of the biggest tenant) drops
whole panes; every shed record increments the enclave's sealed counter
and a tombstone firing carrying the dropped count is emitted when the
window closes.  Degradation is graceful and visible, never silent.

**Exactly-once window emission.**  Shards checkpoint pane state as
plane-key-sealed blobs every ``checkpoint_interval`` queue entries; the
host keeps the (ciphertext) entries since the last checkpoint as a
replay log.  Recovery = respawn (ticket re-join) + restore + replay.
Replay re-closes windows already committed before the crash; the
committer dedupes on the deterministic firing id, so a crash mid-window
yields neither duplicate nor lost firings -- validated against a pure
python oracle in tests and the E9 benchmark.

**Watermark-driven auto-scaling.**  When a shard's queue depth or its
node's EPC-resident gauge trips the split watermark, its key range
splits at the midpoint onto a freshly attested shard: drain, sealed
extract/load handoff, checkpoint on both sides, then an atomic routing
cutover.  When load drains (both siblings idle for ``merge_idle_rounds``
rounds) ranges merge back and the spare shard retires, its sealed
counters riding the handoff so accounting stays exact.

The plane exposes ``fail_shard`` / ``fail_node`` / ``name``, so
:class:`~repro.chaos.injector.FaultSchedule` can crash it on the
virtual clock like any other plane.
"""

from collections import deque

from repro.errors import (
    CapacityError,
    ConfigurationError,
    EnclaveLostError,
    SchedulingError,
)
from repro.scbr.provisioning import CachedAttestationVerifier, PlaneProvisioner
from repro.scbr.sharding import ShardPlanner
from repro.sgx.attestation import AttestationService
from repro.sgx.platform import SgxPlatform
from repro.crypto.aead import AeadKey
from repro.sim.clock import cycles_to_seconds
from repro.streams.routing import RoutingTable
from repro.streams.shards import STREAM_COORD_CODE, STREAM_SHARD_CODE
from repro.telemetry import default_registry

DEFAULT_NODE_EPC_WATERMARK = 0.8


class StreamConfig:
    """Tunables of one stream plane (all deterministic)."""

    def __init__(self, window=None, queue_bound=8, pane_budget=None,
                 checkpoint_interval=4, service_rate=2,
                 round_interval=30.0, split_queue_watermark=None,
                 epc_split_watermark=None, merge_idle_rounds=3,
                 max_shards=8, batch_records=32):
        if queue_bound < 1:
            raise ConfigurationError("queue bound must be at least 1")
        if checkpoint_interval < 1:
            raise ConfigurationError(
                "checkpoint interval must be at least 1"
            )
        if service_rate < 1:
            raise ConfigurationError("service rate must be at least 1")
        self.window = dict(window or {"kind": "tumbling", "size": 60.0,
                                      "lateness": 30.0})
        self.queue_bound = queue_bound
        self.pane_budget = pane_budget
        self.checkpoint_interval = checkpoint_interval
        self.service_rate = service_rate
        self.round_interval = round_interval
        self.split_queue_watermark = split_queue_watermark
        self.epc_split_watermark = epc_split_watermark
        self.merge_idle_rounds = merge_idle_rounds
        self.max_shards = max_shards
        self.batch_records = batch_records


class _ShardRuntime:
    """Host-side bookkeeping for one ingest shard."""

    def __init__(self, shard_id, node, enclave):
        self.shard_id = shard_id
        self.node = node
        self.enclave = enclave
        self.queue = deque()        # ("batch", header, blob) | ("punct", t)
        self.log = []               # entries applied since last checkpoint
        self.checkpoint = None      # latest sealed checkpoint blob
        self.pending_handoff = None  # (from_shard, blob) until checkpointed
        self.idle_rounds = 0
        self.last_open_panes = 0

    @property
    def queue_depth(self):
        """Batches waiting (punctuations are control, not load)."""
        return sum(1 for entry in self.queue if entry[0] == "batch")

    def queued_records(self):
        return sum(
            entry[1]["count"] for entry in self.queue
            if entry[0] == "batch"
        )


class SecureStreamPlane:
    """A sealed, self-stabilising event-time streaming plane."""

    def __init__(self, topology, config=None, shards=2, seed=0,
                 name="stream-plane", env=None, chaos=None,
                 attested=True, telemetry_key=None):
        if not topology.sgx_nodes():
            raise SchedulingError(
                "the topology has no SGX nodes; nowhere to run shards"
            )
        self.topology = topology
        self.config = config or StreamConfig()
        self.name = name
        self.env = env
        self.chaos = chaos
        self.telemetry_key = telemetry_key
        self._vnow = 0.0
        self._rounds = 0
        self._ops = 0            # monotonic op index for chaos draws
        self._base_shard_count = shards
        self._next_shard_id = shards
        self._last_punctuation = float("-inf")
        self._counter_seen = {}  # shard -> (shed, late) already exported

        # Exactly-once committer: firing id -> sealed blob, plus the
        # virtual commit time (for end-to-end latency).
        self.committed = {}
        self.commit_times = {}
        self.duplicates_suppressed = 0
        self.shard_crashes = 0
        self.node_failures = 0
        self.recoveries = 0
        self.splits = 0
        self.merges = 0
        self.recovery_episodes = []   # virtual ms per recovery
        self.throttled_rounds = 0

        registry = default_registry()
        self._tel_committed = registry.counter("streams.committed_firings")
        self._tel_duplicates = registry.counter(
            "streams.duplicates_suppressed"
        )
        self._tel_recoveries = registry.counter("streams.recoveries")
        self._tel_splits = registry.counter("streams.splits")
        self._tel_merges = registry.counter("streams.merges")
        self._tel_shed = registry.counter("streams.shed_records")
        self._tel_late = registry.counter("streams.late_records")
        self._registry = registry
        self._depth_gauges = {}

        # Attestation domain: the coordinator platform plus every SGX
        # node registers with one service; the cached verifier and the
        # provisioner (batched enrollment + resumption tickets) drive
        # every join and re-join.
        self.coordinator_platform = SgxPlatform(
            seed=seed, quoting_key_bits=512
        )
        self.service = AttestationService()
        self.service.register_platform(
            self.coordinator_platform.platform_id,
            self.coordinator_platform.quoting_enclave.public_key,
        )
        for node in topology.sgx_nodes():
            self.service.register_platform(
                node.platform.platform_id,
                node.platform.quoting_enclave.public_key,
            )
        self.verifier = (
            CachedAttestationVerifier(self.service) if attested else None
        )
        self.provisioner = PlaneProvisioner(
            attestation=self.verifier, chaos=chaos
        )
        self.coordinator = self.coordinator_platform.load_enclave(
            STREAM_COORD_CODE, name="%s-coord" % name
        )
        self.ingest_key_bytes = AeadKey.generate().key_bytes
        self.coordinator.ecall(
            "setup", self.ingest_key_bytes, self.verifier,
            STREAM_SHARD_CODE.measurement if attested else None,
            telemetry_key,
        )

        self.table = RoutingTable.even(range(shards))
        self.shards = {}
        entries = []
        for shard_id in self.table.shard_ids():
            runtime = self._spawn_runtime(shard_id)
            self.shards[shard_id] = runtime
            entries.append((shard_id, runtime.node.platform, runtime.enclave))
        # ONE batched enrollment round brings the whole plane up.
        self.provisioner.join(
            self.coordinator, self.coordinator_platform, entries
        )
        for shard_id in self.table.shard_ids():
            self._install_ingest_key(shard_id)

    # -- time -----------------------------------------------------------

    def _now(self):
        if self.env is not None:
            return self.env.now
        return self._vnow

    # -- placement and spawning -----------------------------------------

    def _choose_node(self):
        candidates = self.topology.placement_candidates(self._now())
        if not candidates:
            raise SchedulingError(
                "no reachable SGX node can host a stream shard"
            )
        return candidates[ShardPlanner.choose_node(
            [len(node.shard_ids) for node in candidates],
            [node.epc_utilization() for node in candidates],
            [node.epc_watermark_exceeded(DEFAULT_NODE_EPC_WATERMARK)
             for node in candidates],
        )]

    def _spawn_runtime(self, shard_id, key_range=None):
        node = self._choose_node()
        enclave = node.platform.load_enclave(
            STREAM_SHARD_CODE, name="%s-shard-%d" % (self.name, shard_id)
        )
        owned = key_range if key_range is not None else (
            self.table.range_of(shard_id)
        )
        enclave.ecall(
            "setup", shard_id, self.config.window, owned.to_json(),
            self.config.pane_budget, self.verifier,
            STREAM_COORD_CODE.measurement if self.verifier else None,
            self.telemetry_key,
        )
        node.bind_shard(shard_id)
        if shard_id not in self._depth_gauges:
            self._depth_gauges[shard_id] = self._registry.gauge(
                "streams.queue_depth", shard=shard_id
            )
        return _ShardRuntime(shard_id, node, enclave)

    def _install_ingest_key(self, shard_id):
        wrapped = self.coordinator.ecall("wrap_ingest_key", shard_id)
        self.shards[shard_id].enclave.ecall("install_ingest_key", wrapped)

    # -- routing and credits (the source-facing surface) ---------------

    def owner_of(self, key):
        return self.table.owner(key)

    def credits(self, shard_id):
        """Free queue slots at ``shard_id`` -- the upstream credit."""
        return self.config.queue_bound - self.shards[shard_id].queue_depth

    def enqueue(self, shard_id, header, blob):
        """Accept one sealed batch; full queues fail closed (transient).

        Sources check :meth:`credits` first; the bound here is defence
        in depth -- nothing can overfill a queue, credit protocol or
        not.
        """
        runtime = self.shards[shard_id]
        if runtime.queue_depth >= self.config.queue_bound:
            raise CapacityError(
                "shard %d queue is full (%d batches)"
                % (shard_id, runtime.queue_depth)
            )
        runtime.queue.append(("batch", header, blob))

    # -- the committer (exactly-once boundary) --------------------------

    def _commit(self, firings):
        for firing_id, blob in firings:
            if firing_id in self.committed:
                self.duplicates_suppressed += 1
                self._tel_duplicates.inc()
                continue
            self.committed[firing_id] = blob
            self.commit_times[firing_id] = self._now()
            self._tel_committed.inc()

    def open_firings(self):
        """Open every committed firing via the egress coordinator.

        Returns frames (dicts) with ``commit_time`` attached, ordered
        by window coordinates -- the shape tests compare to the oracle.
        """
        frames = []
        for firing_id in self.committed:
            frame = self.coordinator.ecall(
                "open_firing", firing_id, self.committed[firing_id]
            )
            frame["commit_time"] = self.commit_times[firing_id]
            frames.append(frame)
        frames.sort(
            key=lambda f: (f["window_start"], str(f["key"]), f["kind"])
        )
        return frames

    # -- fault hooks (FaultSchedule-compatible) -------------------------

    def fail_shard(self, shard_id):
        """Crash one shard enclave (chaos hook).  Detection happens on
        the next service touch; recovery restores + replays."""
        runtime = self.shards[shard_id]
        if not runtime.enclave.destroyed:
            runtime.enclave.destroy()
        self.shard_crashes += 1

    def fail_node(self, node_name):
        """Machine failure: every stream shard on the node goes dark."""
        node = self.topology.node(node_name)
        dark = node.crash()
        self.node_failures += 1
        return [shard_id for shard_id in dark if shard_id in self.shards]

    def recover_shard(self, shard_id):
        """Respawn + ticket re-join + sealed restore + replay."""
        runtime = self.shards[shard_id]
        clocks_before = self._fleet_cycles()
        if runtime.node.alive:
            runtime.node.unbind_shard(shard_id)
        fresh = self._spawn_runtime(
            shard_id, key_range=self.table.range_of(shard_id)
        )
        self.provisioner.join(
            self.coordinator, self.coordinator_platform,
            [(shard_id, fresh.node.platform, fresh.enclave)],
        )
        fresh.queue = runtime.queue
        fresh.checkpoint = runtime.checkpoint
        fresh.pending_handoff = runtime.pending_handoff
        self.shards[shard_id] = fresh
        self._install_ingest_key(shard_id)
        if fresh.checkpoint is not None:
            fresh.enclave.ecall("restore", fresh.checkpoint)
        elif fresh.pending_handoff is not None:
            from_shard, blob = fresh.pending_handoff
            fresh.enclave.ecall("load_range", from_shard, blob)
        for entry in runtime.log:
            result = self._apply(fresh, entry)
            self._commit(result["firings"])
        fresh.log = runtime.log
        self.recoveries += 1
        self._tel_recoveries.inc()
        self.recovery_episodes.append(
            cycles_to_seconds(self._fleet_cycles() - clocks_before) * 1e3
        )

    def _fleet_cycles(self):
        return self.coordinator_platform.clock.now + sum(
            node.platform.clock.now for node in self.topology.sgx_nodes()
        )

    # -- the service loop -----------------------------------------------

    def _apply(self, runtime, entry):
        if entry[0] == "batch":
            return runtime.enclave.ecall("ingest", entry[1], entry[2])
        if entry[0] == "punct":
            return runtime.enclave.ecall("punctuate", entry[1])
        if entry[0] == "flush":
            return runtime.enclave.ecall("flush")
        raise ConfigurationError("unknown queue entry %r" % (entry[0],))

    def _checkpoint(self, runtime):
        result = runtime.enclave.ecall("checkpoint")
        runtime.checkpoint = result["blob"]
        runtime.pending_handoff = None
        runtime.log = []

    def _export_counters(self, shard_id, result):
        """Mirror per-shard sealed counters onto plane-level telemetry.

        Counters are inc-only; each shard exports the delta since its
        last export.  Replay restores a shard to the same cumulative
        value, so recovery never re-exports; handoffs fold the donor's
        seen mark into the recipient's (see :meth:`merge_shards`).
        """
        seen_shed, seen_late = self._counter_seen.get(shard_id, (0, 0))
        shed, late = result["shed_records"], result["late_records"]
        if shed > seen_shed:
            self._tel_shed.inc(shed - seen_shed)
        if late > seen_late:
            self._tel_late.inc(late - seen_late)
        self._counter_seen[shard_id] = (
            max(shed, seen_shed), max(late, seen_late)
        )

    def _service_entry(self, runtime, entry):
        """Apply one entry with crash detection; True when applied."""
        try:
            result = self._apply(runtime, entry)
        except EnclaveLostError:
            self.recover_shard(runtime.shard_id)
            return False
        runtime.log.append(entry)
        self._commit(result["firings"])
        self._export_counters(runtime.shard_id, result)
        runtime.last_open_panes = result["open_panes"]
        if len(runtime.log) >= self.config.checkpoint_interval:
            self._checkpoint(self.shards[runtime.shard_id])
        return True

    def _service_shard(self, shard_id, budget=None):
        """Process up to ``budget`` queue entries (None = drain)."""
        steps = 0
        while True:
            runtime = self.shards[shard_id]
            if runtime.enclave.destroyed:
                self.recover_shard(shard_id)
                continue
            if budget is not None and steps >= budget:
                break
            if not runtime.queue:
                break
            self._ops += 1
            if self.chaos is not None and self.chaos.crashes_shard(
                    shard_id, self._ops):
                self.fail_shard(shard_id)
                continue
            entry = runtime.queue[0]
            if self._service_entry(runtime, entry):
                self.shards[shard_id].queue.popleft()
                steps += 1

    def pump(self, sources):
        """One scheduling round: release, punctuate, service, autoscale.

        Returns the records released this round.  Chaos-scheduled
        faults fire between rounds (drive the :class:`Environment`
        forward before calling); probabilistic shard crashes draw at
        every service step.
        """
        if self.env is None:
            self._vnow += self.config.round_interval
        self._rounds += 1
        if self.chaos is not None:
            hosting = sorted({
                self.shards[shard_id].node.name
                for shard_id in self.table.shard_ids()
                if self.shards[shard_id].node.alive
            })
            for node_name in hosting:
                if self.chaos.crashes_node(node_name, self._rounds):
                    self.fail_node(node_name)
        released = 0
        for source in sources:
            released += source.release(self)
        if any(source.backlog for source in sources):
            self.throttled_rounds += 1
        if sources:
            watermark = min(
                source.released_through for source in sources
            )
            if watermark > self._last_punctuation:
                self._last_punctuation = watermark
                for shard_id in self.table.shard_ids():
                    self.shards[shard_id].queue.append(
                        ("punct", watermark)
                    )
        for shard_id in self.table.shard_ids():
            self._service_shard(shard_id, budget=self.config.service_rate)
        self.maybe_autoscale()
        for shard_id in self.table.shard_ids():
            self._depth_gauges[shard_id].set(
                self.shards[shard_id].queue_depth
            )
        return released

    def drain(self, sources, max_rounds=10_000):
        """Pump until every backlog and queue is empty, then flush.

        The final flush closes windows still inside the lateness slack;
        it rides the replay log like any other entry, so a crash after
        flush still recovers exactly-once.
        """
        rounds = 0
        while any(source.backlog for source in sources) or any(
            self.shards[shard_id].queue
            for shard_id in self.table.shard_ids()
        ):
            rounds += 1
            if rounds > max_rounds:
                raise CapacityError(
                    "plane failed to drain within %d rounds" % max_rounds
                )
            if self.env is not None:
                self.env.run(
                    until=self.env.now + self.config.round_interval
                )
            self.pump(sources)
        for shard_id in self.table.shard_ids():
            runtime = self.shards[shard_id]
            runtime.queue.append(("flush", None))
            self._service_shard(shard_id)
        return rounds

    # -- watermark-driven auto-scaling ----------------------------------

    def _split_trigger(self, shard_id):
        config = self.config
        runtime = self.shards[shard_id]
        if config.split_queue_watermark is not None and (
                runtime.queue_depth >= config.split_queue_watermark):
            return True
        if config.epc_split_watermark is not None and (
                runtime.node.epc_watermark_exceeded(
                    config.epc_split_watermark)):
            return True
        return False

    def maybe_autoscale(self):
        """Split hot shards; merge adjacent idle siblings back."""
        for shard_id in self.table.shard_ids():
            if len(self.shards) >= self.config.max_shards:
                break
            if not self._split_trigger(shard_id):
                continue
            if self.table.range_of(shard_id).width < 2:
                continue
            self.split_shard(shard_id)
        if len(self.shards) > max(1, self._base_shards()):
            for shard_id in self.table.shard_ids():
                runtime = self.shards.get(shard_id)
                if runtime is None:
                    continue
                if runtime.queue or runtime.last_open_panes:
                    runtime.idle_rounds = 0
                else:
                    runtime.idle_rounds += 1
            self._maybe_merge()

    def _base_shards(self):
        return self._base_shard_count

    def _maybe_merge(self):
        for shard_id in self.table.shard_ids():
            if len(self.shards) <= max(1, self._base_shards()):
                return
            runtime = self.shards.get(shard_id)
            if runtime is None:
                continue
            if runtime.idle_rounds < self.config.merge_idle_rounds:
                continue
            neighbour = self.table.neighbour(shard_id)
            if neighbour is None:
                continue
            partner = self.shards[neighbour]
            if partner.idle_rounds < self.config.merge_idle_rounds:
                continue
            into, retired = sorted((shard_id, neighbour))
            self.merge_shards(into, retired)
            return

    def split_shard(self, shard_id):
        """Split a hot shard's range onto a fresh attested shard.

        Staged: drain the hot queue, spawn + enroll the target, sealed
        extract/load of the moving panes, checkpoint both sides (so no
        replay log ever crosses the handoff), then the atomic routing
        cutover.  Sources route to the new shard from the next release.
        """
        self._service_shard(shard_id)   # drain: no in-flight misroutes
        new_id = self._next_shard_id
        self._next_shard_id += 1
        kept, moved = self.table.range_of(shard_id).split()
        fresh = self._spawn_runtime(new_id, key_range=moved)
        self.shards[new_id] = fresh
        self.provisioner.join(
            self.coordinator, self.coordinator_platform,
            [(new_id, fresh.node.platform, fresh.enclave)],
        )
        self._install_ingest_key(new_id)
        donor = self.shards[shard_id]
        blob = donor.enclave.ecall(
            "extract_range", moved.to_json(), new_id
        )
        self._checkpoint(donor)
        fresh.pending_handoff = (shard_id, blob)
        fresh.enclave.ecall("load_range", shard_id, blob)
        self._checkpoint(fresh)
        self.table.split(shard_id, new_id)
        self.splits += 1
        self._tel_splits.inc()
        return new_id

    def merge_shards(self, into_id, retired_id):
        """Fold an idle shard's range back into its sibling.

        The retiring shard's panes *and counters* ride the sealed
        handoff, the survivor checkpoints across the new range, then
        the routing table merges and the spare enclave is destroyed.
        """
        self._service_shard(into_id)
        self._service_shard(retired_id)
        retiring = self.shards[retired_id]
        survivor = self.shards[into_id]
        blob = retiring.enclave.ecall(
            "extract_range",
            self.table.range_of(retired_id).to_json(), into_id,
        )
        survivor.enclave.ecall("load_range", retired_id, blob)
        # The retiring shard's cumulative counters ride the handoff;
        # fold its already-exported mark into the survivor's so the
        # telemetry mirror exports each shed/late record exactly once.
        gone_shed, gone_late = self._counter_seen.pop(retired_id, (0, 0))
        seen_shed, seen_late = self._counter_seen.get(into_id, (0, 0))
        self._counter_seen[into_id] = (
            seen_shed + gone_shed, seen_late + gone_late
        )
        self.table.merge(into_id, retired_id)
        self._checkpoint(survivor)
        retiring.enclave.destroy()
        retiring.node.unbind_shard(retired_id)
        del self.shards[retired_id]
        self.merges += 1
        self._tel_merges.inc()

    # -- health and accounting ------------------------------------------

    def shard_stats(self):
        stats = {}
        for shard_id in self.table.shard_ids():
            runtime = self.shards[shard_id]
            if runtime.enclave.destroyed:
                self.recover_shard(shard_id)
                runtime = self.shards[shard_id]
            stats[shard_id] = runtime.enclave.ecall("stats")
        return stats

    def audit(self, sources):
        """Conservation check: every released reading is accounted for.

        ``silent_loss`` is released minus (windowed + shed + late +
        still buffered + still queued); with everything drained and
        flushed it must be exactly zero -- a reading either landed in a
        committed window, was visibly shed, or was visibly late.
        Assumes tumbling windows (each record counts once).
        """
        stats = self.shard_stats()
        shed = sum(stat["shed_records"] for stat in stats.values())
        late = sum(stat["late_records"] for stat in stats.values())
        windowed = 0
        for frame in self.open_firings():
            if frame["kind"] == "window":
                windowed += frame["result"]["n"]
        buffered = sum(stat["buffered_records"] for stat in stats.values())
        queued = sum(
            self.shards[shard_id].queued_records()
            for shard_id in self.table.shard_ids()
        )
        produced = sum(source.produced for source in sources)
        released = sum(source.released for source in sources)
        return {
            "produced": produced,
            "released": released,
            "backlog": produced - released,
            "windowed": windowed,
            "shed": shed,
            "late": late,
            "buffered": buffered,
            "queued": queued,
            "silent_loss": released - windowed - shed - late
            - buffered - queued,
        }

    def queue_depths(self):
        return {
            shard_id: self.shards[shard_id].queue_depth
            for shard_id in self.table.shard_ids()
        }
