"""Chaos wrappers: drop-in hostile versions of infrastructure pieces.

Each wrapper keeps the wrapped object's interface and consults a
:class:`~repro.chaos.injector.ChaosInjector` before forwarding, so a
test or benchmark turns any deployment hostile by interposing one
object -- no subsystem needs chaos-aware code on its happy path.
"""

from repro.errors import StorageUnavailableError


class ChaosBus:
    """Wraps an event bus; drops, duplicates, and delays sealed events.

    Decisions are keyed by ``(topic, sequence, attempt)`` where the
    attempt counter increments per delivery try of that sequence
    (including NACK-triggered redeliveries), so a redelivered event is
    an independent draw and recovery converges.
    """

    def __init__(self, bus, injector):
        self.bus = bus
        self.injector = injector
        self._attempts = {}
        self.dropped = 0
        self.duplicated = 0
        self.delayed = 0

    def __getattr__(self, name):
        return getattr(self.bus, name)

    def _next_attempt(self, topic, sequence):
        key = (topic, sequence)
        attempt = self._attempts.get(key, 0)
        self._attempts[key] = attempt + 1
        return attempt

    def publish(self, event):
        attempt = self._next_attempt(event.topic, event.sequence)
        if self.injector.drops_message(event.topic, event.sequence, attempt):
            self.dropped += 1
            return None
        delay = self.injector.delay_for_message(event.topic, event.sequence)
        if delay > 0.0:
            self.delayed += 1
            return self.bus.env.call_later(
                delay, lambda: self.bus.publish(event)
            )
        result = self.bus.publish(event)
        if self.injector.duplicates_message(event.topic, event.sequence):
            self.duplicated += 1
            self.bus.publish(event)
        return result

    def redeliver(self, topic, sequences, handler=None):
        """NACK path: redeliveries run the same drop gauntlet."""
        survivors = []
        for sequence in sequences:
            attempt = self._next_attempt(topic, sequence)
            if self.injector.drops_message(topic, sequence, attempt):
                self.dropped += 1
                continue
            survivors.append(sequence)
        return self.bus.redeliver(topic, survivors, handler=handler)


class ChaosVolume:
    """Wraps an FS-shield volume; I/O transiently fails with some rate.

    Raises :class:`~repro.errors.StorageUnavailableError` -- a
    :class:`~repro.errors.TransientError` -- so retry policies classify
    it without string matching.  Per-(operation, path) attempt counters
    make each retry an independent draw.
    """

    _CHAOTIC = ("write", "read_all", "delete")

    def __init__(self, volume, injector):
        self.volume = volume
        self.injector = injector
        self._attempts = {}
        self.failures_injected = 0

    def __getattr__(self, name):
        return getattr(self.volume, name)

    def _guard(self, operation, path):
        key = (operation, path)
        attempt = self._attempts.get(key, 0)
        self._attempts[key] = attempt + 1
        if self.injector.storage_fails(operation, path, attempt):
            self.failures_injected += 1
            raise StorageUnavailableError(
                "injected storage failure: %s %r (attempt %d)"
                % (operation, path, attempt)
            )

    def write(self, path, data):
        self._guard("write", path)
        return self.volume.write(path, data)

    def read_all(self, path):
        self._guard("read_all", path)
        return self.volume.read_all(path)

    def delete(self, path):
        self._guard("delete", path)
        return self.volume.delete(path)

    def exists(self, path):
        # Existence checks stay reliable: a store that lies about
        # membership is the rollback attack the manifest MAC catches,
        # not a transient fault.
        return self.volume.exists(path)


class ChaosNetwork:
    """Wraps a :class:`~repro.bigdata.transfer.SimulatedNetwork` link.

    Corrupts frame payloads in flight (one flipped byte -- enough for
    the AEAD tag check to fail) at the configured rate; the reliable
    transfer detects the integrity failure and retransmits.  Frame
    indices are assigned in send order per transfer, so decisions are
    deterministic.
    """

    def __init__(self, network, injector, transfer_id=b"t0"):
        self.network = network
        self.injector = injector
        self.transfer_id = transfer_id
        self._frame_attempts = {}
        self.corrupted = 0

    def __getattr__(self, name):
        return getattr(self.network, name)

    def send_frame(self, frame, frame_index=None):
        if frame_index is None:
            frame_index = self.network.frames_sent
        attempt = self._frame_attempts.get(frame_index, 0)
        self._frame_attempts[frame_index] = attempt + 1
        sent = self.network.send_frame(frame, frame_index=frame_index)
        if self.injector.corrupts_frame(self.transfer_id, frame_index, attempt):
            self.corrupted += 1
            flipped = bytearray(sent)
            flipped[len(flipped) // 2] ^= 0x01
            return bytes(flipped)
        return sent


class ChaosShardPlane:
    """Wraps a sharded SCBR plane; crashes shard enclaves mid-stream.

    Before forwarding each publish, consults the injector once per
    *live* shard with a monotonically increasing operation index, and
    destroys the shards the seed selects (via the plane's
    ``fail_shard``).  The plane's own detection/recovery machinery --
    heartbeats, sealed-snapshot respawn, coverage-tracked publish --
    then has to notice and heal; the wrapper only breaks things.
    """

    def __init__(self, plane, injector):
        self.plane = plane
        self.injector = injector
        self._operation = 0
        self.crashes_injected = 0

    def __getattr__(self, name):
        return getattr(self.plane, name)

    def _maybe_crash(self):
        operation = self._operation
        self._operation += 1
        for shard in list(self.plane.shards):
            if shard.enclave.destroyed:
                continue
            if self.injector.crashes_shard(shard.shard_id, operation):
                self.crashes_injected += 1
                self.plane.fail_shard(shard.shard_id)

    def publish_routed(self, envelope):
        self._maybe_crash()
        return self.plane.publish_routed(envelope)

    def publish(self, envelope):
        self._maybe_crash()
        return self.plane.publish(envelope)


class ChaosNodePlane:
    """Wraps a node-bound SCBR plane; kills and partitions machines.

    Before forwarding each publish, consults the injector once per
    *reachable* SGX node with a monotonically increasing operation
    index: a node-crash draw fails the whole machine (every shard it
    hosts dies at once -- the correlated fault the node detector
    exists for), and a partition draw cuts the node off the network
    for a seeded duration.  The plane's own machinery -- correlated
    detection, mass recovery, coverage-tracked publish -- then has to
    heal; the wrapper only breaks things.
    """

    def __init__(self, plane, injector):
        self.plane = plane
        self.injector = injector
        self._operation = 0
        self.node_crashes_injected = 0
        self.partitions_injected = 0

    def __getattr__(self, name):
        return getattr(self.plane, name)

    def _maybe_break(self):
        operation = self._operation
        self._operation += 1
        now = self.plane.env.now if self.plane.env is not None else None
        for node in self.plane.topology.sgx_nodes():
            if not node.alive:
                continue
            if self.injector.crashes_node(node.name, operation):
                self.node_crashes_injected += 1
                self.plane.fail_node(node.name)
                continue
            if not node.reachable(now):
                continue
            duration = self.injector.partition_for_node(
                node.name, operation
            )
            if duration > 0.0:
                self.partitions_injected += 1
                self.plane.partition_node(node.name, duration)

    def publish_routed(self, envelope):
        self._maybe_break()
        return self.plane.publish_routed(envelope)

    def publish(self, envelope):
        self._maybe_break()
        return self.plane.publish(envelope)


class ChaosSyscallExecutor:
    """Wraps a syscall executor; stalls chosen calls in the host kernel.

    Models a noisy or adversarially slow OS: the stalled call charges
    extra kernel-side cycles before returning, which the async-syscall
    latency experiments observe as tail latency.  Shield validation
    still runs -- chaos slows the kernel, it does not bypass shielding.
    """

    def __init__(self, executor, injector):
        self.executor = executor
        self.injector = injector
        self._call_index = 0
        self.stalled = 0
        self.stall_cycles = 0

    def __getattr__(self, name):
        return getattr(self.executor, name)

    def call(self, name, *args):
        index = self._call_index
        self._call_index += 1
        stall = self.injector.stalls_syscall(index)
        if stall:
            self.stalled += 1
            self.stall_cycles += stall
            self.executor.clock.charge(stall)
        return self.executor.call(name, *args)
