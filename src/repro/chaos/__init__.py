"""Chaos engineering for the SecureCloud reproduction.

The paper's orchestration use case (Section VI) is *reacting* to
anomalies; this package supplies the anomalies.  A seeded
:class:`ChaosInjector` makes order-independent, deterministic fault
decisions (service crashes, bus message drops/duplicates/delays,
broker failures, whole-node crashes and network partitions, syscall
stalls, transfer-frame corruption, storage hiccups);
:class:`FaultSchedule` fires scripted failures at planned
virtual times through the discrete-event kernel; and the wrappers turn
any bus / volume / network / syscall executor hostile without touching
happy-path code.

Recovery machinery lives with the subsystems it heals (checkpointed
map/reduce, reliable transfer, replicated SCBR broker, NACK-based bus
redelivery); this package only breaks things -- reproducibly.
"""

from repro.chaos.injector import ChaosConfig, ChaosInjector, FaultSchedule
from repro.chaos.wrappers import (
    ChaosBus,
    ChaosNetwork,
    ChaosNodePlane,
    ChaosShardPlane,
    ChaosSyscallExecutor,
    ChaosVolume,
)

__all__ = [
    "ChaosBus",
    "ChaosConfig",
    "ChaosInjector",
    "ChaosNetwork",
    "ChaosNodePlane",
    "ChaosShardPlane",
    "ChaosSyscallExecutor",
    "ChaosVolume",
    "FaultSchedule",
]
