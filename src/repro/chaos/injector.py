"""Seeded, order-independent fault injection.

The injector answers one kind of question -- "does fault *F* strike
coordinate *C* on attempt *A*?" -- by hashing the experiment seed with
the fault kind and coordinates (:func:`repro.sim.rng.derive_seed`) and
comparing a single uniform draw against the configured rate.  Because
every decision is a pure function of ``(seed, kind, coordinates)``, the
same seed yields the *same faults* regardless of thread scheduling or
call order: the parallel map/reduce driver can ask from worker threads
and two runs still produce identical injection logs, which is what the
chaos determinism check in ``repro.cli smoke --chaos`` asserts.

Including the attempt number in the coordinates is what makes recovery
terminate: a frame corrupted on attempt 0 is an independent draw on
attempt 1, so with rate < 1 a bounded retry budget converges.
"""

import threading
from dataclasses import dataclass, fields

from repro.errors import ConfigurationError
from repro.sim.rng import RandomStream, derive_seed


@dataclass(frozen=True)
class ChaosConfig:
    """Fault rates (all probabilities in [0, 1]) and the chaos seed."""

    seed: int = 0
    # Map/reduce worker crashes, per (task, attempt).
    mapper_crash_rate: float = 0.0
    reducer_crash_rate: float = 0.0
    # Event-bus message faults, per (topic, sequence, attempt).
    message_drop_rate: float = 0.0
    message_duplicate_rate: float = 0.0
    message_delay_rate: float = 0.0
    message_delay_max: float = 0.002     # extra virtual seconds
    # Broker-plane faults.
    notification_drop_rate: float = 0.0  # per (subscriber, sequence)
    # Sharded matching-plane faults.
    shard_crash_rate: float = 0.0        # per (shard, operation)
    heartbeat_loss_rate: float = 0.0     # per (shard, beat sequence)
    # Provisioning-plane faults, per (machine fingerprint, attempt):
    # the untrusted host loses a resumption ticket, forcing the full
    # attested re-join for that machine.
    ticket_loss_rate: float = 0.0
    # Cluster-node faults, per (node, operation).
    node_crash_rate: float = 0.0         # whole-machine failure
    node_partition_rate: float = 0.0     # network partition onset
    node_partition_max: float = 0.005    # longest partition, virtual s
    # Transfer-stream corruption, per (transfer, frame, attempt).
    frame_corruption_rate: float = 0.0
    # Untrusted-store hiccups, per (operation, path, attempt).
    storage_failure_rate: float = 0.0
    # Syscall-shield stalls, per call index.
    syscall_stall_rate: float = 0.0
    syscall_stall_cycles: int = 50_000

    def __post_init__(self):
        # Every field named *_rate is a probability -- discovered from
        # the dataclass itself, so a newly added fault rate can never
        # silently skip validation.
        for spec in fields(self):
            if not spec.name.endswith("_rate"):
                continue
            rate = getattr(self, spec.name)
            if not 0.0 <= rate <= 1.0:
                raise ConfigurationError(
                    "%s must be a probability, got %r" % (spec.name, rate)
                )


class ChaosInjector:
    """Deterministic fault decisions plus a thread-safe injection log."""

    def __init__(self, config=None, **overrides):
        if config is None:
            config = ChaosConfig(**overrides)
        elif overrides:
            raise ConfigurationError("pass either a config or overrides")
        self.config = config
        self._lock = threading.Lock()
        self._log = []

    # --- the decision core ---

    def _draw(self, kind, *coordinates):
        """Uniform [0, 1) draw, a pure function of (seed, kind, coords)."""
        return RandomStream(
            derive_seed(self.config.seed, "chaos", kind, *coordinates)
        ).random()

    def _happens(self, rate, kind, *coordinates):
        if rate <= 0.0:
            return False
        if self._draw(kind, *coordinates) >= rate:
            return False
        self._record(kind, coordinates)
        return True

    def _record(self, kind, coordinates, detail=None):
        with self._lock:
            self._log.append((kind, tuple(coordinates), detail))

    # --- decisions, one per fault class ---

    def mapper_crashes(self, split_index, attempt):
        """Does the mapper for ``split_index`` crash on this attempt?"""
        return self._happens(
            self.config.mapper_crash_rate, "mapper-crash", split_index, attempt
        )

    def reducer_crashes(self, partition, attempt):
        """Does the reducer for ``partition`` crash on this attempt?"""
        return self._happens(
            self.config.reducer_crash_rate, "reducer-crash", partition, attempt
        )

    def drops_message(self, topic, sequence, attempt=0):
        """Is bus event (topic, sequence) dropped on this delivery attempt?"""
        return self._happens(
            self.config.message_drop_rate, "message-drop",
            topic, sequence, attempt,
        )

    def duplicates_message(self, topic, sequence):
        """Is bus event (topic, sequence) delivered twice?"""
        return self._happens(
            self.config.message_duplicate_rate, "message-duplicate",
            topic, sequence,
        )

    def delay_for_message(self, topic, sequence):
        """Extra delivery delay for (topic, sequence); 0.0 for none."""
        config = self.config
        if config.message_delay_rate <= 0.0:
            return 0.0
        stream = RandomStream(
            derive_seed(config.seed, "chaos", "message-delay", topic, sequence)
        )
        if stream.random() >= config.message_delay_rate:
            return 0.0
        delay = stream.uniform(0.0, config.message_delay_max)
        self._record("message-delay", (topic, sequence), delay)
        return delay

    def drops_notification(self, subscriber, sequence):
        """Is the broker's push of notification ``sequence`` lost?"""
        return self._happens(
            self.config.notification_drop_rate, "notification-drop",
            subscriber, sequence,
        )

    def crashes_shard(self, shard_id, operation):
        """Does shard enclave ``shard_id`` crash before ``operation``?

        ``operation`` is a per-plane operation counter (the publish or
        mutation index), so the crash schedule is a pure function of
        the seed and the workload position, not of wall-clock timing.
        """
        return self._happens(
            self.config.shard_crash_rate, "shard-crash", shard_id, operation
        )

    def drops_heartbeat(self, shard_id, beat):
        """Is heartbeat ``beat`` from shard ``shard_id`` lost in flight?

        A lost heartbeat leaves the shard alive but silent -- the
        failure detector's false-positive fodder.
        """
        return self._happens(
            self.config.heartbeat_loss_rate, "heartbeat-loss", shard_id, beat
        )

    def loses_ticket(self, fingerprint, attempt):
        """Has the host lost machine ``fingerprint``'s resumption
        ticket by re-join ``attempt``?

        A lost ticket is a liveness fault only: the provisioner falls
        back to the full attested handshake and the machine re-earns a
        ticket -- no key material is at stake, the host never held any.
        """
        return self._happens(
            self.config.ticket_loss_rate, "ticket-loss", fingerprint, attempt
        )

    def crashes_node(self, node_name, operation):
        """Does the whole machine ``node_name`` fail before ``operation``?

        A node crash is the *correlated* fault: every shard enclave the
        node hosts dies in the same instant, which is what the node
        failure detector distinguishes from independent process deaths.
        """
        return self._happens(
            self.config.node_crash_rate, "node-crash", node_name, operation
        )

    def partition_for_node(self, node_name, operation):
        """Partition duration for ``node_name`` at ``operation``; 0.0
        for none.  The duration draw rides the same stream as the
        decision, so one seed fixes both."""
        config = self.config
        if config.node_partition_rate <= 0.0:
            return 0.0
        stream = RandomStream(
            derive_seed(config.seed, "chaos", "node-partition",
                        node_name, operation)
        )
        if stream.random() >= config.node_partition_rate:
            return 0.0
        duration = stream.uniform(0.0, config.node_partition_max)
        self._record("node-partition", (node_name, operation), duration)
        return duration

    def corrupts_frame(self, transfer_id, frame_index, attempt=0):
        """Is transfer frame ``frame_index`` corrupted in flight?"""
        return self._happens(
            self.config.frame_corruption_rate, "frame-corruption",
            transfer_id, frame_index, attempt,
        )

    def storage_fails(self, operation, path, attempt=0):
        """Does the untrusted store reject this I/O operation?"""
        return self._happens(
            self.config.storage_failure_rate, "storage-failure",
            operation, path, attempt,
        )

    def stalls_syscall(self, call_index):
        """Extra kernel-side cycles for syscall ``call_index`` (0 if none)."""
        if self._happens(
            self.config.syscall_stall_rate, "syscall-stall", call_index
        ):
            return self.config.syscall_stall_cycles
        return 0

    # --- observability ---

    @property
    def injections(self):
        """Number of faults injected so far."""
        with self._lock:
            return len(self._log)

    def log(self):
        """Sorted snapshot of injected faults (deterministic across runs).

        Sorted because worker threads may append recovery-path entries
        in scheduler order; the *set* of injections is seed-determined.
        """
        with self._lock:
            return sorted(self._log, key=lambda entry: (entry[0], entry[1]))

    def counts(self):
        """Injection totals per fault kind."""
        totals = {}
        for kind, _coords, _detail in self.log():
            totals[kind] = totals.get(kind, 0) + 1
        return totals


class FaultSchedule:
    """Faults fired at planned virtual times, hooked into the kernel.

    Probabilistic injection (the :class:`ChaosInjector`) covers steady
    background faults; experiments also need *scripted* failures -- kill
    this broker at t=0.25, crash that service at t=0.1 -- scheduled on
    the discrete-event :class:`~repro.sim.events.Environment` so they
    interleave deterministically with the workload.
    """

    def __init__(self, env, injector=None):
        self.env = env
        self.injector = injector
        self.fired = []

    def _fire(self, kind, target_name, action):
        def strike():
            action()
            self.fired.append((self.env.now, kind, target_name))
            if self.injector is not None:
                self.injector._record(kind, (target_name,), self.env.now)
        return strike

    def crash_service_at(self, time, service):
        """Crash a micro-service at virtual ``time``."""
        return self.env.call_at(
            time, self._fire("service-crash", service.name, service.crash)
        )

    def recover_service_at(self, time, service):
        """Bring a crashed micro-service back at virtual ``time``."""
        return self.env.call_at(
            time, self._fire("service-recover", service.name, service.recover)
        )

    def fail_at(self, time, target, kind=None, name=None):
        """Destroy ``target`` at virtual ``time``, whatever it is.

        Target-agnostic failure scheduling: anything exposing one of
        the conventional kill switches can be scheduled --

        - ``fail_active()`` (a :class:`~repro.scbr.ReplicatedBroker`),
          recorded as ``broker-failure``;
        - ``fail()``, recorded as ``target-failure``;
        - a bare callable, recorded as ``target-failure``.

        For killing one shard of a sharded plane, use
        :meth:`crash_shard_at` (the shard id is part of the record).
        """
        if callable(target):
            action = target
            default_kind = "target-failure"
        elif hasattr(target, "fail_active"):
            action = target.fail_active
            default_kind = "broker-failure"
        elif hasattr(target, "fail"):
            action = target.fail
            default_kind = "target-failure"
        else:
            raise ConfigurationError(
                "cannot fail %r: expected fail_active(), fail(), or a "
                "callable" % (target,)
            )
        if name is None:
            name = getattr(target, "name", None) or getattr(
                target, "__name__", "target"
            )
        return self.env.call_at(
            time, self._fire(kind or default_kind, name, action)
        )

    def fail_broker_at(self, time, replicated_broker):
        """Destroy the active broker replica at virtual ``time``.

        Thin alias of :meth:`fail_at`, kept for existing call sites.
        """
        return self.fail_at(time, replicated_broker)

    def crash_shard_at(self, time, plane, shard_id):
        """Destroy shard ``shard_id`` of a sharded matching plane at
        virtual ``time`` (records the shard id in the fault log)."""
        return self.env.call_at(
            time,
            self._fire(
                "shard-crash",
                "%s/shard-%d" % (getattr(plane, "name", "plane"), shard_id),
                lambda: plane.fail_shard(shard_id),
            ),
        )

    def crash_node_at(self, time, plane, node_name):
        """Fail cluster node ``node_name`` of a node-bound plane at
        virtual ``time`` -- a correlated loss of every shard it hosts
        (records the node name in the fault log)."""
        return self.env.call_at(
            time,
            self._fire(
                "node-crash",
                "%s/%s" % (getattr(plane, "name", "plane"), node_name),
                lambda: plane.fail_node(node_name),
            ),
        )

    def partition_node_at(self, time, plane, node_name, duration):
        """Cut node ``node_name`` off the network at virtual ``time``
        for ``duration`` virtual seconds."""
        return self.env.call_at(
            time,
            self._fire(
                "node-partition",
                "%s/%s" % (getattr(plane, "name", "plane"), node_name),
                lambda: plane.partition_node(node_name, duration),
            ),
        )

    def call_at(self, time, kind, name, action):
        """Schedule an arbitrary named fault ``action`` at ``time``."""
        return self.env.call_at(time, self._fire(kind, name, action))
