"""Power-quality monitoring.

Classifies voltage samples against EN 50160-style bands and aggregates
per-transformer events: a **sag** (below 0.9 pu), a **swell** (above
1.1 pu), or an **interruption** (below 0.05 pu).  A transformer-level
event is raised when at least ``quorum`` of its meters agree in the
same sample slot (a single odd meter is a metering problem, not a grid
problem); consecutive slots merge into one event.
"""

from collections import defaultdict
from dataclasses import dataclass

from repro.smartgrid.meters import NOMINAL_VOLTS

SAG_PU = 0.9
SWELL_PU = 1.1
INTERRUPTION_PU = 0.05


def classify_sample(volts):
    """'normal' | 'sag' | 'swell' | 'interruption' for one sample."""
    per_unit = volts / NOMINAL_VOLTS
    if per_unit < INTERRUPTION_PU:
        return "interruption"
    if per_unit < SAG_PU:
        return "sag"
    if per_unit > SWELL_PU:
        return "swell"
    return "normal"


@dataclass(frozen=True)
class QualityEvent:
    """One transformer-level power-quality event."""

    transformer: str
    kind: str
    start: float
    end: float
    affected_meters: tuple

    @property
    def duration(self):
        return self.end - self.start


class PowerQualityMonitor:
    """Turns raw readings into transformer-level quality events."""

    def __init__(self, topology, interval=30.0, quorum=0.5):
        self.topology = topology
        self.interval = interval
        self.quorum = quorum
        self._transformer_of = {
            meter: topology.transformer_of(meter) for meter in topology.meters
        }
        self._meter_counts = {
            transformer: len(topology.meters_under(transformer))
            for transformer in topology.transformers
        }

    def sample_classifications(self, readings):
        """Per-sample classification counts (diagnostics)."""
        counts = defaultdict(int)
        for reading in readings:
            counts[classify_sample(reading.volts)] += 1
        return dict(counts)

    def detect(self, readings):
        """Aggregate readings into :class:`QualityEvent` objects."""
        # (transformer, slot) -> kind -> [meters]
        slots = defaultdict(lambda: defaultdict(list))
        for reading in readings:
            kind = classify_sample(reading.volts)
            if kind == "normal":
                continue
            transformer = self._transformer_of[reading.meter_id]
            slot = int(reading.timestamp // self.interval)
            slots[(transformer, slot)][kind].append(reading.meter_id)

        # Keep slots meeting the quorum, then merge consecutive ones.
        flagged = {}
        for (transformer, slot), kinds in slots.items():
            for kind, meters in kinds.items():
                threshold = self._meter_counts[transformer] * self.quorum
                if len(meters) >= threshold:
                    flagged[(transformer, slot, kind)] = meters

        events = []
        for (transformer, slot, kind) in sorted(flagged):
            meters = flagged[(transformer, slot, kind)]
            previous = next(
                (
                    event
                    for event in events
                    if event.transformer == transformer
                    and event.kind == kind
                    and abs(event.end - slot * self.interval) < 1e-9
                ),
                None,
            )
            if previous is not None:
                events.remove(previous)
                events.append(
                    QualityEvent(
                        transformer=transformer,
                        kind=kind,
                        start=previous.start,
                        end=(slot + 1) * self.interval,
                        affected_meters=tuple(
                            sorted(set(previous.affected_meters) | set(meters))
                        ),
                    )
                )
            else:
                events.append(
                    QualityEvent(
                        transformer=transformer,
                        kind=kind,
                        start=slot * self.interval,
                        end=(slot + 1) * self.interval,
                        affected_meters=tuple(sorted(meters)),
                    )
                )
        return sorted(events, key=lambda event: (event.start, event.transformer))
