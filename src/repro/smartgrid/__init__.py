"""Smart-grid use cases (paper Section VI).

The project's demonstrators: smart meters collect sub-minute power
consumption data; analytics over that data (power-theft prevention,
power-quality monitoring) run as secure big-data applications; fault
detection triggers millisecond-scale orchestration reactions.

- :mod:`~repro.smartgrid.topology` -- substation/feeder/transformer/
  meter hierarchy (networkx).
- :mod:`~repro.smartgrid.meters` -- synthetic load profiles and the
  meter data simulator, with theft and fault injection.
- :mod:`~repro.smartgrid.theft` -- power-theft detection analytics.
- :mod:`~repro.smartgrid.quality` -- power-quality (sag/swell/
  interruption) monitoring.
- :mod:`~repro.smartgrid.faults` -- fault detection and localisation.
"""

from repro.smartgrid.faults import FaultDetector, FaultEvent
from repro.smartgrid.meters import MeterReading, SmartMeterFleet
from repro.smartgrid.quality import PowerQualityMonitor, QualityEvent
from repro.smartgrid.theft import TheftDetector, TheftReport
from repro.smartgrid.topology import GridTopology

__all__ = [
    "FaultDetector",
    "FaultEvent",
    "GridTopology",
    "MeterReading",
    "PowerQualityMonitor",
    "QualityEvent",
    "SmartMeterFleet",
    "TheftDetector",
    "TheftReport",
]
