"""Fault detection and localisation (use case 2).

Streams of meter readings feed the detector; when meters go dark
(interruption-level voltage), the fault is localised to the deepest
grid element whose *entire* meter subtree is dark -- a single dark
meter is a meter problem, a dark transformer subtree is a transformer
fault, a dark feeder subtree is a feeder fault.

The detector records the virtual time of its first localisation so the
E4-style experiments can report detection latency; reactions (load
transfer, crew dispatch, consumer notification) are delegated to the
orchestrator layer.
"""

from dataclasses import dataclass

from repro.smartgrid.quality import classify_sample


@dataclass(frozen=True)
class FaultEvent:
    """One localised fault."""

    element: str
    kind: str
    detected_at: float
    dark_meters: tuple


class FaultDetector:
    """Localises supply interruptions from meter telemetry."""

    def __init__(self, topology):
        self.topology = topology
        self.events = []
        self._active_elements = set()

    def _localise(self, dark_meters):
        """Deepest elements whose whole meter subtree is dark.

        Handles multiple simultaneous faults: each fully-dark
        transformer is a candidate; fully-dark transformers of a
        fully-dark feeder merge into one feeder-level fault; dark
        meters under healthy transformers localise to the meter itself.
        """
        if not dark_meters:
            return []
        dark = set(dark_meters)
        dark_transformers = {
            transformer
            for transformer in self.topology.transformers
            if set(self.topology.meters_under(transformer)) <= dark
        }
        dark_feeders = {
            feeder
            for feeder in self.topology.feeders
            if all(
                transformer in dark_transformers
                for transformer in self.topology.graph.successors(feeder)
            )
        }
        elements = set(dark_feeders)
        for transformer in dark_transformers:
            if self.topology.parent_of(transformer) not in dark_feeders:
                elements.add(transformer)
        covered = set()
        for element in elements:
            covered |= set(self.topology.meters_under(element))
        elements |= dark - covered  # isolated meter outages
        return sorted(elements)

    def observe_slot(self, timestamp, readings):
        """Feed one sample slot (all meters, same timestamp).

        Returns the list of *newly* localised :class:`FaultEvent`
        objects for this slot (empty while known faults persist).
        """
        dark = {
            reading.meter_id
            for reading in readings
            if classify_sample(reading.volts) == "interruption"
        }
        elements = self._localise(dark)
        fresh = []
        for element in elements:
            if element in self._active_elements:
                continue
            affected = set(self.topology.meters_under(element)) or {element}
            event = FaultEvent(
                element=element,
                kind=self.topology.kind_of(element),
                detected_at=timestamp,
                dark_meters=tuple(sorted(affected & dark or {element})),
            )
            self.events.append(event)
            fresh.append(event)
        self._active_elements = set(elements)
        return fresh

    def scan_window(self, fleet, start, end):
        """Convenience: replay a window slot by slot."""
        new_events = []
        timestamp = start
        while timestamp < end:
            readings = [
                fleet.reading(meter, timestamp)
                for meter in self.topology.meters
            ]
            new_events.extend(self.observe_slot(timestamp, readings))
            timestamp += fleet.interval
        return new_events
